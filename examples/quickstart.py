#!/usr/bin/env python3
"""Quickstart: the UPC++ programming model in five minutes.

Runs a small SPMD job on a simulated 2-node machine and demonstrates the
core features the paper describes: global pointers, one-sided RMA
(rput/rget), RPC, futures/promises chaining, and collectives.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.upcxx as upcxx


def main():
    me = upcxx.rank_me()
    n = upcxx.rank_n()
    right = (me + 1) % n

    # --- global memory: allocate in MY shared segment ------------------
    # (allocation is always local; remote memory is reached via pointers)
    my_cell = upcxx.new_array(np.float64, 4)
    my_cell.local()[:] = me  # owner writes through a local view

    # share pointers: a broadcast per rank (explicit communication only!)
    cells = [upcxx.broadcast(my_cell, root=r).wait() for r in range(n)]
    upcxx.barrier()

    # --- one-sided RMA: put into my right neighbor ----------------------
    # rput returns a future; .then() chains a callback on completion
    fut = upcxx.rput(np.full(4, 100.0 + me), cells[right]).then(
        lambda: print(f"rank {me}: my put to rank {right} completed")
    )
    fut.wait()
    upcxx.barrier()

    got = upcxx.rget(my_cell).wait()
    print(f"rank {me}: my cell now holds {got[0]:.0f} (written by rank {(me - 1) % n})")

    # --- RPC: run a function on another rank ----------------------------
    answer = upcxx.rpc(right, lambda a, b: a * b, 6, 7).wait()
    print(f"rank {me}: rank {right} computed 6*7 = {answer}")

    # --- futures compose: conjoin many operations -----------------------
    futs = [upcxx.rpc(r, upcxx.rank_me) for r in range(n)]
    everyone = upcxx.when_all(*futs).wait()
    print(f"rank {me}: heard back from ranks {list(everyone)}")

    # --- promises track many operations with one wait -------------------
    p = upcxx.Promise()
    for i in range(8):
        upcxx.rput(float(i), cells[right][i % 4], cx=upcxx.operation_cx.as_promise(p))
    p.finalize().wait()

    # --- collectives -----------------------------------------------------
    total = upcxx.reduce_all(me, "+").wait()
    upcxx.barrier()
    if me == 0:
        print(f"sum of all ranks = {total} (expected {n * (n - 1) // 2})")
        print(f"simulated time elapsed: {upcxx.sim_now() * 1e6:.1f} us")


if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=4, platform="haswell", ppn=2)
    print("quickstart finished.")
