#!/usr/bin/env python3
"""Memory kinds in action: a host->device->remote-device pipeline.

The paper's §VI names exactly this as future work: "enhance UPC++'s
one-sided communication to express transfers to and from other memories
(such as that of GPUs)".  This example stages a block of data from rank
0's host memory onto its GPU, moves it GPU-to-GPU across the network to
rank 1, "computes" on it there, and lands the result back in host memory
— every hop a single `upcxx.copy` with futures chaining the pipeline.

Run:  python examples/gpu_pipeline.py
"""

import numpy as np

import repro.upcxx as upcxx

N = 1 << 15  # elements per block


def main():
    me = upcxx.rank_me()
    dev = upcxx.Device(segment_size=8 * N * 8)
    d_buf = dev.allocate(np.float64, N)
    h_buf = upcxx.new_array(np.float64, N)

    d_ptrs = [upcxx.broadcast(d_buf, root=r).wait() for r in range(2)]
    h_ptrs = [upcxx.broadcast(h_buf, root=r).wait() for r in range(2)]
    upcxx.barrier()

    if me == 0:
        data = np.sqrt(np.arange(N, dtype=np.float64))
        t0 = upcxx.sim_now()

        # host(0) -> device(0) -> device(1), chained with futures
        pipeline = upcxx.copy(data, d_ptrs[0]).then(
            lambda: upcxx.copy(d_ptrs[0], d_ptrs[1])
        )
        pipeline.wait()
        dt = upcxx.sim_now() - t0
        gib = data.nbytes / dt / (1 << 30)
        print(f"rank 0: staged {data.nbytes >> 10} KiB host->gpu->remote gpu "
              f"in {dt * 1e6:.1f} us ({gib:.2f} GiB/s end-to-end)")
        # tell rank 1 its input is ready
        upcxx.rpc_ff(1, lambda: _ready.append(True))
    else:
        while not _ready:
            upcxx.progress()
            if not _ready:
                upcxx.runtime_here().sched.block("waiting for input")
        # "GPU kernel": fetch to host, square, push back (a real app would
        # run the kernel in device memory; the traffic pattern is the point)
        upcxx.copy(d_ptrs[1], h_ptrs[1]).wait()
        local = h_buf.local()
        local[:] = local * local
        upcxx.compute(N / 20e9)  # a fast device-class kernel
        upcxx.copy(local.copy(), d_ptrs[1]).wait()

    upcxx.barrier()
    if me == 0:
        # pull rank 1's device result straight into my host buffer
        upcxx.copy(d_ptrs[1], h_ptrs[0]).wait()
        result = h_buf.local()
        expected = np.arange(N, dtype=np.float64)  # sqrt then squared
        ok = np.allclose(result, expected)
        print(f"round-tripped result correct: {ok}")
        print(f"device segment use on rank 0: {dev.usage()['in_use'] >> 10} KiB")
    upcxx.barrier()


_ready: list = []

if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=2, platform="haswell", ppn=1,
                   segment_size=16 * N * 8)
    print("gpu_pipeline finished.")
