#!/usr/bin/env python3
"""Distributed hash table demo (the paper's §IV-C motif).

Builds the RPC+RMA landing-zone hash table on 8 simulated ranks, inserts
a small phone book, reads it back from a different rank, then builds the
paper's distributed-graph example: vertices with neighbor lists updated
in place by RPC (the case where one-sided RMA alone would be "more
complicated, error-prone, and likely less efficient").

Run:  python examples/dht_demo.py
"""

import repro.upcxx as upcxx
from repro.apps.dht import DhtRmaLz, DistGraph

CAPITALS = {
    1: b"Bonn",       # the paper's own example pair
    2: b"Paris",
    3: b"Madrid",
    4: b"Rome",
    5: b"Lisbon",
    6: b"Vienna",
    7: b"Warsaw",
    8: b"Prague",
}


def main():
    me = upcxx.rank_me()

    # ---------------------------------------------------------------- DHT
    dht = DhtRmaLz()
    upcxx.barrier()

    if me == 0:
        # the paper's asynchronous insert: rpc(make_lz) -> .then(rput)
        f = dht.insert(1, CAPITALS[1])
        f.wait()
        # pipelined inserts: conjoin all futures, wait once
        upcxx.when_all(*[dht.insert(k, v) for k, v in CAPITALS.items() if k != 1]).wait()
        print(f"rank 0: inserted {len(CAPITALS)} entries")
    upcxx.barrier()

    if me == upcxx.rank_n() - 1:
        for k in sorted(CAPITALS):
            val = dht.find(k).wait()
            owner = dht.target_of(k)
            print(f"rank {me}: key {k} -> {val.decode():8s} (owned by rank {owner})")
    upcxx.barrier()

    shard = dht.local_size()
    total = upcxx.reduce_one(shard, "+", root=0).wait()
    if me == 0:
        print(f"total entries across shards: {total}")
    upcxx.barrier()

    # ------------------------------------------------------ graph example
    g = DistGraph()
    upcxx.barrier()
    if me == 0:
        upcxx.when_all(*[g.insert_vertex(v, name=f"city{v}") for v in range(1, 6)]).wait()
        # one RPC mutates the remote vertex's neighbor vector in place
        upcxx.when_all(
            g.add_undirected_edge(1, 2),
            g.add_undirected_edge(1, 3),
            g.add_undirected_edge(2, 4),
            g.add_undirected_edge(3, 5),
        ).wait()
    upcxx.barrier()
    if me == 1:
        v1 = g.get_vertex(1).wait()
        print(f"rank 1: vertex 1 ({v1.properties['name']}) neighbors: {sorted(v1.nbs)}")
    upcxx.barrier()
    if me == 0:
        print(f"simulated time: {upcxx.sim_now() * 1e6:.1f} us")


if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=8, platform="haswell")
    print("dht_demo finished.")
