#!/usr/bin/env python3
"""Distributed Conjugate Gradient demo.

Solves a 3-D Poisson problem with the row-distributed CG of
`repro.apps.linalg`: one-sided halo fetches per SpMV, `reduce_all` dot
products, and a final residual check — the canonical PGAS numerical
workload, end to end on 8 simulated ranks.

Run:  python examples/cg_solver.py
"""

import numpy as np

import repro.upcxx as upcxx
from repro.apps.linalg import DistSparseMatrix, cg_solve
from repro.apps.linalg.cg import gather_solution
from repro.apps.sparse.matrices import laplacian_3d

GRID = (8, 8, 4)


def main():
    me = upcxx.rank_me()
    a = laplacian_3d(*GRID)
    n = a.shape[0]
    rng = np.random.default_rng(2026)
    b = rng.standard_normal(n)

    da = DistSparseMatrix(a)
    t0 = upcxx.sim_now()
    x_local, iters = cg_solve(da, b[da.lo : da.hi], tol=1e-10)
    dt = upcxx.sim_now() - t0
    x = gather_solution(da, x_local)

    if me == 0:
        res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        halo_ranks = len(da.halo)
        print(f"{GRID[0]}x{GRID[1]}x{GRID[2]} Poisson ({n} dofs) on {upcxx.rank_n()} ranks")
        print(f"CG converged in {iters} iterations, relative residual {res:.2e}")
        print(f"rank 0 exchanged halos with {halo_ranks} neighbor(s)")
        print(f"simulated solve time: {dt * 1e3:.3f} ms "
              f"({upcxx.runtime_here().n_rgets} one-sided gets by rank 0)")
    upcxx.barrier()


if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=8, platform="haswell", max_time=1e7)
    print("cg_solver finished.")
