#!/usr/bin/env python3
"""1-D heat diffusion with one-sided halo exchange.

A classic PGAS pattern the paper's model is designed for: each rank owns a
strip of the domain plus two ghost cells that live in its shared segment;
every iteration, neighbors *push* boundary values into each other's ghost
cells with `rput` (tracked by one promise per iteration), then everyone
computes the stencil locally.  No two-sided matching, no collective per
step — just one-sided puts and a barrier.

Run:  python examples/stencil_halo.py
"""

import numpy as np

import repro.upcxx as upcxx

N_GLOBAL = 256
STEPS = 50
ALPHA = 0.25


def main():
    me = upcxx.rank_me()
    n = upcxx.rank_n()
    assert N_GLOBAL % n == 0
    local_n = N_GLOBAL // n

    # strip = [left ghost | local_n interior cells | right ghost]
    strip = upcxx.new_array(np.float64, local_n + 2)
    u = strip.local()
    u[:] = 0.0
    if me == 0:
        u[1] = 100.0  # hot boundary on the global left edge

    strips = [upcxx.broadcast(strip, root=r).wait() for r in range(n)]
    upcxx.barrier()

    left, right = me - 1, me + 1
    for _step in range(STEPS):
        # push my boundary values into my neighbors' ghost cells
        p = upcxx.Promise()
        if left >= 0:
            # my first interior cell -> left neighbor's right ghost
            upcxx.rput(u[1], strips[left][local_n + 1], cx=upcxx.operation_cx.as_promise(p))
        if right < n:
            # my last interior cell -> right neighbor's left ghost
            upcxx.rput(u[local_n], strips[right][0], cx=upcxx.operation_cx.as_promise(p))
        p.finalize().wait()
        upcxx.barrier()  # all halos in place

        # explicit diffusion step on the interior (ghosts are read-only)
        interior = u[1 : local_n + 1]
        lap = u[0:local_n] - 2.0 * interior + u[2 : local_n + 2]
        if me == 0:
            lap[0] = 0.0  # pin the hot boundary
        interior += ALPHA * lap
        upcxx.compute(local_n * 4 / 2.4e9)  # charge the stencil flops
        upcxx.barrier()

    # gather the global field at rank 0 for a report
    total = upcxx.reduce_one(float(u[1 : local_n + 1].sum()), "+", root=0).wait()
    hottest = upcxx.reduce_one(float(u[1 : local_n + 1].max()), "max", root=0).wait()
    upcxx.barrier()
    if me == 0:
        print(f"after {STEPS} steps: total heat {total:.2f}, hottest cell {hottest:.2f}")
        print(f"simulated time: {upcxx.sim_now() * 1e6:.1f} us "
              f"({upcxx.runtime_here().n_rputs} rputs issued by rank 0)")


if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=8, platform="haswell")
    print("stencil_halo finished.")
