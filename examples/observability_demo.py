#!/usr/bin/env python3
"""Observability demo: rollups, flight recorder, Perfetto counters, health.

Part 1 runs a small DHT workload with every observability surface armed —
metrics, scheduler trace, causal spans, and the telemetry subsystem's
windowed rollups — then exports one Perfetto trace whose counter tracks
(`tel.ops`, `tel.queues`, `tel.nic`, `tel.agg`, `tel.attentiveness`)
plot the rollup windows over simulated time, and asks
``repro.tools.health`` for a verdict on the run.

Part 2 injects a rank crash into an RPC ring and shows the flight
recorder: the bounded per-rank event rings are frozen at the crash
cutoff and dumped as a ``blackbox.json`` post-mortem bundle — the dead
rank's last actions, every survivor's tail, and the dead rank's pending
operation table.

Both parts are deterministic: same seed, same output, on every backend.

Run:  python examples/observability_demo.py
"""

import json

import repro.upcxx as upcxx
from repro.sim.errors import RankDeadError, RankFailure
from repro.tools.health import evaluate
from repro.util import Metrics, SpanBuffer, Telemetry, TraceBuffer, export_chrome_trace

TRACE_PATH = "/tmp/observability_demo.trace.json"
BLACKBOX_PATH = "/tmp/observability_demo.blackbox.json"


# ------------------------------------------------------------ part 1: rollups
def dht_body():
    from repro.apps.dht import DhtRmaLz

    me = upcxx.rank_me()
    dht = DhtRmaLz()
    upcxx.barrier()
    upcxx.when_all(*[dht.insert(me * 100 + i, bytes([me % 251]) * 64)
                     for i in range(6)]).wait()
    upcxx.barrier()
    total = upcxx.reduce_one(dht.local_size(), "+", root=0).wait()
    upcxx.barrier()
    return total


def healthy_run():
    metrics, trace = Metrics(), TraceBuffer()
    spans, tel = SpanBuffer(), Telemetry()
    res = upcxx.run_spmd(dht_body, 8, platform="haswell", ppn=4, seed=42,
                         metrics=metrics, trace=trace, spans=spans,
                         telemetry=tel)
    print(f"part 1: DHT run done, {res[0]} total entries")

    # windowed rollups: one cumulative snapshot per rank per window edge
    n_windows = sum(len(rt.windows) for rt in tel.ranks.values())
    r0 = tel.ranks[0].windows[-1]
    print(f"  rollups: {n_windows} windows across {len(tel.ranks)} ranks")
    print(f"  rank 0 final window: {sum(r0['ops'].values())} ops injected, "
          f"{r0['executed']} completions executed, {r0['ams']} AM polls, "
          f"max progress gap {r0['max_gap_s'] * 1e6:.2f} us")

    # Perfetto export: spans/instants plus the telemetry counter tracks
    export_chrome_trace(TRACE_PATH, trace, metrics, telemetry=tel)
    with open(TRACE_PATH) as fh:
        events = json.load(fh)["traceEvents"]
    n_counters = sum(1 for e in events
                     if e["ph"] == "C" and e.get("cat") == "telemetry")
    print(f"  wrote {TRACE_PATH}: {len(events)} events, "
          f"{n_counters} telemetry counter samples "
          "(open in ui.perfetto.dev)")

    # health gate: the same rules CI runs, as a library call
    verdicts = evaluate({"telemetry": json.loads(tel.dumps())})
    for v in verdicts:
        print(f"  {v.line()}")
    worst = ("FAIL" if any(v.status == "FAIL" for v in verdicts)
             else "WARN" if any(v.status == "WARN" for v in verdicts)
             else "PASS")
    print(f"  health verdict: {worst}")


# --------------------------------------------------- part 2: flight recorder
def ring_body():
    me, n = upcxx.rank_me(), upcxx.rank_n()
    acc = 0
    for i in range(200):
        acc += upcxx.rpc((me + 1) % n, lambda x: x * 2, i).wait()
    upcxx.barrier()
    return acc


def crash_run():
    tel = Telemetry(blackbox_path=BLACKBOX_PATH)
    try:
        upcxx.run_spmd(ring_body, 4, platform="haswell", ppn=2, seed=5,
                       faults="seed=3,crash=1@3e-4", telemetry=tel)
        raise AssertionError("crash plan did not fire")
    except (RankDeadError, RankFailure) as err:
        print(f"part 2: caught {type(err).__name__}: {err}")

    bb = tel.blackbox
    v = bb["verdict"]
    print(f"  blackbox verdict: rank {v['rank']} ({v['type']}), "
          f"cutoff t={bb['cutoff_s'] * 1e6:.1f} us")
    dead = bb["ranks"][str(v["rank"])]
    t_last, kind_last, detail_last = dead["tail"][-1]
    print(f"  dead rank: {len(dead['tail'])} ring events; last was "
          f"'{kind_last}:{detail_last}' at {t_last * 1e6:.2f} us")
    pend = dead["pending"]
    if pend is not None:
        print(f"  dead rank pending: defQ={pend['defQ']} actQ={pend['actQ']} "
              f"compQ={pend['compQ']} outstanding replies={pend['replies']}")
    survivors = [r for r, rec in sorted(bb["ranks"].items()) if not rec["dead"]]
    print(f"  survivor tails captured for ranks: {', '.join(survivors)}")
    print(f"  wrote {BLACKBOX_PATH}")


if __name__ == "__main__":
    healthy_run()
    crash_run()
    print("observability_demo finished.")
