#!/usr/bin/env python3
"""Distributed k-mer counting — the genome-assembly workload that motivates
the paper's DHT motif (§IV-C cites HipMer's extreme-scale assembler [13]).

Every rank reads a shard of synthetic DNA, slides a window of length k
over it, and counts each k-mer in a distributed hash table keyed by the
k-mer's packed value.  Counting uses a single fire-and-forget RPC per
k-mer batch (aggregated per destination — the classic HipMer optimization)
so the run is injection-rate- rather than latency-bound.  At the end the
ranks find the globally most frequent k-mers with a reduction.

Run:  python examples/kmer_count.py
"""

from collections import Counter

import repro.upcxx as upcxx

K = 9
BASES = "ACGT"
READS_PER_RANK = 8
READ_LEN = 120


def _synthetic_read(rng, length: int) -> str:
    """A pseudo-genome read with repeated motifs (so some k-mers are hot)."""
    motif = "ACGTACGGT"
    out = []
    while sum(map(len, out)) < length:
        if rng.py.random() < 0.35:
            out.append(motif)
        else:
            out.append(BASES[rng.py.randrange(4)])
    return "".join(out)[:length]


def _pack_kmer(kmer: str) -> int:
    v = 0
    for c in kmer:
        v = (v << 2) | BASES.index(c)
    return v


def _count_batch(dmap: upcxx.DistObject, batch: dict) -> None:
    """RPC body: merge a {kmer: count} batch into the local shard."""
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_insert * len(batch))
    shard = dmap.value
    for kmer, n in batch.items():
        shard[kmer] = shard.get(kmer, 0) + n


def main():
    me = upcxx.rank_me()
    n = upcxx.rank_n()
    from repro.apps.dht.rpc_only import hash_target

    shard: dict = {}
    dmap = upcxx.DistObject(shard)
    upcxx.barrier()

    # ---- local pass: count my reads' k-mers, binned by destination ------
    rng = upcxx.runtime_here().rng.spawn("kmers")
    outgoing = [Counter() for _ in range(n)]
    total_kmers = 0
    for _ in range(READS_PER_RANK):
        read = _synthetic_read(rng, READ_LEN)
        for i in range(len(read) - K + 1):
            packed = _pack_kmer(read[i : i + K])
            outgoing[hash_target(packed, n)][packed] += 1
            total_kmers += 1

    # ---- one aggregated rpc_ff per destination (HipMer-style batching) --
    for dest, batch in enumerate(outgoing):
        if batch:
            upcxx.rpc_ff(dest, _count_batch, dmap, dict(batch))
    upcxx.barrier()  # barrier progress also drains incoming batches

    # ---- global top-3 via a reduction over per-shard top-3 --------------
    local_top = sorted(shard.items(), key=lambda kv: (-kv[1], kv[0]))[:3]

    def merge_tops(a, b):
        return sorted(a + b, key=lambda kv: (-kv[1], kv[0]))[:3]

    top = upcxx.reduce_all([(k, c) for k, c in local_top], merge_tops).wait()
    total = upcxx.reduce_all(total_kmers, "+").wait()
    stored = upcxx.reduce_all(sum(shard.values()), "+").wait()
    upcxx.barrier()

    if me == 0:
        assert total == stored, "lost k-mers!"

        def unpack(v):
            return "".join(BASES[(v >> (2 * i)) & 3] for i in reversed(range(K)))

        print(f"{n} ranks counted {total} {K}-mers ({stored} stored across shards)")
        for packed, count in top:
            print(f"  {unpack(packed)} x{count}")
        print(f"simulated time: {upcxx.sim_now() * 1e6:.1f} us")


if __name__ == "__main__":
    upcxx.run_spmd(main, ranks=8, platform="haswell")
    print("kmer_count finished.")
