#!/usr/bin/env python3
"""Extend-add demo (the paper's §IV-D motif, Figs. 5-8 in miniature).

Builds a small 3-D problem, dissects it into a frontal tree, maps teams
with proportional mapping, and runs the extend-add sweep with all three
communication strategies — UPC++ RPC (views + promise counting), MPI
Alltoallv, MPI point-to-point — printing the simulated times and the
UPC++ speedups, plus a correctness check against the dense serial
reference.

Run:  python examples/extend_add_demo.py
"""

import numpy as np

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import (
    build_eadd_plan,
    mpi_eadd_run,
    serial_eadd_reference,
    upcxx_eadd_run,
)
from repro.mpisim import run_mpi

N_PROCS = 8
GRID = (8, 8, 6)


def main():
    plan = build_eadd_plan(*GRID, n_procs=N_PROCS, leaf_size=24, block=8)
    n_fronts = len(plan.fronts)
    root_id = max(plan.fronts)
    print(f"problem: {GRID[0]}x{GRID[1]}x{GRID[2]} grid, {n_fronts} fronts, "
          f"root separator {plan.fronts[root_id].n_cols} columns, "
          f"{plan.total_entries} contribution entries")

    # ------------------------------------------------- run all 3 variants
    collected = {}
    t_upcxx = max(
        upcxx.run_spmd(lambda: upcxx_eadd_run(plan, collect=collected), N_PROCS)
    )
    t_a2a = max(run_mpi(lambda: mpi_eadd_run(plan, "alltoallv"), N_PROCS))
    t_p2p = max(run_mpi(lambda: mpi_eadd_run(plan, "p2p"), N_PROCS))

    print(f"\nextend-add sweep over the frontal tree ({N_PROCS} processes):")
    print(f"  UPC++ RPC     : {t_upcxx * 1e3:8.3f} ms")
    print(f"  MPI Alltoallv : {t_a2a * 1e3:8.3f} ms   ({t_a2a / t_upcxx:.2f}x vs UPC++)")
    print(f"  MPI P2P       : {t_p2p * 1e3:8.3f} ms   ({t_p2p / t_upcxx:.2f}x vs UPC++)")

    # -------------------------------------------------- correctness check
    ref = serial_eadd_reference(plan)
    ok = True
    for pid in plan.parents:
        n = plan.fronts[pid].front_size
        acc = np.zeros((n, n))
        for _rank, insts in collected.items():
            if pid in insts:
                acc += insts[pid].dense()
        if not np.allclose(acc, ref[pid]):
            ok = False
            print(f"  MISMATCH at front {pid}!")
    print(f"\ncorrectness vs dense serial reference: {'OK' if ok else 'FAILED'}")


if __name__ == "__main__":
    main()
    print("extend_add_demo finished.")
