"""Health-gate CLI: declarative rules over perf reports / KV runs / rollups.

``python -m repro.tools.health`` evaluates a rule set against any mix of:

- ``--bench BENCH_perf.json``  — a ``repro.bench.perf_harness`` report
  (gate entries, overhead sections, ``kv_capacity`` knee curve,
  ``span_attribution``);
- ``--kv POINT.json``          — one ``repro.bench.kv_bench``
  ``summarize_point`` dict (utilization + p50..p999 sojourn latency);
- ``--telemetry TEL.json``     — a ``repro.util.Telemetry.as_dict`` dump
  (windowed rollups: attentiveness gap, retransmits, credit stalls);
- ``--rules RULES.json``       — extra declarative rules (see below).

Every rule prints one verdict line and the process exits non-zero when
any FAIL-severity rule is violated (with ``--strict``, WARN-severity
violations fail too) — which is how CI turns a green-looking perf run
into a hard gate.

Declarative rule format (``--rules``)::

    [{"name": "kv-p99", "doc": "kv", "path": "p99_s",
      "op": "<=", "value": 200e-6, "severity": "fail"}]

``doc`` names the input the rule applies to (``bench`` / ``kv`` /
``telemetry``); ``path`` is a dotted lookup into that JSON document; a
missing document or path yields SKIP, never a crash — health checks must
degrade gracefully when a report section was not recorded.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

#: default ceilings for the built-in computed rules
DEFAULT_MIN_UTILIZATION = 0.9        # the kv knee efficiency
DEFAULT_MIN_AVAILABILITY = 0.99      # requests served under a crash plan
DEFAULT_MAX_OVERHEAD_RATIO = 1.02    # telemetry/reliability wall-clock adds
DEFAULT_MAX_GAP_S = 1e-3             # attentiveness ceiling (simulated)
DEFAULT_MAX_RETX_RATE = 0.05         # retransmits per NIC op
DEFAULT_MAX_STALL_FRAC = 0.5         # agg credit stall share of served time
DEFAULT_MAX_BACKPRESSURE_SHARE = 0.6 # of the span attribution total

_OPS = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Verdict:
    """One evaluated rule plus a detail line.

    Statuses: PASS, FAIL (always fails the run), WARN (fails only under
    ``--strict``), INFO (never fails — honest numbers that reflect the
    host rather than the code, e.g. advisory perf gates), SKIP (input or
    report section absent).
    """

    def __init__(self, name: str, status: str, detail: str, severity: str = "fail"):
        self.name = name
        self.status = status
        self.detail = detail
        self.severity = severity

    def line(self) -> str:
        return f"[{self.status:4s}] {self.name}: {self.detail}"

    def as_dict(self) -> dict:
        return {"name": self.name, "status": self.status,
                "detail": self.detail, "severity": self.severity}


def _lookup(doc: Any, path: str) -> Any:
    """Dotted-path lookup (`a.b.0.c`); returns None when absent."""
    cur = doc
    for part in path.split("."):
        if isinstance(cur, dict):
            if part not in cur:
                return None
            cur = cur[part]
        elif isinstance(cur, list):
            try:
                cur = cur[int(part)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return cur


def eval_rule(rule: dict, docs: Dict[str, Optional[dict]]) -> Verdict:
    """Evaluate one declarative rule against the loaded documents."""
    name = rule.get("name", rule.get("path", "rule"))
    severity = rule.get("severity", "fail")
    doc = docs.get(rule.get("doc", "bench"))
    if doc is None:
        return Verdict(name, "SKIP", f"no {rule.get('doc', 'bench')} document loaded", severity)
    value = _lookup(doc, rule["path"])
    if value is None:
        return Verdict(name, "SKIP", f"path {rule['path']!r} not present", severity)
    op = rule.get("op", "<=")
    fn = _OPS.get(op)
    if fn is None:
        return Verdict(name, "FAIL", f"unknown op {op!r}", severity)
    target = rule["value"]
    ok = bool(fn(value, target))
    status = "PASS" if ok else ("WARN" if severity == "warn" else "FAIL")
    return Verdict(name, status, f"{rule['path']} = {value!r} {op} {target!r}", severity)


# -------------------------------------------------------- built-in checks
def _check_bench_gates(bench: dict) -> List[Verdict]:
    """Every non-advisory, non-skipped harness gate must have passed."""
    out: List[Verdict] = []
    for g in bench.get("gates", []):
        name = f"gate:{g.get('name', '?')}"
        if g.get("skipped"):
            out.append(Verdict(name, "SKIP", "gate skipped (workload not run)"))
            continue
        if "target_speedup" in g:
            detail = (f"measured {g.get('measured_speedup')}x vs target "
                      f"{g.get('target_speedup')}x")
        else:
            # availability-shaped gate (kv_crash_availability)
            detail = (f"availability {g.get('measured_availability')} >= "
                      f"{g.get('min_availability')}, writes lost "
                      f"{g.get('writes_lost')}, factor restored "
                      f"{g.get('factor_restored')}")
        if g.get("advisory"):
            # advisory = the runner can't meet the gate's documented
            # cpu/shard requirements; the number is honest but reflects
            # the host, not the code — informational even under --strict
            status = "PASS" if g.get("passed") else "INFO"
            out.append(Verdict(name, status, detail + " (advisory: runner below "
                               "gate requirements)", "info"))
        else:
            out.append(Verdict(name, "PASS" if g.get("passed") else "FAIL", detail))
    return out


def _check_bench_overheads(bench: dict, max_ratio: float) -> List[Verdict]:
    """Re-evaluate the recorded overhead gates with the bench's own
    semantics: ratio ceiling plus the 50ms absolute cushion that keeps
    sub-second smoke runs from flaking on scheduler jitter."""
    out: List[Verdict] = []
    for key in ("telemetry_overhead", "reliability_bookkeeping"):
        sec = bench.get(key)
        if not isinstance(sec, dict) or "ratio" not in sec:
            out.append(Verdict(f"overhead:{key}", "SKIP", "section not recorded"))
            continue
        base_s = sec.get("base_s")
        with_s = sec.get("with_s")
        if base_s is not None and with_s is not None:
            ceiling = max(base_s * max_ratio, base_s + 0.05)
            ok = with_s <= ceiling
            detail = (f"{base_s:.3f}s -> {with_s:.3f}s "
                      f"(ratio {sec['ratio']:.4f}, ceiling {ceiling:.3f}s)")
        else:
            ok = sec["ratio"] <= max_ratio
            detail = f"wall ratio {sec['ratio']:.4f} <= {max_ratio}"
        out.append(Verdict(f"overhead:{key}", "PASS" if ok else "FAIL", detail))
    return out


def _check_bench_kv_capacity(bench: dict, min_util: float) -> List[Verdict]:
    """Below-knee sweep points must hold the knee efficiency."""
    cap = bench.get("kv_capacity")
    if not isinstance(cap, dict):
        return [Verdict("kv-capacity", "SKIP", "no kv_capacity sweep recorded")]
    out: List[Verdict] = []
    knee = cap.get("knee")
    knee_mult = knee["multiplier"] if knee else None
    bad = []
    for p in cap.get("curve", []):
        if knee_mult is not None and p["multiplier"] >= knee_mult:
            continue  # at/above the knee saturation is expected
        if p["utilization"] < min_util:
            bad.append(p["multiplier"])
    if bad:
        out.append(Verdict(
            "kv-capacity", "FAIL",
            f"below-knee points x{bad} under utilization floor {min_util}",
        ))
    else:
        desc = (f"knee at x{knee_mult}" if knee_mult is not None
                else "no knee found in sweep")
        out.append(Verdict(
            "kv-capacity", "PASS",
            f"below-knee utilization >= {min_util} ({desc}, capacity "
            f"{cap.get('capacity_per_rank_rps')} req/s/rank)",
        ))
    return out


def _check_bench_backpressure(bench: dict, max_share: float) -> List[Verdict]:
    attr = bench.get("span_attribution")
    if not isinstance(attr, dict) or not attr:
        return [Verdict("backpressure-share", "SKIP", "no span_attribution section")]
    out: List[Verdict] = []
    for backend, sec in sorted(attr.items()):
        parts = sec.get("attribution_s")
        if not isinstance(parts, dict):
            continue
        total = sum(v for v in parts.values() if isinstance(v, (int, float)))
        share = (parts.get("backpressure", 0.0) / total) if total > 0 else 0.0
        ok = share <= max_share
        out.append(Verdict(
            f"backpressure-share:{backend}",
            "PASS" if ok else "WARN",
            f"backpressure {share:.3f} of attributed time <= {max_share}",
            "warn",
        ))
    return out


def _check_kv_point(kv: dict, min_util: float, p99_slo: Optional[float],
                    p999_slo: Optional[float]) -> List[Verdict]:
    out: List[Verdict] = []
    util = kv.get("utilization")
    is_crash = kv.get("crash_rank") is not None
    if util is not None:
        if is_crash:
            # a crash point's serving time includes failure detection,
            # recovery shipping, and the extended drain — utilization is
            # honest but not a capacity statement, so never gate on it
            out.append(Verdict(
                "kv-utilization", "INFO",
                f"crash point: utilization {util} is informational "
                "(serving time includes detection + recovery + drain)",
                "info",
            ))
        else:
            ok = util >= min_util
            detail = (f"achieved {kv.get('achieved_rps')}/{kv.get('offered_rps')} req/s, "
                      f"utilization {util} >= {min_util}")
            if not ok:
                detail += " — service is saturated (offered load above the knee)"
            out.append(Verdict("kv-utilization", "PASS" if ok else "FAIL", detail))
    for pct, slo in (("p99_s", p99_slo), ("p999_s", p999_slo)):
        if slo is None:
            continue
        v = kv.get(pct)
        if v is None:
            out.append(Verdict(f"kv-{pct[:-2]}", "SKIP", f"{pct} not present"))
            continue
        ok = v <= slo
        out.append(Verdict(
            f"kv-{pct[:-2]}", "PASS" if ok else "FAIL",
            f"{pct} = {v * 1e6:.1f}us <= SLO {slo * 1e6:.1f}us",
        ))
    return out


def _check_kv_availability(kv: dict, min_avail: float,
                           max_recovery_s: Optional[float]) -> List[Verdict]:
    """Availability / recovery rules over a kv point's robustness fields."""
    avail = kv.get("availability")
    if avail is None:
        return [Verdict("kv-availability", "SKIP",
                        "no availability fields recorded (pre-replication point)")]
    out: List[Verdict] = []
    served = kv.get("requests_served")
    issued = kv.get("requests_issued")
    ok = avail >= min_avail
    out.append(Verdict(
        "kv-availability", "PASS" if ok else "FAIL",
        f"{served}/{issued} accepted requests served = {avail:.4f} >= {min_avail}",
    ))
    shed = kv.get("shed_fraction")
    if shed:
        out.append(Verdict(
            "kv-shed", "INFO",
            f"admission control shed {kv.get('requests_shed')} requests "
            f"(fraction {shed:.4f})", "info",
        ))
    if kv.get("crash_rank") is None:
        return out
    lost = kv.get("writes_lost", 0)
    out.append(Verdict(
        "kv-writes-lost", "PASS" if lost == 0 else "FAIL",
        f"{lost} writes lost their every owner before an ack",
    ))
    restored = kv.get("factor_restored")
    out.append(Verdict(
        "kv-factor-restored", "PASS" if restored else "FAIL",
        f"replication factor {kv.get('replication')} "
        f"{'restored online' if restored else 'NOT restored'} "
        f"({kv.get('rereplicated_keys')} keys re-shipped)",
    ))
    rec = kv.get("recovery_s", 0.0)
    if max_recovery_s is None:
        out.append(Verdict(
            "kv-recovery", "INFO",
            f"detection-to-restored recovery {rec * 1e6:.0f}us "
            f"({kv.get('failover_reads')} failover reads)", "info",
        ))
    else:
        out.append(Verdict(
            "kv-recovery", "PASS" if rec <= max_recovery_s else "FAIL",
            f"recovery {rec * 1e6:.0f}us <= {max_recovery_s * 1e6:.0f}us",
        ))
    return out


def _check_telemetry(tel: dict, max_gap: float, max_retx_rate: float,
                     max_stall_frac: float) -> List[Verdict]:
    ranks = tel.get("ranks", {})
    if not ranks:
        return [Verdict("telemetry", "SKIP", "no per-rank telemetry present")]
    worst_gap = 0.0
    retx = nic_ops = 0
    stall = 0.0
    t_end = 0.0
    for rt in ranks.values():
        wins = rt.get("windows", [])
        for w in wins:
            if w.get("max_gap_s", 0.0) > worst_gap:
                worst_gap = w["max_gap_s"]
        if wins:
            last = wins[-1]
            retx += last["rel"]["retx"]
            nic = last["nic"]
            nic_ops += nic["puts"] + nic["gets"] + nic["ams"] + nic["amos"]
            stall += last["agg"]["credit_stall_s"]
            if last["t"] > t_end:
                t_end = last["t"]
    out = [Verdict(
        "attentiveness-gap",
        "PASS" if worst_gap <= max_gap else "WARN",
        f"max progress gap {worst_gap * 1e6:.1f}us <= {max_gap * 1e6:.1f}us",
        "warn",
    )]
    rate = (retx / nic_ops) if nic_ops else 0.0
    out.append(Verdict(
        "retransmit-rate",
        "PASS" if rate <= max_retx_rate else "WARN",
        f"{retx} retransmits / {nic_ops} NIC ops = {rate:.4f} <= {max_retx_rate}",
        "warn",
    ))
    n = len(ranks)
    frac = (stall / (n * t_end)) if t_end > 0 else 0.0
    out.append(Verdict(
        "credit-stall-fraction",
        "PASS" if frac <= max_stall_frac else "WARN",
        f"agg credit stall {frac:.3f} of rank-time <= {max_stall_frac}",
        "warn",
    ))
    return out


# ---------------------------------------------------------------- evaluate
def evaluate(docs: Dict[str, Optional[dict]], rules: Sequence[dict] = (),
             min_utilization: float = DEFAULT_MIN_UTILIZATION,
             max_overhead_ratio: float = DEFAULT_MAX_OVERHEAD_RATIO,
             p99_slo: Optional[float] = None,
             p999_slo: Optional[float] = None,
             min_availability: float = DEFAULT_MIN_AVAILABILITY,
             max_recovery_s: Optional[float] = None,
             max_gap_s: float = DEFAULT_MAX_GAP_S,
             max_retx_rate: float = DEFAULT_MAX_RETX_RATE,
             max_stall_frac: float = DEFAULT_MAX_STALL_FRAC,
             max_backpressure_share: float = DEFAULT_MAX_BACKPRESSURE_SHARE,
             ) -> List[Verdict]:
    """Run the built-in checks plus any declarative rules."""
    verdicts: List[Verdict] = []
    bench = docs.get("bench")
    if bench is not None:
        verdicts.extend(_check_bench_gates(bench))
        verdicts.extend(_check_bench_overheads(bench, max_overhead_ratio))
        verdicts.extend(_check_bench_kv_capacity(bench, min_utilization))
        verdicts.extend(_check_bench_backpressure(bench, max_backpressure_share))
    kv = docs.get("kv")
    if kv is not None:
        verdicts.extend(_check_kv_point(kv, min_utilization, p99_slo, p999_slo))
        verdicts.extend(_check_kv_availability(kv, min_availability, max_recovery_s))
    tel = docs.get("telemetry")
    if tel is not None:
        verdicts.extend(_check_telemetry(tel, max_gap_s, max_retx_rate, max_stall_frac))
    for rule in rules:
        verdicts.append(eval_rule(rule, docs))
    return verdicts


def _load(path: Optional[str]) -> Optional[dict]:
    if not path:
        return None
    with open(path) as fh:
        return json.load(fh)


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default=None, help="BENCH_perf.json report")
    ap.add_argument("--kv", default=None, help="one kv_bench summarize_point JSON")
    ap.add_argument("--telemetry", default=None, help="Telemetry.as_dict JSON dump")
    ap.add_argument("--rules", default=None, help="extra declarative rules (JSON list)")
    ap.add_argument("--min-utilization", type=float, default=DEFAULT_MIN_UTILIZATION)
    ap.add_argument("--max-overhead-ratio", type=float, default=DEFAULT_MAX_OVERHEAD_RATIO)
    ap.add_argument("--p99-slo", type=float, default=None,
                    help="p99 sojourn SLO in seconds (kv doc)")
    ap.add_argument("--p999-slo", type=float, default=None,
                    help="p999 sojourn SLO in seconds (kv doc)")
    ap.add_argument("--min-availability", type=float,
                    default=DEFAULT_MIN_AVAILABILITY,
                    help="floor on the fraction of accepted requests served "
                    "(kv doc with availability fields)")
    ap.add_argument("--max-recovery", type=float, default=None,
                    help="ceiling on detection-to-factor-restored recovery "
                    "time in simulated seconds (kv crash doc); reported as "
                    "INFO when unset")
    ap.add_argument("--max-gap", type=float, default=DEFAULT_MAX_GAP_S,
                    help="attentiveness ceiling in simulated seconds")
    ap.add_argument("--max-retx-rate", type=float, default=DEFAULT_MAX_RETX_RATE)
    ap.add_argument("--max-stall-frac", type=float, default=DEFAULT_MAX_STALL_FRAC)
    ap.add_argument("--max-backpressure-share", type=float,
                    default=DEFAULT_MAX_BACKPRESSURE_SHARE)
    ap.add_argument("--strict", action="store_true",
                    help="WARN-severity violations also fail the run")
    ap.add_argument("--out", default=None, help="write the verdict list as JSON here")
    args = ap.parse_args(argv)

    docs = {
        "bench": _load(args.bench),
        "kv": _load(args.kv),
        "telemetry": _load(args.telemetry),
    }
    if all(d is None for d in docs.values()):
        ap.error("nothing to check: pass at least one of --bench/--kv/--telemetry")
    rules = _load(args.rules) or []

    verdicts = evaluate(
        docs, rules,
        min_utilization=args.min_utilization,
        max_overhead_ratio=args.max_overhead_ratio,
        p99_slo=args.p99_slo,
        p999_slo=args.p999_slo,
        min_availability=args.min_availability,
        max_recovery_s=args.max_recovery,
        max_gap_s=args.max_gap,
        max_retx_rate=args.max_retx_rate,
        max_stall_frac=args.max_stall_frac,
        max_backpressure_share=args.max_backpressure_share,
    )
    for v in verdicts:
        print(v.line())
    n_fail = sum(1 for v in verdicts if v.status == "FAIL")
    n_warn = sum(1 for v in verdicts if v.status == "WARN")
    n_pass = sum(1 for v in verdicts if v.status == "PASS")
    n_info = sum(1 for v in verdicts if v.status == "INFO")
    bad = n_fail + (n_warn if args.strict else 0)
    print(f"[health] {n_pass} pass, {n_warn} warn, {n_info} info, {n_fail} fail"
          + (" (strict: warnings fail)" if args.strict else ""))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"verdicts": [v.as_dict() for v in verdicts],
                       "healthy": bad == 0}, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
