"""Command-line diagnostics tools (``python -m repro.tools.<name>``)."""
