"""Causal span report: critical path + time attribution per backend.

``python -m repro.tools.report`` runs a small instrumented workload with
span tracing on, reconstructs the simulated-time **critical path** from
the causal span DAG (see :mod:`repro.util.spans`), and reports where the
round-trip time goes:

========  ==========================================================
category  meaning
========  ==========================================================
software  injection-side API/defQ overhead + completion execution
backpressure  NIC queueing + aggregator credit-window stalls
occupancy NIC injection occupancy (bytes streaming onto the wire)
wire      propagation latency legs (request, reply, acks)
attentiveness  waiting on a progress engine (inbox + compQ dwell)
retry     reliability-layer retransmissions (fault injection)
cache     hot-key reads served from the aggregation layer's cache
app       application time between operations (gaps on the path)
========  ==========================================================

The walk is exact: spans of one operation tile the simulated timeline at
shared junction values, so the attributed components sum to the analysis
window *by construction* (the ISSUE's 1% acceptance bound holds with
equality).  Because span records are bit-identical across the coroutine,
thread, and sharded backends, the CLI doubles as a cross-backend
regression check: it exits non-zero when fingerprints diverge.

Formats: ``text`` (human table), ``json`` (CI artifact), ``perfetto``
(Chrome Trace Event JSON via :func:`repro.util.trace_export
.chrome_trace_span_events`, one process per shard).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.spans import PHASES, SpanBuffer, _canon_key

#: display order of attribution categories
CATEGORIES = [
    "software", "backpressure", "occupancy", "wire", "attentiveness", "retry",
    "cache", "recovery", "app",
]

#: a critical-path segment: (t0, t1, category, phase, kind, sid-or-None)
Segment = Tuple[float, float, str, str, str, Optional[tuple]]


# ======================================================================
# Critical-path analysis
# ======================================================================
def critical_path(
    records: Sequence[tuple],
    t_start: float,
    t_end: float,
) -> List[Segment]:
    """Greedy backward walk over the span set: the simulated critical path.

    Starting at ``t_end``, repeatedly charge the segment ``[x, cur]`` to
    the span with the latest end time ``x <= cur`` (and ``t0 < cur``, so
    zero-length spans cannot stall the walk), inserting explicit ``app``
    gap segments where no span ends.  Junction times are *shared float
    values* between adjacent lifecycle phases (the instrumentation reuses
    the exact same floats), so segments tile ``[t_start, t_end]`` exactly
    and the per-category attribution sums to the window with equality.
    """
    if t_end < t_start:
        raise ValueError(f"empty analysis window: [{t_start}, {t_end}]")
    spans = sorted(
        (r for r in records if t_start < r[1] <= t_end),
        key=lambda r: (r[1], r[0], r[2], r[3], r[4]),
    )
    ends = [r[1] for r in spans]
    segments: List[Segment] = []
    cur = t_end
    while cur > t_start:
        i = bisect_right(ends, cur)
        chosen = None
        j = i - 1
        while j >= 0 and chosen is None:
            end_here = spans[j][1]
            k = j
            while k >= 0 and spans[k][1] == end_here:
                r = spans[k]
                if r[0] < cur and (chosen is None or _canon_key(r) > _canon_key(chosen)):
                    chosen = r
                k -= 1
            j = k
        if chosen is None:
            segments.append((t_start, cur, "app", "gap", "", None))
            break
        if chosen[1] < cur:
            segments.append((chosen[1], cur, "app", "gap", "", None))
        seg_start = chosen[0] if chosen[0] > t_start else t_start
        segments.append(
            (seg_start, chosen[1], PHASES.get(chosen[4], "app"), chosen[4], chosen[5], chosen[3])
        )
        cur = seg_start
    segments.reverse()
    return segments


def attribution(segments: Sequence[Segment]) -> Dict[str, float]:
    """Per-category time totals over a segment list (plus ``total``)."""
    out = {c: 0.0 for c in CATEGORIES}
    for t0, t1, cat, _phase, _kind, _sid in segments:
        out[cat] = out.get(cat, 0.0) + (t1 - t0)
    out["total"] = segments[-1][1] - segments[0][0] if segments else 0.0
    return out


# ======================================================================
# Instrumented workloads
# ======================================================================
def _run(body, ranks: int, ppn: int, backend: str, shards: Optional[int], faults=None):
    """run_spmd with span tracing on; returns (results, spans, sched_stats)."""
    import repro.upcxx as upcxx

    spans = SpanBuffer()
    sched_stats: dict = {}
    saved = os.environ.get("REPRO_SIM_SHARDS")
    try:
        if shards is not None:
            os.environ["REPRO_SIM_SHARDS"] = str(shards)
        results = upcxx.run_spmd(
            body, ranks, ppn=ppn, spans=spans, backend=backend,
            sched_stats=sched_stats, faults=faults,
        )
    finally:
        if shards is not None:
            if saved is None:
                os.environ.pop("REPRO_SIM_SHARDS", None)
            else:
                os.environ["REPRO_SIM_SHARDS"] = saved
    return results, spans, sched_stats


def _fig3a_body():
    """Fig. 3a inner loop: blocking rputs, rank 0 -> rank 1 (2 nodes).

    Returns rank 0's measurement window ``(t0, t1, iters)``.
    """
    import numpy as np

    import repro.upcxx as upcxx

    size, iters = 512, 10
    me = upcxx.rank_me()
    landing = upcxx.new_array(np.uint8, size)
    dest = upcxx.broadcast(landing, root=1).wait()
    upcxx.barrier()
    window = None
    if me == 0:
        payload = bytes(size)
        upcxx.rput(payload, dest).wait()  # warm-up
        t0 = upcxx.sim_now()
        for _ in range(iters):
            upcxx.rput(payload, dest).wait()
        window = (t0, upcxx.sim_now(), iters)
    upcxx.barrier()
    return window


def _dht_body():
    """DHT-flavored mix: RPC inserts + rget lookups across 8 ranks."""
    import repro.upcxx as upcxx

    me = upcxx.rank_me()
    n = upcxx.rank_n()
    store: dict = {}

    def insert(k, v):
        store[k] = v
        return k

    t0 = upcxx.sim_now()
    futs = [upcxx.rpc((me + i + 1) % n, insert, (me, i), i) for i in range(4)]
    for f in futs:
        f.wait()
    upcxx.barrier()
    return (t0, upcxx.sim_now())


def _kv_body():
    """KV-service mix: aggregated writes + cached reads across 4 ranks.

    Small credit window + hot-key cache so the walk can surface the new
    ``backpressure`` (credit_wait) and ``cache`` (cache_hit) buckets.
    Returns ``(t0, t1, svc.result())`` — the third element carries the
    per-rank latency histograms the report folds into request-level
    p50/p95/p99/p999.
    """
    import repro.upcxx as upcxx
    from repro.apps.kvservice import KvService, TrafficModel

    rt = upcxx.runtime_here()
    svc = KvService(batch_size=8, credits=2, max_dwell=20e-6, cache_capacity=16)
    tm = TrafficModel(
        rt.rng.spawn("kv-report").py,
        rate=500_000.0,
        n_requests=24,
        read_fraction=0.7,
        zipf_s=1.2,
        n_keys=64,
    )
    upcxx.barrier()
    t0 = upcxx.sim_now()
    for dt, op, key, val in tm.requests():
        if op == "get":
            svc.get(key, t0 + dt)
        else:
            svc.put(key, val, t0 + dt)
        svc.poll()
    svc.drain()
    return (t0, upcxx.sim_now(), svc.result())


#: workload name -> (body, ranks, ppn)
WORKLOADS = {
    "fig3a": (_fig3a_body, 2, 1),
    "dht": (_dht_body, 8, 4),
    "kv": (_kv_body, 4, 2),
}


def analyze_workload(
    name: str, backend: str, shards: Optional[int] = None, faults=None
) -> dict:
    """Run one workload on one backend and build its span diagnostics.

    Returns a JSON-ready dict: span fingerprint, critical-path segments
    over the workload's measurement window, per-category attribution, and
    backend diagnostics (CMB window/stall counters for sharded runs,
    reliability frame counters when fault injection is on).
    """
    body, ranks, ppn = WORKLOADS[name]
    results, spans, sched_stats = _run(body, ranks, ppn, backend, shards, faults)
    window = next((r for r in results if r is not None), None)
    if window is None:
        raise RuntimeError(f"workload {name!r} returned no measurement window")
    t0, t1 = window[0], window[1]
    records = spans.canonical_records()
    segments = critical_path(records, t0, t1)
    attr = attribution(segments)
    diag = {
        "backend": sched_stats.get("backend", backend),
        "switches": sched_stats.get("switches"),
        "events_fired": sched_stats.get("events_fired"),
    }
    for key in ("n_shards", "windows", "quiet_windows", "window_stall_s",
                "horizon_wait_s", "envelopes_exchanged", "pipe_bytes",
                "env_frames", "sentinel_frames",
                "frames_dropped", "frames_duplicated", "frames_retransmitted",
                "acks"):
        if key in sched_stats:
            diag[key] = sched_stats[key]
    shard_of = None
    if sched_stats.get("per_shard"):
        shard_of = [0] * ranks
        for st in sched_stats["per_shard"]:
            lo, hi = st["ranks"]
            for r in range(lo, hi):
                shard_of[r] = st["shard"]
    kv_latency = None
    if all(r is not None and len(r) > 2 for r in results):
        kv_latency = _kv_latency_summary([r[2] for r in results])
    return {
        "workload": name,
        "backend": backend,
        "n_ranks": ranks,
        "fingerprint": spans.fingerprint(),
        "n_spans": len(records),
        "window_s": [t0, t1],
        "attribution_s": attr,
        "critical_path": [
            {"t0": s[0], "t1": s[1], "category": s[2], "phase": s[3], "kind": s[4],
             "sid": None if s[5] is None else list(s[5])}
            for s in segments
        ],
        "diagnostics": diag,
        "kv_latency": kv_latency,
        "_spans": spans,      # stripped before JSON output
        "_shard_of": shard_of,
    }


def _kv_latency_summary(records: Sequence[dict]) -> dict:
    """Cross-rank request-latency percentiles from per-rank kv records.

    Merges every rank's read/write :class:`DwellHistogram` (exact merge —
    the histograms are log-bucketed counters, so cross-rank aggregation
    is deterministic and order-free) and reports p50/p95/p99/p999 per
    class and combined.
    """
    from repro.util.metrics import DwellHistogram

    read, write = DwellHistogram(), DwellHistogram()
    for rec in records:
        read.merge(DwellHistogram.from_dict(rec["read_lat"]))
        write.merge(DwellHistogram.from_dict(rec["write_lat"]))
    combined = DwellHistogram()
    combined.merge(read)
    combined.merge(write)

    def pcts(h: DwellHistogram) -> dict:
        return {
            "p50_s": h.percentile(50),
            "p95_s": h.percentile(95),
            "p99_s": h.percentile(99),
            "p999_s": h.percentile(99.9),
        }

    return {
        "reads": sum(rec["reads"] for rec in records),
        "writes": sum(rec["writes"] for rec in records),
        "read": pcts(read),
        "write": pcts(write),
        "all": pcts(combined),
    }


# ======================================================================
# Rendering
# ======================================================================
def _render_text(reports: List[dict], identical: bool) -> str:
    lines: List[str] = []
    for rep in reports:
        attr = rep["attribution_s"]
        total = attr["total"]
        lines.append(
            f"== {rep['workload']} on {rep['backend']} "
            f"({rep['n_spans']} spans, fingerprint {rep['fingerprint'][:16]}…) =="
        )
        w0, w1 = rep["window_s"]
        lines.append(f"analysis window: {(w1 - w0) * 1e6:.3f} us of simulated time")
        lines.append("time attribution (simulated critical path):")
        for cat in CATEGORIES:
            sec = attr.get(cat, 0.0)
            pct = 100.0 * sec / total if total else 0.0
            lines.append(f"  {cat:>13}  {sec * 1e6:10.3f} us  {pct:5.1f}%")
        covered = sum(attr.get(c, 0.0) for c in CATEGORIES)
        lines.append(
            f"  {'sum':>13}  {covered * 1e6:10.3f} us  "
            f"({100.0 * covered / total if total else 0.0:.2f}% of window)"
        )
        diag = rep["diagnostics"]
        rel = (
            f"{diag.get('frames_dropped', 0)} dropped / "
            f"{diag.get('frames_duplicated', 0)} duplicated / "
            f"{diag.get('frames_retransmitted', 0)} retransmitted frames"
        )
        if diag.get("n_shards"):
            # batching efficiency (protocol v2): envelopes per non-sentinel
            # frame, and the fraction of frame slots idle pairs collapsed
            # to one-byte sentinels — a coalescing regression shows up here
            n_frames = diag.get("env_frames", 0) or 0
            n_sent = diag.get("sentinel_frames", 0) or 0
            n_env = diag.get("envelopes_exchanged", 0) or 0
            env_per_frame = n_env / n_frames if n_frames else 0.0
            sent_frac = n_sent / (n_frames + n_sent) if (n_frames + n_sent) else 0.0
            lines.append(
                f"CMB: {diag.get('n_shards')} shards, {diag.get('windows')} windows, "
                f"env-exchange stall {diag.get('window_stall_s', 0.0) * 1e3:.2f} ms, "
                f"horizon wait {diag.get('horizon_wait_s', 0.0) * 1e3:.2f} ms, "
                f"{n_env} envelopes / "
                f"{diag.get('pipe_bytes', 0)} pipe bytes, "
                f"{env_per_frame:.2f} envelopes/frame, "
                f"{sent_frac:.1%} sentinel frames, "
                + rel
            )
        elif any(diag.get(k) for k in
                 ("frames_dropped", "frames_duplicated", "frames_retransmitted")):
            lines.append("reliability: " + rel)
        kv = rep.get("kv_latency")
        if kv:
            lines.append(
                f"kv request latency ({kv['reads']} reads / {kv['writes']} writes, "
                "cross-rank merged):"
            )
            for cls in ("read", "write", "all"):
                p = kv[cls]
                lines.append(
                    f"  {cls:>13}  p50 {p['p50_s'] * 1e6:8.2f} us  "
                    f"p95 {p['p95_s'] * 1e6:8.2f} us  "
                    f"p99 {p['p99_s'] * 1e6:8.2f} us  "
                    f"p999 {p['p999_s'] * 1e6:8.2f} us"
                )
        segs = rep["critical_path"]
        lines.append(f"critical path: {len(segs)} segments; longest:")
        longest = sorted(segs, key=lambda s: s["t1"] - s["t0"], reverse=True)[:8]
        for s in longest:
            sid = "-" if s["sid"] is None else f"r{s['sid'][0]}#{s['sid'][1]}"
            lines.append(
                f"  {(s['t1'] - s['t0']) * 1e6:9.3f} us  {s['category']:>13}  "
                f"{s['kind'] or 'app'}:{s['phase']}  [{sid}]"
            )
        lines.append("")
    if len(reports) > 1:
        lines.append(
            "span fingerprints: "
            + ("IDENTICAL across backends" if identical else "DIVERGED across backends!")
        )
    return "\n".join(lines)


def build_report(
    workload: str, backends: Sequence[str], shards: Optional[int], faults=None
) -> Tuple[dict, bool, List[dict]]:
    """Run ``workload`` on every backend; returns (doc, identical, reports)."""
    reports = [
        analyze_workload(workload, b, shards if b == "sharded" else None, faults)
        for b in backends
    ]
    fps = {rep["backend"]: rep["fingerprint"] for rep in reports}
    identical = len(set(fps.values())) <= 1
    doc = {
        "schema": "repro-span-report/1",
        "workload": workload,
        "backends": list(backends),
        "faults": faults,
        "fingerprints": fps,
        "fingerprints_identical": identical,
        "reports": [
            {k: v for k, v in rep.items() if not k.startswith("_")} for rep in reports
        ],
    }
    return doc, identical, reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tools.report",
        description="causal span report: critical path + time attribution",
    )
    ap.add_argument("--workload", choices=sorted(WORKLOADS), default="fig3a")
    ap.add_argument(
        "--backends",
        nargs="+",
        default=["coroutines"],
        choices=["coroutines", "threads", "sharded"],
        help="backends to run and cross-check (default: coroutines)",
    )
    ap.add_argument("--shards", type=int, default=None,
                    help="worker count for the sharded backend")
    ap.add_argument("--faults", default=None,
                    help='fault-plan spec, e.g. "seed=1,drop=0.1,jitter=1e-6" '
                         "(see repro.sim.faults.FaultPlan.parse)")
    ap.add_argument("--format", choices=["text", "json", "perfetto"], default="text")
    ap.add_argument("--out", default=None, help="write output here instead of stdout")
    args = ap.parse_args(argv)

    doc, identical, reports = build_report(
        args.workload, args.backends, args.shards, args.faults
    )

    if args.format == "json":
        text = json.dumps(doc, sort_keys=True, indent=2)
    elif args.format == "perfetto":
        from repro.util.trace_export import chrome_trace_span_events

        rep = reports[0]
        events = chrome_trace_span_events(rep["_spans"], rep["_shard_of"])
        text = json.dumps(
            {"displayTimeUnit": "ms", "traceEvents": events},
            sort_keys=True, separators=(",", ":"),
        )
    else:
        text = _render_text(doc["reports"], identical)

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(text)
    if not identical:
        print(
            f"ERROR: span fingerprints diverged across backends: {doc['fingerprints']}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
