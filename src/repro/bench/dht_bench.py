"""Fig. 4: weak scaling of distributed hash table insertion.

Methodology mirrors §IV-C: every process inserts a distinct set of random
8-byte keys with values of a given size, **blocking after each insertion**
(the benchmark is latency-limited).  The same total volume is inserted per
process regardless of element size (smaller elements → more iterations).
The 1-process point is the serial std-map baseline that "omits all calls
to UPC++".  The y axis is aggregate insert throughput.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import repro.upcxx as upcxx
from repro.apps.dht import AggregatingCounter, DhtRmaLz, SerialMap
from repro.bench.harness import Observation
from repro.bench.platforms import PLATFORMS
from repro.util.records import BenchTable
from repro.util.units import KiB, MiB

#: paper-like default element sizes (bytes)
FIG4_VALUE_SIZES = [512, 2 * KiB, 8 * KiB]

#: default process counts (paper: up to 16384/34816; scaled down,
#: §DESIGN.md).  REPRO_MAX_PROCS extends the sweep.
FIG4_PROCS = [1, 2, 4, 8, 16, 32, 64, 128]
_cap = int(os.environ.get("REPRO_MAX_PROCS", "0"))
while _cap and FIG4_PROCS[-1] * 2 <= _cap:
    FIG4_PROCS.append(FIG4_PROCS[-1] * 2)
#: volume inserted per process per configuration
FIG4_VOLUME_PER_RANK = 64 * KiB


def dht_insert_rate(
    n_procs: int,
    value_size: int,
    volume_per_rank: int = FIG4_VOLUME_PER_RANK,
    platform: str = "haswell",
    seed: int = 0,
    metrics=None,
    trace=None,
) -> float:
    """Aggregate insert throughput (bytes/second) for one configuration.

    ``metrics``/``trace`` (see :func:`repro.upcxx.run_spmd`) observe the
    run's progress engine; both default to off.
    """
    n_inserts = max(1, volume_per_rank // value_size)
    ppn = PLATFORMS[platform].ppn_dht

    if n_procs == 1:
        # serial baseline: local map only, no UPC++ calls
        def serial_body():
            m = SerialMap()
            rng = upcxx.runtime_here().rng
            payload = bytes(value_size)
            t0 = upcxx.sim_now()
            for _ in range(n_inserts):
                m.insert(rng.key64(), payload)
            return upcxx.sim_now() - t0

        elapsed = upcxx.run_spmd(
            serial_body, 1, platform=platform, ppn=ppn, seed=seed, metrics=metrics, trace=trace
        )[0]
        return n_inserts * value_size / elapsed

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(value_size)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(n_inserts):
            dht.insert(rng.key64(), payload).wait()  # blocking, per the paper
        upcxx.barrier()
        return upcxx.sim_now() - t0

    elapsed = max(
        upcxx.run_spmd(
            body,
            n_procs,
            platform=platform,
            ppn=ppn,
            seed=seed,
            segment_size=max(4 * MiB, 4 * n_inserts * value_size),
            metrics=metrics,
            trace=trace,
        )
    )
    return n_procs * n_inserts * value_size / elapsed


def dht_aggregating_rate(
    n_procs: int = 8,
    updates_per_rank: int = 256,
    batch_size: int = 16,
    key_space: int = 1 << 12,
    platform: str = "haswell",
    seed: int = 0,
    metrics=None,
    trace=None,
) -> float:
    """Fig. 4a companion: aggregate update throughput (updates/second) of
    the message-aggregating DHT (the HipMer pattern, §IV-C discussion).

    This is the canonical observability workload: with ``metrics``/``trace``
    attached it exercises every queue (deferred AM injection, inbox dwell,
    compQ bursts at ``sync()``) across all ranks.
    """
    ppn = PLATFORMS[platform].ppn_dht

    def body():
        agg = AggregatingCounter(batch_size=batch_size)
        rng = upcxx.runtime_here().rng.spawn("dht-agg-bench")
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(updates_per_rank):
            agg.add(rng.key64() % key_space, 1)
        agg.sync()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    elapsed = max(
        upcxx.run_spmd(
            body, n_procs, platform=platform, ppn=ppn, seed=seed, metrics=metrics, trace=trace
        )
    )
    return n_procs * updates_per_rank / elapsed


def run_fig4(
    platform: str = "haswell",
    procs: Sequence[int] = FIG4_PROCS,
    value_sizes: Sequence[int] = FIG4_VALUE_SIZES,
    volume_per_rank: int = FIG4_VOLUME_PER_RANK,
) -> BenchTable:
    """Fig. 4a/4b: one weak-scaling line per element size."""
    table = BenchTable(
        title=f"Fig 4 ({platform}): DHT insert weak scaling",
        x_name="processes",
        y_name="aggregate MB/s",
    )
    for vs in value_sizes:
        series = table.new_series(f"{vs}B values")
        for p in procs:
            rate = dht_insert_rate(p, vs, volume_per_rank, platform)
            series.add(p, rate / 1e6)
    # REPRO_METRICS=1: emit an observed aggregating-DHT run alongside
    obs = Observation.maybe(f"fig4_{platform}_dht_agg")
    if obs is not None:
        dht_aggregating_rate(platform=platform, metrics=obs.metrics, trace=obs.trace)
        obs.save()
    return table


def efficiency(table: BenchTable, label: str, base_procs: int = 2) -> Dict[int, float]:
    """Weak-scaling efficiency vs the ``base_procs`` point (per process)."""
    s = table.get(label)
    base = s.y_at(base_procs) / base_procs
    return {p: (y / p) / base for p, y in zip(s.xs, s.ys) if p >= base_procs}
