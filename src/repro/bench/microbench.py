"""Fig. 3 microbenchmarks: blocking put latency and flood put bandwidth.

Methodology mirrors §IV-B exactly:

- **Latency** (Fig. 3a): a loop of *blocking* puts — each put waits for the
  network-level acknowledgment before the next is issued.  UPC++ uses
  ``rput(...).wait()``; MPI uses ``MPI_Put`` + ``MPI_Win_flush`` under a
  passive-target epoch (IMB ``Unidir_put``, non-aggregate mode).
- **Bandwidth** (Fig. 3b): a flood of non-blocking puts, completion tracked
  by one promise (UPC++, with a ``progress()`` every 10 injections, as in
  the paper's code listing) or a single trailing flush (MPI, IMB aggregate
  mode).  The metric is total volume / elapsed time.

Both run between two processes on two distinct nodes (one initiator, one
passive target), as on Cori.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

import repro.upcxx as upcxx
from repro.bench.harness import Observation
from repro.mpisim import Win, comm_world, run_mpi
from repro.upcxx import operation_cx
from repro.util.records import BenchTable
from repro.util.units import KiB, MiB

#: transfer sizes swept in Fig. 3 (8 B ... 4 MiB)
FIG3_SIZES = [8, 32, 128, 256, 512, 1024, 2048, 4096, 8 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]


def _flood_iters(size: int, base: int) -> int:
    """Iteration count per size: enough to reach steady state, bounded
    so huge transfers stay cheap to simulate."""
    if size <= 4 * KiB:
        return base
    if size <= 64 * KiB:
        return max(base // 2, 8)
    return max(base // 8, 6)


# ------------------------------------------------------------------- UPC++
def upcxx_put_latency(
    sizes: Sequence[int] = FIG3_SIZES,
    iters: int = 20,
    platform: str = "haswell",
    metrics=None,
    trace=None,
) -> Dict[int, float]:
    """Mean blocking-rput round-trip time per size (seconds)."""
    out: Dict[int, float] = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                upcxx.rput(payload, dest).wait()  # warm-up
                t0 = upcxx.sim_now()
                for _ in range(iters):
                    upcxx.rput(payload, dest).wait()
                out[size] = (upcxx.sim_now() - t0) / iters
        upcxx.barrier()

    upcxx.run_spmd(body, 2, platform=platform, ppn=1, metrics=metrics, trace=trace)
    return out


def upcxx_flood_bw(
    sizes: Sequence[int] = FIG3_SIZES,
    iters: int = 64,
    platform: str = "haswell",
    metrics=None,
    trace=None,
) -> Dict[int, float]:
    """Flood put bandwidth per size (bytes/second), promise-tracked."""
    out: Dict[int, float] = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                n = _flood_iters(size, iters)
                payload = bytes(size)
                upcxx.rput(payload, dest).wait()  # warm-up
                t0 = upcxx.sim_now()
                p = upcxx.Promise()
                k = n
                while k:
                    k -= 1
                    upcxx.rput(payload, dest, cx=operation_cx.as_promise(p))
                    if not (k % 10):
                        upcxx.progress()  # occasional progress (paper listing)
                p.finalize().wait()
                out[size] = size * n / (upcxx.sim_now() - t0)
        upcxx.barrier()

    upcxx.run_spmd(body, 2, platform=platform, ppn=1, metrics=metrics, trace=trace)
    return out


# --------------------------------------------------------------------- MPI
def mpi_put_latency(sizes: Sequence[int] = FIG3_SIZES, iters: int = 20, platform: str = "haswell") -> Dict[int, float]:
    """Mean blocking MPI_Put+flush time per size (IMB non-aggregate)."""
    out: Dict[int, float] = {}

    def body():
        comm = comm_world()
        win = Win.allocate(comm, max(sizes))
        comm.barrier()
        if comm.rank == 0:
            win.lock(1)
            for size in sizes:
                payload = bytes(size)
                win.put(payload, target=1)
                win.flush(1)  # warm-up
                t0 = comm.rt.sched.now()
                for _ in range(iters):
                    win.put(payload, target=1)
                    win.flush(1)
                out[size] = (comm.rt.sched.now() - t0) / iters
            win.unlock(1)
        comm.barrier()

    run_mpi(body, 2, platform=platform, ppn=1)
    return out


def mpi_flood_bw(sizes: Sequence[int] = FIG3_SIZES, iters: int = 64, platform: str = "haswell") -> Dict[int, float]:
    """Flood MPI_Put bandwidth per size (IMB aggregate: one flush at end)."""
    out: Dict[int, float] = {}

    def body():
        comm = comm_world()
        win = Win.allocate(comm, max(sizes))
        comm.barrier()
        if comm.rank == 0:
            win.lock(1)
            for size in sizes:
                n = _flood_iters(size, iters)
                payload = bytes(size)
                win.put(payload, target=1)
                win.flush(1)  # warm-up
                t0 = comm.rt.sched.now()
                for _ in range(n):
                    win.put(payload, target=1)
                win.flush(1)
                out[size] = size * n / (comm.rt.sched.now() - t0)
            win.unlock(1)
        comm.barrier()

    run_mpi(body, 2, platform=platform, ppn=1)
    return out


# ----------------------------------------------------- companion microbenches
def upcxx_get_latency(sizes: Sequence[int] = FIG3_SIZES, iters: int = 20, platform: str = "haswell") -> Dict[int, float]:
    """Mean blocking-rget round-trip time per size (companion to Fig. 3a;
    gets pay the request leg before data can flow back)."""
    out: Dict[int, float] = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        src = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                ptr = upcxx.GlobalPtr(src.rank, src.offset, src.dtype, size)
                upcxx.rget(ptr).wait()  # warm-up
                t0 = upcxx.sim_now()
                for _ in range(iters):
                    upcxx.rget(ptr).wait()
                out[size] = (upcxx.sim_now() - t0) / iters
        upcxx.barrier()

    upcxx.run_spmd(body, 2, platform=platform, ppn=1)
    return out


def upcxx_rpc_latency(payloads: Sequence[int], iters: int = 20, platform: str = "haswell") -> Dict[int, float]:
    """Round-trip time of a returning RPC per payload size (ships a view)."""
    out: Dict[int, float] = {}

    def body():
        me = upcxx.rank_me()
        upcxx.barrier()
        if me == 0:
            for size in payloads:
                data = np.zeros(max(1, size // 8))
                v = upcxx.make_view(data)
                upcxx.rpc(1, lambda x: None, v).wait()  # warm-up
                t0 = upcxx.sim_now()
                for _ in range(iters):
                    upcxx.rpc(1, lambda x: None, upcxx.make_view(data)).wait()
                out[size] = (upcxx.sim_now() - t0) / iters
        # rank 1 blocks here, which spins user progress: it stays
        # attentive and executes rank 0's RPCs while waiting
        upcxx.barrier()

    upcxx.run_spmd(body, 2, platform=platform, ppn=1)
    return out


def run_micro_companions(sizes: Sequence[int] = None, iters: int = 20) -> BenchTable:
    """Latency of the three one-sided/remote primitives side by side."""
    sizes = sizes or [8, 512, 4096, 65536]
    table = BenchTable(
        title="Companion microbench: blocking latency of rput vs rget vs rpc",
        x_name="size",
        y_name="latency (us)",
    )
    put = upcxx_put_latency(sizes, iters)
    get = upcxx_get_latency(sizes, iters)
    rpc = upcxx_rpc_latency(sizes, iters)
    s_put = table.new_series("rput")
    s_get = table.new_series("rget")
    s_rpc = table.new_series("rpc (view payload)")
    for s in sizes:
        s_put.add(s, put[s] * 1e6)
        s_get.add(s, get[s] * 1e6)
        s_rpc.add(s, rpc[s] * 1e6)
    return table


# ---------------------------------------------------------------- figures
def run_fig3a(sizes: Sequence[int] = FIG3_SIZES, iters: int = 20) -> BenchTable:
    """Fig. 3a: round-trip put latency, UPC++ vs MPI RMA (lower is better)."""
    table = BenchTable(
        title="Fig 3a: Round-trip Put Latency on simulated Cori Haswell",
        x_name="size",
        y_name="latency (us)",
    )
    obs = Observation.maybe("fig3a_put_latency")
    u = upcxx_put_latency(sizes, iters, metrics=obs and obs.metrics, trace=obs and obs.trace)
    if obs is not None:
        obs.save()
    m = mpi_put_latency(sizes, iters)
    su = table.new_series("UPC++ rput")
    sm = table.new_series("MPI RMA Put")
    for size in sizes:
        su.add(size, u[size] * 1e6)
        sm.add(size, m[size] * 1e6)
    return table


def run_fig3b(sizes: Sequence[int] = FIG3_SIZES, iters: int = 64) -> BenchTable:
    """Fig. 3b: flood put bandwidth, UPC++ vs MPI RMA (higher is better)."""
    table = BenchTable(
        title="Fig 3b: Flood Put Bandwidth on simulated Cori Haswell",
        x_name="size",
        y_name="bandwidth (GiB/s)",
    )
    obs = Observation.maybe("fig3b_flood_bw")
    u = upcxx_flood_bw(sizes, iters, metrics=obs and obs.metrics, trace=obs and obs.trace)
    if obs is not None:
        obs.save()
    m = mpi_flood_bw(sizes, iters)
    su = table.new_series("UPC++ rput")
    sm = table.new_series("MPI RMA Put")
    giB = float(1 << 30)
    for size in sizes:
        su.add(size, u[size] / giB)
        sm.add(size, m[size] / giB)
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Figure runner: ``python -m repro.bench.microbench --fig 3a [--report]``.

    ``--report`` appends the causal-span critical-path breakdown for the
    figure's workload (see ``docs/observability.md``) so a latency number
    can be read next to *where* that latency comes from.
    """
    import argparse

    ap = argparse.ArgumentParser(description="Fig. 3 microbenchmark runner")
    ap.add_argument("--fig", choices=("3a", "3b"), default="3a")
    ap.add_argument("--sizes", type=int, nargs="*", default=None)
    ap.add_argument("--iters", type=int, default=None)
    ap.add_argument(
        "--report",
        action="store_true",
        help="follow the figure with a span critical-path report (repro.tools.report)",
    )
    args = ap.parse_args(argv)
    sizes = args.sizes or FIG3_SIZES
    if args.fig == "3a":
        table = run_fig3a(sizes, args.iters or 20)
    else:
        table = run_fig3b(sizes, args.iters or 64)
    print(table.render())
    if args.report:
        from repro.tools.report import main as report_main

        print()
        return report_main(["--workload", "fig3a", "--format", "text"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
