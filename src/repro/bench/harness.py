"""Shared benchmark harness: result persistence and claim checking.

Each figure benchmark renders its :class:`BenchTable` under ``results/``
(so ``pytest benchmarks/`` leaves a reviewable artifact trail matching
EXPERIMENTS.md) and asserts the paper's qualitative claims through the
helpers here.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.util.records import BenchTable
from repro.util.units import fmt_bytes

#: results directory at the repository root
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "results")


def save_table(
    table: BenchTable,
    name: str,
    x_fmt: Optional[Callable] = None,
    y_fmt: Optional[Callable] = None,
    extra: str = "",
) -> str:
    """Render ``table`` to ``results/<name>.txt`` (human-readable) and
    ``results/<name>.json`` (machine-readable, for external plotting);
    returns the text."""
    import json

    text = table.render(x_fmt=x_fmt or str, y_fmt=y_fmt or (lambda y: f"{y:.4g}"))
    if extra:
        text = text + "\n\n" + extra
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    payload = {
        "title": table.title,
        "x_name": table.x_name,
        "y_name": table.y_name,
        "series": [s.as_dict() for s in table.series],
        "notes": extra,
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=1, default=str)
    return text


def improvement(slow: float, fast: float) -> float:
    """The paper's 'X% improvement' convention: (slow - fast) / slow."""
    return (slow - fast) / slow


def size_fmt(x) -> str:
    return fmt_bytes(int(x))
