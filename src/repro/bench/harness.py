"""Shared benchmark harness: result persistence, observability, claims.

Each figure benchmark renders its :class:`BenchTable` under ``results/``
(so ``pytest benchmarks/`` leaves a reviewable artifact trail matching
EXPERIMENTS.md) and asserts the paper's qualitative claims through the
helpers here.

Observability: set ``REPRO_METRICS=1`` and every instrumented figure
benchmark additionally emits ``results/<name>_metrics.json`` (per-rank
op-lifecycle metrics: queue depths, dwell histograms, attentiveness gaps)
and ``results/<name>_trace.json`` (a Perfetto/Chrome-loadable trace with
one lane per rank) for its observed configuration — the before/after
baseline for performance work.  See :class:`Observation`.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.util.metrics import Metrics
from repro.util.records import BenchTable
from repro.util.trace import TraceBuffer
from repro.util.trace_export import dumps_chrome_trace, dumps_metrics
from repro.util.units import fmt_bytes

#: results directory at the repository root
RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "results")


def save_table(
    table: BenchTable,
    name: str,
    x_fmt: Optional[Callable] = None,
    y_fmt: Optional[Callable] = None,
    extra: str = "",
) -> str:
    """Render ``table`` to ``results/<name>.txt`` (human-readable) and
    ``results/<name>.json`` (machine-readable, for external plotting);
    returns the text."""
    import json

    text = table.render(x_fmt=x_fmt or str, y_fmt=y_fmt or (lambda y: f"{y:.4g}"))
    if extra:
        text = text + "\n\n" + extra
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    payload = {
        "title": table.title,
        "x_name": table.x_name,
        "y_name": table.y_name,
        "series": [s.as_dict() for s in table.series],
        "notes": extra,
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as fh:
        json.dump(payload, fh, indent=1, default=str)
    return text


def improvement(slow: float, fast: float) -> float:
    """The paper's 'X% improvement' convention: (slow - fast) / slow."""
    return (slow - fast) / slow


def size_fmt(x) -> str:
    return fmt_bytes(int(x))


# ------------------------------------------------------------ observability
def metrics_enabled() -> bool:
    """Whether benchmark observability is requested (``REPRO_METRICS=1``)."""
    return os.environ.get("REPRO_METRICS", "").strip() not in ("", "0", "false", "no")


class Observation:
    """Optional metrics+trace collection for one observed benchmark run.

    ``Observation.maybe(name)`` returns ``None`` unless ``REPRO_METRICS`` is
    set, so callers pay nothing by default::

        obs = Observation.maybe("fig4a_dht_agg")
        rates = dht_insert_rate(..., metrics=obs and obs.metrics,
                                trace=obs and obs.trace)
        if obs:
            obs.save()   # -> results/fig4a_dht_agg_{metrics,trace}.json
    """

    def __init__(self, name: str, trace_capacity: int = 1 << 20):
        self.name = name
        self.metrics = Metrics()
        self.trace = TraceBuffer(capacity=trace_capacity)

    @classmethod
    def maybe(cls, name: str) -> Optional["Observation"]:
        return cls(name) if metrics_enabled() else None

    def save(self, results_dir: Optional[str] = None) -> "tuple[str, str]":
        """Write ``<name>_metrics.json`` and ``<name>_trace.json``; returns
        the two paths."""
        out = results_dir or RESULTS_DIR
        os.makedirs(out, exist_ok=True)
        mpath = os.path.join(out, f"{self.name}_metrics.json")
        tpath = os.path.join(out, f"{self.name}_trace.json")
        with open(mpath, "w") as fh:
            fh.write(dumps_metrics(self.metrics) + "\n")
        with open(tpath, "w") as fh:
            fh.write(dumps_chrome_trace(self.trace, self.metrics) + "\n")
        return mpath, tpath
