"""Wall-clock performance harness: how fast does the simulator itself run?

Every other module in ``repro.bench`` measures *simulated* time — the
physics of the modeled machine.  This one measures the *simulator*: for
representative Fig. 3a / 4a / 8 workloads it runs the same simulation on
each scheduler backend and records wall-clock seconds, scheduler events
fired per second, rank switches per second, and peak RSS.  Results are
written to ``BENCH_perf.json`` for the CI perf-smoke job, which compares
the backend speedup ratio (a dimensionless, machine-tolerant number)
against the committed baseline.

Usage::

    PYTHONPATH=src python -m repro.bench.perf_harness --scale tiny
    PYTHONPATH=src python -m repro.bench.perf_harness --scale full --repeat 3

All workloads assert that both backends produce bit-identical simulated
results — a perf number from a wrong simulation is worthless.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform as _platform
import resource
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

BACKENDS = ("coroutines", "threads")

#: the acceptance target for the Fig. 4a gate workload (events/sec,
#: coroutine backend vs thread backend); the measured ratio is reported
#: honestly whether or not it reaches the target
GATE_WORKLOAD = "fig4a_dht"
GATE_TARGET = 5.0


# ----------------------------------------------------------------- workloads
def _fig3a_latency(scale: str, backend: str) -> Tuple[object, dict]:
    """Fig. 3a blocking-put latency series (2 ranks, size sweep)."""
    import numpy as np

    import repro.upcxx as upcxx
    from repro.bench.microbench import FIG3_SIZES

    sizes = FIG3_SIZES[:6] if scale == "tiny" else FIG3_SIZES
    iters = 5 if scale == "tiny" else 20
    out: Dict[int, float] = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                upcxx.rput(payload, dest).wait()  # warm-up
                t0 = upcxx.sim_now()
                for _ in range(iters):
                    upcxx.rput(payload, dest).wait()
                out[size] = (upcxx.sim_now() - t0) / iters
        upcxx.barrier()

    stats: dict = {}
    upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, sched_stats=stats)
    return tuple(sorted(out.items())), stats


def _fig4a_dht(scale: str, backend: str) -> Tuple[object, dict]:
    """Fig. 4a DHT blocking-insert weak scaling point (the gate workload)."""
    import repro.upcxx as upcxx
    from repro.apps.dht import DhtRmaLz
    from repro.bench.platforms import PLATFORMS
    from repro.util.units import MiB

    n_ranks = 32 if scale == "tiny" else 256
    value_size = 4096
    n_inserts = 8 if scale == "tiny" else 16

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(value_size)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(n_inserts):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    stats: dict = {}
    elapsed = upcxx.run_spmd(
        body,
        n_ranks,
        platform="haswell",
        ppn=PLATFORMS["haswell"].ppn_dht,
        segment_size=max(4 * MiB, 4 * n_inserts * value_size),
        backend=backend,
        sched_stats=stats,
    )
    return tuple(elapsed), stats


#: cached extend-add plans per scale (plan building is pure CPU setup
#: shared by both backends; keep it out of the timed region)
_EADD_PLANS: dict = {}


def _fig8_eadd(scale: str, backend: str) -> Tuple[object, dict]:
    """Fig. 8 extend-add sweep, UPC++ RPC variant."""
    import repro.upcxx as upcxx
    from repro.apps.sparse.extend_add import build_eadd_plan, upcxx_eadd_run
    from repro.bench.platforms import PLATFORMS

    n_procs = 4 if scale == "tiny" else 16
    if scale not in _EADD_PLANS:
        grid = (8, 8, 6) if scale == "tiny" else (16, 16, 12)
        _EADD_PLANS[scale] = build_eadd_plan(*grid, n_procs=n_procs, leaf_size=48)
    plan = _EADD_PLANS[scale]
    stats: dict = {}
    out = upcxx.run_spmd(
        lambda: upcxx_eadd_run(plan),
        n_procs,
        platform="haswell",
        ppn=PLATFORMS["haswell"].ppn_eadd,
        backend=backend,
        sched_stats=stats,
    )
    return tuple(out), stats


WORKLOADS: Dict[str, Callable[[str, str], Tuple[object, dict]]] = {
    "fig3a_latency": _fig3a_latency,
    "fig4a_dht": _fig4a_dht,
    "fig8_eadd": _fig8_eadd,
}


# ---------------------------------------------------------------- measuring
def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def measure(
    name: str,
    scale: str,
    backend: str,
    repeat: int = 2,
) -> Tuple[object, dict]:
    """Run one workload on one backend; best-of-``repeat`` wall clock.

    Returns (simulated result, measurement record).  Best-of-N damps
    scheduler noise on shared machines; events fired and switches are
    invariant across repeats (the simulation is deterministic).
    """
    fn = WORKLOADS[name]
    fn(scale, backend)  # untimed warm-up: imports, caches, allocator pools
    best_wall = float("inf")
    result = None
    stats: dict = {}
    for _ in range(max(1, repeat)):
        gc.collect()  # don't bill one run for another's garbage
        t0 = time.perf_counter()
        result, stats = fn(scale, backend)
        wall = time.perf_counter() - t0
        best_wall = min(best_wall, wall)
    events = stats.get("events_fired", 0)
    switches = stats.get("switches", 0)
    record = {
        "wall_s": round(best_wall, 4),
        "events_fired": events,
        "events_per_s": round(events / best_wall, 1) if events else None,
        "switches": switches,
        "switches_per_s": round(switches / best_wall, 1) if switches else None,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return result, record


def run_harness(
    scale: str = "tiny",
    workloads: Optional[List[str]] = None,
    repeat: int = 2,
    out_path: str = "BENCH_perf.json",
) -> dict:
    """Run every workload on every backend and write ``BENCH_perf.json``."""
    names = workloads or list(WORKLOADS)
    report: dict = {
        "schema": "repro-perf/1",
        "scale": scale,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "cpus": os.cpu_count(),
        "workloads": {},
    }
    for name in names:
        entry: dict = {}
        results = {}
        for backend in BACKENDS:
            result, record = measure(name, scale, backend, repeat=repeat)
            entry[backend] = record
            results[backend] = result
            print(
                f"[perf] {name:>14s} {backend:>10s}: {record['wall_s']:.2f}s wall, "
                f"{record['events_fired']} events"
                + (f" ({record['events_per_s']:.0f}/s)" if record["events_per_s"] else ""),
                flush=True,
            )
        if results["coroutines"] != results["threads"]:
            raise AssertionError(
                f"{name}: simulated results differ between backends — "
                "perf numbers are meaningless; fix determinism first"
            )
        entry["results_identical"] = True
        a, b = entry["coroutines"], entry["threads"]
        if a["events_per_s"] and b["events_per_s"]:
            entry["speedup_events_per_s"] = round(a["events_per_s"] / b["events_per_s"], 3)
        else:
            entry["speedup_events_per_s"] = round(b["wall_s"] / a["wall_s"], 3)
        report["workloads"][name] = entry

    if GATE_WORKLOAD in report["workloads"]:
        measured = report["workloads"][GATE_WORKLOAD]["speedup_events_per_s"]
        report["gate"] = {
            "workload": GATE_WORKLOAD,
            "metric": "events_per_s coroutines/threads",
            "target_speedup": GATE_TARGET,
            "measured_speedup": measured,
            "passed": bool(measured >= GATE_TARGET),
        }

    with open(out_path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[perf] wrote {out_path}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=("tiny", "full"), default="tiny")
    ap.add_argument("--workloads", nargs="*", choices=list(WORKLOADS), default=None)
    ap.add_argument("--repeat", type=int, default=2)
    ap.add_argument("--out", default="BENCH_perf.json")
    args = ap.parse_args(argv)
    run_harness(args.scale, args.workloads, args.repeat, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
