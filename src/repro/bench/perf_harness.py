"""Wall-clock performance harness: how fast does the simulator itself run?

Every other module in ``repro.bench`` measures *simulated* time — the
physics of the modeled machine.  This one measures the *simulator*: for
representative Fig. 3a / 4a / 8 and kvservice workloads it runs the same
simulation on each scheduler backend and records wall-clock seconds,
scheduler events fired per second, rank switches per second, and peak
RSS.  Results are
written to ``BENCH_perf.json`` for the CI perf-smoke job, which compares
backend speedup ratios (dimensionless, machine-tolerant numbers) against
the committed baseline.

Usage::

    PYTHONPATH=src python -m repro.bench.perf_harness --scale tiny
    PYTHONPATH=src python -m repro.bench.perf_harness --scale full --repeat 3
    # the 1024-rank Fig. 4a parallel-speedup measurement:
    PYTHONPATH=src python -m repro.bench.perf_harness --scale xl \
        --workloads fig4a_dht --shards 4

All workloads assert that every backend produces bit-identical simulated
results — a perf number from a wrong simulation is worthless.  Workload
bodies therefore *return* their measurements instead of mutating
enclosing scope: the sharded backend runs them in forked worker
processes, where closure mutation would be lost.

Gates
-----
``BENCH_perf.json`` carries one gate entry per backend pair (see
:data:`GATES`), each with its own target, the measured number, and a
pass/fail verdict plus the environment facts (CPU count, shard count)
needed to interpret it.  The original single coroutines-vs-threads
5.0x target is retired: profiling (docs/simulator.md) showed ~70% of
wall time is backend-invariant simulation work — conduit physics, heap
operations, serialization — so eliminating context-switch overhead
entirely caps the win near 1.4x by Amdahl's law.  Parallel speedup is
the sharded backend's job, gated separately and only meaningful on a
multi-core runner.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform as _platform
import resource
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.shard import SHARDS_ENV

BACKENDS = ("coroutines", "threads", "sharded")

#: shard count used for the sharded backend when ``$REPRO_SIM_SHARDS``
#: and ``--shards`` are both absent: one per core, capped at 4 (the gate
#: configuration) — more shards than cores only adds window overhead
DEFAULT_SHARDS = max(1, min(4, os.cpu_count() or 1))

GATE_WORKLOAD = "fig4a_dht"

#: per-backend-pair acceptance gates; ``measured`` and ``passed`` are
#: filled in by :func:`run_harness`.  Targets are documented inline —
#: BENCH_perf.json carries the rationale so a reader of the artifact
#: alone can interpret the verdict.
GATES = (
    {
        "name": "coroutines_vs_threads",
        "workload": GATE_WORKLOAD,
        "metric": "events_per_s coroutines/threads",
        "target_speedup": 1.4,
        "requires": {"min_cpus": 2},
        "rationale": (
            "re-baselined from the original 5.0x aspiration: profiling "
            "(docs/simulator.md, Amdahl analysis) shows ~70-85% of wall "
            "time is backend-invariant simulation work, so removing thread "
            "context-switch overhead entirely caps the ratio near 1.4x. "
            "The target additionally presumes >=2 cpus: on a single-cpu "
            "runner both backends serialize onto one core, the threads "
            "backend's lock handoffs become uncontended futexes, and the "
            "measurable gap collapses toward the per-switch baton premium "
            "(~1.05-1.2x) regardless of hot-path quality, so the gate is "
            "advisory there (measured honestly, never inflated)"
        ),
    },
    {
        "name": "sharded_vs_coroutines",
        "workload": GATE_WORKLOAD,
        "metric": "wall_s coroutines/sharded",
        "target_speedup": 2.0,
        "requires": {"min_cpus": 4, "min_shards": 4},
        "rationale": (
            "conservative-window parallel DES across >=4 shards on >=4 "
            "cores at full/xl scale; on runners below the requirement the "
            "measured number is still recorded honestly but the gate is "
            "marked advisory (window barriers + pipe marshalling cost the "
            "same while the shards time-slice one core)"
        ),
    },
)

#: the aggregation gate (ROADMAP item 3): unlike the wall-clock gates
#: above it compares *simulated* write throughput — a deterministic,
#: host-independent number — so it carries no ``requires`` and is never
#: advisory.  Filled in by :func:`run_harness` from
#: :func:`repro.bench.kv_bench.aggregation_ablation` whenever the
#: ``kvservice`` workload is selected; marked skipped otherwise.
KV_GATE = {
    "name": "kv_aggregation_vs_rpc",
    "workload": "kvservice",
    "metric": "simulated updates/s aggregated(batch=64)/per-op RPC",
    "target_speedup": 4.0,
    "rationale": (
        "runtime-level destination batching (the Fig. 9 HipMer motif "
        "promoted into repro.upcxx.aggregator) must hold a >=4x simulated "
        "write-throughput win over the per-op RPC baseline on the "
        "write-heavy kvservice workload; the measurement is simulated "
        "time, identical on every host and backend, so this gate is "
        "always non-advisory"
    ),
}

#: the crash-availability gate: with replication factor 2 and one rank
#: fail-stopping mid-run, the KV service must complete the run, serve
#: >=99% of the surviving front ends' requests, lose no covered write,
#: and restore the replication factor online.  Simulated-time A/B like
#: the aggregation gate, so it is never advisory.
CRASH_GATE = {
    "name": "kv_crash_availability",
    "workload": "kvservice",
    "metric": (
        "fraction of surviving front ends' accepted requests served under "
        "a survivable mid-run rank crash (rf=2, single crash)"
    ),
    "min_availability": 0.99,
    "rationale": (
        "the replication layer (repro.upcxx.replication) exists so a rank "
        "crash costs neither the run nor the data: failover reads retarget "
        "to a surviving replica, writes complete on the first surviving "
        "owner's ack, and background re-replication restores the factor; "
        "availability and recovery time are deterministic simulated-time "
        "measurements, identical on every host and backend, so this gate "
        "is always non-advisory"
    ),
}


# ----------------------------------------------------------------- workloads
def _fig3a_latency(scale: str, backend: str) -> Tuple[object, dict]:
    """Fig. 3a blocking-put latency series (2 ranks, size sweep)."""
    import numpy as np

    import repro.upcxx as upcxx
    from repro.bench.microbench import FIG3_SIZES

    sizes = FIG3_SIZES[:6] if scale == "tiny" else FIG3_SIZES
    iters = 5 if scale == "tiny" else 20

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, max(sizes))
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        out = []
        if me == 0:
            for size in sizes:
                payload = bytes(size)
                upcxx.rput(payload, dest).wait()  # warm-up
                t0 = upcxx.sim_now()
                for _ in range(iters):
                    upcxx.rput(payload, dest).wait()
                out.append((size, (upcxx.sim_now() - t0) / iters))
        upcxx.barrier()
        return tuple(out)

    stats: dict = {}
    res = upcxx.run_spmd(body, 2, platform="haswell", ppn=1, backend=backend, sched_stats=stats)
    return tuple(res), stats


#: rank counts for the Fig. 4a gate workload by scale; ``xl`` is the
#: 1024-rank configuration the sharded-backend speedup is quoted at
_DHT_RANKS = {"tiny": 32, "full": 256, "xl": 1024}


def _fig4a_dht(scale: str, backend: str, ppn: int = 0) -> Tuple[object, dict]:
    """Fig. 4a DHT blocking-insert weak scaling point (the gate workload)."""
    import repro.upcxx as upcxx
    from repro.apps.dht import DhtRmaLz
    from repro.bench.platforms import PLATFORMS
    from repro.util.units import MiB

    n_ranks = _DHT_RANKS[scale]
    value_size = 4096
    n_inserts = 8 if scale == "tiny" else 16

    def body():
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("dht-bench")
        payload = bytes(value_size)
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for _ in range(n_inserts):
            dht.insert(rng.key64(), payload).wait()
        upcxx.barrier()
        return upcxx.sim_now() - t0

    stats: dict = {}
    elapsed = upcxx.run_spmd(
        body,
        n_ranks,
        platform="haswell",
        ppn=ppn or PLATFORMS["haswell"].ppn_dht,
        segment_size=max(4 * MiB, 4 * n_inserts * value_size),
        backend=backend,
        sched_stats=stats,
    )
    return tuple(elapsed), stats


#: workload the ``--shard-sweep`` scaling curve runs (a respread of the
#: gate workload; see :func:`_fig4a_dht_sweep`)
SWEEP_WORKLOAD = "fig4a_dht_sweep"


def _fig4a_dht_sweep(scale: str, backend: str) -> Tuple[object, dict]:
    """The Fig. 4a DHT workload respread over >=8 nodes for the shard sweep.

    The gate workload packs ranks at the platform's production ppn, which
    at tiny scale fills a *single* node — and the shard planner (correctly)
    never splits one node's ranks across shards, so every sweep point
    would collapse to shards=1.  This variant lowers ppn until the same
    rank count spans eight nodes, giving the planner room for the full
    {1, 2, 4, 8} curve at any scale.  Simulated timings differ from the
    gate workload (more traffic crosses node boundaries); the sweep only
    compares points against its own coroutine reference, never against
    the gate numbers.
    """
    return _fig4a_dht(scale, backend, ppn=max(1, _DHT_RANKS[scale] // 8))


#: cached extend-add plans per scale (plan building is pure CPU setup
#: shared by all backends; keep it out of the timed region)
_EADD_PLANS: dict = {}


def _fig8_eadd(scale: str, backend: str) -> Tuple[object, dict]:
    """Fig. 8 extend-add sweep, UPC++ RPC variant."""
    import repro.upcxx as upcxx
    from repro.apps.sparse.extend_add import build_eadd_plan, upcxx_eadd_run
    from repro.bench.platforms import PLATFORMS

    n_procs = 4 if scale == "tiny" else 16
    if scale not in _EADD_PLANS:
        grid = (8, 8, 6) if scale == "tiny" else (16, 16, 12)
        _EADD_PLANS[scale] = build_eadd_plan(*grid, n_procs=n_procs, leaf_size=48)
    plan = _EADD_PLANS[scale]
    stats: dict = {}
    out = upcxx.run_spmd(
        lambda: upcxx_eadd_run(plan),
        n_procs,
        platform="haswell",
        ppn=PLATFORMS["haswell"].ppn_eadd,
        backend=backend,
        sched_stats=stats,
    )
    return tuple(out), stats


def _kvservice(scale: str, backend: str) -> Tuple[object, dict]:
    """Served KV workload over the runtime aggregation layer.

    Open-loop Poisson/Zipf traffic through an aggregated, hot-key-cached
    store (docs/kvservice.md).  The per-rank result records — request
    counts, read checksums, latency histograms, cache and credit
    counters — are fully deterministic, so the harness's bit-identity
    assertion covers the entire aggregation subsystem.
    """
    from repro.apps.kvservice import default_config
    from repro.bench.kv_bench import run_kv

    results, stats = run_kv(default_config(scale), backend)
    return tuple(results), stats


WORKLOADS: Dict[str, Callable[[str, str], Tuple[object, dict]]] = {
    "fig3a_latency": _fig3a_latency,
    "fig4a_dht": _fig4a_dht,
    "fig4a_dht_sweep": _fig4a_dht_sweep,
    "fig8_eadd": _fig8_eadd,
    "kvservice": _kvservice,
}


# ---------------------------------------------------------------- measuring
def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _peak_rss_children_kb() -> int:
    """Peak RSS over reaped children in KiB (the sharded backend's
    workers live here; 0 until a forked worker has exited)."""
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss


def measure(
    name: str,
    scale: str,
    backend: str,
    repeat: int = 2,
) -> Tuple[object, dict]:
    """Run one workload on one backend; best-of-``repeat`` wall clock.

    Returns (simulated result, measurement record).  Best-of-N damps
    scheduler noise on shared machines; events fired and switches are
    invariant across repeats (the simulation is deterministic).
    """
    fn = WORKLOADS[name]
    fn(scale, backend)  # untimed warm-up: imports, caches, allocator pools
    best_wall = float("inf")
    result = None
    stats: dict = {}
    for _ in range(max(1, repeat)):
        gc.collect()  # don't bill one run for another's garbage
        t0 = time.perf_counter()
        result, stats = fn(scale, backend)
        wall = time.perf_counter() - t0
        best_wall = min(best_wall, wall)
    events = stats.get("events_fired", 0)
    switches = stats.get("switches", 0)
    record = {
        "wall_s": round(best_wall, 4),
        "events_fired": events,
        "events_per_s": round(events / best_wall, 1) if events else None,
        "switches": switches,
        "switches_per_s": round(switches / best_wall, 1) if switches else None,
        "peak_rss_kb": _peak_rss_kb(),
        "peak_rss_children_kb": _peak_rss_children_kb(),
    }
    if "n_shards" in stats:
        record["n_shards"] = stats["n_shards"]
    # CMB window-protocol counters (sharded backend only): these are what
    # the scaling sweep and the report's batching diagnostics read
    for key in (
        "windows",
        "quiet_windows",
        "window_stall_s",
        "horizon_wait_s",
        "envelopes_exchanged",
        "env_frames",
        "sentinel_frames",
        "pipe_bytes",
        "lookahead_mode",
        "lookahead_mult_peak",
    ):
        if key in stats:
            v = stats[key]
            record[key] = round(v, 4) if isinstance(v, float) else v
    # per-worker window/stall counters: CI uploads these alongside the
    # aggregate so a load imbalance between shards is visible from the
    # artifact alone
    if "per_shard" in stats:
        record["per_shard"] = [
            {k: (round(v, 4) if isinstance(v, float) else v) for k, v in s.items()}
            for s in stats["per_shard"]
        ]
    return result, record


#: shard counts the ``--shard-sweep`` scaling curve walks (ROADMAP item 2)
SWEEP_SHARD_COUNTS = (1, 2, 4, 8)


def shard_sweep(
    scale: str = "tiny",
    repeat: int = 1,
    workload: str = SWEEP_WORKLOAD,
    shard_counts: Sequence[int] = SWEEP_SHARD_COUNTS,
) -> dict:
    """Run the sweep workload at each shard count and record the scaling
    curve (events/s, windows, env-exchange stall) plus the wall-clock
    speedup against the single-core coroutine reference.  Simulated
    results must stay bit-identical at every point — the sweep asserts
    it, so a lookahead or batching bug cannot masquerade as a speedup.
    """
    ref_result, ref = measure(workload, scale, "coroutines", repeat=repeat)
    points = []
    for n in shard_counts:
        prev = os.environ.get(SHARDS_ENV)
        os.environ[SHARDS_ENV] = str(n)
        try:
            result, rec = measure(workload, scale, "sharded", repeat=repeat)
        finally:
            if prev is None:
                os.environ.pop(SHARDS_ENV, None)
            else:
                os.environ[SHARDS_ENV] = prev
        if result != ref_result:
            raise AssertionError(
                f"{workload}: simulated results at {n} shard(s) diverge from "
                "the coroutine reference — fix determinism first"
            )
        point = {
            "shards": rec.get("n_shards", n),
            "wall_s": rec["wall_s"],
            "events_per_s": rec["events_per_s"],
            "windows": rec.get("windows"),
            "quiet_windows": rec.get("quiet_windows"),
            "env_stall_s": rec.get("window_stall_s"),
            "horizon_wait_s": rec.get("horizon_wait_s"),
            "env_frames": rec.get("env_frames"),
            "sentinel_frames": rec.get("sentinel_frames"),
            "speedup_vs_coroutines": round(ref["wall_s"] / rec["wall_s"], 3),
        }
        points.append(point)
        print(
            f"[perf] sweep {workload} shards={point['shards']}: "
            f"{rec['wall_s']:.2f}s wall, {point['speedup_vs_coroutines']}x vs "
            f"coroutines, {point['windows']} windows, "
            f"{point['env_stall_s']}s env stall",
            flush=True,
        )
    return {
        "workload": workload,
        "scale": scale,
        "reference": {
            "backend": "coroutines",
            "wall_s": ref["wall_s"],
            "events_per_s": ref["events_per_s"],
        },
        "curve": points,
    }


def telemetry_digest(matrix: Sequence[str] = BACKENDS) -> dict:
    """Cross-backend telemetry rollup digest for ``BENCH_perf.json``.

    Runs a small fixed mixed rput/RPC workload once per backend with the
    flight recorder + windowed rollups enabled, asserts the exported
    telemetry is *byte-identical* everywhere (the same bar the simulated
    results are held to), and folds the final cumulative window into a
    compact totals record so the CI artifact carries a telemetry
    provenance line next to the perf numbers.
    """
    import hashlib

    import repro.upcxx as upcxx
    from repro.util.telemetry import Telemetry

    n_ranks, n_puts, n_rpcs = 8, 24, 8

    def body():
        import numpy as np

        me, n = upcxx.rank_me(), upcxx.rank_n()
        landing = upcxx.new_array(np.uint8, 512)
        dests = [upcxx.broadcast(landing, root=r).wait() for r in range(n)]
        upcxx.barrier()
        payload = bytes(512)
        futs = [upcxx.rput(payload, dests[(me + 1 + i) % n])
                for i in range(n_puts)]
        acc = 0
        for i in range(n_rpcs):
            acc += upcxx.rpc((me + i) % n, lambda x: x + 1, i).wait()
        for f in futs:
            f.wait()
        upcxx.barrier()
        return acc

    texts: Dict[str, str] = {}
    tel_last = None
    for backend in matrix:
        tel = Telemetry()
        res = upcxx.run_spmd(body, n_ranks, platform="haswell", ppn=4,
                             seed=11, backend=backend, telemetry=tel)
        assert len(res) == n_ranks
        texts[backend] = tel.dumps()
        if tel.ranks:  # sharded merges into the parent's sink too
            tel_last = tel
    if len(set(texts.values())) > 1:
        raise AssertionError(
            "telemetry rollups diverged across backends "
            f"{sorted(texts)} — fix determinism first"
        )
    totals = {"ops": 0, "bytes": 0, "executed": 0, "am_polls": 0,
              "retransmits": 0, "credit_stall_s": 0.0, "cache_hits": 0,
              "max_gap_s": 0.0, "windows": 0}
    for rt in tel_last.ranks.values():
        if not rt.windows:
            continue
        last = rt.windows[-1]
        totals["ops"] += sum(last["ops"].values())
        totals["bytes"] += sum(last["bytes"].values())
        totals["executed"] += last["executed"]
        totals["am_polls"] += last["ams"]
        totals["retransmits"] += last["rel"]["retx"]
        totals["credit_stall_s"] += last["agg"]["credit_stall_s"]
        totals["cache_hits"] += last["agg"]["cache_hits"]
        totals["max_gap_s"] = max(totals["max_gap_s"],
                                  max(w["max_gap_s"] for w in rt.windows))
        totals["windows"] += len(rt.windows)
    totals["credit_stall_s"] = round(totals["credit_stall_s"], 9)
    totals["max_gap_s"] = round(totals["max_gap_s"], 9)
    return {
        "workload": f"mixed rput/rpc {n_ranks} ranks",
        "backends": list(matrix),
        "identical": True,
        "fingerprint": hashlib.sha256(
            texts[matrix[0]].encode()).hexdigest()[:16],
        "n_ranks": len(tel_last.ranks),
        "totals": totals,
    }


def _gate_entry(gate: dict, workloads: dict, cpus: int, shards: int) -> dict:
    """Fill one :data:`GATES` template with measured numbers and verdict."""
    entry = dict(gate)
    wl = workloads.get(gate["workload"], {})
    fast_name, slow_name = gate["name"].split("_vs_")
    fast, slow = wl.get(fast_name), wl.get(slow_name)
    if not fast or not slow:
        entry.update({"measured_speedup": None, "passed": None, "skipped": True})
        return entry
    if gate["metric"].startswith("events_per_s") and fast["events_per_s"] and slow["events_per_s"]:
        measured = fast["events_per_s"] / slow["events_per_s"]
    else:
        measured = slow["wall_s"] / fast["wall_s"]
    entry["measured_speedup"] = round(measured, 3)
    entry["passed"] = bool(measured >= gate["target_speedup"])
    req = gate.get("requires")
    if req:
        met = cpus >= req.get("min_cpus", 1) and shards >= req.get("min_shards", 1)
        entry["requirements_met"] = met
        entry["advisory"] = not met
        if not met and not entry["passed"]:
            # Render only the requirements this gate actually carries: a
            # cpu-only gate must not claim it "assumes >=1 shards".
            have = [f"runner has {cpus} cpu(s)"]
            needs = []
            if "min_cpus" in req:
                needs.append(f">={req['min_cpus']} cpus")
            if "min_shards" in req:
                have.append(f"ran {shards} shard(s)")
                needs.append(f">={req['min_shards']} shards")
            entry["explanation"] = (
                f"{' and '.join(have)}; the target assumes "
                f"{' and '.join(needs)}, so the measured number reflects "
                "scheduling overhead without parallel hardware underneath it"
            )
    return entry


def run_harness(
    scale: str = "tiny",
    workloads: Optional[List[str]] = None,
    repeat: int = 2,
    out_path: str = "BENCH_perf.json",
    backends: Optional[Sequence[str]] = None,
    shards: Optional[int] = None,
    profile: Optional[bool] = None,
    sweep: bool = False,
    kv_sweep: bool = False,
) -> dict:
    """Run every workload on every backend and write ``BENCH_perf.json``.

    ``backends`` restricts the matrix (default: all of :data:`BACKENDS`);
    the first listed backend is the reference every other backend's
    simulated results must match bit-for-bit.  ``shards`` pins the
    sharded backend's worker count (default: ``$REPRO_SIM_SHARDS`` or
    :data:`DEFAULT_SHARDS`).  ``profile`` adds a per-phase hot-path
    breakdown of the gate workload (scheduler vs conduit vs upcxx API vs
    instrumentation, from an extra untimed cProfile pass) to the report
    provenance; it defaults to ``$REPRO_PROFILE``.
    """
    names = workloads or list(WORKLOADS)
    matrix = tuple(backends) if backends else BACKENDS
    for b in matrix:
        if b not in BACKENDS:
            raise ValueError(f"unknown backend {b!r} (choose from {BACKENDS})")
    if shards is None:
        shards = int(os.environ.get(SHARDS_ENV) or DEFAULT_SHARDS)
    report: dict = {
        "schema": "repro-perf/3",
        "scale": scale,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "cpus": os.cpu_count(),
        "backends": list(matrix),
        "shards": shards if "sharded" in matrix else None,
        "workloads": {},
    }
    ref = matrix[0]
    for name in names:
        entry: dict = {}
        results = {}
        for backend in matrix:
            if backend == "sharded":
                prev = os.environ.get(SHARDS_ENV)
                os.environ[SHARDS_ENV] = str(shards)
                try:
                    result, record = measure(name, scale, backend, repeat=repeat)
                finally:
                    if prev is None:
                        os.environ.pop(SHARDS_ENV, None)
                    else:
                        os.environ[SHARDS_ENV] = prev
            else:
                result, record = measure(name, scale, backend, repeat=repeat)
            entry[backend] = record
            results[backend] = result
            print(
                f"[perf] {name:>14s} {backend:>10s}: {record['wall_s']:.2f}s wall, "
                f"{record['events_fired']} events"
                + (f" ({record['events_per_s']:.0f}/s)" if record["events_per_s"] else ""),
                flush=True,
            )
        for backend in matrix[1:]:
            if results[backend] != results[ref]:
                raise AssertionError(
                    f"{name}: simulated results differ between {ref} and "
                    f"{backend} — perf numbers are meaningless; fix "
                    "determinism first"
                )
        entry["results_identical"] = True
        if "coroutines" in entry and "threads" in entry:
            a, b = entry["coroutines"], entry["threads"]
            if a["events_per_s"] and b["events_per_s"]:
                entry["speedup_events_per_s"] = round(a["events_per_s"] / b["events_per_s"], 3)
            else:
                entry["speedup_events_per_s"] = round(b["wall_s"] / a["wall_s"], 3)
        if "coroutines" in entry and "sharded" in entry:
            entry["sharded_speedup_wall"] = round(
                entry["coroutines"]["wall_s"] / entry["sharded"]["wall_s"], 3
            )
        report["workloads"][name] = entry

    report["gates"] = [
        _gate_entry(g, report["workloads"], report["cpus"] or 1, shards) for g in GATES
    ]
    # legacy key: older tooling reads a single dict at report["gate"]
    report["gate"] = report["gates"][0]

    # aggregation gate: simulated-time A/B, so it bypasses _gate_entry's
    # backend-pair plumbing and is never downgraded to advisory
    kv_gate = dict(KV_GATE)
    if "kvservice" in names:
        from repro.bench.kv_bench import aggregation_ablation

        ab = aggregation_ablation(scale, "coroutines")
        kv_gate["measured_speedup"] = ab["speedup"]
        kv_gate["passed"] = bool(ab["speedup"] >= kv_gate["target_speedup"])
        kv_gate["ablation"] = ab
        print(
            f"[perf] kv gate: aggregated {ab['aggregated']['updates_per_s']:.0f} "
            f"vs per-op {ab['per_op_rpc']['updates_per_s']:.0f} updates/s "
            f"-> {ab['speedup']}x (target {kv_gate['target_speedup']}x)",
            flush=True,
        )
    else:
        kv_gate.update({"measured_speedup": None, "passed": None, "skipped": True})
    report["gates"].append(kv_gate)

    # crash-availability gate + availability/recovery curve: simulated-time
    # chaos measurement, never advisory (same discipline as the kv gate)
    crash_gate = dict(CRASH_GATE)
    if "kvservice" in names:
        from repro.bench.kv_bench import crash_availability_sweep

        curve = crash_availability_sweep(scale, "coroutines")
        rf2 = next(p for p in curve["points"] if p["replication"] == 2)
        crash_gate["measured_availability"] = rf2["availability"]
        crash_gate["writes_lost"] = rf2["writes_lost"]
        crash_gate["recovery_s"] = rf2["recovery_s"]
        crash_gate["factor_restored"] = rf2["factor_restored"]
        crash_gate["passed"] = bool(
            rf2["availability"] >= crash_gate["min_availability"]
            and rf2["writes_lost"] == 0
            and rf2["factor_restored"]
        )
        report["kv_availability"] = curve
        print(
            f"[perf] kv crash gate: availability {rf2['availability']:.4f} "
            f"(target >= {crash_gate['min_availability']}), "
            f"lost writes {rf2['writes_lost']}, recovery "
            f"{rf2['recovery_s'] * 1e6:.0f}us, restored {rf2['factor_restored']}",
            flush=True,
        )
    else:
        crash_gate.update(
            {"measured_availability": None, "passed": None, "skipped": True}
        )
    report["gates"].append(crash_gate)

    if sweep:
        report["scaling"] = shard_sweep(scale=scale, repeat=max(1, repeat - 1))

    if kv_sweep:
        from repro.bench.kv_bench import offered_load_sweep

        report["kv_capacity"] = offered_load_sweep(scale, "coroutines")

    # causal-span attribution per backend (Fig. 3a workload): where the
    # simulated round-trip time goes, plus a cross-backend fingerprint
    # check — a divergence here is a determinism bug, same as above
    from repro.tools.report import analyze_workload

    span_section: dict = {}
    for backend in matrix:
        rep = analyze_workload(
            "fig3a", backend, shards if backend == "sharded" else None
        )
        span_section[backend] = {
            "fingerprint": rep["fingerprint"],
            "n_spans": rep["n_spans"],
            "attribution_s": rep["attribution_s"],
        }
    fps = {b: s["fingerprint"] for b, s in span_section.items()}
    if len(set(fps.values())) > 1:
        raise AssertionError(
            f"span fingerprints diverged across backends: {fps} — "
            "fix determinism first"
        )
    report["span_attribution"] = span_section

    # telemetry rollup digest: same bit-identity bar as the results and
    # span fingerprints, plus a compact totals record for the artifact
    if "sharded" in matrix:
        prev = os.environ.get(SHARDS_ENV)
        os.environ[SHARDS_ENV] = str(shards)
        try:
            report["telemetry"] = telemetry_digest(matrix)
        finally:
            if prev is None:
                os.environ.pop(SHARDS_ENV, None)
            else:
                os.environ[SHARDS_ENV] = prev
    else:
        report["telemetry"] = telemetry_digest(matrix)
    tl = report["telemetry"]
    print(
        f"[perf] telemetry digest: {tl['n_ranks']} ranks, "
        f"{tl['totals']['windows']} windows, fingerprint {tl['fingerprint']} "
        f"(identical across {len(tl['backends'])} backends)",
        flush=True,
    )

    # per-phase hot-path breakdown (REPRO_PROFILE=1 or profile=True): an
    # extra *untimed* cProfile pass of the gate workload on the reference
    # backend, classified by layer, so a future gate regression is
    # attributable from the CI artifact alone
    from repro.util.profile import profile_phase_breakdown, profiling_enabled

    if profiling_enabled() if profile is None else profile:
        gate_fn = WORKLOADS[GATE_WORKLOAD]
        breakdown = profile_phase_breakdown(lambda: gate_fn(scale, ref))
        breakdown["workload"] = GATE_WORKLOAD
        breakdown["backend"] = ref
        report["profile_phases"] = breakdown
        fr = breakdown["fractions"]
        print(
            "[perf] hot-path phases ({}/{}): ".format(GATE_WORKLOAD, ref)
            + "  ".join(f"{k}={fr[k]:.1%}" for k in sorted(fr, key=fr.get, reverse=True)),
            flush=True,
        )

    with open(out_path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[perf] wrote {out_path}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=("tiny", "full", "xl"), default="tiny")
    ap.add_argument("--workloads", nargs="*", choices=list(WORKLOADS), default=None)
    ap.add_argument("--repeat", type=int, default=2)
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument(
        "--backends",
        nargs="*",
        choices=BACKENDS,
        default=None,
        help="restrict the backend matrix; first entry is the reference",
    )
    ap.add_argument(
        "--shards",
        type=int,
        default=None,
        help=f"sharded-backend worker count (default: ${SHARDS_ENV} or {DEFAULT_SHARDS})",
    )
    ap.add_argument(
        "--profile",
        action="store_true",
        default=None,
        help="embed a per-phase hot-path breakdown of the gate workload "
        "in the report (default: $REPRO_PROFILE)",
    )
    ap.add_argument(
        "--shard-sweep",
        action="store_true",
        help=f"also run {SWEEP_WORKLOAD} at shards in {SWEEP_SHARD_COUNTS} "
        "and record the scaling curve under the report's 'scaling' key",
    )
    ap.add_argument(
        "--kv-sweep",
        action="store_true",
        help="also run the kvservice offered-load sweep (saturation knee, "
        "capacity per rank, tail latency) under the report's 'kv_capacity' key",
    )
    ap.add_argument(
        "--strict-gates",
        action="store_true",
        help="exit non-zero when a non-advisory gate fails (its cpu/shard "
        "requirements are met and the measured speedup misses the target); "
        "advisory entries stay informational",
    )
    args = ap.parse_args(argv)
    report = run_harness(
        args.scale,
        args.workloads,
        args.repeat,
        args.out,
        args.backends,
        args.shards,
        profile=args.profile,
        sweep=args.shard_sweep,
        kv_sweep=args.kv_sweep,
    )
    if args.strict_gates:
        failed = [
            g
            for g in report["gates"]
            if not g.get("skipped") and not g.get("advisory") and g["passed"] is False
        ]
        for g in failed:
            if "target_speedup" in g:
                detail = (
                    f"measured {g.get('measured_speedup')}x < target "
                    f"{g['target_speedup']}x"
                )
            else:
                detail = (
                    f"availability {g.get('measured_availability')} < "
                    f"{g.get('min_availability')} (lost {g.get('writes_lost')}, "
                    f"restored {g.get('factor_restored')})"
                )
            print(f"[perf] GATE FAIL {g['name']}: {detail}",
                  file=sys.stderr, flush=True)
        if failed:
            return 1
        print("[perf] strict gates: every non-advisory gate passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
