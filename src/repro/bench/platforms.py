"""Benchmark platform presets matching the paper's testbed (§IV-A).

Cori Haswell: 32 ranks/node (2x16-core Xeon E5-2698v3), and Cori KNL:
68-core Xeon Phi 7250 (the DHT runs use all 68; extend-add uses 64/node).
The simulated scale is reduced relative to the paper (see DESIGN.md §2) but
the node geometry and CPU-speed ratio are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gasnet.cpumodel import CpuModel, platform_cpu


@dataclass(frozen=True)
class PlatformSpec:
    """One named platform configuration for benchmarks."""

    name: str
    ppn_dht: int  # processes/node for the DHT runs
    ppn_eadd: int  # processes/node for the extend-add runs

    @property
    def cpu(self) -> CpuModel:
        return platform_cpu(self.name)


PLATFORMS = {
    "haswell": PlatformSpec(name="haswell", ppn_dht=32, ppn_eadd=32),
    "knl": PlatformSpec(name="knl", ppn_dht=68, ppn_eadd=64),
}
