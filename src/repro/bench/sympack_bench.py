"""Fig. 9: symPACK strong scaling, UPC++ v0.1 vs v1.0.

The paper ports symPACK from the predecessor UPC++ (asyncs + events) to
v1.0 (futures + RPC) and finds the two "nearly identical" — average
difference 0.7% across job sizes, with v1.0 up to 7.2% faster at 256
processes — i.e. the redesigned runtime adds no measurable overhead.

Here the same multifrontal Cholesky skeleton runs over both backends on
the ``Flan_1565`` proxy problem (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Sequence

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import build_eadd_plan
from repro.apps.sparse.sympack import sympack_run
from repro.bench.platforms import PLATFORMS
from repro.util.records import BenchTable

#: default process counts (paper: 4 ... 1024)
FIG9_PROCS = [4, 8, 16, 32, 64]
#: proxy problem dimensions for Flan_1565 (see matrices.proxy_flan);
#: sized so dense factorization flops dominate, as in the real solver
FIG9_GRID = (20, 20, 12)
FIG9_LEAF = 60


def sympack_times(
    n_procs: int,
    platform: str = "haswell",
    grid: Sequence[int] = FIG9_GRID,
    leaf: int = FIG9_LEAF,
) -> Dict[str, float]:
    """Elapsed simulated seconds of one factorization sweep per backend."""
    plan = build_eadd_plan(*grid, n_procs=n_procs, leaf_size=leaf)
    ppn = PLATFORMS[platform].ppn_eadd

    t_v1 = max(
        upcxx.run_spmd(lambda: sympack_run(plan, "v1"), n_procs, platform=platform, ppn=ppn)
    )
    t_v01 = max(
        upcxx.run_spmd(lambda: sympack_run(plan, "v01"), n_procs, platform=platform, ppn=ppn)
    )
    return {"UPC++ v1.0": t_v1, "UPC++ v0.1": t_v01}


def run_fig9(
    platform: str = "haswell",
    procs: Sequence[int] = FIG9_PROCS,
    grid: Sequence[int] = FIG9_GRID,
    leaf: int = FIG9_LEAF,
) -> BenchTable:
    """Fig. 9: symPACK time vs process count for both UPC++ generations."""
    table = BenchTable(
        title=f"Fig 9 ({platform}): symPACK strong scaling (Flan_1565 proxy)",
        x_name="processes",
        y_name="time (s)",
    )
    s_v01 = table.new_series("UPC++ v0.1")
    s_v1 = table.new_series("UPC++ v1.0")
    for p in procs:
        times = sympack_times(p, platform, grid, leaf)
        s_v01.add(p, times["UPC++ v0.1"])
        s_v1.add(p, times["UPC++ v1.0"])
    return table


def average_difference(table: BenchTable) -> float:
    """Mean |v1 - v01| / v01 across job sizes (the paper reports 0.7%)."""
    s1 = table.get("UPC++ v1.0")
    s0 = table.get("UPC++ v0.1")
    diffs = [abs(a - b) / b for a, b in zip(s1.ys, s0.ys)]
    return sum(diffs) / len(diffs)
