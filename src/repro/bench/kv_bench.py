"""KV-service benchmarking: aggregation ablation + offered-load sweep.

Two measurements, both in *simulated* time (deterministic, so they are
host-independent and safe to hard-gate):

- :func:`aggregation_ablation` — the Fig. 9 motif reproduced through the
  runtime aggregation layer: an identical write-heavy workload served
  once with destination batching (batch >= 64) and once as per-op RPC
  (batch 1 through the same code path), reporting the simulated
  updates/s ratio.  This feeds the non-advisory
  ``kv_aggregation_vs_rpc`` gate in ``BENCH_perf.json``.
- :func:`offered_load_sweep` — the saturation-knee procedure
  (docs/kvservice.md): walk offered load up a multiplier ladder at a
  fixed service configuration, recording achieved throughput and
  p50/p95/p99/p999 request latency (cross-rank merged
  :class:`DwellHistogram`) per point.  The *knee* is the first point
  whose achieved throughput falls below ``KNEE_EFFICIENCY`` of offered;
  capacity is the best achieved throughput on the curve.

Standalone usage::

    PYTHONPATH=src python -m repro.bench.kv_bench --scale tiny
    PYTHONPATH=src python -m repro.bench.kv_bench --scale tiny --sweep
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

import repro.upcxx as upcxx
from repro.apps.kvservice import default_config, kv_rank_body
from repro.util.metrics import DwellHistogram
from repro.util.telemetry import Telemetry

#: offered-load multipliers the sweep walks (relative to the scale's base
#: per-rank rate); spans well below and well past the saturation knee
SWEEP_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: achieved/offered ratio below which a sweep point counts as saturated
KNEE_EFFICIENCY = 0.9

#: write-latency drain wait is part of serving time; seed is fixed so the
#: measurement is one reproducible simulation, not a statistical sample
KV_SEED = 7

#: canonical single-crash chaos point: one rank fail-stops mid-run (the
#: tiny scale serves ~1.3 ms, so 0.35 ms is comfortably mid-stream)
CRASH_RANK = 3
CRASH_T_S = 3.5e-4

#: replication factors the crash-availability sweep walks
CRASH_FACTORS = (1, 2, 3)


def run_kv(cfg: dict, backend: str = "coroutines", seed: int = KV_SEED,
           spans=None, faults=None, telemetry=None) -> Tuple[list, dict]:
    """One kvservice run; returns (per-rank records, sched stats)."""
    stats: dict = {}
    results = upcxx.run_spmd(
        lambda: kv_rank_body(cfg),
        cfg["ranks"],
        platform="haswell",
        ppn=cfg["ppn"],
        seed=seed,
        backend=backend,
        sched_stats=stats,
        telemetry=telemetry,
        spans=spans,
        faults=faults,
    )
    return list(results), stats


def _merge_latencies(results: Sequence[dict], field: str) -> DwellHistogram:
    h = DwellHistogram()
    for r in results:
        h.merge(DwellHistogram.from_dict(r[field]))
    return h


def summarize_point(cfg: dict, results: Sequence[dict]) -> dict:
    """Fold per-rank records into one sweep point (JSON-ready).

    ``results`` may contain ``None`` slots: under a survivable crash plan
    a dead rank returns no record, and the point is computed over the
    surviving front ends (availability = fraction of *their* accepted
    requests that were served).
    """
    results = [r for r in results if r is not None]
    total = sum(r["reads"] + r["writes"] for r in results)
    t_serve = max(r["t_serve_s"] for r in results)
    lat = _merge_latencies(results, "read_lat")
    lat.merge(_merge_latencies(results, "write_lat"))
    offered = cfg["ranks"] * cfg["rate"]
    achieved = total / t_serve if t_serve > 0 else 0.0
    return {
        "offered_rps": offered,
        "achieved_rps": round(achieved, 1),
        "utilization": round(achieved / offered, 4) if offered else 0.0,
        "n_requests": total,
        "t_serve_s": t_serve,
        "p50_s": lat.percentile(50),
        "p95_s": lat.percentile(95),
        "p99_s": lat.percentile(99),
        "p999_s": lat.percentile(99.9),
        "cache_hits": sum(r["cache_hits"] for r in results),
        "cache_misses": sum(r["cache_misses"] for r in results),
        "credit_stalls": sum(r["credit_stalls"] for r in results),
        "batches_sent": sum(r["batches_sent"] for r in results),
        # -- availability / robustness (zero-valued on calm runs) ----------
        "requests_issued": sum(r["requests_issued"] for r in results),
        "requests_served": sum(r["requests_served"] for r in results),
        "requests_shed": sum(r["requests_shed"] for r in results),
        "shed_fraction": _ratio(
            sum(r["requests_shed"] for r in results),
            sum(r["requests_issued"] + r["requests_shed"] for r in results),
        ),
        "writes_lost": sum(r["writes_lost"] for r in results),
        "availability": _ratio(
            sum(r["requests_served"] for r in results),
            sum(r["requests_issued"] for r in results),
            empty=1.0,
        ),
        "failover_reads": sum(r["failover_reads"] for r in results),
        "rereplicated_keys": sum(r["rereplicated_keys"] for r in results),
        "synced_keys": sum(r["synced_keys"] for r in results),
        "recovery_s": max(r["recovery_s"] for r in results),
        "factor_restored": all(r["factor_restored"] for r in results),
    }


def _ratio(num: float, den: float, empty: float = 0.0) -> float:
    return num / den if den else empty


# ------------------------------------------------------------------ ablation
def aggregation_ablation(scale: str = "tiny", backend: str = "coroutines") -> dict:
    """Write-heavy A/B: aggregated (batch >= 64) vs per-op RPC baseline.

    The offered rate is set far above capacity so both variants run
    injection-bound (arrival pacing never idles the loop) and the ratio
    isolates the batching win, as in the Fig. 9 ablation.
    """
    cfg = default_config(scale)
    cfg.update({
        "read_fraction": 0.0,   # pure update stream (the HipMer shape)
        "burst_prob": 0.0,
        "rate": 1e9,            # saturating: pacing never sleeps
        "cache_capacity": 0,    # isolate write-path batching
    })
    agg_cfg = dict(cfg, aggregate=True)
    rpc_cfg = dict(cfg, aggregate=False)
    out = {}
    for name, c in (("aggregated", agg_cfg), ("per_op_rpc", rpc_cfg)):
        results, _ = run_kv(c, backend)
        total = sum(r["writes"] for r in results)
        t_serve = max(r["t_serve_s"] for r in results)
        out[name] = {
            "updates_per_s": round(total / t_serve, 1),
            "batches_sent": sum(r["batches_sent"] for r in results),
            "n_updates": total,
            "batch_size": c["batch_size"] if c["aggregate"] else 1,
        }
    out["speedup"] = round(
        out["aggregated"]["updates_per_s"] / out["per_op_rpc"]["updates_per_s"], 3
    )
    out["scale"] = scale
    out["ranks"] = cfg["ranks"]
    return out


# --------------------------------------------------------------------- sweep
def offered_load_sweep(
    scale: str = "tiny",
    backend: str = "coroutines",
    multipliers: Sequence[float] = SWEEP_MULTIPLIERS,
) -> dict:
    """Walk offered load past saturation; record the capacity curve."""
    base = default_config(scale)
    curve: List[dict] = []
    for m in multipliers:
        cfg = dict(base, rate=base["rate"] * m)
        results, _ = run_kv(cfg, backend)
        point = summarize_point(cfg, results)
        point["multiplier"] = m
        curve.append(point)
        print(
            f"[kv] x{m:<4g} offered {point['offered_rps'] / 1e6:.2f}M req/s -> "
            f"achieved {point['achieved_rps'] / 1e6:.2f}M "
            f"(util {point['utilization']:.2f}), "
            f"p50 {point['p50_s'] * 1e6:.1f}us p99 {point['p99_s'] * 1e6:.1f}us "
            f"p999 {point['p999_s'] * 1e6:.1f}us",
            flush=True,
        )
    knee = next((p for p in curve if p["utilization"] < KNEE_EFFICIENCY), None)
    capacity = max(p["achieved_rps"] for p in curve)
    return {
        "scale": scale,
        "ranks": base["ranks"],
        "base_rate_rps": base["rate"],
        "knee_efficiency": KNEE_EFFICIENCY,
        "curve": curve,
        "knee": None if knee is None else {
            "offered_rps": knee["offered_rps"],
            "achieved_rps": knee["achieved_rps"],
            "multiplier": knee["multiplier"],
        },
        "capacity_rps": capacity,
        "capacity_per_rank_rps": round(capacity / base["ranks"], 1),
    }


def measure_point(scale: str, multiplier: float,
                  backend: str = "coroutines") -> dict:
    """One offered-load point (JSON-ready), for ``repro.tools.health --kv``."""
    base = default_config(scale)
    cfg = dict(base, rate=base["rate"] * multiplier)
    results, _ = run_kv(cfg, backend)
    point = summarize_point(cfg, results)
    point["multiplier"] = multiplier
    return point


# --------------------------------------------------------------------- chaos
def crash_spec(rank: int = CRASH_RANK, t: float = CRASH_T_S) -> str:
    """Survivable single-crash fault spec for the chaos measurements."""
    return f"seed={KV_SEED},crash={rank}@{t:g},survive=1"


def measure_crash_point(
    scale: str = "tiny",
    backend: str = "coroutines",
    replication: int = 2,
    crash_rank: int = CRASH_RANK,
    crash_t: float = CRASH_T_S,
) -> dict:
    """One survivable-crash run: availability + recovery measurements.

    The service runs the scale's base offered load while ``crash_rank``
    fail-stops at ``crash_t``; the point reports the fraction of the
    surviving front ends' requests that were served, the lost-write
    count, and the detection-to-factor-restored recovery time.  Feeds
    the ``kv_crash_availability`` perf gate and
    ``repro.tools.health --kv`` in CI's chaos smoke.
    """
    cfg = dict(default_config(scale), replication=replication)
    tel = Telemetry()
    results, _ = run_kv(
        cfg, backend, faults=crash_spec(crash_rank, crash_t), telemetry=tel
    )
    point = summarize_point(cfg, results)
    point.update(
        multiplier=1.0,
        replication=replication,
        crash_rank=crash_rank,
        crash_t_s=crash_t,
        survivors=sum(1 for r in results if r is not None),
        ranks=cfg["ranks"],
        verdict=(tel.blackbox or {}).get("verdict", {}).get("type"),
    )
    return point


def crash_availability_sweep(
    scale: str = "tiny",
    backend: str = "coroutines",
    factors: Sequence[int] = CRASH_FACTORS,
) -> dict:
    """Availability/recovery curve across replication factors.

    The rf=1 point documents the exposure (reads of the dead rank's
    shard serve defaults, covered writes are lost); rf>=2 is the
    availability story the replication layer exists for.
    """
    points: List[dict] = []
    for rf in factors:
        p = measure_crash_point(scale, backend, rf)
        points.append(p)
        print(
            f"[kv] rf={rf}: availability {p['availability']:.4f}, "
            f"lost writes {p['writes_lost']}, "
            f"failover reads {p['failover_reads']}, "
            f"rereplicated {p['rereplicated_keys']} keys, "
            f"recovery {p['recovery_s'] * 1e6:.0f}us, "
            f"restored {p['factor_restored']}",
            flush=True,
        )
    return {
        "scale": scale,
        "ranks": default_config(scale)["ranks"],
        "crash": {"rank": CRASH_RANK, "t_s": CRASH_T_S, "spec": crash_spec()},
        "points": points,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=("tiny", "full", "xl"), default="tiny")
    ap.add_argument("--backend", default="coroutines",
                    choices=("coroutines", "threads", "sharded"))
    ap.add_argument("--sweep", action="store_true",
                    help="run the offered-load sweep instead of the ablation")
    ap.add_argument("--point", type=float, default=None, metavar="MULT",
                    help="measure one offered-load point at MULT x the base "
                    "rate (feeds repro.tools.health --kv)")
    ap.add_argument("--crash", action="store_true",
                    help="run the crash availability sweep across "
                    "replication factors")
    ap.add_argument("--crash-point", type=int, default=None, metavar="RF",
                    help="one survivable-crash point at replication RF "
                    "(feeds the CI chaos-smoke availability gate)")
    ap.add_argument("--out", default=None, help="write JSON here")
    args = ap.parse_args(argv)
    if args.crash_point is not None:
        doc = measure_crash_point(args.scale, args.backend,
                                  replication=args.crash_point)
        print(
            f"[kv] crash rf={args.crash_point}: "
            f"availability {doc['availability']:.4f}, "
            f"lost {doc['writes_lost']}, recovery "
            f"{doc['recovery_s'] * 1e6:.0f}us, "
            f"restored {doc['factor_restored']}",
            flush=True,
        )
    elif args.crash:
        doc = crash_availability_sweep(args.scale, args.backend)
    elif args.point is not None:
        doc = measure_point(args.scale, args.point, args.backend)
        print(
            f"[kv] x{args.point:g}: utilization {doc['utilization']:.3f}, "
            f"p99 {doc['p99_s'] * 1e6:.1f}us p999 {doc['p999_s'] * 1e6:.1f}us",
            flush=True,
        )
    elif args.sweep:
        doc = offered_load_sweep(args.scale, args.backend)
    else:
        doc = aggregation_ablation(args.scale, args.backend)
        print(
            f"[kv] aggregation {doc['aggregated']['updates_per_s'] / 1e6:.2f}M vs "
            f"per-op RPC {doc['per_op_rpc']['updates_per_s'] / 1e6:.2f}M updates/s "
            f"-> {doc['speedup']}x",
            flush=True,
        )
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[kv] wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
