"""Benchmark harness: one module per paper experiment.

Each benchmark module exposes a ``run_*`` function returning a
:class:`repro.util.records.BenchTable` whose series correspond one-to-one
with the lines of the paper's figure.  The pytest-benchmark entries in
``benchmarks/`` call these, assert the paper's qualitative claims, and
write the rendered tables under ``results/``.
"""

from repro.bench.platforms import PLATFORMS, PlatformSpec

__all__ = ["PLATFORMS", "PlatformSpec"]
