"""Fig. 8: strong scaling of extend-add (three variants).

The paper runs the extend-add sweep of ``audikw_1``'s frontal tree (data
distribution from STRUMPACK) with 32/64 processes per node on Haswell/KNL,
1–2048 processes.  Here the tree comes from the scaled 3-D proxy problem
(DESIGN.md §2) and process counts sweep 1–128 by default; the quantities
that matter — who wins and by what factor, and how the gap grows with
scale — are preserved.

Each data point is one full bottom-up tree sweep: the same packing,
the same data volume, the same accumulation work in every variant.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import EaddPlan, build_eadd_plan, mpi_eadd_run, upcxx_eadd_run
from repro.bench.harness import Observation
from repro.bench.platforms import PLATFORMS
from repro.mpisim import run_mpi
from repro.util.records import BenchTable

#: default process counts (paper: up to 2048).  Set REPRO_MAX_PROCS to
#: extend the sweep (e.g. REPRO_MAX_PROCS=512 doubles it twice); larger
#: sweeps grow simulation wall time roughly linearly in total events.
FIG8_PROCS = [1, 2, 4, 8, 16, 32, 64, 128]
_cap = int(os.environ.get("REPRO_MAX_PROCS", "0"))
while _cap and FIG8_PROCS[-1] * 2 <= _cap:
    FIG8_PROCS.append(FIG8_PROCS[-1] * 2)
#: proxy problem dimensions for audikw_1 (see matrices.proxy_audikw)
FIG8_GRID = (16, 16, 12)
FIG8_LEAF = 48


def eadd_times(
    n_procs: int,
    platform: str = "haswell",
    grid: Sequence[int] = FIG8_GRID,
    leaf: int = FIG8_LEAF,
    plan: EaddPlan = None,
    metrics=None,
    trace=None,
) -> Dict[str, float]:
    """Elapsed simulated seconds of one sweep for each variant.

    ``metrics``/``trace`` observe the UPC++ variant's progress engine
    (the MPI runs are out of scope for the op-lifecycle instrumentation).
    """
    if plan is None:
        plan = build_eadd_plan(*grid, n_procs=n_procs, leaf_size=leaf)
    ppn = PLATFORMS[platform].ppn_eadd

    def upcxx_body():
        return upcxx_eadd_run(plan)

    t_upcxx = max(
        upcxx.run_spmd(
            upcxx_body, n_procs, platform=platform, ppn=ppn, metrics=metrics, trace=trace
        )
    )
    t_a2a = max(
        run_mpi(lambda: mpi_eadd_run(plan, "alltoallv"), n_procs, platform=platform, ppn=ppn)
    )
    t_p2p = max(
        run_mpi(lambda: mpi_eadd_run(plan, "p2p"), n_procs, platform=platform, ppn=ppn)
    )
    return {"UPC++ RPC": t_upcxx, "MPI Alltoallv": t_a2a, "MPI P2P": t_p2p}


def run_fig8(
    platform: str = "haswell",
    procs: Sequence[int] = FIG8_PROCS,
    grid: Sequence[int] = FIG8_GRID,
    leaf: int = FIG8_LEAF,
) -> BenchTable:
    """Fig. 8 (one panel): extend-add time vs process count, 3 variants."""
    table = BenchTable(
        title=f"Fig 8 ({platform}): extend-add strong scaling (audikw_1 proxy)",
        x_name="processes",
        y_name="time (s)",
    )
    s_a2a = table.new_series("MPI Alltoallv")
    s_p2p = table.new_series("MPI P2P")
    s_upcxx = table.new_series("UPC++ RPC")
    for p in procs:
        # observe the largest configuration when REPRO_METRICS=1
        obs = Observation.maybe(f"fig8_{platform}_eadd") if p == procs[-1] else None
        times = eadd_times(
            p, platform, grid, leaf, metrics=obs and obs.metrics, trace=obs and obs.trace
        )
        if obs is not None:
            obs.save()
        s_a2a.add(p, times["MPI Alltoallv"])
        s_p2p.add(p, times["MPI P2P"])
        s_upcxx.add(p, times["UPC++ RPC"])
    return table


def speedup_at_scale(table: BenchTable, p: int) -> Dict[str, float]:
    """UPC++ speedup vs each MPI variant at ``p`` processes."""
    u = table.get("UPC++ RPC").y_at(p)
    return {
        "vs_alltoallv": table.get("MPI Alltoallv").y_at(p) / u,
        "vs_p2p": table.get("MPI P2P").y_at(p) / u,
    }
