"""v0.1 events: readiness-only completion objects.

An event is a counter the program must size and manage itself (the
"burden of explicitly managing event-object lifetime" the paper notes).
Unlike a v1.0 promise there is no associated value and no chaining — the
only operations are ``incref``/``signal``/``test``/``wait``.
"""

from __future__ import annotations

from repro.upcxx.runtime import current_runtime
from repro.util.units import US

#: per-operation event bookkeeping cost (v0.1's event registry was a
#: global table with locking; slightly heavier than v1.0 promises)
V01_EVENT_OVERHEAD = 0.10 * US


class Event:
    """A v0.1-style completion event (counting semantics)."""

    __slots__ = ("_pending",)

    def __init__(self, count: int = 0):
        if count < 0:
            raise ValueError(f"negative event count: {count}")
        self._pending = count

    def incref(self, n: int = 1) -> None:
        """Register ``n`` more operations against this event."""
        if n < 0:
            raise ValueError(f"negative incref: {n}")
        self._pending += n

    def signal(self, n: int = 1) -> None:
        """Retire ``n`` operations (runtime side)."""
        if n > self._pending:
            raise RuntimeError(f"event over-signaled: {self._pending} pending, {n} signaled")
        self._pending -= n

    def test(self) -> bool:
        """Nonblocking readiness check (makes user progress)."""
        if self._pending:
            current_runtime().progress()
        return self._pending == 0

    def isdone(self) -> bool:
        return self._pending == 0

    def wait(self) -> None:
        """Spin user progress until all registered operations signaled."""
        rt = current_runtime()
        rt.charge_sw(V01_EVENT_OVERHEAD)
        rt.wait_quiet(lambda: self._pending == 0, reason="upcxx_v01 event wait")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<v01.Event pending={self._pending}>"
