"""repro.upcxx_v01 — emulation of the predecessor UPC++ v0.1 (Zheng et al.).

The paper's §V-A contrasts v1.0 against its 2014 predecessor; Fig. 9
benchmarks symPACK over both.  This package reproduces the v0.1 API
surface and its documented *limitations*:

- **events, not futures**: an :class:`Event` carries readiness only — no
  values — and its lifetime is managed explicitly by the programmer;
- **asyncs cannot return values** (:func:`async_task`): getting data back
  requires a second async or an RMA, which is why the v0.1 DHT needs a
  *blocking* remote allocation (:func:`allocate_remote`) followed by a
  *blocking* put — the latency/overlap cost the paper calls out;
- **no view-based serialization**: payloads are copied at both ends;
- **shared arrays** (:class:`SharedArray`): the non-scalable construct the
  new version dropped — every rank stores a base pointer for every other
  rank's piece.

It is implemented over the same runtime/conduit as v1.0 with a small
extra per-operation event-management overhead, so Fig. 9's
"near-identical, v1.0 marginally ahead" comparison can be reproduced
honestly.
"""

from repro.upcxx_v01.events import Event, V01_EVENT_OVERHEAD
from repro.upcxx_v01.asyncs import async_task, async_copy, allocate_remote, copy_blocking
from repro.upcxx_v01.shared_array import SharedArray

__all__ = [
    "Event",
    "V01_EVENT_OVERHEAD",
    "async_task",
    "async_copy",
    "allocate_remote",
    "copy_blocking",
    "SharedArray",
]
