"""v0.1 shared arrays — the non-scalable construct v1.0 dropped.

A :class:`SharedArray` is a global array of ``n`` elements block-distributed
over all ranks.  Construction is collective and **every rank stores the
base pointer of every other rank's piece** — O(P) state per rank, the exact
scalability problem the paper's §II cites as a reason v1.0 replaced shared
arrays with distributed objects.  Included for the v0.1 comparison and to
let tests demonstrate the footprint difference.
"""

from __future__ import annotations

from typing import List

import numpy as np

import repro.upcxx as upcxx
from repro.upcxx.global_ptr import GlobalPtr


class SharedArray:
    """A v0.1-style global array of ``dtype`` elements.

    Elements are block-distributed: rank r owns indices
    ``[r*chunk, min((r+1)*chunk, n))``.
    """

    def __init__(self, n: int, dtype=np.float64):
        if n < 1:
            raise ValueError(f"array length must be >= 1, got {n}")
        rt = upcxx.current_runtime()
        self.rt = rt
        self.n = n
        self.dtype = np.dtype(dtype)
        p = rt.world.n_ranks
        self.chunk = -(-n // p)
        mine = max(0, min(self.chunk, n - rt.rank * self.chunk))
        local = upcxx.new_array(self.dtype, max(1, mine)) if mine else None
        # the non-scalable part: allgather every rank's base pointer
        self.bases: List[GlobalPtr] = [
            upcxx.broadcast(local, root=r).wait() for r in range(p)
        ]
        upcxx.barrier()

    def owner(self, i: int) -> int:
        self._check(i)
        return i // self.chunk

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")

    def _slot(self, i: int) -> GlobalPtr:
        base = self.bases[i // self.chunk]
        return base + (i % self.chunk)

    def get(self, i: int):
        """Blocking element read (v0.1 allowed implicit-feeling access)."""
        return upcxx.rget(self._slot(i), count=1).wait()

    def put(self, i: int, value) -> None:
        """Blocking element write."""
        upcxx.rput(value, self._slot(i)).wait()

    def local_view(self) -> np.ndarray:
        """This rank's piece as a numpy view."""
        base = self.bases[self.rt.rank]
        if base is None:
            return np.empty(0, dtype=self.dtype)
        mine = max(0, min(self.chunk, self.n - self.rt.rank * self.chunk))
        return base.local()[:mine]

    def replicated_state_bytes(self) -> int:
        """Per-rank metadata footprint — O(P), the scalability problem."""
        return len(self.bases) * 24  # one (rank, offset, len) per base
