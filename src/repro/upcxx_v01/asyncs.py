"""v0.1 asyncs and data movement.

``async_task(rank, fn, *args, ack=event)`` is the old ``async(place)(...)``:
it ships a function for remote execution but **cannot return a value**;
completion is observable only through an explicitly managed event, which
costs an acknowledgment message.  Payload serialization predates views, so
argument bytes are copied at both ends.

``allocate_remote`` and ``copy_blocking`` reproduce the blocking remote
allocation + blocking RMA that the paper's §V-A identifies as the reason
the old DHT insert "incurs both a blocking remote allocation and a
blocking RMA, which negatively impact latency and overlap potential".
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

import repro.upcxx as upcxx
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx_v01.events import Event, V01_EVENT_OVERHEAD


def _signal_back(token: int) -> None:
    """Internal: ack AM body, executed back at the initiator."""
    rt = upcxx.current_runtime()
    table = rt.__dict__.setdefault("_v01_acks", {})
    event = table.pop(token, None)
    if event is not None:
        event.signal(1)


def async_task(target: int, fn: Callable, *args, ack: Optional[Event] = None) -> None:
    """Ship ``fn(*args)`` to ``target`` (no return value — v0.1 semantics).

    With ``ack``, one count is registered on the event and signaled when
    the remote execution completed (a dedicated ack message).
    """
    rt = upcxx.current_runtime()
    rt.charge_sw(V01_EVENT_OVERHEAD)  # event/async registry bookkeeping
    if ack is None:
        upcxx.rpc_ff(target, _run_no_view, fn, list(args))
        return
    ack.incref(1)
    table = rt.__dict__.setdefault("_v01_acks", {})
    token = rt.next_token()
    table[token] = ack
    upcxx.rpc_ff(target, _run_then_ack, fn, list(args), rt.rank, token)


def _run_no_view(fn: Callable, args: list) -> None:
    """Remote body for a v0.1 async.

    v0.1 had no zero-copy views, but since the payload travels as plain
    (non-view) arguments, the RPC dispatch layer already charges the full
    deserialization copy; only the async-table bookkeeping is added here.
    """
    rt = upcxx.current_runtime()
    rt.charge_sw(V01_EVENT_OVERHEAD)
    fn(*args)


def _run_then_ack(fn: Callable, args: list, reply_to: int, token: int) -> None:
    _run_no_view(fn, args)
    upcxx.rpc_ff(reply_to, _signal_back, token)


def async_copy(src: GlobalPtr, dst: GlobalPtr, nbytes: int, ack: Optional[Event] = None) -> None:
    """v0.1 ``async_copy``: one-sided byte copy signaled through an event."""
    rt = upcxx.current_runtime()
    rt.charge_sw(V01_EVENT_OVERHEAD)
    if src.rank == rt.rank:
        data = bytes(rt.conduit.segment(src.rank).read(src.offset, nbytes))
        fut = upcxx.rput(data, dst.cast(np.uint8))
    elif dst.rank == rt.rank:
        fut = upcxx.rget(src.cast(np.uint8), count=nbytes).then(
            lambda arr: rt.conduit.segment(dst.rank).write(dst.offset, arr.tobytes())
        )
    else:
        raise ValueError("v0.1 async_copy requires a local endpoint")
    if ack is not None:
        ack.incref(1)
        fut.then(lambda *_: ack.signal(1))


def copy_blocking(src: GlobalPtr, dst: GlobalPtr, nbytes: int) -> None:
    """Blocking copy (the old DHT's value transfer)."""
    ev = Event()
    async_copy(src, dst, nbytes, ack=ev)
    ev.wait()


def _do_allocate(nbytes: int) -> GlobalPtr:
    return upcxx.allocate(nbytes)


def allocate_remote(target: int, nbytes: int) -> GlobalPtr:
    """Blocking remote allocation (v0.1 ``allocate(place, n)``).

    v0.1 async could not return values, so the runtime's remote allocate
    was a blocking round trip — exactly the §V-A latency cost.
    """
    rt = upcxx.current_runtime()
    rt.charge_sw(V01_EVENT_OVERHEAD)
    if target == rt.rank:
        return upcxx.allocate(nbytes)
    return upcxx.rpc(target, _do_allocate, nbytes).wait()
