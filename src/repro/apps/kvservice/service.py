"""The KV service: a DHT front end over the runtime aggregation layer.

Every rank is both a *front end* (serving a :class:`TrafficModel` client
stream) and a *shard owner* (holding a slice of the key space).  Writes
flow through an :class:`repro.upcxx.aggregator.AggStore` with
last-writer-wins combine — destination-batched, dwell-bounded, credit
flow-controlled — and reads go through its hot-key cache with
watcher-based invalidation.

SLO measurement is open loop: each request is stamped with its *arrival*
time from the traffic model, and its latency is ``completion - arrival``
(sojourn time), so queueing delay from a saturated service is measured,
not hidden.  Write completion is the aggregation ack of the batch that
carried the update; read completion is future fulfillment (cache hits
complete inline).  Latencies feed per-op-kind
:class:`repro.util.metrics.DwellHistogram` instances whose p50/p95/p99/
p999 come out in :meth:`KvService.result`.

``kv_rank_body`` is the SPMD body: it paces the stream in *simulated*
time (sleeping until each arrival via a scheduler timer), issues
requests asynchronously, and drains with the aggregator's counting
quiescence.  Every field of the returned record is a deterministic
function of the simulation, so the three scheduler backends must agree
bit-for-bit — pinned by ``tests/test_apps_kvservice.py`` and the chaos
suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import repro.upcxx as upcxx
from repro.apps.kvservice.traffic import TrafficModel
from repro.upcxx.aggregator import AggStore
from repro.util.metrics import DwellHistogram

_SUM_MASK = (1 << 63) - 1

#: request-count scales; "xl" is the million-request configuration
SCALES: Dict[str, dict] = {
    "tiny": {"ranks": 8, "n_requests": 256},
    "full": {"ranks": 16, "n_requests": 4096},
    "xl": {"ranks": 32, "n_requests": 32768},
}


def default_config(scale: str = "tiny") -> dict:
    """Baseline service+traffic configuration for one benchmark scale."""
    cfg = {
        "ppn": 4,
        "rate": 200_000.0,  # offered load per front-end rank (req/s)
        "read_fraction": 0.9,
        "zipf_s": 1.1,
        "n_keys": 1024,
        "burst_prob": 0.02,
        "burst_mult": 4.0,
        "burst_len": 32,
        "batch_size": 64,
        "credits": 8,
        "max_dwell": 40e-6,
        "cache_capacity": 128,
        "aggregate": True,
    }
    cfg.update(SCALES[scale])
    return cfg


class KvService:
    """Front-end + shard-owner state of one rank (collective constructor)."""

    def __init__(
        self,
        *,
        batch_size: int = 64,
        credits: Optional[int] = None,
        max_dwell: Optional[float] = None,
        cache_capacity: int = 0,
        team=None,
    ):
        self._rt = upcxx.current_runtime()
        self._store = AggStore(
            "replace",
            batch_size=batch_size,
            team=team,
            max_dwell=max_dwell,
            credits=credits,
            cache_capacity=cache_capacity,
            on_batch_flushed=self._batch_flushed,
            on_batch_acked=self._batch_acked,
        )
        n = self._store.team.rank_n()
        #: arrival stamps of writes buffered per destination, moved to
        #: ``_inflight`` when their batch flushes (seq-keyed)
        self._pending_w: List[List[float]] = [[] for _ in range(n)]
        self._inflight: Dict[int, List[float]] = {}
        self.read_lat = DwellHistogram()
        self.write_lat = DwellHistogram()
        self.reads_issued = 0
        self.reads_done = 0
        self.writes_issued = 0
        self.writes_done = 0
        self._read_sum = 0

    # ------------------------------------------------------------ operations
    def put(self, key: int, value: int, t_arrival: float) -> None:
        """Issue one write (open loop; completes at its batch's ack)."""
        self.writes_issued += 1
        self._pending_w[self._store.dest_of(key)].append(t_arrival)
        self._store.update(key, value)

    def get(self, key: int, t_arrival: float) -> None:
        """Issue one read (open loop; cache hits complete inline)."""
        self.reads_issued += 1
        self._store.read(key, default=0).then(
            lambda v, t=t_arrival: self._read_done(v, t)
        )

    def poll(self) -> None:
        """Pacing hook: honor the aggregator's dwell deadlines."""
        self._store.poll()

    # ----------------------------------------------------------- completions
    def _batch_flushed(self, dest: int, seq: int, n: int) -> None:
        pend = self._pending_w[dest]
        if pend:
            self._inflight[seq] = pend
            self._pending_w[dest] = []

    def _batch_acked(self, dest: int, seq: int, t_now: float) -> None:
        for t_arr in self._inflight.pop(seq, ()):
            self.write_lat.add(t_now - t_arr)
            self.writes_done += 1

    def _read_done(self, value, t_arrival: float) -> None:
        self.reads_done += 1
        if isinstance(value, int):
            self._read_sum = (self._read_sum + value) & _SUM_MASK
        self.read_lat.add(self._rt.now() - t_arrival)

    # ----------------------------------------------------------------- drain
    def drain(self) -> None:
        """Collective: settle all writes, invalidations, acks, and reads."""
        self._store.quiesce()
        self._rt.wait_quiet(
            lambda: self.reads_done >= self.reads_issued, "kv::drain-reads"
        )
        upcxx.barrier(team=self._store.team)

    # ---------------------------------------------------------------- export
    def result(self) -> dict:
        """Deterministic per-rank record (bit-identical across backends)."""
        s = self._store.stats()
        return {
            "reads": self.reads_done,
            "writes": self.writes_done,
            "read_sum": self._read_sum,
            "shard_size": self._store.local_size(),
            "batches_sent": s["batches_sent"],
            "updates_sent": s["updates_sent"],
            "credit_stalls": s["credit_stalls"],
            "credit_stall_s": s["credit_stall_s"],
            "cache_hits": s["cache_hits"],
            "cache_misses": s["cache_misses"],
            "cache_invalidations": s["cache_invalidations"],
            "read_lat": self.read_lat.as_dict(),
            "write_lat": self.write_lat.as_dict(),
        }


def _sleep_until(rt, t: float) -> None:
    """Simulated-time sleep: park the rank until the clock reaches ``t``."""
    sched = rt.sched
    rank = rt.rank
    sched.post_at(t, lambda: sched.wake(rank, t))
    rt.wait_quiet(lambda: rt.now() >= t, "kv::pace")


def kv_rank_body(cfg: dict) -> dict:
    """SPMD body: pace the configured traffic through the service.

    Returns the rank's deterministic result record plus its elapsed
    simulated serving time (``t_serve_s``) — the driver derives achieved
    throughput from the slowest rank's elapsed time.
    """
    aggregate = cfg.get("aggregate", True)
    svc = KvService(
        batch_size=cfg["batch_size"] if aggregate else 1,
        credits=cfg.get("credits") if aggregate else None,
        max_dwell=cfg.get("max_dwell") if aggregate else None,
        cache_capacity=cfg.get("cache_capacity", 0) if aggregate else 0,
    )
    rt = upcxx.current_runtime()
    tm = TrafficModel(
        rt.rng.spawn("kv-traffic").py,
        rate=cfg["rate"],
        n_requests=cfg["n_requests"],
        read_fraction=cfg.get("read_fraction", 0.9),
        zipf_s=cfg.get("zipf_s", 1.1),
        n_keys=cfg.get("n_keys", 1024),
        burst_prob=cfg.get("burst_prob", 0.0),
        burst_mult=cfg.get("burst_mult", 4.0),
        burst_len=cfg.get("burst_len", 32),
    )
    upcxx.barrier()
    t_start = upcxx.sim_now()
    for dt, op, key, val in tm.requests():
        t_arr = t_start + dt
        if rt.now() < t_arr:
            _sleep_until(rt, t_arr)
        if op == "get":
            svc.get(key, t_arr)
        else:
            svc.put(key, val, t_arr)
        svc.poll()
    svc.drain()
    out = svc.result()
    out["t_serve_s"] = upcxx.sim_now() - t_start
    return out
