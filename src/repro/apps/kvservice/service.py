"""The KV service: a DHT front end over the runtime aggregation layer.

Every rank is both a *front end* (serving a :class:`TrafficModel` client
stream) and a *shard owner* (holding a slice of the key space).  Writes
flow through a :class:`repro.upcxx.replication.ReplicatedStore` with
last-writer-wins combine — destination-batched, dwell-bounded, credit
flow-controlled, fanned out to ``replication`` owners per key — and
reads go through its hot-key cache with watcher-based invalidation,
targeted at the key's current primary.

Robustness features (both off by default, preserving the bare-store
behavior bit-for-bit):

- **Replication + failover** (``replication >= 2``): under a survivable
  :class:`~repro.sim.faults.FaultPlan`, a crashed rank costs neither the
  run nor (with enough copies) any data — outstanding reads retarget to
  a surviving replica, writes complete on the first surviving owner's
  ack, and background re-replication restores the copy count.  A write
  whose every owner died before any ack is counted in ``writes_lost``
  rather than served.
- **Admission control** (``admission_limit``): when the open-loop
  backlog (issued-but-unfinished requests) reaches the limit, new
  requests are rejected with :class:`Overloaded` instead of queueing
  without bound past the saturation knee; the shed rate is reported.

SLO measurement is open loop: each request is stamped with its *arrival*
time from the traffic model, and its latency is ``completion - arrival``
(sojourn time), so queueing delay from a saturated service is measured,
not hidden.  Write completion is the first aggregation ack covering the
update; read completion is future fulfillment (cache hits complete
inline).  Latencies feed per-op-kind
:class:`repro.util.metrics.DwellHistogram` instances whose p50/p95/p99/
p999 come out in :meth:`KvService.result`.

``kv_rank_body`` is the SPMD body: it paces the stream in *simulated*
time (sleeping until each arrival via a scheduler timer), issues
requests asynchronously, and drains with the aggregator's counting
quiescence followed by the replication layer's anti-entropy sweep.
Every field of the returned record is a deterministic function of the
simulation, so the three scheduler backends must agree bit-for-bit —
pinned by ``tests/test_apps_kvservice.py`` and the chaos suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import repro.upcxx as upcxx
from repro.apps.kvservice.traffic import TrafficModel
from repro.upcxx.replication import ReplicatedStore
from repro.util.metrics import DwellHistogram

_SUM_MASK = (1 << 63) - 1

#: request-count scales; "xl" is the million-request configuration
SCALES: Dict[str, dict] = {
    "tiny": {"ranks": 8, "n_requests": 256},
    "full": {"ranks": 16, "n_requests": 4096},
    "xl": {"ranks": 32, "n_requests": 32768},
}


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the service is past its
    configured backlog limit; the client should back off and retry."""


def default_config(scale: str = "tiny") -> dict:
    """Baseline service+traffic configuration for one benchmark scale."""
    cfg = {
        "ppn": 4,
        "rate": 200_000.0,  # offered load per front-end rank (req/s)
        "read_fraction": 0.9,
        "zipf_s": 1.1,
        "n_keys": 1024,
        "burst_prob": 0.02,
        "burst_mult": 4.0,
        "burst_len": 32,
        "batch_size": 64,
        "credits": 8,
        "max_dwell": 40e-6,
        "cache_capacity": 128,
        "aggregate": True,
        "replication": 1,
        "admission_limit": None,
    }
    cfg.update(SCALES[scale])
    return cfg


class KvService:
    """Front-end + shard-owner state of one rank (collective constructor)."""

    def __init__(
        self,
        *,
        batch_size: int = 64,
        credits: Optional[int] = None,
        max_dwell: Optional[float] = None,
        cache_capacity: int = 0,
        replication: int = 1,
        admission_limit: Optional[int] = None,
        team=None,
    ):
        self._rt = upcxx.current_runtime()
        self._repl = ReplicatedStore(
            "replace",
            batch_size=batch_size,
            replication=replication,
            team=team,
            max_dwell=max_dwell,
            credits=credits,
            cache_capacity=cache_capacity,
            on_batch_flushed=self._batch_flushed,
            on_batch_acked=self._batch_acked,
            on_death=self._on_death,
        )
        self._store = self._repl.store
        self.admission_limit = admission_limit
        n = self._store.team.rank_n()
        #: per-destination write records awaiting their batch's flush; a
        #: record is *shared* across its key's owners — the first ack of
        #: any covering batch completes the write, a covering owner's
        #: death decrements its live count (``live == 0`` => lost)
        self._pending_w: List[list] = [[] for _ in range(n)]
        #: flushed-batch seq -> (dest, records) awaiting the ack
        self._inflight: Dict[int, tuple] = {}
        self.read_lat = DwellHistogram()
        self.write_lat = DwellHistogram()
        self.reads_issued = 0
        self.reads_done = 0
        self.writes_issued = 0
        self.writes_done = 0
        self.writes_lost = 0
        self.requests_shed = 0
        self._read_sum = 0

    # ------------------------------------------------------------ operations
    def _admit(self) -> None:
        limit = self.admission_limit
        if limit is None:
            return
        backlog = (self.reads_issued - self.reads_done) + (
            self.writes_issued - self.writes_done - self.writes_lost
        )
        if backlog >= limit:
            self.requests_shed += 1
            self._rt._ep.kv_shed += 1
            raise Overloaded(
                f"kv backlog {backlog} at admission limit {limit}"
            )

    def put(self, key: int, value: int, t_arrival: float) -> None:
        """Issue one write (open loop; completes at the first covering
        batch ack on any owner).  Raises :class:`Overloaded` when shed."""
        self._admit()
        self.writes_issued += 1
        owners = self._repl.owners(key)
        rec = {"live": len(owners), "t": t_arrival, "done": False}
        # record before any update: the first update_to may flush its
        # destination's batch inline
        for o in owners:
            self._pending_w[o].append(rec)
        for o in owners:
            self._store.update_to(o, key, value)

    def get(self, key: int, t_arrival: float) -> None:
        """Issue one read (open loop; cache hits complete inline).
        Raises :class:`Overloaded` when shed."""
        self._admit()
        self.reads_issued += 1
        self._repl.read(
            key, default=0,
            cb=lambda _k, v, t=t_arrival: self._read_done(v, t),
        )

    def poll(self) -> None:
        """Pacing hook: honor the aggregator's dwell deadlines."""
        self._store.poll()

    # ----------------------------------------------------------- completions
    def _batch_flushed(self, dest: int, seq: int, n: int) -> None:
        pend = self._pending_w[dest]
        if pend:
            self._inflight[seq] = (dest, pend)
            self._pending_w[dest] = []

    def _batch_acked(self, dest: int, seq: int, t_now: float) -> None:
        _dest, recs = self._inflight.pop(seq, (dest, ()))
        for rec in recs:
            if not rec["done"]:
                rec["done"] = True
                self.write_lat.add(t_now - rec["t"])
                self.writes_done += 1

    def _read_done(self, value, t_arrival: float) -> None:
        self.reads_done += 1
        if isinstance(value, int):
            self._read_sum = (self._read_sum + value) & _SUM_MASK
        self.read_lat.add(self._rt.now() - t_arrival)

    def _on_death(self, dead: int, t_detect: float) -> None:
        """Replication-layer hook (rank context): settle write records
        that were waiting on the dead rank.  A record still covered by a
        surviving owner completes on that owner's ack; one whose every
        owner died is a lost write."""
        recs = list(self._pending_w[dead])
        self._pending_w[dead] = []
        for seq in [s for s, (d, _r) in self._inflight.items() if d == dead]:
            recs.extend(self._inflight.pop(seq)[1])
        for rec in recs:
            rec["live"] -= 1
            if rec["live"] <= 0 and not rec["done"]:
                rec["done"] = True
                self.writes_lost += 1

    # ----------------------------------------------------------------- drain
    def drain(self) -> None:
        """Collective: settle all writes, invalidations, acks, and reads,
        then run the drain-time anti-entropy sweep so every replica is
        exact before results are read."""
        self._store.quiesce()
        self._rt.wait_quiet(
            lambda: self.reads_done >= self.reads_issued, "kv::drain-reads"
        )
        self._repl.anti_entropy()
        upcxx.barrier(team=self._store.quiesce_team)

    # ---------------------------------------------------------------- export
    def result(self) -> dict:
        """Deterministic per-rank record (bit-identical across backends)."""
        s = self._store.stats()
        issued = self.reads_issued + self.writes_issued
        served = self.reads_done + self.writes_done
        accepted_total = issued + self.requests_shed
        out = {
            "reads": self.reads_done,
            "writes": self.writes_done,
            "read_sum": self._read_sum,
            "shard_size": self._store.local_size(),
            "batches_sent": s["batches_sent"],
            "updates_sent": s["updates_sent"],
            "credit_stalls": s["credit_stalls"],
            "credit_stall_s": s["credit_stall_s"],
            "cache_hits": s["cache_hits"],
            "cache_misses": s["cache_misses"],
            "cache_invalidations": s["cache_invalidations"],
            "read_lat": self.read_lat.as_dict(),
            "write_lat": self.write_lat.as_dict(),
            # -- availability / admission ----------------------------------
            "requests_issued": issued,
            "requests_served": served,
            "requests_shed": self.requests_shed,
            "shed_fraction": (
                self.requests_shed / accepted_total if accepted_total else 0.0
            ),
            "writes_lost": self.writes_lost,
            "availability": (served / issued) if issued else 1.0,
            # -- replication / recovery ------------------------------------
            "replication": self._repl.replication,
            "deaths_seen": self._repl.deaths_seen,
            "failover_reads": self._repl.failover_reads,
            "rereplicated_keys": self._repl.rereplicated_keys,
            "synced_keys": self._repl.synced_keys,
            "recovery_s": self._repl.recovery_s,
            "factor_restored": self._repl.factor_restored,
            "acks_forgiven": s["acks_forgiven"],
            "updates_dropped": s["updates_dropped"],
        }
        tel = self._rt.telemetry  # this rank's RankTelemetry sink
        if tel is not None:
            tel.replica = {
                "factor": self._repl.replication,
                "shard_size": self._store.local_size(),
                "deaths_seen": self._repl.deaths_seen,
                "factor_restored": self._repl.factor_restored,
                "recovery_s": self._repl.recovery_s,
            }
        return out


def _sleep_until(rt, t: float) -> None:
    """Simulated-time sleep: park the rank until the clock reaches ``t``."""
    sched = rt.sched
    rank = rt.rank
    sched.post_at(t, lambda: sched.wake(rank, t))
    rt.wait_quiet(lambda: rt.now() >= t, "kv::pace")


def kv_rank_body(cfg: dict) -> dict:
    """SPMD body: pace the configured traffic through the service.

    Returns the rank's deterministic result record plus its elapsed
    simulated serving time (``t_serve_s``) — the driver derives achieved
    throughput from the slowest rank's elapsed time.
    """
    aggregate = cfg.get("aggregate", True)
    svc = KvService(
        batch_size=cfg["batch_size"] if aggregate else 1,
        credits=cfg.get("credits") if aggregate else None,
        max_dwell=cfg.get("max_dwell") if aggregate else None,
        cache_capacity=cfg.get("cache_capacity", 0) if aggregate else 0,
        replication=cfg.get("replication", 1),
        admission_limit=cfg.get("admission_limit"),
    )
    rt = upcxx.current_runtime()
    tm = TrafficModel(
        rt.rng.spawn("kv-traffic").py,
        rate=cfg["rate"],
        n_requests=cfg["n_requests"],
        read_fraction=cfg.get("read_fraction", 0.9),
        zipf_s=cfg.get("zipf_s", 1.1),
        n_keys=cfg.get("n_keys", 1024),
        burst_prob=cfg.get("burst_prob", 0.0),
        burst_mult=cfg.get("burst_mult", 4.0),
        burst_len=cfg.get("burst_len", 32),
    )
    upcxx.barrier()
    t_start = upcxx.sim_now()
    for dt, op, key, val in tm.requests():
        t_arr = t_start + dt
        if rt.now() < t_arr:
            _sleep_until(rt, t_arr)
        try:
            if op == "get":
                svc.get(key, t_arr)
            else:
                svc.put(key, val, t_arr)
        except Overloaded:
            # shed: the client's request is rejected, not queued; the
            # shed counter already recorded it
            pass
        svc.poll()
    # Under a survivable crash plan, every rank holds the drain until the
    # last scheduled detection has fired and its staged death handler has
    # run, so the drain collectives start on the final alive membership
    # everywhere.  The plan is deterministic data — identical on all
    # ranks and backends.
    faults = getattr(rt.world, "faults", None)
    if faults is not None and getattr(faults, "survivable", False) and faults.crashes:
        t_settle = max(t + faults.detect_timeout for t in faults.crashes.values())
        if rt.now() < t_settle:
            _sleep_until(rt, t_settle)
        upcxx.progress()
    svc.drain()
    out = svc.result()
    out["t_serve_s"] = upcxx.sim_now() - t_start
    return out
