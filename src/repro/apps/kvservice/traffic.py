"""Open-loop client traffic for the KV service (deterministic).

Models a front-end rank's view of a large client population:

- **Poisson arrivals** — exponential inter-arrival times at a configured
  per-rank offered rate.  Open loop: an arrival's timestamp never waits
  for earlier requests to finish, so under saturation the backlog (and
  the measured sojourn latency) grows — exactly the behavior a
  saturation-knee sweep needs to expose.
- **Bursty modulation** — with probability ``burst_prob`` per request the
  stream enters a burst of ``burst_len`` requests at ``burst_mult`` times
  the base rate (a two-state modulated Poisson process), modeling flash
  crowds without giving up determinism.
- **Zipf key skew** — keys are drawn from a shared key space with
  probability proportional to ``1/rank**zipf_s`` (inverse-CDF sampling),
  so a handful of hot keys dominate — the regime the aggregator's
  hot-key cache targets.
- **Read/write mix** — each request is a read with probability
  ``read_fraction``; writes carry a deterministic pseudo-random value.

All randomness flows through one ``random.Random`` handed in by the
caller (derive it from the rank's :class:`repro.sim.rng.RankRandom`), so
per-rank request streams are reproducible and bit-identical across the
coroutine, thread, and sharded scheduler backends.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Tuple

#: one request: (arrival offset seconds, "get" | "put", key, value)
Request = Tuple[float, str, int, int]


def zipf_cdf(n_keys: int, s: float) -> List[float]:
    """Cumulative distribution of a Zipf(s) law over ``n_keys`` ranks."""
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    weights = [1.0 / (i + 1) ** s for i in range(n_keys)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return cdf


class TrafficModel:
    """Deterministic open-loop request stream for one front-end rank."""

    def __init__(
        self,
        rng,
        *,
        rate: float,
        n_requests: int,
        read_fraction: float = 0.9,
        zipf_s: float = 1.1,
        n_keys: int = 1024,
        burst_prob: float = 0.0,
        burst_mult: float = 4.0,
        burst_len: int = 32,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
        self.rng = rng
        self.rate = rate
        self.n_requests = n_requests
        self.read_fraction = read_fraction
        self.burst_prob = burst_prob
        self.burst_mult = burst_mult
        self.burst_len = burst_len
        self._cdf = zipf_cdf(n_keys, zipf_s)

    def draw_key(self) -> int:
        """One Zipf-skewed key (0 is the hottest)."""
        return bisect_left(self._cdf, self.rng.random())

    def requests(self) -> Iterator[Request]:
        """Yield ``n_requests`` arrivals in nondecreasing time order."""
        rng = self.rng
        t = 0.0
        burst_left = 0
        for _ in range(self.n_requests):
            r = self.rate * (self.burst_mult if burst_left > 0 else 1.0)
            t += rng.expovariate(r)
            if burst_left > 0:
                burst_left -= 1
            elif self.burst_prob > 0.0 and rng.random() < self.burst_prob:
                burst_left = self.burst_len
            key = self.draw_key()
            if rng.random() < self.read_fraction:
                yield (t, "get", key, 0)
            else:
                yield (t, "put", key, rng.getrandbits(31))
