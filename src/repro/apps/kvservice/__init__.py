"""repro.apps.kvservice — a served KV workload over the aggregation layer.

ROADMAP item 3: the DHT as a *service* — open-loop client traffic
(Poisson + bursty arrivals, Zipf key skew, configurable read/write mix)
pushed through front-end ranks into an aggregated, hot-key-cached
distributed store, with SLO-grade latency reporting (p50/p95/p99/p999)
and a measurable saturation knee.  See ``docs/kvservice.md``.
"""

from repro.apps.kvservice.service import (
    SCALES,
    KvService,
    Overloaded,
    default_config,
    kv_rank_body,
)
from repro.apps.kvservice.traffic import TrafficModel, zipf_cdf

__all__ = [
    "KvService",
    "Overloaded",
    "TrafficModel",
    "zipf_cdf",
    "kv_rank_body",
    "default_config",
    "SCALES",
]
