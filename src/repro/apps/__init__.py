"""Application motifs from the paper's evaluation (§IV-C, §IV-D)."""
