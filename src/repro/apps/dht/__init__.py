"""Distributed hash table (paper §IV-C).

Three implementations with identical semantics:

- :class:`~repro.apps.dht.rpc_only.DhtRpcOnly` — the paper's "simplest
  implementation": inserts ship key+value inside an RPC;
- :class:`~repro.apps.dht.rma_lz.DhtRmaLz` — the paper's optimized version:
  an RPC creates a *landing zone* in the target's shared segment, then the
  value travels by zero-copy RMA put (the ``make_lz`` + ``rput`` chain of
  the paper's code listing);
- :class:`~repro.apps.dht.rma_lz.SerialMap` — the 1-process baseline that
  "omits all calls to UPC++" (the first point of Fig. 4).

Plus :mod:`~repro.apps.dht.graph`: the paper's distributed-graph example
(vertices with neighbor lists updated in place by RPC).
"""

from repro.apps.dht.rpc_only import DhtRpcOnly
from repro.apps.dht.rma_lz import DhtRmaLz, SerialMap
from repro.apps.dht.graph import DistGraph, Vertex
from repro.apps.dht.aggregating import AggregatingCounter

__all__ = ["DhtRpcOnly", "DhtRmaLz", "SerialMap", "DistGraph", "Vertex", "AggregatingCounter"]
