"""Distributed graph over the hash table (the paper's Vertex example).

The paper argues RPCs are "particularly elegant when we need to update
complex entries": adding a neighbor to a vertex's adjacency list is one
RPC that mutates the STL-style structure in place, where pure RMA would
need lock + rget + local update + rput + unlock, and a representation
amenable to RMA in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import repro.upcxx as upcxx
from repro.apps.dht.rpc_only import hash_target
from repro.upcxx.future import Future


@dataclass
class Vertex:
    """A graph vertex with arbitrary properties and a neighbor list."""

    vid: int
    properties: dict = field(default_factory=dict)
    nbs: List[int] = field(default_factory=list)


def _insert_vertex(dgraph: upcxx.DistObject, vid: int, properties: dict) -> None:
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_insert)
    dgraph.value[vid] = Vertex(vid, dict(properties))


def _add_neighbor(dgraph: upcxx.DistObject, vid: int, nb: int) -> bool:
    """RPC body: the paper's in-place ``push_back`` onto vertex->nbs."""
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    vertex = dgraph.value.get(vid)
    if vertex is None:
        return False
    vertex.nbs.append(nb)
    return True


def _get_vertex(dgraph: upcxx.DistObject, vid: int) -> Optional[Vertex]:
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    v = dgraph.value.get(vid)
    if v is None:
        return None
    return Vertex(v.vid, dict(v.properties), list(v.nbs))


class DistGraph:
    """A vertex store distributed by vertex id."""

    def __init__(self, team: Optional[upcxx.Team] = None):
        self.team = team if team is not None else upcxx.team_world()
        self.local: dict = {}
        self._dobj = upcxx.DistObject(self.local, team=self.team)

    def owner_of(self, vid: int) -> int:
        return self.team[hash_target(vid, self.team.rank_n())]

    def insert_vertex(self, vid: int, **properties) -> Future:
        return upcxx.rpc(self.owner_of(vid), _insert_vertex, self._dobj, vid, properties)

    def add_edge(self, u: int, v: int) -> Future:
        """Add a directed edge u -> v (one RPC to u's owner)."""
        return upcxx.rpc(self.owner_of(u), _add_neighbor, self._dobj, u, v)

    def add_undirected_edge(self, u: int, v: int) -> Future:
        """Both directions, conjoined into one future."""
        return upcxx.when_all(self.add_edge(u, v), self.add_edge(v, u))

    def get_vertex(self, vid: int) -> Future:
        """Future of a snapshot copy of the vertex (or None)."""
        return upcxx.rpc(self.owner_of(vid), _get_vertex, self._dobj, vid)

    def local_degree_sum(self) -> int:
        return sum(len(v.nbs) for v in self.local.values())
