"""RMA landing-zone distributed hash table (the paper's optimized listing)
and the serial baseline.

``insert`` is the exact chain from §IV-C:

1. ``rpc(get_target(key), make_lz, key, len)`` — the target allocates
   uninitialized shared memory (the *landing zone*), records
   ``key -> (gptr, len)`` in its local map, and returns the global pointer;
2. ``.then(lambda dest: rput(val, dest))`` — the value travels by
   zero-copy one-sided put into the landing zone.

The returned future represents the whole chain, so callers can block per
insert (the paper's latency-limited benchmark) or pipeline many inserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.upcxx as upcxx
from repro.apps.dht.rpc_only import hash_target
from repro.upcxx.future import Future
from repro.upcxx.global_ptr import GlobalPtr


@dataclass(frozen=True)
class LandingZone:
    """The paper's ``lz_t``: a global pointer and the stored length."""

    gptr: GlobalPtr
    length: int


def _make_lz(dmap: upcxx.DistObject, key: int, length: int) -> GlobalPtr:
    """RPC body: allocate the landing zone and publish key -> lz (paper's
    ``make_lz``)."""
    rt = upcxx.current_runtime()
    dest = upcxx.allocate(length, rt=rt)
    rt.charge_sw(rt.cpu.map_insert)
    dmap.value[key] = LandingZone(dest, length)
    return dest


def _get_lz(dmap: upcxx.DistObject, key: int) -> Optional[GlobalPtr]:
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    lz = dmap.value.get(key)
    return None if lz is None else GlobalPtr(lz.gptr.rank, lz.gptr.offset, np.uint8, lz.length)


class DhtRmaLz:
    """The RPC+RMA hash table from the paper (Fig. 4's subject)."""

    def __init__(self, team: Optional[upcxx.Team] = None):
        self.team = team if team is not None else upcxx.team_world()
        #: key -> LandingZone for keys owned by this rank
        self.local_map: dict = {}
        self._dobj = upcxx.DistObject(self.local_map, team=self.team)

    def target_of(self, key: int) -> int:
        return self.team[hash_target(key, self.team.rank_n())]

    def insert(self, key: int, val: bytes) -> Future:
        """The paper's insert: RPC for the landing zone, then rput."""
        val = bytes(val)
        f = upcxx.rpc(self.target_of(key), _make_lz, self._dobj, key, len(val))
        return f.then(lambda dest: upcxx.rput(val, dest))

    def find(self, key: int) -> Future:
        """Lookup: RPC for the landing zone, then rget of the value."""

        def fetch(lz: Optional[GlobalPtr]):
            if lz is None:
                return None
            return upcxx.rget(lz).then(lambda arr: bytes(arr))

        return upcxx.rpc(self.target_of(key), _get_lz, self._dobj, key).then(fetch)

    def local_size(self) -> int:
        return len(self.local_map)


class SerialMap:
    """The 1-process baseline of Fig. 4: a plain local map, no UPC++ calls.

    CPU costs are charged identically to the distributed version's local
    path (hash-map insert + value store), so the serial point represents
    "the best we can achieve with the underlying standard library".
    """

    def __init__(self):
        self.map: dict = {}

    def insert(self, key: int, val: bytes) -> None:
        rt = upcxx.current_runtime()
        rt.charge_sw(rt.cpu.map_insert)
        rt.charge_copy(len(val))
        self.map[key] = bytes(val)

    def find(self, key: int):
        rt = upcxx.current_runtime()
        rt.charge_sw(rt.cpu.map_lookup)
        return self.map.get(key)

    def local_size(self) -> int:
        return len(self.map)
