"""RPC-only distributed hash table (the paper's first listing).

Every insert is one RPC carrying the key and the value; the target's RPC
handler performs the local map insert.  Simple and correct, but the value
bytes are copied through serialization at both ends — which is why the
paper then adds the RMA landing-zone variant for larger values.
"""

from __future__ import annotations

from typing import Optional

import repro.upcxx as upcxx
from repro.upcxx.future import Future


def hash_target(key: int, n_ranks: int) -> int:
    """Deterministic key -> owner mapping (splitmix64 finalizer)."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z = z ^ (z >> 31)
    return z % n_ranks


def _local_insert(dmap: upcxx.DistObject, key: int, val: bytes) -> None:
    """RPC body: the target-side map update (charged as a hash-map insert
    plus the value store)."""
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_insert)
    rt.charge_copy(len(val))
    dmap.value[key] = val


def _local_find(dmap: upcxx.DistObject, key: int):
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    return dmap.value.get(key)


class DhtRpcOnly:
    """Distributed hash table where both insert and find are pure RPC."""

    def __init__(self, team: Optional[upcxx.Team] = None):
        self.team = team if team is not None else upcxx.team_world()
        #: the local shard (the paper's ``local_map``)
        self.local_map: dict = {}
        self._dobj = upcxx.DistObject(self.local_map, team=self.team)

    def target_of(self, key: int) -> int:
        """World rank owning ``key``."""
        return self.team[hash_target(key, self.team.rank_n())]

    def insert(self, key: int, val: bytes) -> Future:
        """Asynchronous insert; the future completes when the target has
        stored the value."""
        return upcxx.rpc(self.target_of(key), _local_insert, self._dobj, key, bytes(val))

    def find(self, key: int) -> Future:
        """Asynchronous lookup; future of the value (or None)."""
        return upcxx.rpc(self.target_of(key), _local_find, self._dobj, key)

    def local_size(self) -> int:
        return len(self.local_map)
