"""Message-aggregating DHT updates (the HipMer optimization).

The paper's DHT benchmark blocks per insert to expose latency; real
latency-bound applications (the genome assembler of [13]) instead
*aggregate*: updates are buffered per destination rank and shipped as one
RPC per full buffer, converting a latency-bound workload into an
injection-rate-bound one.  :class:`AggregatingCounter` implements that
pattern for accumulate-style updates (k-mer counts, histogram bins,
graph-degree tallies):

- ``add(key, delta)`` buffers locally; a full buffer flushes as a single
  ``rpc_ff`` whose payload is two parallel arrays (keys, deltas);
- ``flush()`` pushes out partial buffers;
- ``sync()`` makes *global* quiescence certain: after it returns, every
  update issued by any rank before its ``sync()`` is applied.  It uses a
  counting protocol over an all-reduce: repeat until the number of sent
  and applied batches agree globally (the standard termination detection
  for one-sided update streams).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

import repro.upcxx as upcxx
from repro.apps.dht.rpc_only import hash_target


def _apply_batch(dobj: upcxx.DistObject, keys, deltas) -> None:
    """RPC body: merge one batch into the local shard."""
    rt = upcxx.current_runtime()
    state = dobj.value
    karr = keys.to_numpy() if hasattr(keys, "to_numpy") else np.asarray(keys)
    darr = deltas.to_numpy() if hasattr(deltas, "to_numpy") else np.asarray(deltas)
    rt.charge_sw(rt.cpu.map_insert * len(karr))
    shard = state["shard"]
    for k, d in zip(karr.tolist(), darr.tolist()):
        shard[k] = shard.get(k, 0) + d
    state["applied"] += 1


def _read_count(dobj: upcxx.DistObject, key: int) -> int:
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    return dobj.value["shard"].get(key, 0)


class AggregatingCounter:
    """A distributed counting table with per-destination update batching."""

    def __init__(self, batch_size: int = 64, team: Optional[upcxx.Team] = None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.team = team if team is not None else upcxx.team_world()
        self.batch_size = batch_size
        self.state = {"shard": {}, "applied": 0}
        self._dobj = upcxx.DistObject(self.state, team=self.team)
        n = self.team.rank_n()
        self._buf_keys: List[List[int]] = [[] for _ in range(n)]
        self._buf_deltas: List[List[int]] = [[] for _ in range(n)]
        self.batches_sent = 0

    # ---------------------------------------------------------------- update
    def target_of(self, key: int) -> int:
        return hash_target(key, self.team.rank_n())

    def add(self, key: int, delta: int = 1) -> None:
        """Buffer one update; flushes the destination's buffer when full."""
        t = self.target_of(key)
        self._buf_keys[t].append(key)
        self._buf_deltas[t].append(delta)
        if len(self._buf_keys[t]) >= self.batch_size:
            self._flush_dest(t)

    def _flush_dest(self, t: int) -> None:
        if not self._buf_keys[t]:
            return
        keys = np.asarray(self._buf_keys[t], dtype=np.int64)
        deltas = np.asarray(self._buf_deltas[t], dtype=np.int64)
        self._buf_keys[t] = []
        self._buf_deltas[t] = []
        self.batches_sent += 1
        upcxx.rpc_ff(
            self.team[t], _apply_batch, self._dobj, upcxx.make_view(keys), upcxx.make_view(deltas)
        )

    def flush(self) -> None:
        """Push out all partially-filled buffers."""
        for t in range(self.team.rank_n()):
            self._flush_dest(t)

    # ------------------------------------------------------------ quiescence
    def sync(self) -> None:
        """Global quiescence: all updates sent anywhere are applied.

        Standard counting termination: iterate (progress; all-reduce sent
        and applied totals) until they match twice in a row.
        """
        self.flush()
        rt = upcxx.current_runtime()
        stable = 0
        while stable < 2:
            upcxx.progress()
            totals = upcxx.reduce_all(
                np.array([self.batches_sent, self.state["applied"]], dtype=np.int64),
                lambda a, b: a + b,
                team=self.team,
            ).wait()
            if int(totals[0]) == int(totals[1]):
                stable += 1
            else:
                stable = 0
                # let in-flight batches land before re-counting
                rt.progress()

    # --------------------------------------------------------------- queries
    def count(self, key: int) -> upcxx.Future:
        """Asynchronous lookup of a key's global count (after sync())."""
        return upcxx.rpc(self.team[self.target_of(key)], _read_count, self._dobj, key)

    def local_items(self) -> Dict[int, int]:
        return dict(self.state["shard"])

    def local_size(self) -> int:
        return len(self.state["shard"])
