"""Message-aggregating DHT updates (the HipMer optimization).

The paper's DHT benchmark blocks per insert to expose latency; real
latency-bound applications (the genome assembler of [13]) instead
*aggregate*: updates are buffered per destination rank and shipped as one
RPC per full buffer, converting a latency-bound workload into an
injection-rate-bound one.

Historically this module carried its own batching implementation; that
machinery now lives in the runtime proper as
:class:`repro.upcxx.aggregator.AggStore` (destination batching, pluggable
combines, credit flow control, counting quiescence, hot-key caching).
:class:`AggregatingCounter` remains as a thin compatibility shim: an
``AggStore`` with the additive combine and none of the optional layers,
preserving the original wire pattern — one ``rpc_ff`` per full buffer
carrying two parallel int64 arrays, ``map_insert`` charged per update at
the target.  ``sync()`` now uses the aggregator's counting-based
termination detection (one all-reduce of per-destination sent counts plus
a local wait) instead of the old repeated all-reduce polling loop.
"""

from __future__ import annotations

from typing import Dict, Optional

import repro.upcxx as upcxx
from repro.upcxx.aggregator import AggStore

__all__ = ["AggregatingCounter"]


class AggregatingCounter:
    """A distributed counting table with per-destination update batching."""

    def __init__(self, batch_size: int = 64, team: Optional[upcxx.Team] = None):
        self._store = AggStore("+", batch_size=batch_size, team=team)
        self.team = self._store.team
        self.batch_size = batch_size

    # ---------------------------------------------------------------- update
    def target_of(self, key: int) -> int:
        return self._store.dest_of(key)

    def add(self, key: int, delta: int = 1) -> None:
        """Buffer one update; flushes the destination's buffer when full."""
        self._store.update(key, delta)

    def flush(self) -> None:
        """Push out all partially-filled buffers."""
        self._store.flush()

    @property
    def batches_sent(self) -> int:
        return self._store.batches_sent

    # ------------------------------------------------------------ quiescence
    def sync(self) -> None:
        """Global quiescence: all updates sent anywhere are applied."""
        self._store.quiesce()

    # --------------------------------------------------------------- queries
    def count(self, key: int) -> upcxx.Future:
        """Asynchronous lookup of a key's global count (after sync())."""
        return self._store.read(key, default=0)

    def local_items(self) -> Dict[int, int]:
        return self._store.local_items()

    def local_size(self) -> int:
        return self._store.local_size()
