"""Numeric distributed multifrontal Cholesky (and triangular solves).

Where :mod:`repro.apps.sparse.sympack` charges *time* for the paper's
Fig. 9 skeleton, this module does the actual **mathematics**: it
factorizes A = L·Lᵀ (under the nested-dissection permutation) with a
tree-parallel multifrontal algorithm over UPC++, then solves A·x = b with
distributed forward/backward substitution along the same tree.

Parallel structure: every front is owned by the lead rank of its
proportional-mapping team, so disjoint subtrees factor concurrently and
contribution blocks travel by RPC (zero-copy views of the packed Schur
complements), exactly the communication motif of §IV-D — but carrying
real numbers whose correctness the test suite verifies against dense
Cholesky and ``scipy.sparse.linalg.spsolve``.

Per front F (cols = eliminated columns, border = update rows):

1. assemble the symmetric dense front from A's entries;
2. extend-add the children's Schur complements;
3. partial factorization::

       F11 = L11·L11ᵀ          (dense Cholesky)
       L21 = F21·L11⁻ᵀ         (triangular solve)
       S   = F22 − L21·L21ᵀ    (Schur complement)

4. ship S to the parent's owner.

The solve phase walks the tree twice: leaves→root for L·y = b (each front
eliminates its columns and pushes updates of y at its border to the
ancestors' owners) and root→leaves for Lᵀ·x = y.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

import repro.upcxx as upcxx
from repro.apps.sparse.ordering import nested_dissection_3d
from repro.apps.sparse.propmap import proportional_mapping
from repro.apps.sparse.symbolic import FrontSymbolic, symbolic_from_dissection
from repro.upcxx.future import Promise


@dataclass
class CholeskyPlan:
    """Symbolic plan for a numeric factorization (shared, read-only)."""

    a: sp.csr_matrix
    fronts: Dict[int, FrontSymbolic]
    #: owning rank per front (team lead of the proportional mapping)
    owner: Dict[int, int]
    #: global vertex -> elimination position
    elim_pos: np.ndarray
    n_procs: int

    @property
    def n(self) -> int:
        return self.a.shape[0]

    def my_fronts(self, rank: int) -> List[int]:
        return [nid for nid in sorted(self.fronts) if self.owner[nid] == rank]


def build_cholesky_plan(nx: int, ny: int, nz: int, n_procs: int, leaf_size: int = 32) -> CholeskyPlan:
    """Symbolic phase: dissect, analyze, and map front owners."""
    from repro.apps.sparse.matrices import laplacian_3d

    a = laplacian_3d(nx, ny, nz)
    root, _perm = nested_dissection_3d(nx, ny, nz, leaf_size=leaf_size)
    fronts = symbolic_from_dissection(a, root)
    teams = proportional_mapping(fronts, n_procs)
    owner = {nid: team[0] for nid, team in teams.items()}
    n = a.shape[0]
    elim_pos = np.empty(n, dtype=np.int64)
    k = 0
    for node in root.postorder():
        for v in node.vertices:
            elim_pos[v] = k
            k += 1
    return CholeskyPlan(a=sp.csr_matrix(a), fronts=fronts, owner=owner, elim_pos=elim_pos, n_procs=n_procs)


# ---------------------------------------------------------------- factorize
class _FactorState:
    """Per-rank numeric state reachable from incoming RPCs."""

    def __init__(self, plan: CholeskyPlan):
        self.plan = plan
        rt = upcxx.current_runtime()
        me = rt.rank
        #: assembled dense fronts I own (created lazily)
        self.front_mats: Dict[int, np.ndarray] = {}
        #: factor pieces I produced: nid -> (L11, L21)
        self.factors: Dict[int, tuple] = {}
        #: completion promise per owned front: one dep per child contribution
        self.promises: Dict[int, Promise] = {}
        for nid in plan.my_fronts(me):
            p = Promise()
            p.require_anonymous(len(plan.fronts[nid].children))
            self.promises[nid] = p

    def front_matrix(self, nid: int) -> np.ndarray:
        mat = self.front_mats.get(nid)
        if mat is None:
            f = self.plan.fronts[nid]
            n = f.front_size
            mat = np.zeros((n, n))
            self.front_mats[nid] = mat
        return mat


def _assemble_a(plan: CholeskyPlan, nid: int, mat: np.ndarray) -> None:
    """Add A's entries into the front (original-matrix part of assembly).

    Multifrontal convention: each nonzero A[i, j] is assembled exactly once,
    at the unique front whose column set contains the earlier-eliminated of
    i and j.
    """
    f = plan.fronts[nid]
    rows = f.row_indices
    pos_in_front = {int(g): k for k, g in enumerate(rows)}
    a = plan.a
    col_set = set(f.cols.tolist())
    for j in f.cols:
        jf = pos_in_front[int(j)]
        pj = plan.elim_pos[j]
        for p in range(a.indptr[j], a.indptr[j + 1]):
            i = a.indices[p]
            # assemble only the lower triangle in elimination order, and
            # only pairs whose earlier vertex is eliminated at this front
            if plan.elim_pos[i] < pj and int(i) in col_set:
                continue  # the symmetric partner handles it
            if int(i) not in pos_in_front:
                continue  # eliminated in a descendant: assembled there
            fi = pos_in_front[int(i)]
            mat[fi, jf] += a.data[p]
    # mirror to the full symmetric front (we keep fronts dense-symmetric)
    low = np.tril(mat, -1)
    mat += low.T - np.triu(mat, 1)


def _accum_schur(state_dobj: upcxx.DistObject, pid: int, idx, vals) -> None:
    """RPC body: extend-add a child's packed Schur complement."""
    rt = upcxx.current_runtime()
    state: _FactorState = state_dobj.value
    f = state.plan.fronts[pid]
    mat = state.front_matrix(pid)
    index = np.asarray(idx)
    values = vals.to_numpy() if hasattr(vals, "to_numpy") else np.asarray(vals)
    b = len(index)
    rt.sched.charge(rt.cpu.accumulate_time(b * b))
    mat[np.ix_(index, index)] += values.reshape(b, b)
    state.promises[pid].fulfill_anonymous(1)


def cholesky_factor(plan: CholeskyPlan, state_dobj: Optional[upcxx.DistObject] = None) -> "_FactorState":
    """Run the distributed numeric factorization (call on every rank).

    Returns this rank's :class:`_FactorState` holding its factor pieces.
    """
    rt = upcxx.current_runtime()
    me = rt.rank
    if state_dobj is None:
        state = _FactorState(plan)
        state_dobj = upcxx.DistObject(state)
    else:
        state = state_dobj.value
    upcxx.barrier()

    for nid in plan.my_fronts(me):
        f = plan.fronts[nid]
        # wait for all children's Schur complements (remote or local)
        state.promises[nid].finalize().wait()
        mat = state.front_matrix(nid)
        _assemble_a(plan, nid, mat)

        nc = f.n_cols
        f11 = mat[:nc, :nc]
        f21 = mat[nc:, :nc]
        f22 = mat[nc:, nc:]
        rt.compute(f.factor_flops() / rt.cpu.flop_rate)
        l11 = np.linalg.cholesky(f11)
        l21 = _solve_lower_t(l11, f21)
        schur = f22 - l21 @ l21.T
        state.factors[nid] = (l11, l21)
        del state.front_mats[nid]  # the front is consumed

        if f.parent != -1:
            parent = plan.fronts[f.parent]
            parent_owner = plan.owner[f.parent]
            lookup = {int(g): k for k, g in enumerate(parent.row_indices)}
            idx = np.array([lookup[int(g)] for g in f.border], dtype=np.int64)
            rt.charge_copy(schur.nbytes)
            upcxx.rpc(
                parent_owner, _accum_schur, state_dobj, f.parent, idx, upcxx.make_view(schur.ravel())
            ).wait()

    upcxx.barrier()
    return state


def _solve_lower_t(l11: np.ndarray, f21: np.ndarray) -> np.ndarray:
    """L21 = F21 · L11⁻ᵀ  (solve L11 · X = F21ᵀ, transpose back)."""
    from scipy.linalg import solve_triangular

    return solve_triangular(l11, f21.T, lower=True).T


# -------------------------------------------------------------------- solve
class _SolveState:
    """Per-rank state for the two triangular sweeps."""

    def __init__(self, plan: CholeskyPlan, factor: _FactorState, b: np.ndarray):
        self.plan = plan
        self.factor = factor
        rt = upcxx.current_runtime()
        me = rt.rank
        #: right-hand-side slices for fronts I own (updated by children)
        self.rhs: Dict[int, np.ndarray] = {}
        #: solution pieces: global vertex -> value
        self.x: Dict[int, float] = {}
        self.fwd_promises: Dict[int, Promise] = {}
        self.bwd_promises: Dict[int, Promise] = {}
        for nid in plan.my_fronts(me):
            f = plan.fronts[nid]
            # cols carry b; border slots are pure accumulators for updates
            # pushed up by descendants (b at those vertices belongs to the
            # fronts that eliminate them)
            self.rhs[nid] = np.concatenate(
                [b[f.cols].astype(float), np.zeros(f.n_border)]
            )
            p = Promise()
            p.require_anonymous(len(f.children))
            self.fwd_promises[nid] = p
            q = Promise()
            q.require_anonymous(0 if f.parent == -1 else 1)
            self.bwd_promises[nid] = q


def _fwd_update(state_dobj: upcxx.DistObject, pid: int, idx, vals) -> None:
    """RPC body: child pushes its border's partial y-updates to the parent."""
    state: _SolveState = state_dobj.value
    index = np.asarray(idx)
    values = vals.to_numpy() if hasattr(vals, "to_numpy") else np.asarray(vals)
    state.rhs[pid][index] += values
    state.fwd_promises[pid].fulfill_anonymous(1)


def _bwd_deliver(state_dobj: upcxx.DistObject, nid: int, vals) -> None:
    """RPC body: parent delivers x values at this front's border."""
    state: _SolveState = state_dobj.value
    values = vals.to_numpy() if hasattr(vals, "to_numpy") else np.asarray(vals)
    f = state.plan.fronts[nid]
    rhs = state.rhs[nid]
    nc = f.n_cols
    rhs[nc:] = values  # border slots now hold x at the border
    state.bwd_promises[nid].fulfill_anonymous(1)


def cholesky_solve(plan: CholeskyPlan, factor: _FactorState, b: np.ndarray) -> np.ndarray:
    """Distributed L·Lᵀ solve; returns the full x on every rank."""
    rt = upcxx.current_runtime()
    me = rt.rank
    state = _SolveState(plan, factor, np.asarray(b, dtype=float))
    state_dobj = upcxx.DistObject(state)
    upcxx.barrier()

    # ---------------- forward sweep: L y = b (leaves -> root) ------------
    for nid in plan.my_fronts(me):
        f = plan.fronts[nid]
        state.fwd_promises[nid].finalize().wait()
        l11, l21 = factor.factors[nid]
        rhs = state.rhs[nid]
        nc = f.n_cols
        from scipy.linalg import solve_triangular

        y1 = solve_triangular(l11, rhs[:nc], lower=True)
        rhs[:nc] = y1
        if f.parent != -1:
            # outgoing update: what descendants accumulated here, minus my
            # own elimination's contribution (length n_border, possibly 0)
            update = rhs[nc:] - (l21 @ y1)
            parent = plan.fronts[f.parent]
            lookup = {int(g): k for k, g in enumerate(parent.row_indices)}
            idx = np.array([lookup[int(g)] for g in f.border], dtype=np.int64)
            upcxx.rpc(
                plan.owner[f.parent], _fwd_update, state_dobj, f.parent, idx, upcxx.make_view(update)
            ).wait()

    upcxx.barrier()

    # --------------- backward sweep: Lᵀ x = y (root -> leaves) -----------
    for nid in reversed(plan.my_fronts(me)):
        f = plan.fronts[nid]
        state.bwd_promises[nid].finalize().wait()
        l11, l21 = factor.factors[nid]
        rhs = state.rhs[nid]
        nc = f.n_cols
        from scipy.linalg import solve_triangular

        y1 = rhs[:nc].copy()
        if f.n_border:
            y1 -= l21.T @ rhs[nc:]
        x1 = solve_triangular(l11.T, y1, lower=False)
        rhs[:nc] = x1
        for g, v in zip(f.cols, x1):
            state.x[int(g)] = float(v)
        # deliver border x values to each child's owner
        for cid in f.children:
            child = plan.fronts[cid]
            lookup = {int(g): k for k, g in enumerate(f.row_indices)}
            idx = np.array([lookup[int(g)] for g in child.border], dtype=np.int64)
            upcxx.rpc(
                plan.owner[cid], _bwd_deliver, state_dobj, cid, upcxx.make_view(rhs[idx])
            ).wait()

    upcxx.barrier()
    # ------------------- gather the distributed x everywhere -------------
    pieces = upcxx.reduce_all(state.x, lambda a, c: {**a, **c}).wait()
    upcxx.barrier()
    x = np.empty(plan.n)
    for g, v in pieces.items():
        x[g] = v
    return x


def factor_and_solve(plan: CholeskyPlan, b: np.ndarray) -> np.ndarray:
    """Convenience: factorize then solve (call on every rank)."""
    state = cholesky_factor(plan)
    return cholesky_solve(plan, state, b)
