"""Proportional mapping of fronts onto process teams (paper [16]).

The root front gets all P processes; each child subtree gets a contiguous
slice of its parent's team sized proportionally to the subtree's estimated
factorization work, with a minimum of one process.  Every front is then
worked on by its assigned team, and a front's team is always a subset of
its parent's — the property the extend-add traffic pattern relies on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.apps.sparse.symbolic import FrontSymbolic


def subtree_work(fronts: Dict[int, FrontSymbolic]) -> Dict[int, float]:
    """Total factor flops in each node's subtree (bottom-up)."""
    work: Dict[int, float] = {}
    # fronts dict is keyed by postorder node ids: children < parent
    for nid in sorted(fronts):
        f = fronts[nid]
        work[nid] = f.factor_flops() + sum(work[c] for c in f.children)
    return work


def proportional_mapping(
    fronts: Dict[int, FrontSymbolic],
    n_procs: int,
    root_id: int = None,
) -> Dict[int, List[int]]:
    """Assign each front a list of world ranks.

    Returns {node_id: [ranks]}; the root gets ``range(n_procs)``, children
    get proportional contiguous slices of their parent's ranks.
    """
    if n_procs < 1:
        raise ValueError(f"n_procs must be >= 1, got {n_procs}")
    if root_id is None:
        root_id = max(fronts)  # postorder: the root has the largest id
    work = subtree_work(fronts)
    teams: Dict[int, List[int]] = {}

    def assign(nid: int, ranks: List[int]) -> None:
        teams[nid] = ranks
        f = fronts[nid]
        if not f.children:
            return
        if len(ranks) == 1:
            for c in f.children:
                assign(c, ranks)
            return
        # split ranks proportionally to child subtree work (>= 1 each
        # while ranks remain; largest-remainder rounding)
        weights = [work[c] for c in f.children]
        total = sum(weights) or 1.0
        n = len(ranks)
        raw = [w / total * n for w in weights]
        alloc = [max(1, int(r)) for r in raw]
        # fix the sum to exactly n: shrink largest or grow by remainder
        while sum(alloc) > n:
            i = max(range(len(alloc)), key=lambda k: (alloc[k], -raw[k]))
            if alloc[i] > 1:
                alloc[i] -= 1
            else:
                break
        rema = sorted(range(len(alloc)), key=lambda k: raw[k] - alloc[k], reverse=True)
        j = 0
        while sum(alloc) < n:
            alloc[rema[j % len(alloc)]] += 1
            j += 1
        # if more children than ranks, tail children share the last rank
        pos = 0
        for c, k in zip(f.children, alloc):
            lo = min(pos, n - 1)
            hi = max(lo + 1, min(pos + k, n))
            assign(c, ranks[lo:hi])
            pos += k

    assign(root_id, list(range(n_procs)))
    return teams


def check_mapping_invariants(
    fronts: Dict[int, FrontSymbolic], teams: Dict[int, List[int]]
) -> None:
    """Assert team-nesting and coverage properties (tests)."""
    for nid, f in fronts.items():
        team = teams[nid]
        if not team:
            raise AssertionError(f"front {nid} has an empty team")
        if len(set(team)) != len(team):
            raise AssertionError(f"front {nid} team has duplicates")
        if f.parent != -1:
            parent_team = set(teams[f.parent])
            if not set(team) <= parent_team:
                raise AssertionError(
                    f"front {nid} team is not nested in parent {f.parent}'s team"
                )
