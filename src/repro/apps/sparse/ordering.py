"""Geometric nested dissection for 3-D grid problems.

Recursive bisection by the middle plane of the longest box dimension: the
plane is a *separator* (one front), the two half-boxes recurse.  Leaves
below ``leaf_size`` vertices become leaf fronts.  The recursion tree is
exactly the frontal-matrix tree of the multifrontal method (paper §IV-D:
"frontal matrices are organized along the elimination tree").

The elimination order is the postorder of this tree (children before
parents), which is what multifrontal factorization requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class DissectionNode:
    """One node of the separator tree (== one frontal matrix)."""

    #: vertices eliminated at this node (separator plane or leaf box)
    vertices: List[int]
    children: List["DissectionNode"] = field(default_factory=list)
    #: filled in by number(): node id in postorder
    node_id: int = -1
    parent: Optional["DissectionNode"] = None

    def postorder(self) -> List["DissectionNode"]:
        out: List[DissectionNode] = []

        def rec(n: "DissectionNode"):
            for c in n.children:
                rec(c)
            out.append(n)

        rec(self)
        return out

    def n_nodes(self) -> int:
        return 1 + sum(c.n_nodes() for c in self.children)


def _box_vertices(nx: int, ny: int, box: Tuple[int, int, int, int, int, int]) -> List[int]:
    x0, x1, y0, y1, z0, z1 = box
    out = []
    for z in range(z0, z1):
        for y in range(y0, y1):
            base = nx * (y + ny * z)
            out.extend(range(base + x0, base + x1))
    return out


def nested_dissection_3d(
    nx: int,
    ny: int,
    nz: int,
    leaf_size: int = 64,
) -> Tuple[DissectionNode, List[int]]:
    """Dissect the ``nx x ny x nz`` grid.

    Returns ``(root, perm)`` where ``perm[k]`` is the grid vertex
    eliminated at position ``k`` (postorder of the separator tree).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError(f"grid dims must be >= 1, got {(nx, ny, nz)}")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    def rec(box) -> DissectionNode:
        x0, x1, y0, y1, z0, z1 = box
        dx, dy, dz = x1 - x0, y1 - y0, z1 - z0
        vol = dx * dy * dz
        if vol <= leaf_size or max(dx, dy, dz) < 3:
            return DissectionNode(vertices=_box_vertices(nx, ny, box))
        # split the longest dimension by its middle plane
        if dx >= dy and dx >= dz:
            mid = x0 + dx // 2
            sep = (mid, mid + 1, y0, y1, z0, z1)
            left = (x0, mid, y0, y1, z0, z1)
            right = (mid + 1, x1, y0, y1, z0, z1)
        elif dy >= dz:
            mid = y0 + dy // 2
            sep = (x0, x1, mid, mid + 1, z0, z1)
            left = (x0, x1, y0, mid, z0, z1)
            right = (x0, x1, mid + 1, y1, z0, z1)
        else:
            mid = z0 + dz // 2
            sep = (x0, x1, y0, y1, mid, mid + 1)
            left = (x0, x1, y0, y1, z0, mid)
            right = (x0, x1, y0, y1, mid + 1, z1)
        node = DissectionNode(vertices=_box_vertices(nx, ny, sep))
        lc, rc = rec(left), rec(right)
        lc.parent = node
        rc.parent = node
        node.children = [lc, rc]
        return node

    root = rec((0, nx, 0, ny, 0, nz))
    perm: List[int] = []
    for i, node in enumerate(root.postorder()):
        node.node_id = i
        perm.extend(node.vertices)
    n = nx * ny * nz
    if len(perm) != n or len(set(perm)) != n:
        raise AssertionError("nested dissection did not produce a permutation")
    return root, perm
