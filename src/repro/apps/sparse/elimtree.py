"""Elimination trees (Liu's algorithm) and postorder utilities.

The column elimination tree of an SPD matrix A under an ordering perm:
``parent[j]`` is the smallest i > j such that L[i, j] != 0 in the Cholesky
factor.  Computed with Liu's path-compression algorithm in near-linear
time — the classic structure the paper's §IV-D background cites [15].
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp


def elimination_tree(a: sp.spmatrix, perm: Optional[Sequence[int]] = None) -> np.ndarray:
    """Return ``parent`` (length n, -1 for roots) of A(perm, perm).

    Liu's algorithm with virtual ancestors (path compression).
    """
    a = sp.csc_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    if perm is not None:
        perm = np.asarray(perm)
        if sorted(perm.tolist()) != list(range(n)):
            raise ValueError("perm is not a permutation")
        a = sp.csc_matrix(a[perm, :][:, perm])

    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = a.indptr, a.indices
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            i = indices[p]
            if i >= j:
                continue
            # walk i's root path, compressing through virtual ancestors
            r = i
            while ancestor[r] != -1 and ancestor[r] != j:
                nxt = ancestor[r]
                ancestor[r] = j
                r = nxt
            if ancestor[r] == -1:
                ancestor[r] = j
                parent[r] = j
    return parent


def postorder(parent: Sequence[int]) -> np.ndarray:
    """A postorder permutation of the forest given by ``parent``."""
    n = len(parent)
    children: List[List[int]] = [[] for _ in range(n)]
    roots: List[int] = []
    for j, p in enumerate(parent):
        if p == -1:
            roots.append(j)
        else:
            children[p].append(j)
    out = np.empty(n, dtype=np.int64)
    k = 0
    # iterative DFS to avoid recursion limits on path-shaped trees
    for root in roots:
        stack = [(root, 0)]
        while stack:
            node, ci = stack.pop()
            if ci < len(children[node]):
                stack.append((node, ci + 1))
                stack.append((children[node][ci], 0))
            else:
                out[k] = node
                k += 1
    if k != n:
        raise ValueError("parent array contains a cycle")
    return out


def subtree_sizes(parent: Sequence[int]) -> np.ndarray:
    """Number of nodes in each node's subtree (including itself)."""
    n = len(parent)
    size = np.ones(n, dtype=np.int64)
    for j in postorder(parent):
        p = parent[j]
        if p != -1:
            size[p] += size[j]
    return size


def tree_height(parent: Sequence[int]) -> int:
    """Height of the elimination forest (1 for a single node)."""
    n = len(parent)
    depth = np.zeros(n, dtype=np.int64)
    best = 0
    for j in reversed(postorder(parent)):  # parents before children
        p = parent[j]
        depth[j] = depth[p] + 1 if p != -1 else 1
        best = max(best, int(depth[j]))
    return best
