"""Sparse multifrontal solver components (paper §IV-D).

The paper's second motif is the *extend-add* operation of multifrontal
sparse solvers, benchmarked on SuiteSparse matrices extracted through
STRUMPACK.  Neither the matrices nor STRUMPACK are available offline, so
this package builds the full substrate from scratch (see DESIGN.md §2):

- :mod:`matrices` — synthetic SPD problems (3-D Laplacians, FEM-like
  proxies for ``audikw_1`` and ``Flan_1565``);
- :mod:`ordering` — geometric nested dissection producing the separator
  tree;
- :mod:`elimtree` — Liu's elimination-tree algorithm (general matrices)
  plus postorder utilities;
- :mod:`symbolic` — bottom-up symbolic factorization: per-front column and
  border (row) structure;
- :mod:`propmap` — the proportional-mapping heuristic assigning process
  teams to fronts;
- :mod:`frontal` — 2-D block-cyclic distributed frontal matrices;
- :mod:`extend_add` — the three benchmarked variants: UPC++ RPC (views +
  promise counting), MPI Alltoallv, MPI point-to-point;
- :mod:`sympack` — a simplified symPACK-style multifrontal Cholesky
  skeleton runnable over UPC++ v1.0 or the v0.1 emulation (Fig. 9).
"""

from repro.apps.sparse.matrices import laplacian_3d, proxy_audikw, proxy_flan
from repro.apps.sparse.ordering import DissectionNode, nested_dissection_3d
from repro.apps.sparse.elimtree import elimination_tree, postorder
from repro.apps.sparse.symbolic import FrontSymbolic, symbolic_from_dissection
from repro.apps.sparse.propmap import proportional_mapping
from repro.apps.sparse.frontal import BlockCyclic, FrontInstance

__all__ = [
    "laplacian_3d",
    "proxy_audikw",
    "proxy_flan",
    "DissectionNode",
    "nested_dissection_3d",
    "elimination_tree",
    "postorder",
    "FrontSymbolic",
    "symbolic_from_dissection",
    "proportional_mapping",
    "BlockCyclic",
    "FrontInstance",
]
