"""Distributed frontal matrices: 2-D block-cyclic layout and local storage.

Each front is distributed over its team in a 2-D block-cyclic manner with a
fixed block size (paper §IV-D: "frontal matrices are then distributed in a
2D block-cyclic manner with a fixed block size among processes of each
group").  A rank stores only its owned blocks, so per-rank memory is
front_size²/P — the scalable layout extend-add must route into.

All index math is vectorized: packing produces, per destination rank,
numpy arrays of (parent-local row, parent-local col, value) triples; the
wire carries the values as a zero-copy view plus the two index arrays.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.sparse.symbolic import FrontSymbolic


class BlockCyclic:
    """A pr x pc process grid with square blocks of ``block`` elements."""

    def __init__(self, n_procs: int, block: int = 24):
        if n_procs < 1:
            raise ValueError(f"n_procs must be >= 1, got {n_procs}")
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        pr = int(math.isqrt(n_procs))
        while n_procs % pr:
            pr -= 1
        self.pr = pr
        self.pc = n_procs // pr
        self.block = block
        self.n_procs = n_procs

    def owner(self, i: int, j: int) -> int:
        """Team index owning element (i, j)."""
        nb = self.block
        return ((i // nb) % self.pr) * self.pc + ((j // nb) % self.pc)

    def owner_vec(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        nb = self.block
        return ((i // nb) % self.pr) * self.pc + ((j // nb) % self.pc)

    def my_blocks(self, team_idx: int, n: int) -> List[Tuple[int, int]]:
        """Block coordinates (bi, bj) of an n x n matrix owned by team_idx."""
        nb = self.block
        nblk = -(-n // nb)
        mine = []
        row_of = team_idx // self.pc
        col_of = team_idx % self.pc
        for bi in range(row_of, nblk, self.pr):
            for bj in range(col_of, nblk, self.pc):
                mine.append((bi, bj))
        return mine


class FrontInstance:
    """One rank's share of one distributed frontal matrix."""

    def __init__(
        self,
        sym: FrontSymbolic,
        team: List[int],
        my_world_rank: int,
        block: int = 24,
    ):
        self.sym = sym
        self.team = list(team)
        self.grid = BlockCyclic(len(team), block)
        self.my_world_rank = my_world_rank
        self.my_team_idx: Optional[int] = (
            self.team.index(my_world_rank) if my_world_rank in team else None
        )
        #: owned storage: (bi, bj) -> dense block array
        self.blocks: Dict[Tuple[int, int], np.ndarray] = {}
        # mapping: child-front-local index -> global vertex, and the
        # inverse lookup used by packing (built lazily per parent)
        self._row_indices = sym.row_indices
        self._parent_pos_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- geometry
    @property
    def n(self) -> int:
        return self.sym.front_size

    def participating(self) -> bool:
        return self.my_team_idx is not None

    def _block_shape(self, bi: int, bj: int) -> Tuple[int, int]:
        nb = self.grid.block
        return (
            min(nb, self.n - bi * nb),
            min(nb, self.n - bj * nb),
        )

    def _get_block(self, bi: int, bj: int) -> np.ndarray:
        blk = self.blocks.get((bi, bj))
        if blk is None:
            blk = np.zeros(self._block_shape(bi, bj))
            self.blocks[(bi, bj)] = blk
        return blk

    # ------------------------------------------------------------------ fill
    def fill(self, value: float = 1.0, f22_only: bool = False) -> None:
        """Materialize owned blocks, set to ``value``.

        With ``f22_only`` only elements in the contribution-block region
        (rows and cols >= n_cols) are set; others are zero.
        """
        if not self.participating():
            return
        nc = self.sym.n_cols
        nb = self.grid.block
        for bi, bj in self.grid.my_blocks(self.my_team_idx, self.n):
            blk = self._get_block(bi, bj)
            if not f22_only:
                blk[:] = value
                continue
            i0, j0 = bi * nb, bj * nb
            ii = np.arange(i0, i0 + blk.shape[0])
            jj = np.arange(j0, j0 + blk.shape[1])
            mask = (ii[:, None] >= nc) & (jj[None, :] >= nc)
            blk[:] = 0.0
            blk[mask] = value

    # ------------------------------------------------------------- packing
    def parent_positions(self, parent: FrontSymbolic) -> np.ndarray:
        """For each of my front-local indices, the parent-front-local index
        (or -1 for my own eliminated columns, which are not sent)."""
        cached = self._parent_pos_cache.get(parent.node_id)
        if cached is not None:
            return cached
        parent_rows = parent.row_indices
        lookup = {int(g): k for k, g in enumerate(parent_rows)}
        out = np.full(self.n, -1, dtype=np.int64)
        for k in range(self.sym.n_cols, self.n):
            out[k] = lookup[int(self._row_indices[k])]
        self._parent_pos_cache[parent.node_id] = out
        return out

    def pack_for_parent(
        self,
        parent: FrontSymbolic,
        parent_team: List[int],
        parent_block: int = 24,
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Bin my F22 entries by destination parent rank.

        Returns {world_rank: (parent_i, parent_j, values)} — the paper's
        ``pack`` utility that "bins outgoing entries into sbuf".
        """
        if not self.participating():
            return {}
        nc = self.sym.n_cols
        pos = self.parent_positions(parent)
        pgrid = BlockCyclic(len(parent_team), parent_block)
        nb = self.grid.block

        pis: List[np.ndarray] = []
        pjs: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for (bi, bj), blk in self.blocks.items():
            i0, j0 = bi * nb, bj * nb
            i1, j1 = i0 + blk.shape[0], j0 + blk.shape[1]
            if i1 <= nc or j1 <= nc:
                continue  # block entirely outside F22
            ia, ja = max(i0, nc), max(j0, nc)
            sub = blk[ia - i0 : i1 - i0, ja - j0 : j1 - j0]
            pi = pos[ia:i1]
            pj = pos[ja:j1]
            pim, pjm = np.meshgrid(pi, pj, indexing="ij")
            pis.append(pim.ravel())
            pjs.append(pjm.ravel())
            vals.append(np.ascontiguousarray(sub).ravel())
        if not pis:
            return {}
        pi = np.concatenate(pis)
        pj = np.concatenate(pjs)
        v = np.concatenate(vals)
        dest_team_idx = pgrid.owner_vec(pi, pj)

        out: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        order = np.argsort(dest_team_idx, kind="stable")
        pi, pj, v, d = pi[order], pj[order], v[order], dest_team_idx[order]
        cuts = np.flatnonzero(np.diff(d)) + 1
        for lo, hi in zip(np.r_[0, cuts], np.r_[cuts, len(d)]):
            world = parent_team[int(d[lo])]
            out[world] = (pi[lo:hi].copy(), pj[lo:hi].copy(), v[lo:hi].copy())
        return out

    # ---------------------------------------------------------- accumulate
    def accumulate(self, pi: np.ndarray, pj: np.ndarray, values: np.ndarray) -> None:
        """Scatter-add received contributions into my owned blocks."""
        if len(pi) == 0:
            return
        nb = self.grid.block
        bi = pi // nb
        bj = pj // nb
        order = np.lexsort((bj, bi))
        pi, pj, values, bi, bj = pi[order], pj[order], values[order], bi[order], bj[order]
        key = bi * (1 << 32) + bj
        cuts = np.flatnonzero(np.diff(key)) + 1
        for lo, hi in zip(np.r_[0, cuts], np.r_[cuts, len(key)]):
            blk = self._get_block(int(bi[lo]), int(bj[lo]))
            np.add.at(
                blk,
                (pi[lo:hi] - bi[lo] * nb, pj[lo:hi] - bj[lo] * nb),
                values[lo:hi],
            )

    # ------------------------------------------------------------- queries
    def local_sum(self) -> float:
        """Sum of all owned entries (correctness checks)."""
        return float(sum(blk.sum() for blk in self.blocks.values()))

    def dense(self) -> np.ndarray:
        """Assemble my owned entries into a full (n x n) array (tests)."""
        out = np.zeros((self.n, self.n))
        nb = self.grid.block
        for (bi, bj), blk in self.blocks.items():
            out[bi * nb : bi * nb + blk.shape[0], bj * nb : bj * nb + blk.shape[1]] = blk
        return out

    def f22_nnz_for(
        self, parent: FrontSymbolic, parent_team: List[int], parent_block: int = 24
    ) -> Dict[int, int]:
        """Per-destination entry counts (used to precompute expected RPC
        counts without packing values)."""
        packed = self.pack_for_parent(parent, parent_team, parent_block)
        return {w: len(v) for w, (_pi, _pj, v) in packed.items()}
