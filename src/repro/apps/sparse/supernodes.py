"""Supernodal symbolic analysis for *general* SPD matrices.

The geometric path (:mod:`ordering` + :mod:`symbolic`) only covers grid
problems.  This module builds the same :class:`FrontSymbolic` structures
for an **arbitrary** SPD matrix under any fill-reducing permutation, the
way general sparse solvers do:

1. elimination tree of A(perm, perm)  (Liu's algorithm, :mod:`elimtree`);
2. per-column nonzero structure of the Cholesky factor L, computed
   bottom-up (``struct(j) = A_below(j) ∪ ⋃_children struct(c)\\{c}``);
3. **fundamental supernodes**: maximal runs of consecutive columns
   ``j, j+1`` with ``parent[j] == j+1`` and
   ``struct(j)\\{j} == {j+1} ∪ struct(j+1)`` — each supernode becomes one
   frontal matrix (cols = the run, border = struct of the last column);
4. optional **relaxed amalgamation**: absorb small supernodes into their
   parents when the extra fill stays below a budget, trading flops for
   fewer/larger fronts (the standard engineering knob).

The resulting front dict is drop-in compatible with
:mod:`propmap`, :mod:`numeric`, and :mod:`numeric2d`, so the full
distributed solver runs on any SPD input.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.apps.sparse.elimtree import elimination_tree, postorder
from repro.apps.sparse.symbolic import FrontSymbolic


def column_structures(a: sp.spmatrix, parent: np.ndarray) -> List[set]:
    """Nonzero row structure of each column of L (strictly below diagonal).

    Bottom-up union over the elimination tree; O(Σ|struct|) time/memory —
    fine at the problem sizes the simulator runs.
    """
    a = sp.csc_matrix(a)
    n = a.shape[0]
    struct: List[set] = [set() for _ in range(n)]
    for j in postorder(parent):
        s = {int(i) for i in a.indices[a.indptr[j] : a.indptr[j + 1]] if i > j}
        for c in _children_of(parent, j):
            s |= struct[c] - {j}
        struct[j] = s
        # (children sets could be freed here; kept for supernode detection)
    return struct


def _children_of(parent: np.ndarray, j: int) -> List[int]:
    # cached lazily on the array object to stay O(n) overall
    cache = getattr(parent, "_children_cache", None)
    if cache is None:
        cache = [[] for _ in range(len(parent))]
        for k, p in enumerate(parent):
            if p != -1:
                cache[p].append(k)
        try:
            parent._children_cache = cache  # type: ignore[attr-defined]
        except AttributeError:
            pass
    return cache[j]


def fundamental_supernodes(parent: np.ndarray, struct: List[set]) -> List[List[int]]:
    """Partition columns into maximal fundamental supernodes (postorder)."""
    n = len(parent)
    po = list(postorder(parent))
    pos = {int(j): k for k, j in enumerate(po)}
    supernodes: List[List[int]] = []
    current: List[int] = []
    for j in po:
        if current:
            prev = current[-1]
            mergeable = (
                parent[prev] == j
                and pos[int(j)] == pos[prev] + 1
                and struct[prev] - {j} == struct[j]
                and len(_children_of(parent, j)) == 1
            )
            if mergeable:
                current.append(int(j))
                continue
            supernodes.append(current)
        current = [int(j)]
    if current:
        supernodes.append(current)
    return supernodes


def _supernode_tree(
    parent: np.ndarray, supernodes: List[List[int]]
) -> Tuple[Dict[int, int], Dict[int, List[int]]]:
    """Parent/children links between supernodes (ids = list positions)."""
    of_col = {}
    for sid, cols in enumerate(supernodes):
        for c in cols:
            of_col[c] = sid
    sn_parent: Dict[int, int] = {}
    sn_children: Dict[int, List[int]] = {sid: [] for sid in range(len(supernodes))}
    for sid, cols in enumerate(supernodes):
        p = parent[cols[-1]]
        sn_parent[sid] = of_col[int(p)] if p != -1 else -1
        if p != -1:
            sn_children[of_col[int(p)]].append(sid)
    return sn_parent, sn_children


def amalgamate(
    supernodes: List[List[int]],
    sn_parent: Dict[int, int],
    struct: List[set],
    max_extra_fill: int = 0,
) -> List[List[int]]:
    """Relaxed amalgamation: absorb a supernode into its parent when the
    union front would add at most ``max_extra_fill`` extra entries.

    ``max_extra_fill=0`` keeps fundamental supernodes unchanged.
    """
    if max_extra_fill <= 0:
        return supernodes
    sns = [list(s) for s in supernodes]
    parent_of = dict(sn_parent)
    absorbed: Dict[int, int] = {}  # child sid -> surviving sid

    def find(sid: int) -> int:
        while sid in absorbed:
            sid = absorbed[sid]
        return sid

    for sid in range(len(sns)):
        p = parent_of.get(sid, -1)
        if p == -1:
            continue
        p = find(p)
        child_cols, parent_cols = sns[sid], sns[p]
        if not child_cols or not parent_cols:
            continue
        child_front = len(child_cols) + len(
            set().union(*(struct[c] for c in child_cols)) - set(child_cols)
        )
        parent_front = len(parent_cols) + len(
            set().union(*(struct[c] for c in parent_cols)) - set(parent_cols)
        )
        merged = len(child_cols) + parent_front
        # explicit-zero entries the merge introduces (the child's columns
        # grow from its own front height to the merged front height)
        extra = len(child_cols) * max(0, merged - child_front)
        if extra <= max_extra_fill:
            sns[p] = sorted(child_cols + parent_cols)
            sns[sid] = []
            absorbed[sid] = p
    return [s for s in sns if s]


def symbolic_general(
    a: sp.spmatrix,
    perm: Optional[Sequence[int]] = None,
    max_extra_fill: int = 0,
) -> Tuple[Dict[int, FrontSymbolic], np.ndarray]:
    """Full supernodal symbolic analysis of a general SPD matrix.

    Returns ``(fronts, elim_pos)`` where fronts are keyed by postorder
    supernode id (children < parent, root last) and ``elim_pos[v]`` is
    vertex v's elimination position — the exact contract the numeric
    solvers expect.  ``perm`` orders the matrix (identity if None); front
    ``cols``/``border`` are expressed in *original* vertex ids.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    perm = np.arange(n) if perm is None else np.asarray(perm)
    ap = sp.csc_matrix(a[perm, :][:, perm])

    parent = elimination_tree(ap)
    struct = column_structures(ap, parent)
    sns = fundamental_supernodes(parent, struct)
    sn_parent, _ = _supernode_tree(parent, sns)
    sns = amalgamate(sns, sn_parent, struct, max_extra_fill)
    sn_parent, sn_children = _supernode_tree(parent, sns)

    # order supernodes so children precede parents and ids are contiguous
    order: List[int] = []
    roots = [sid for sid in range(len(sns)) if sn_parent.get(sid, -1) == -1]
    for root in sorted(roots):
        stack = [(root, 0)]
        while stack:
            sid, ci = stack.pop()
            kids = sorted(sn_children.get(sid, []))
            if ci < len(kids):
                stack.append((sid, ci + 1))
                stack.append((kids[ci], 0))
            else:
                order.append(sid)
    new_id = {sid: k for k, sid in enumerate(order)}

    elim_pos = np.empty(n, dtype=np.int64)
    for v_new, v_orig in enumerate(perm):
        elim_pos[v_orig] = v_new

    inv = np.asarray(perm)  # permuted index -> original vertex id
    fronts: Dict[int, FrontSymbolic] = {}
    for sid in order:
        cols_p = sorted(sns[sid])  # permuted indices == elimination positions
        # union over all columns: exact for fundamental supernodes, and the
        # correct (padded) row set for amalgamated ones
        border_p = sorted(set().union(*(struct[c] for c in cols_p)) - set(cols_p))
        # sanity: fundamental property — the first column's structure
        # covers the whole supernode's update rows
        fronts[new_id[sid]] = FrontSymbolic(
            node_id=new_id[sid],
            cols=np.asarray([int(inv[c]) for c in cols_p], dtype=np.int64),
            border=np.asarray([int(inv[b]) for b in border_p], dtype=np.int64),
            children=[new_id[c] for c in sorted(sn_children.get(sid, []))],
            parent=new_id[sn_parent[sid]] if sn_parent.get(sid, -1) != -1 else -1,
        )
    return fronts, elim_pos


def build_cholesky_plan_general(
    a: sp.spmatrix,
    n_procs: int,
    perm: Optional[Sequence[int]] = None,
    max_extra_fill: int = 0,
):
    """A :class:`~repro.apps.sparse.numeric.CholeskyPlan` for any SPD A."""
    from repro.apps.sparse.numeric import CholeskyPlan
    from repro.apps.sparse.propmap import proportional_mapping

    fronts, elim_pos = symbolic_general(a, perm, max_extra_fill)
    teams = proportional_mapping(fronts, n_procs)
    owner = {nid: team[0] for nid, team in teams.items()}
    return CholeskyPlan(
        a=sp.csr_matrix(a), fronts=fronts, owner=owner, elim_pos=elim_pos, n_procs=n_procs
    )
