"""symPACK-style multifrontal Cholesky skeleton (paper §IV-D-4, Fig. 9).

Fig. 9 compares two implementations of the same solver: the original over
UPC++ v0.1 (asyncs + events) and the port to v1.0 (RPCs + futures).  The
computation and communication volume are identical; only the asynchrony
machinery differs.  The paper finds them "nearly identical" (0.7% average
difference, v1.0 up to 7.2% ahead at 256 processes).

This skeleton factorizes the frontal tree bottom-up: for each front its
team (a) waits for all children's extend-add contributions, (b) charges the
dense partial-factorization flops split across the team, and (c) packs and
sends its contribution block to the parent.  The two backends are:

- ``backend="v1"``  — RPC with zero-copy views, promise-counted completion
  (exactly the extend-add of :mod:`repro.apps.sparse.extend_add`);
- ``backend="v01"`` — :func:`repro.upcxx_v01.async_task` per destination
  (no return values, payload copied at both ends, per-op event
  bookkeeping) with an explicitly managed ack :class:`Event`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import (
    EaddPlan,
    _build_instances,
    _charge_pack,
    _EaddState,
    _accum,
)
from repro.upcxx_v01 import Event, async_task


def _factor_front_cost(plan: EaddPlan, pid: int, rt) -> float:
    """Per-rank share of the front's dense partial factorization."""
    f = plan.fronts[pid]
    team_size = len(plan.teams[pid])
    return f.factor_flops() / rt.cpu.flop_rate / team_size


# ------------------------------------------------------------------- v1.0
def sympack_v1_run(plan: EaddPlan) -> float:
    """Factorization sweep over UPC++ v1.0 (futures/RPC); elapsed seconds."""
    rt = upcxx.current_runtime()
    me = rt.rank
    instances = _build_instances(plan, me)
    state = _EaddState(plan, instances)
    state_dobj = upcxx.DistObject(state)
    upcxx.barrier()
    t0 = upcxx.sim_now()

    for nid in sorted(plan.fronts):
        front = plan.fronts[nid]
        if me not in plan.teams[nid]:
            continue
        # (a) wait for children's contributions (extend-add completion)
        if front.children:
            state.promises[nid].finalize().wait()
        # (b) dense partial factorization of the front, split over the team
        upcxx.compute(_factor_front_cost(plan, nid, rt))
        # (c) extend-add my piece of F22 into the parent
        if front.parent == -1:
            continue
        parent = plan.fronts[front.parent]
        packed = instances[nid].pack_for_parent(parent, plan.teams[front.parent], plan.block)
        _charge_pack(rt.charge_sw, rt.charge_copy, packed)
        f_conj = upcxx.make_future()
        for dest, (pi, pj, vals) in packed.items():
            fut = upcxx.rpc(dest, _accum, state_dobj, front.parent, pi, pj, upcxx.make_view(vals))
            f_conj = upcxx.when_all(f_conj, fut)
        f_conj.wait()

    upcxx.barrier()
    return upcxx.sim_now() - t0


# ------------------------------------------------------------------- v0.1
class _V01State:
    """Per-rank v0.1 state: instances plus explicitly managed events."""

    def __init__(self, plan: EaddPlan, instances: Dict[int, "object"]):
        self.plan = plan
        self.instances = instances
        # the programmer must size each event with the expected incoming
        # count up front — the lifetime-management burden §V-A describes
        rt = upcxx.current_runtime()
        me = rt.rank
        self.recv_events: Dict[int, Event] = {}
        for pid in plan.parents:
            if me in plan.teams[pid]:
                self.recv_events[pid] = Event(count=plan.expected.get((pid, me), 0))


def _v01_accum(state_dobj: upcxx.DistObject, pid: int, pi, pj, vals) -> None:
    """v0.1 remote body: same accumulation, but the payload arrived fully
    copied (no views) and completion flows through an event."""
    rt = upcxx.current_runtime()
    state: _V01State = state_dobj.value
    values = np.asarray(vals)
    rt.sched.charge(rt.cpu.accumulate_time(len(values)))
    state.instances[pid].accumulate(np.asarray(pi), np.asarray(pj), values)
    state.recv_events[pid].signal(1)


def sympack_v01_run(plan: EaddPlan) -> float:
    """Factorization sweep over the v0.1 emulation; elapsed seconds."""
    rt = upcxx.current_runtime()
    me = rt.rank
    instances = _build_instances(plan, me)
    state = _V01State(plan, instances)
    state_dobj = upcxx.DistObject(state)
    upcxx.barrier()
    t0 = upcxx.sim_now()

    for nid in sorted(plan.fronts):
        front = plan.fronts[nid]
        if me not in plan.teams[nid]:
            continue
        if front.children:
            state.recv_events[nid].wait()
        upcxx.compute(_factor_front_cost(plan, nid, rt))
        if front.parent == -1:
            continue
        parent = plan.fronts[front.parent]
        packed = instances[nid].pack_for_parent(parent, plan.teams[front.parent], plan.block)
        _charge_pack(rt.charge_sw, rt.charge_copy, packed)
        ack = Event()
        for dest, (pi, pj, vals) in packed.items():
            # v0.1: no views — the values array ships as a plain copied
            # payload; the ack event is the only completion signal
            async_task(dest, _v01_accum, state_dobj, front.parent, pi, pj, vals, ack=ack)
        ack.wait()

    upcxx.barrier()
    return upcxx.sim_now() - t0


def sympack_run(plan: EaddPlan, backend: str = "v1") -> float:
    """Run the factorization sweep with the chosen backend."""
    if backend == "v1":
        return sympack_v1_run(plan)
    if backend == "v01":
        return sympack_v01_run(plan)
    raise ValueError(f"unknown backend {backend!r}; use 'v1' or 'v01'")
