"""Team-parallel numeric front factorization (2-D block-cyclic).

:mod:`repro.apps.sparse.numeric` factors each front on its team's lead
rank — correct, but the serialized top separators cap strong scaling
(Amdahl along the root path).  This module removes that cap the way real
multifrontal solvers (symPACK, STRUMPACK) do: each front's dense partial
factorization runs **across its whole team** on the 2-D block-cyclic
layout of :class:`~repro.apps.sparse.frontal.FrontInstance`, with a
right-looking blocked algorithm.  For each block-column ``k`` of the
eliminated region::

    POTRF   the owner of (k,k) factors the diagonal block -> L_kk and
            sends it to the panel owners of block-column/row k;
    TRSM    panel owners compute L_ik = A_ik·L_kk^-T (and the mirrored
            row panel L_kk^-1·A_kj), then send each panel piece to the
            owners of the trailing blocks that need it;
    GEMM    every owner updates its trailing blocks
            A_ij -= L_ik · (L_kk^-1 A_kj).

All panel traffic is ``rpc_ff`` with zero-copy views; per-step promises
pre-sized from the (deterministic) block-cyclic geometry provide dataflow
synchronization — messages arriving early are cached, never lost.

Implementation notes:

- Fronts store the full symmetric square (upper mirrored): extend-add and
  indexing stay simple at 2x minimal memory; the *timing* charge uses the
  true factorization flop count.
- The eliminated region is padded to a block boundary with synthetic
  identity columns (factor of ``[[A,0],[0,I]]``), so the cols/border
  boundary always falls between blocks and every panel step is regular.
- After the panels, the trailing square is the distributed Schur
  complement (value-carrying extend-add to the parent team); the factor
  panels are then gathered to the team lead so the tree-structured
  triangular solves of :mod:`numeric` apply unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np
from scipy.linalg import solve_triangular

import repro.upcxx as upcxx
from repro.apps.sparse.frontal import FrontInstance
from repro.apps.sparse.numeric import CholeskyPlan, _FactorState, build_cholesky_plan
from repro.apps.sparse.propmap import proportional_mapping
from repro.apps.sparse.symbolic import FrontSymbolic
from repro.upcxx.future import Promise


class Cholesky2DPlan:
    """Symbolic plan with full teams (not just leads) per front."""

    def __init__(self, base: CholeskyPlan, teams: Dict[int, List[int]], block: int):
        self.a = base.a
        self.fronts = base.fronts
        self.elim_pos = base.elim_pos
        self.n_procs = base.n_procs
        self.teams = teams
        self.owner = {nid: team[0] for nid, team in teams.items()}
        self.block = block

    @property
    def n(self) -> int:
        return self.a.shape[0]

    def my_fronts(self, rank: int) -> List[int]:
        """Fronts this rank participates in (team membership), postorder."""
        return [nid for nid in sorted(self.fronts) if rank in self.teams[nid]]


def build_cholesky_2d_plan(
    nx: int, ny: int, nz: int, n_procs: int, leaf_size: int = 32, block: int = 16
) -> Cholesky2DPlan:
    base = build_cholesky_plan(nx, ny, nz, n_procs=n_procs, leaf_size=leaf_size)
    teams = proportional_mapping(base.fronts, n_procs)
    return Cholesky2DPlan(base, teams, block)


def _padded_symbolic(sym: FrontSymbolic, block: int) -> Tuple[FrontSymbolic, int]:
    """Pad ``cols`` with synthetic (negative-id) identity columns so the
    eliminated region ends exactly at a block boundary."""
    pad = (-sym.n_cols) % block
    if pad == 0:
        return sym, 0
    synth = np.array(
        [-(sym.node_id * 1_000_000 + t + 1) for t in range(pad)], dtype=np.int64
    )
    return (
        FrontSymbolic(
            node_id=sym.node_id,
            cols=np.concatenate([sym.cols, synth]),
            border=sym.border,
            children=list(sym.children),
            parent=sym.parent,
        ),
        pad,
    )


# --------------------------------------------------------------- per-front
class _Front2D:
    """One rank's participation in one front's team-parallel factorization."""

    def __init__(self, plan: Cholesky2DPlan, nid: int, me: int):
        self.plan = plan
        self.nid = nid
        self.me = me
        self.sym_real: FrontSymbolic = plan.fronts[nid]
        self.sym, self.pad = _padded_symbolic(self.sym_real, plan.block)
        self.team = plan.teams[nid]
        self.inst = FrontInstance(self.sym, self.team, me, plan.block)
        self.inst.fill(0.0)
        self.grid = self.inst.grid
        nb = plan.block
        assert self.sym.n_cols % nb == 0 or self.sym.front_size == self.sym.n_cols
        self.n_panels = -(-self.sym.n_cols // nb)
        self.nblk = -(-self.sym.front_size // nb)
        # dataflow state, keyed by panel step
        self.lkk: Dict[int, np.ndarray] = {}
        self.col_panels: Dict[Tuple[int, int], np.ndarray] = {}  # (k, bi) -> L_bik
        self.row_panels: Dict[Tuple[int, int], np.ndarray] = {}  # (k, bj) -> inv(Lkk)A_kbj
        self.p_lkk: Dict[int, Promise] = {}
        self.p_panels: Dict[int, Promise] = {}
        #: extend-add completion (children's Schur contributions)
        self.p_children = Promise()
        self._setup_promises()

    # ------------------------------------------------------------- geometry
    def owner_block(self, bi: int, bj: int) -> int:
        """World rank owning block (bi, bj)."""
        g = self.grid
        return self.team[(bi % g.pr) * g.pc + (bj % g.pc)]

    def my_trailing_blocks(self, k: int) -> List[Tuple[int, int]]:
        return [(bi, bj) for (bi, bj) in self.inst.blocks if bi > k and bj > k]

    def my_col_panel_blocks(self, k: int) -> List[int]:
        return sorted(bi for (bi, bj) in self.inst.blocks if bj == k and bi > k)

    def my_row_panel_blocks(self, k: int) -> List[int]:
        return sorted(bj for (bi, bj) in self.inst.blocks if bi == k and bj > k)

    # ------------------------------------------------------------- promises
    def _setup_promises(self) -> None:
        """Pre-size every step's promises from the block-cyclic geometry."""
        for k in range(self.n_panels):
            diag_owner = self.owner_block(k, k)
            need_lkk = self.me != diag_owner and (
                self.my_col_panel_blocks(k) or self.my_row_panel_blocks(k)
            )
            p = Promise()
            p.require_anonymous(1 if need_lkk else 0)
            self.p_lkk[k] = p

            rows_needed = {bi for (bi, _bj) in self.my_trailing_blocks(k)}
            cols_needed = {bj for (_bi, bj) in self.my_trailing_blocks(k)}
            expected = sum(1 for bi in rows_needed if self.owner_block(bi, k) != self.me)
            expected += sum(1 for bj in cols_needed if self.owner_block(k, bj) != self.me)
            q = Promise()
            q.require_anonymous(expected)
            self.p_panels[k] = q

    # ---------------------------------------------------------- data intake
    def deliver_lkk(self, k: int, block: np.ndarray) -> None:
        self.lkk[k] = block
        self.p_lkk[k].fulfill_anonymous(1)

    def deliver_col(self, k: int, bi: int, block: np.ndarray) -> None:
        self.col_panels[(k, bi)] = block
        self.p_panels[k].fulfill_anonymous(1)

    def deliver_row(self, k: int, bj: int, block: np.ndarray) -> None:
        self.row_panels[(k, bj)] = block
        self.p_panels[k].fulfill_anonymous(1)


class _State2D:
    """Per-rank state reachable from incoming RPCs."""

    def __init__(self, plan: Cholesky2DPlan):
        self.plan = plan
        rt = upcxx.current_runtime()
        me = rt.rank
        self.fronts: Dict[int, _Front2D] = {
            nid: _Front2D(plan, nid, me) for nid in plan.my_fronts(me)
        }
        # size extend-add promises: one per incoming child contribution msg.
        # (The padded symbolic is used on BOTH ends so destination geometry
        # matches what the children actually send.)
        for nid, fr in self.fronts.items():
            expected = 0
            for cid in plan.fronts[nid].children:
                child_sym, _ = _padded_symbolic(plan.fronts[cid], plan.block)
                for s in plan.teams[cid]:
                    inst = FrontInstance(child_sym, plan.teams[cid], s, plan.block)
                    inst.fill(0.0)
                    counts = inst.f22_nnz_for(fr.sym, plan.teams[nid], plan.block)
                    if counts.get(me, 0) > 0:
                        expected += 1
            fr.p_children.require_anonymous(expected)
        #: gathered factor pieces at team leads: nid -> (L11, L21)
        self.factors: Dict[int, tuple] = {}
        #: gather promises pre-created (gather traffic can outrun the lead)
        self.p_gather: Dict[int, Promise] = {}
        self.gather_buf: Dict[int, list] = {}
        for nid, fr in self.fronts.items():
            if fr.team[0] != me:
                continue
            nb = plan.block
            ncb = -(-fr.sym.n_cols // nb)
            incoming = sum(
                1
                for bj in range(ncb)
                for bi in range(bj, fr.nblk)
                if fr.owner_block(bi, bj) != me
            )
            q = Promise()
            q.require_anonymous(incoming)
            self.p_gather[nid] = q


# ------------------------------------------------------------ RPC handlers
def _as_arr(vals) -> np.ndarray:
    return vals.to_numpy() if hasattr(vals, "to_numpy") else np.asarray(vals)


def _rpc_lkk(state_dobj, nid: int, k: int, vals) -> None:
    st: _State2D = state_dobj.value
    b = int(math.isqrt(len(vals)))
    st.fronts[nid].deliver_lkk(k, _as_arr(vals).reshape(b, b))


def _rpc_col(state_dobj, nid: int, k: int, bi: int, rows: int, vals) -> None:
    st: _State2D = state_dobj.value
    st.fronts[nid].deliver_col(k, bi, _as_arr(vals).reshape(rows, -1))


def _rpc_row(state_dobj, nid: int, k: int, bj: int, rows: int, vals) -> None:
    st: _State2D = state_dobj.value
    st.fronts[nid].deliver_row(k, bj, _as_arr(vals).reshape(rows, -1))


def _rpc_eadd(state_dobj, nid: int, pi, pj, vals) -> None:
    rt = upcxx.current_runtime()
    st: _State2D = state_dobj.value
    fr = st.fronts[nid]
    values = _as_arr(vals)
    rt.sched.charge(rt.cpu.accumulate_time(len(values)))
    fr.inst.accumulate(np.asarray(pi), np.asarray(pj), values)
    fr.p_children.fulfill_anonymous(1)


def _rpc_gather(state_dobj, nid: int, bi: int, bj: int, rows: int, vals) -> None:
    st: _State2D = state_dobj.value
    st.gather_buf.setdefault(nid, []).append((bi, bj, _as_arr(vals).reshape(rows, -1)))
    st.p_gather[nid].fulfill_anonymous(1)


# ---------------------------------------------------------------- assembly
def _assemble_a_blocks(plan: Cholesky2DPlan, fr: _Front2D) -> None:
    """Add my owned blocks' share of A into the front (symmetric full),
    plus unit diagonals for the synthetic padding columns."""
    f = fr.sym_real
    rows = fr.sym.row_indices
    pos_in_front = {int(g): i for i, g in enumerate(rows)}
    a = plan.a
    col_set = set(f.cols.tolist())
    nb = plan.block

    def add(ei: int, ej: int, v: float) -> None:
        bi, bj = ei // nb, ej // nb
        blk = fr.inst.blocks.get((bi, bj))
        if blk is not None:
            blk[ei - bi * nb, ej - bj * nb] += v

    for j in f.cols:
        jf = pos_in_front[int(j)]
        pj = plan.elim_pos[j]
        for p in range(a.indptr[j], a.indptr[j + 1]):
            i = a.indices[p]
            fi = pos_in_front.get(int(i))
            if fi is None:
                continue  # eliminated in a descendant: assembled there
            if plan.elim_pos[i] < pj and int(i) in col_set:
                continue  # the symmetric partner handles it
            v = a.data[p]
            add(fi, jf, v)
            if fi != jf:
                add(jf, fi, v)
    # synthetic identity padding
    for t in range(fr.pad):
        p = f.n_cols + t
        add(p, p, 1.0)


# ------------------------------------------------------------- the kernel
def _factor_front_2d(plan: Cholesky2DPlan, fr: _Front2D, state_dobj) -> None:
    """Run my part of one front's right-looking factorization."""
    rt = upcxx.current_runtime()
    me = fr.me
    nid = fr.nid

    # flop charge: my share of the true partial-factorization cost
    rt.compute(fr.sym_real.factor_flops() / rt.cpu.flop_rate / len(fr.team))

    for k in range(fr.n_panels):
        diag_owner = fr.owner_block(k, k)

        # ---- POTRF + L_kk distribution --------------------------------
        if me == diag_owner:
            dblk = fr.inst._get_block(k, k)
            lkk = np.linalg.cholesky(dblk)
            dblk[:, :] = np.tril(lkk) + np.tril(lkk, -1).T  # keep symmetric
            fr.lkk[k] = lkk
            recipients = set()
            for b in range(k + 1, fr.nblk):
                recipients.add(fr.owner_block(b, k))
                recipients.add(fr.owner_block(k, b))
            recipients.discard(me)
            for dest in sorted(recipients):
                upcxx.rpc_ff(dest, _rpc_lkk, state_dobj, nid, k, upcxx.make_view(lkk.ravel()))
        else:
            # non-owners that need L_kk wait for it (0-dep promise if not)
            fr.p_lkk[k].finalize().wait()
        lkk = fr.lkk.get(k)

        # ---- TRSM my panel blocks and distribute them -------------------
        for bi in fr.my_col_panel_blocks(k):
            blk = fr.inst._get_block(bi, k)
            blk[:, :] = solve_triangular(lkk, blk.T, lower=True).T
            piece = blk.copy()
            fr.col_panels[(k, bi)] = piece
            dests = {fr.owner_block(bi, bj) for bj in range(k + 1, fr.nblk)} - {me}
            for dest in sorted(dests):
                upcxx.rpc_ff(
                    dest, _rpc_col, state_dobj, nid, k, bi, piece.shape[0],
                    upcxx.make_view(piece.ravel()),
                )
        for bj in fr.my_row_panel_blocks(k):
            blk = fr.inst._get_block(k, bj)
            blk[:, :] = solve_triangular(lkk, blk, lower=True)
            piece = blk.copy()
            fr.row_panels[(k, bj)] = piece
            dests = {fr.owner_block(bi, bj) for bi in range(k + 1, fr.nblk)} - {me}
            for dest in sorted(dests):
                upcxx.rpc_ff(
                    dest, _rpc_row, state_dobj, nid, k, bj, piece.shape[0],
                    upcxx.make_view(piece.ravel()),
                )

        # ---- wait for the panel pieces I need, then GEMM ----------------
        fr.p_panels[k].finalize().wait()
        for (bi, bj) in fr.my_trailing_blocks(k):
            li = fr.col_panels[(k, bi)]  # block-bi rows x nb
            rj = fr.row_panels[(k, bj)]  # nb x block-bj cols
            fr.inst._get_block(bi, bj)[:, :] -= li @ rj
        for key in [key for key in fr.col_panels if key[0] == k]:
            del fr.col_panels[key]
        for key in [key for key in fr.row_panels if key[0] == k]:
            del fr.row_panels[key]
        fr.lkk.pop(k, None)


def _send_schur_to_parent(plan: Cholesky2DPlan, fr: _Front2D, state_dobj) -> None:
    """Extend-add my Schur piece into the parent team (value-carrying).

    Uses the padded symbolic of the PARENT so destination geometry matches
    the parent's padded instance.
    """
    rt = upcxx.current_runtime()
    if fr.sym_real.parent == -1:
        return
    parent_sym, _ = _padded_symbolic(plan.fronts[fr.sym_real.parent], plan.block)
    packed = fr.inst.pack_for_parent(parent_sym, plan.teams[fr.sym_real.parent], plan.block)
    for dest, (pi, pj, vals) in packed.items():
        rt.charge_copy(vals.nbytes)
        upcxx.rpc_ff(
            dest, _rpc_eadd, state_dobj, fr.sym_real.parent, pi, pj, upcxx.make_view(vals)
        )


def _gather_factors_to_lead(plan: Cholesky2DPlan, fr: _Front2D, st: _State2D, state_dobj) -> None:
    """Ship factor-panel blocks to the team lead, which reconstructs the
    (L11, L21) pieces for the tree-structured solves."""
    rt = upcxx.current_runtime()
    me = fr.me
    nid = fr.nid
    nb = plan.block
    nc_real = fr.sym_real.n_cols
    nc_pad = fr.sym.n_cols
    lead = fr.team[0]
    ncb = nc_pad // nb if nc_pad % nb == 0 else -(-nc_pad // nb)

    my_blocks = [
        (bi, bj, blk)
        for (bi, bj), blk in fr.inst.blocks.items()
        if bj < ncb and bi >= bj  # lower-trapezoid factor region
    ]
    if me == lead:
        p = st.p_gather[nid]
        buf = st.gather_buf.setdefault(nid, [])
        for bi, bj, blk in my_blocks:
            buf.append((bi, bj, blk.copy()))
        p.finalize().wait()
        n = fr.sym.front_size
        full = np.zeros((n, n))
        for bi, bj, blk in buf:
            full[bi * nb : bi * nb + blk.shape[0], bj * nb : bj * nb + blk.shape[1]] = blk
        l11 = np.tril(full[:nc_real, :nc_real])
        l21 = full[nc_pad:, :nc_real]
        st.factors[nid] = (l11, l21)
        del st.gather_buf[nid]
    else:
        for bi, bj, blk in my_blocks:
            rt.charge_copy(blk.nbytes)
            upcxx.rpc_ff(
                lead, _rpc_gather, state_dobj, nid, bi, bj, blk.shape[0],
                upcxx.make_view(np.ascontiguousarray(blk).ravel()),
            )


# ------------------------------------------------------------------ driver
class _LeadPlanView(CholeskyPlan):
    """A CholeskyPlan facade whose owner map is the 2-D plan's team leads."""

    def __init__(self, plan2d: Cholesky2DPlan):
        self.a = plan2d.a
        self.fronts = plan2d.fronts
        self.owner = plan2d.owner
        self.elim_pos = plan2d.elim_pos
        self.n_procs = plan2d.n_procs


def cholesky_factor_2d(plan: Cholesky2DPlan) -> _FactorState:
    """Team-parallel numeric factorization (call on every rank).

    Returns a :class:`numeric._FactorState`-compatible object whose
    ``factors`` live on each front's team lead, so
    :func:`repro.apps.sparse.numeric.cholesky_solve` applies unchanged.
    """
    rt = upcxx.current_runtime()
    me = rt.rank
    st = _State2D(plan)
    state_dobj = upcxx.DistObject(st)
    upcxx.barrier()

    for nid in plan.my_fronts(me):
        fr = st.fronts[nid]
        # (1) wait for all children's extend-add contributions to my blocks
        fr.p_children.finalize().wait()
        # (2) assemble my share of A (plus padding identities)
        _assemble_a_blocks(plan, fr)
        # (3) team-parallel partial factorization
        _factor_front_2d(plan, fr, state_dobj)
        # (4) extend-add my Schur piece to the parent team
        _send_schur_to_parent(plan, fr, state_dobj)
        # (5) gather factors to the lead for the solve phase
        _gather_factors_to_lead(plan, fr, st, state_dobj)

    upcxx.barrier()
    out = _FactorState.__new__(_FactorState)
    out.plan = _LeadPlanView(plan)
    out.front_mats = {}
    out.factors = st.factors
    out.promises = {}
    return out


def factor_and_solve_2d(plan: Cholesky2DPlan, b: np.ndarray) -> np.ndarray:
    """Team-parallel factorization + tree-structured solve."""
    from repro.apps.sparse.numeric import cholesky_solve

    state = cholesky_factor_2d(plan)
    return cholesky_solve(state.plan, state, b)
