"""The extend-add operation, three ways (paper §IV-D and Fig. 8).

All variants move exactly the same numerical data along the same frontal
tree, differing only in communication structure:

- **UPC++ RPC** (the paper's Fig. 7 code): each child-team rank packs its
  contribution-block entries per destination parent rank and issues one
  RPC per *non-empty* destination, shipping values as a zero-copy view;
  a per-front promise, pre-initialized with the expected incoming-RPC
  count, signals completion (``e_add_prom``).
- **MPI Alltoallv**: per parent front, a pairwise-exchange all-to-all over
  the front's whole team — every pair exchanges a message even when empty
  (STRUMPACK's strategy).
- **MPI P2P**: nonblocking ``Isend``/``Irecv`` per non-empty pair with
  wildcard-source receives and waitall (MUMPS's strategy).

The tree is processed bottom-up (postorder); disjoint subtrees proceed
concurrently because their teams are disjoint under proportional mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.upcxx as upcxx
from repro.apps.sparse.frontal import FrontInstance
from repro.apps.sparse.matrices import laplacian_3d
from repro.apps.sparse.ordering import nested_dissection_3d
from repro.apps.sparse.propmap import proportional_mapping
from repro.apps.sparse.symbolic import FrontSymbolic, symbolic_from_dissection
from repro.mpisim import comm_world
from repro.upcxx.future import Promise
from repro.util.units import US

#: software cost of binning one destination buffer during pack
_PACK_PER_DEST = 0.5 * US
#: wire bytes per packed entry: float64 value + two int64 indices
_ENTRY_BYTES = 24
#: MUMPS-style send-buffer discipline for the MPI P2P variant: one
#: in-flight synchronous send at a time (one CB send buffer), as in
#: MUMPS's bounded-buffer contribution-block communication
_P2P_POOL = 1
#: receive-side per-message cost of the P2P variant: probe + dynamic
#: buffer allocation + bookkeeping (the Alltoallv path preallocates from
#: counts and needs none of this)
_P2P_RECV_EXTRA = 0.5 * US


@dataclass
class EaddPlan:
    """Precomputed symbolic plan shared by all variants (read-only).

    Built once outside the simulation; everything in it is static symbolic
    information each rank of a real run would compute redundantly during
    setup (which the paper does not time).
    """

    fronts: Dict[int, FrontSymbolic]
    teams: Dict[int, List[int]]
    #: parent fronts in postorder (every non-leaf node id)
    parents: List[int]
    #: expected incoming message count per (parent front, world rank)
    expected: Dict[Tuple[int, int], int]
    n_procs: int
    block: int = 24
    #: total packed entries over the whole tree (for reporting)
    total_entries: int = 0

    def my_front_ids(self, rank: int) -> List[int]:
        return [nid for nid, team in self.teams.items() if rank in team]


def build_eadd_plan(
    nx: int,
    ny: int,
    nz: int,
    n_procs: int,
    leaf_size: int = 64,
    block: int = 24,
) -> EaddPlan:
    """Dissect the grid, map teams, and precompute expected message counts."""
    a = laplacian_3d(nx, ny, nz)
    root, _perm = nested_dissection_3d(nx, ny, nz, leaf_size=leaf_size)
    fronts = symbolic_from_dissection(a, root)
    teams = proportional_mapping(fronts, n_procs)
    parents = [nid for nid in sorted(fronts) if fronts[nid].children]

    expected: Dict[Tuple[int, int], int] = {}
    total_entries = 0
    for pid in parents:
        parent = fronts[pid]
        for r in teams[pid]:
            expected[(pid, r)] = 0
        for cid in parent.children:
            child = fronts[cid]
            for s in teams[cid]:
                inst = FrontInstance(child, teams[cid], s, block)
                inst.fill(0.0)
                counts = inst.f22_nnz_for(parent, teams[pid], block)
                total_entries += sum(counts.values())
                for dest_world, n in counts.items():
                    if n > 0:
                        expected[(pid, dest_world)] += 1
    return EaddPlan(
        fronts=fronts,
        teams=teams,
        parents=parents,
        expected=expected,
        n_procs=n_procs,
        block=block,
        total_entries=total_entries,
    )


def _build_instances(plan: EaddPlan, me: int) -> Dict[int, FrontInstance]:
    """Materialize this rank's share of every front it participates in.

    Leaves carry a unit contribution block; interior fronts start zero
    (they will pack whatever their children deposited — identical data
    volume in every variant).
    """
    instances: Dict[int, FrontInstance] = {}
    for nid in plan.my_front_ids(me):
        inst = FrontInstance(plan.fronts[nid], plan.teams[nid], me, plan.block)
        inst.fill(0.0)  # materialize all owned blocks
        if not plan.fronts[nid].children:
            inst.fill(1.0, f22_only=True)
        instances[nid] = inst
    return instances


def _charge_pack(rt_charge_sw, rt_charge_copy, packed: dict) -> None:
    """CPU cost of the pack step (same in every variant)."""
    total = sum(len(v) for (_pi, _pj, v) in packed.values())
    rt_charge_copy(total * _ENTRY_BYTES)
    rt_charge_sw(_PACK_PER_DEST * max(1, len(packed)))


# ---------------------------------------------------------------- UPC++ RPC
class _EaddState:
    """Per-rank UPC++ extend-add state reachable from incoming RPCs."""

    def __init__(self, plan: EaddPlan, instances: Dict[int, FrontInstance]):
        self.plan = plan
        self.instances = instances
        self.promises: Dict[int, Promise] = {}
        rt = upcxx.current_runtime()
        me = rt.rank
        for pid in plan.parents:
            if me in plan.teams[pid]:
                p = Promise()
                p.require_anonymous(plan.expected.get((pid, me), 0))
                self.promises[pid] = p


def _accum(state_dobj: upcxx.DistObject, pid: int, pi: np.ndarray, pj: np.ndarray, vals) -> None:
    """RPC body: the paper's ``accum`` — accumulate a view of entries into
    the local piece of the parent front, then fulfill e_add_prom."""
    rt = upcxx.current_runtime()
    state: _EaddState = state_dobj.value
    values = vals.to_numpy() if hasattr(vals, "to_numpy") else np.asarray(vals)
    rt.sched.charge(rt.cpu.accumulate_time(len(values)))
    state.instances[pid].accumulate(np.asarray(pi), np.asarray(pj), values)
    state.promises[pid].fulfill_anonymous(1)


def upcxx_eadd_run(plan: EaddPlan, collect: Optional[dict] = None) -> float:
    """One full bottom-up extend-add sweep with UPC++ RPC; returns the
    elapsed simulated seconds on this rank (barrier-to-barrier).

    ``collect[rank] = instances`` is populated when a dict is passed
    (used by correctness tests to reassemble the fronts)."""
    rt = upcxx.current_runtime()
    me = rt.rank
    instances = _build_instances(plan, me)
    if collect is not None:
        collect[me] = instances
    state = _EaddState(plan, instances)
    state_dobj = upcxx.DistObject(state)
    upcxx.barrier()
    t0 = upcxx.sim_now()

    for pid in plan.parents:
        parent = plan.fronts[pid]
        in_parent_team = me in plan.teams[pid]
        f_conj = upcxx.make_future()  # conjoined acks, as in the paper
        for cid in parent.children:
            if me not in plan.teams[cid]:
                continue
            inst = instances[cid]
            packed = inst.pack_for_parent(parent, plan.teams[pid], plan.block)
            _charge_pack(rt.charge_sw, rt.charge_copy, packed)
            my_idx = plan.teams[pid].index(me) if in_parent_team else 0
            n_team = len(plan.teams[pid])
            # round-robin starting after me, as in the paper's Fig. 7
            for lp in range(n_team):
                dest = plan.teams[pid][(my_idx + 1 + lp) % n_team]
                triple = packed.get(dest)
                if triple is None:
                    continue
                pi, pj, vals = triple
                fut = upcxx.rpc(dest, _accum, state_dobj, pid, pi, pj, upcxx.make_view(vals))
                f_conj = upcxx.when_all(f_conj, fut)
        if in_parent_team:
            upcxx.when_all(f_conj, state.promises[pid].finalize()).wait()
        else:
            f_conj.wait()

    upcxx.barrier()
    return upcxx.sim_now() - t0


# --------------------------------------------------------------------- MPI
def _mpi_pack_sends(plan, instances, pid, me, rt):
    """Shared MPI-side pack: list of (dest world rank, payload) per child.

    One entry per (child, destination) pair — the same message granularity
    as the UPC++ variant, so ``plan.expected`` counts apply to both.
    """
    parent = plan.fronts[pid]
    sends: List[Tuple[int, tuple]] = []
    for cid in parent.children:
        if me not in plan.teams[cid]:
            continue
        inst = instances[cid]
        packed = inst.pack_for_parent(parent, plan.teams[pid], plan.block)
        _charge_pack(rt.charge_sw, rt.charge_copy, packed)
        for dest, triple in packed.items():
            sends.append((dest, triple))
    return sends


def _mpi_accumulate(instances, pid, payload, rt, from_self: bool = False) -> None:
    pi, pj, vals = payload
    if from_self:
        # a self-delivered buffer still moves through the MPI layer's
        # buffers: one copy in, one copy out (keeps the 1-process point
        # comparable across variants)
        rt.charge_copy(2 * len(vals) * _ENTRY_BYTES)
    rt.sched.charge(rt.cpu.accumulate_time(len(vals)))
    instances[pid].accumulate(np.asarray(pi), np.asarray(pj), np.asarray(vals))


def mpi_eadd_run(plan: EaddPlan, variant: str = "alltoallv", collect: Optional[dict] = None) -> float:
    """One full extend-add sweep with an MPI variant ('alltoallv'|'p2p')."""
    if variant not in ("alltoallv", "p2p"):
        raise ValueError(f"unknown variant {variant!r}")
    comm = comm_world()
    rt = comm.rt
    me = rt.rank
    instances = _build_instances(plan, me)
    if collect is not None:
        collect[me] = instances
    # per-front subcommunicators (setup, untimed; STRUMPACK builds these
    # from the proportional mapping the same way)
    front_comms = {
        pid: comm.sub([comm.members.index(w) for w in plan.teams[pid]])
        for pid in plan.parents
        if me in plan.teams[pid]
    }
    comm.barrier()
    t0 = rt.sched.now()

    for pid in plan.parents:
        if me not in plan.teams[pid]:
            continue
        team = plan.teams[pid]
        sends = _mpi_pack_sends(plan, instances, pid, me, rt)

        if variant == "alltoallv":
            fcomm = front_comms[pid]
            # one buffer per pair: merge this rank's bins per destination
            merged: Dict[int, list] = {}
            for dest, triple in sends:
                merged.setdefault(dest, []).append(triple)
            send_objs = [
                tuple(np.concatenate(parts) for parts in zip(*merged[w]))
                if w in merged
                else None
                for w in team
            ]
            received = fcomm.alltoallv(send_objs)
            for i, payload in enumerate(received):
                if payload is not None:
                    _mpi_accumulate(instances, pid, payload, rt, from_self=(team[i] == me))
        else:  # p2p: one message per (child, destination), like UPC++.
            # MUMPS-style flow control: synchronous-mode sends (Issend) to
            # bound unexpected-buffer growth, drawn from a small fixed pool
            # of send buffers — at most _P2P_POOL sends in flight, so the
            # sender repeatedly stalls on receiver matching progress.
            n_self = sum(1 for dest, _p in sends if dest == me)
            n_remote_in = plan.expected.get((pid, me), 0) - n_self
            # prepost every receive (so arriving messages always match and
            # Issend acks can flow — no cyclic stall)
            rreqs = [comm.irecv(tag=pid) for _ in range(n_remote_in)]
            sreqs: list = []
            for dest, payload in sends:
                if dest == me:
                    _mpi_accumulate(instances, pid, payload, rt, from_self=True)
                    continue
                while sum(1 for s in sreqs if not s.done) >= _P2P_POOL:
                    rt.wait_all([next(s for s in sreqs if not s.done)])
                sreqs.append(comm.issend(payload, comm.members.index(dest), tag=pid))
            rt.wait_all(sreqs + rreqs)
            rt.charge_sw(_P2P_RECV_EXTRA * len(rreqs))
            for r in rreqs:
                _mpi_accumulate(instances, pid, r.value, rt)

    comm.barrier()
    return rt.sched.now() - t0


# ------------------------------------------------------------- serial check
def serial_eadd_reference(plan: EaddPlan) -> Dict[int, np.ndarray]:
    """Dense single-process reference: the assembled parent fronts.

    Used by tests to verify every distributed variant lands every entry in
    the right place with the right multiplicity.
    """
    dense: Dict[int, np.ndarray] = {}
    for nid in sorted(plan.fronts):
        f = plan.fronts[nid]
        dense[nid] = np.zeros((f.front_size, f.front_size))
        if not f.children:
            nc = f.n_cols
            dense[nid][nc:, nc:] = 1.0
    for pid in plan.parents:
        parent = plan.fronts[pid]
        lookup = {int(g): k for k, g in enumerate(parent.row_indices)}
        for cid in parent.children:
            child = plan.fronts[cid]
            nc = child.n_cols
            src = dense[cid][nc:, nc:]
            pos = np.array([lookup[int(g)] for g in child.border], dtype=np.int64)
            dense[pid][np.ix_(pos, pos)] += src
    return dense
