"""Symbolic factorization: per-front column/row structure.

For each front F (a separator-tree node), multifrontal symbolic structure:

- ``cols(F)``   — the vertices eliminated at F (the F11 block's extent);
- ``border(F)`` — the update rows: struct(F) \\ cols(F), where

  ``struct(F) = adj_A(cols F)  ∪  ⋃_child (struct(child) \\ cols(child))``

restricted to vertices eliminated later (ancestors).  ``border`` indexes
the contribution block F22 that extend-add scatters into the parent
(paper Fig. 5: the ``Ip`` / ``IlC`` / ``IrC`` index sets).

Computed bottom-up over the separator tree in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.apps.sparse.ordering import DissectionNode


@dataclass
class FrontSymbolic:
    """Structure of one frontal matrix."""

    node_id: int
    #: global vertex ids eliminated at this front, in elimination order
    cols: np.ndarray
    #: global vertex ids of the update rows (eliminated at ancestors),
    #: sorted by elimination position
    border: np.ndarray
    #: children node ids (in the separator tree)
    children: List[int] = field(default_factory=list)
    parent: int = -1

    @property
    def n_cols(self) -> int:
        return len(self.cols)

    @property
    def n_border(self) -> int:
        return len(self.border)

    @property
    def front_size(self) -> int:
        """Total front dimension |cols| + |border| (the dense F extent)."""
        return self.n_cols + self.n_border

    @property
    def row_indices(self) -> np.ndarray:
        """The paper's I_p: cols then border, global ids."""
        return np.concatenate([self.cols, self.border])

    def factor_flops(self) -> float:
        """Dense partial-Cholesky flop estimate for this front."""
        nc, nb = float(self.n_cols), float(self.n_border)
        return nc**3 / 3.0 + nc**2 * nb + nc * nb**2


def symbolic_from_dissection(
    a: sp.spmatrix,
    root: DissectionNode,
    elim_pos: Optional[np.ndarray] = None,
) -> Dict[int, FrontSymbolic]:
    """Bottom-up symbolic factorization over the separator tree.

    ``elim_pos[v]`` = elimination position of vertex v; derived from the
    tree's postorder if not given.  Returns {node_id: FrontSymbolic}.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    nodes = root.postorder()
    if elim_pos is None:
        elim_pos = np.empty(n, dtype=np.int64)
        k = 0
        for node in nodes:
            for v in node.vertices:
                elim_pos[v] = k
                k += 1

    fronts: Dict[int, FrontSymbolic] = {}
    #: node_id -> set of global vertices in struct(F) \ cols(F)
    carried: Dict[int, set] = {}

    indptr, indices = a.indptr, a.indices
    for node in nodes:
        cols = np.asarray(node.vertices, dtype=np.int64)
        cols = cols[np.argsort(elim_pos[cols])]
        col_set = set(cols.tolist())
        last_pos = max(elim_pos[v] for v in node.vertices)

        struct: set = set()
        for v in node.vertices:
            for p in range(indptr[v], indptr[v + 1]):
                w = indices[p]
                if elim_pos[w] > last_pos:
                    struct.add(int(w))
        for c in node.children:
            struct |= carried.pop(c.node_id)
        struct -= col_set
        # everything in struct is eliminated strictly after this front
        border = np.fromiter(struct, dtype=np.int64, count=len(struct))
        border = border[np.argsort(elim_pos[border])]

        fronts[node.node_id] = FrontSymbolic(
            node_id=node.node_id,
            cols=cols,
            border=border,
            children=[c.node_id for c in node.children],
            parent=node.parent.node_id if node.parent is not None else -1,
        )
        if node.parent is not None:
            carried[node.node_id] = struct

    return fronts


def check_symbolic_invariants(fronts: Dict[int, FrontSymbolic]) -> None:
    """Assert the structural facts extend-add relies on (tests)."""
    for f in fronts.values():
        # child's border must be contained in parent's row set: every
        # contribution entry has a landing position (the red arrows of
        # the paper's Fig. 5)
        if f.parent != -1:
            parent = fronts[f.parent]
            parent_rows = set(parent.row_indices.tolist())
            missing = set(f.border.tolist()) - parent_rows
            if missing:
                raise AssertionError(
                    f"front {f.node_id}: {len(missing)} border vertices missing "
                    f"from parent {f.parent} row structure"
                )
        # cols and border are disjoint
        if set(f.cols.tolist()) & set(f.border.tolist()):
            raise AssertionError(f"front {f.node_id}: cols/border overlap")
