"""Synthetic SPD test matrices.

The paper uses ``audikw_1`` (943k dofs, automotive crankshaft FEM) and
``Flan_1565`` (1.56M dofs, 3-D mechanical FEM) from SuiteSparse.  Both are
3-D mechanical discretizations whose nested-dissection front hierarchies
look like those of 3-D grid Laplacians; offline we substitute scaled 3-D
grid problems whose *front-size distribution* plays the same role in the
extend-add benchmark (message sizes grow toward the root; the tree is
deep and irregular enough to exercise proportional mapping).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def laplacian_3d(nx: int, ny: int = 0, nz: int = 0) -> sp.csr_matrix:
    """The 7-point Laplacian on an ``nx x ny x nz`` grid (SPD, CSR).

    Vertex id = x + nx*(y + ny*z) — the ordering assumed by
    :func:`repro.apps.sparse.ordering.nested_dissection_3d`.
    """
    ny = ny or nx
    nz = nz or nx
    if min(nx, ny, nz) < 1:
        raise ValueError(f"grid dims must be >= 1, got {(nx, ny, nz)}")

    def lap1d(n: int) -> sp.csr_matrix:
        if n == 1:
            return sp.csr_matrix(np.array([[2.0]]))
        main = 2.0 * np.ones(n)
        off = -1.0 * np.ones(n - 1)
        return sp.diags([off, main, off], [-1, 0, 1], format="csr")

    ix, iy, iz = sp.identity(nx), sp.identity(ny), sp.identity(nz)
    a = (
        sp.kron(iz, sp.kron(iy, lap1d(nx)))
        + sp.kron(iz, sp.kron(lap1d(ny), ix))
        + sp.kron(sp.kron(lap1d(nz), iy), ix)
    )
    return sp.csr_matrix(a)


def proxy_audikw(scale: int = 16) -> tuple:
    """Offline proxy for ``audikw_1``: a slightly anisotropic 3-D grid.

    Returns ``(A, dims)`` where dims feed nested dissection.  ``scale``
    controls problem size; the default (16x16x16 = 4 096 dofs) keeps
    simulated extend-add runs tractable while preserving tree shape.
    """
    nx, ny, nz = scale, scale, max(2, scale - scale // 4)
    return laplacian_3d(nx, ny, nz), (nx, ny, nz)


def proxy_flan(scale: int = 14) -> tuple:
    """Offline proxy for ``Flan_1565``: an elongated 3-D grid (shell-like)."""
    nx, ny, nz = scale, scale, max(2, scale // 2)
    return laplacian_3d(nx, ny, nz), (nx, ny, nz)


def random_spd(n: int, density: float = 0.01, seed: int = 0) -> sp.csr_matrix:
    """A random SPD matrix (for property tests of the generic elimtree)."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = a + a.T
    # diagonal dominance => SPD
    a = a + sp.diags(np.abs(a).sum(axis=1).A1 + 1.0)
    return sp.csr_matrix(a)
