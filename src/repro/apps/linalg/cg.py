"""Distributed Conjugate Gradient over one-sided communication.

The matrix is row-block distributed; the iteration vector x lives in each
rank's shared segment so that remote pieces are readable by **one-sided
rget** — no two-sided matching, no full replication.  Each SpMV:

1. every rank identifies which remote x entries its local rows touch
   (the halo — computed once, from the sparsity);
2. it fetches each owner's needed slice with ``rget`` futures conjoined by
   ``when_all`` (communication overlaps across owners);
3. local SpMV with the assembled halo;
4. CG's two dot products reduce via ``reduce_all``.

This is the PGAS pattern the paper's model is built for: irregular,
fine-grained, read-mostly remote access with explicit data motion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

import repro.upcxx as upcxx


def _row_blocks(n: int, p: int) -> List[Tuple[int, int]]:
    """Contiguous row ranges per rank (balanced)."""
    base, rem = divmod(n, p)
    out = []
    lo = 0
    for r in range(p):
        hi = lo + base + (1 if r < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


class DistSparseMatrix:
    """A row-distributed CSR matrix with shared-segment vector storage."""

    def __init__(self, a: sp.spmatrix):
        rt = upcxx.current_runtime()
        self.n = a.shape[0]
        self.p = upcxx.rank_n()
        self.me = upcxx.rank_me()
        self.blocks = _row_blocks(self.n, self.p)
        lo, hi = self.blocks[self.me]
        self.lo, self.hi = lo, hi
        self.local_rows: sp.csr_matrix = sp.csr_matrix(a)[lo:hi, :]

        # the iteration vector lives in shared memory, one slice per rank
        self.x_slice = upcxx.new_array(np.float64, max(1, hi - lo))
        self.x_ptrs = [
            upcxx.broadcast(self.x_slice, root=r).wait() for r in range(self.p)
        ]
        upcxx.barrier()

        # halo plan: for each remote owner, the sub-range of its slice that
        # my rows reference (contiguous fetch covering the needed columns)
        cols = np.unique(self.local_rows.indices)
        self.halo: Dict[int, Tuple[int, int]] = {}
        for r in range(self.p):
            if r == self.me:
                continue
            rlo, rhi = self.blocks[r]
            touched = cols[(cols >= rlo) & (cols < rhi)]
            if len(touched):
                first = int(touched.min() - rlo)
                last = int(touched.max() - rlo) + 1
                self.halo[r] = (first, last)

    # ------------------------------------------------------------------ api
    def owner_of_row(self, i: int) -> int:
        for r, (lo, hi) in enumerate(self.blocks):
            if lo <= i < hi:
                return r
        raise IndexError(i)

    def set_x(self, local_values: np.ndarray) -> None:
        """Store my slice of the iteration vector (then barrier externally)."""
        self.x_slice.local()[: self.hi - self.lo] = local_values

    def matvec(self, x_local: np.ndarray) -> np.ndarray:
        """y_local = A_local · x, fetching remote x pieces one-sidedly."""
        self.set_x(x_local)
        upcxx.barrier()  # everyone's slice is published

        full = np.zeros(self.n)
        full[self.lo : self.hi] = x_local
        futs = []
        for r, (first, last) in self.halo.items():
            base = self.x_ptrs[r] + first
            rlo = self.blocks[r][0]

            def land(arr, r=r, first=first, rlo=rlo):
                full[rlo + first : rlo + first + len(arr)] = arr

            futs.append(upcxx.rget(base, count=last - first).then(land))
        if futs:
            upcxx.when_all(*futs).wait()

        rt = upcxx.current_runtime()
        rt.compute(2 * self.local_rows.nnz / rt.cpu.flop_rate)
        y = self.local_rows @ full
        upcxx.barrier()  # nobody overwrites x slices while others read
        return y


def cg_solve(
    dist_a: DistSparseMatrix,
    b_local: np.ndarray,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
) -> Tuple[np.ndarray, int]:
    """Conjugate Gradient; returns (my x slice, iterations used).

    All ranks call collectively; dot products are ``reduce_all``s.
    """
    rt = upcxx.current_runtime()
    n_local = dist_a.hi - dist_a.lo
    max_iter = max_iter if max_iter is not None else 4 * dist_a.n

    def dot(u: np.ndarray, v: np.ndarray) -> float:
        rt.compute(2 * len(u) / rt.cpu.flop_rate)
        return upcxx.reduce_all(float(u @ v), "+").wait()

    x = np.zeros(n_local)
    r = b_local.copy()
    p = r.copy()
    rs = dot(r, r)
    b_norm2 = dot(b_local, b_local) or 1.0

    it = 0
    while rs / b_norm2 > tol * tol and it < max_iter:
        ap = dist_a.matvec(p)
        alpha = rs / dot(p, ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = dot(r, r)
        p = r + (rs_new / rs) * p
        rs = rs_new
        it += 1
    upcxx.barrier()
    return x, it


def gather_solution(dist_a: DistSparseMatrix, x_local: np.ndarray) -> np.ndarray:
    """Assemble the full solution on every rank (verification helper)."""
    pieces = upcxx.allgather(x_local).wait()
    upcxx.barrier()
    return np.concatenate(pieces)
