"""Distributed sample sort over RPC.

The classic PGAS sorting pattern:

1. every rank sorts its local keys and contributes ``p-1`` regular samples;
2. an allgather of samples yields global splitters (identical everywhere);
3. keys are binned by splitter and shipped — **one RPC per non-empty
   destination**, payload as a zero-copy view (the same sparse-send shape
   as the paper's extend-add);
4. quiescence by counting: every rank knows how many messages to expect
   after an all-reduce of the send matrix row;
5. local merge of received runs.

Returns each rank's sorted partition; concatenated over ranks it is the
sorted sequence.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

import repro.upcxx as upcxx
from repro.upcxx.future import Promise


def _recv_run(dobj: upcxx.DistObject, keys) -> None:
    rt = upcxx.current_runtime()
    arr = keys.to_numpy() if hasattr(keys, "to_numpy") else np.asarray(keys)
    state = dobj.value
    rt.charge_copy(arr.nbytes)
    state["runs"].append(np.array(arr))
    state["promise"].fulfill_anonymous(1)


def sample_sort(keys: np.ndarray, team: Optional[upcxx.Team] = None) -> np.ndarray:
    """Collectively sort the union of every rank's ``keys``.

    Returns this rank's partition (globally ordered by team rank).
    """
    rt = upcxx.current_runtime()
    team = team if team is not None else upcxx.team_world()
    p = team.rank_n()
    me = team.rank_me()
    keys = np.asarray(keys)

    local = np.sort(keys)
    rt.compute(max(1, len(local)) * np.log2(max(2, len(local))) / rt.cpu.flop_rate)

    if p == 1:
        return local

    # --- splitters from regular samples ---------------------------------
    if len(local):
        idx = np.linspace(0, len(local) - 1, p - 1 + 2)[1:-1].astype(int)
        samples = local[idx]
    else:
        samples = np.empty(0, dtype=local.dtype)
    all_samples = upcxx.allgather(samples, team=team).wait()
    nonempty = [s for s in all_samples if len(s)]
    pool = np.sort(np.concatenate(nonempty)) if nonempty else np.empty(0, dtype=local.dtype)
    if len(pool) >= p - 1:
        sidx = np.linspace(0, len(pool) - 1, p - 1 + 2)[1:-1].astype(int)
        splitters = pool[sidx]
    else:
        splitters = pool  # degenerate tiny inputs

    # --- bin and count ---------------------------------------------------
    dest = np.searchsorted(splitters, local, side="right")
    bins: List[np.ndarray] = [local[dest == t] for t in range(p)]
    sent_row = np.array([1 if len(b) else 0 for b in bins], dtype=np.int64)
    # everyone learns how many messages to expect (column sums)
    expected = upcxx.reduce_all(sent_row, lambda a, b: a + b, team=team).wait()

    state = {"runs": [], "promise": Promise()}
    state["promise"].require_anonymous(int(expected[me]))
    dobj = upcxx.DistObject(state, team=team)
    upcxx.barrier(team)

    # --- exchange: one RPC per non-empty destination ---------------------
    for t in range(p):
        if len(bins[t]) == 0:
            continue
        if t == me:
            state["runs"].append(bins[t])
            state["promise"].fulfill_anonymous(1)
        else:
            rt.charge_copy(bins[t].nbytes)
            upcxx.rpc_ff(team[t], _recv_run, dobj, upcxx.make_view(bins[t]))

    state["promise"].finalize().wait()
    upcxx.barrier(team)

    if state["runs"]:
        out = np.sort(np.concatenate(state["runs"]))
        rt.compute(len(out) * np.log2(max(2, len(out))) / rt.cpu.flop_rate)
    else:
        out = np.empty(0, dtype=local.dtype)
    return out
