"""Distributed dense/sparse linear-algebra applications over UPC++.

Classic PGAS workloads exercising the library's full surface on realistic
numerical kernels:

- :mod:`repro.apps.linalg.cg` — row-distributed sparse matrix-vector
  products with one-sided halo exchange, driving a Conjugate Gradient
  solver (dot products via ``reduce_all``);
- :mod:`repro.apps.linalg.samplesort` — distributed sample sort: splitter
  selection by regular sampling, key exchange by one RPC per destination,
  local merges.
"""

from repro.apps.linalg.cg import DistSparseMatrix, cg_solve
from repro.apps.linalg.samplesort import sample_sort

__all__ = ["DistSparseMatrix", "cg_solve", "sample_sort"]
