"""Top-level UPC++ entry points: starting SPMD regions and rank queries.

``run_spmd(fn, ranks, platform=...)`` is the reproduction's analogue of
launching an ``upcxx::init()``-ed executable under SLURM: it builds the
simulated machine (nodes x procs-per-node of the chosen platform), the
conduit, and one :class:`~repro.upcxx.runtime.Runtime` per rank, then runs
``fn`` on every rank and returns the per-rank results.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.gasnet.cpumodel import CpuModel, platform_cpu
from repro.gasnet.machine import Machine
from repro.gasnet.network import AriesNetwork, NetworkModel
from repro.sim.coop import Scheduler, current_scheduler
from repro.sim.errors import RankDeadError, RankFailure
from repro.sim.faults import FaultPlan
from repro.upcxx.costs import DEFAULT_COSTS, UpcxxCosts
from repro.upcxx.errors import NotInSpmdError
from repro.upcxx.runtime import Runtime, World, current_runtime
from repro.util.profile import maybe_profiled, profiling_enabled

#: default processes-per-node, matching the paper's configurations
DEFAULT_PPN = {"haswell": 32, "knl": 68}


def default_ppn(platform: str) -> int:
    return DEFAULT_PPN.get(platform.lower(), 32)


def run_spmd(
    fn: Callable[[], object],
    ranks: int,
    platform: str = "haswell",
    ppn: Optional[int] = None,
    network: Optional[NetworkModel] = None,
    cpu: Optional[CpuModel] = None,
    costs: UpcxxCosts = DEFAULT_COSTS,
    segment_size: int = 32 * 1024 * 1024,
    seed: int = 0,
    max_time: float = 1e6,
    metrics=None,
    trace=None,
    spans=None,
    telemetry=None,
    backend: Optional[str] = None,
    sched_stats: Optional[dict] = None,
    faults=None,
) -> List[object]:
    """Run ``fn`` as an SPMD program on ``ranks`` simulated processes.

    Inside ``fn``, the full UPC++ API is available (``rank_me``, ``rput``,
    ``rpc`` ...).  Returns the list of per-rank return values.

    Observability: pass ``metrics`` (a :class:`repro.util.Metrics`) to
    collect per-rank op-lifecycle metrics, ``trace`` (a
    :class:`repro.util.TraceBuffer`) to record scheduler/progress events —
    exportable to a Perfetto/Chrome trace via
    :func:`repro.util.export_chrome_trace` — and/or ``spans`` (a
    :class:`repro.util.SpanBuffer`) to capture per-operation causal spans
    for the ``repro.tools.report`` critical-path analysis.  Pass
    ``telemetry`` (a :class:`repro.util.Telemetry`) for windowed counter
    rollups plus an always-on flight recorder — when the run ends in
    :class:`~repro.sim.errors.RankDeadError`/:class:`~repro.sim.errors.RankFailure`
    a post-mortem ``blackbox`` bundle is assembled (and written to
    ``telemetry.blackbox_path`` when configured) before the error
    propagates.  All default to off and cost nothing when absent.

    ``backend`` selects the scheduler implementation ("coroutines",
    "threads", or "sharded"; default: ``$REPRO_SIM_BACKEND`` or
    coroutines).  Pass a dict as ``sched_stats`` to receive the
    scheduler's run counters (switches, events fired — see
    :meth:`Scheduler.stats`) after the run.

    ``faults`` enables chaos injection: a :class:`repro.sim.faults.FaultPlan`,
    a spec string (``"seed=1,drop=0.05,crash=2@1e-3"``), or a kwargs dict.
    Defaults to ``$REPRO_FAULTS`` (off when unset).  With a plan active the
    conduit runs in reliable-delivery mode — acks, timeouts, retransmits —
    so UPC++-level semantics stay exactly-once; crashed ranks fail-stop and
    survivors observe :class:`repro.sim.errors.RankDeadError`.
    """
    faults = FaultPlan.resolve(faults)
    ppn = ppn if ppn is not None else default_ppn(platform)
    machine = Machine.for_ranks(ranks, ppn, name=platform)
    network = network if network is not None else AriesNetwork()
    cpu = cpu if cpu is not None else platform_cpu(platform)
    sched = Scheduler(ranks, trace=trace, max_time=max_time, backend=backend)
    # the sharded backend partitions ranks by simulated node and derives
    # its conservative lookahead from the cross-node wire latency
    cfg = getattr(sched, "configure_sharding", None)
    if cfg is not None:
        cfg(machine, network)
    world = World(
        sched, machine, network, cpu, costs, segment_size, seed,
        metrics=metrics, spans=spans, faults=faults, telemetry=telemetry,
    )

    def bootstrap(rank: int):
        rt = Runtime(world, rank)
        sched.set_client(rt)
        sched.rank_env()["upcxx_rt"] = rt
        sched.rank_env()["upcxx_world"] = world
        body = fn
        if profiling_enabled():
            # REPRO_PROFILE=1: cProfile one rank's body (see util.profile)
            body = maybe_profiled(fn, rank)
        try:
            result = body()
            # close the final (partial) rollup window at the rank's own
            # completion time — only on the success path, where the clock
            # read is deterministic (abort unwinding is not)
            rt._telemetry_finalize()
            return result
        finally:
            sched.set_client(None)
            sched.rank_env().pop("upcxx_rt", None)

    try:
        results = sched.run(bootstrap)
        tel = world.telemetry
        if (
            tel is not None
            and faults is not None
            and faults.survivable
            and faults.crashes
        ):
            # the run outlived its crashes (replication/failover): emit
            # the same post-mortem bundle with a "Survived" verdict so
            # chaos tooling has the replica-state tables either way
            tel.emit_blackbox(None, faults)
        return results
    except (RankDeadError, RankFailure) as err:
        tel = world.telemetry
        if tel is not None:
            # post-mortem flight-recorder bundle; on the sharded backend
            # the per-rank state was merged back through the FAIL/ok
            # payloads before the error was re-raised here
            tel.emit_blackbox(err, faults)
        raise
    finally:
        if sched_stats is not None:
            sched_stats.update(sched.stats())


# ----------------------------------------------------------------- queries
def rank_me() -> int:
    """The calling rank's id (``upcxx::rank_me``)."""
    return current_runtime().rank


def rank_n() -> int:
    """Total rank count (``upcxx::rank_n``)."""
    return current_runtime().world.n_ranks


def progress() -> None:
    """User-level progress (``upcxx::progress``)."""
    current_runtime().progress()


def compute(seconds: float) -> None:
    """Model ``seconds`` of application computation (no progress inside)."""
    current_runtime().compute(seconds)


def sim_now() -> float:
    """Current simulated time on this rank (seconds)."""
    return current_runtime().now()


def in_spmd() -> bool:
    """Whether the caller is inside a UPC++ SPMD region."""
    try:
        current_scheduler().rank_env()["upcxx_rt"]
        return True
    except Exception:
        return False


def runtime_here() -> Runtime:
    """The calling rank's runtime (escape hatch for instrumentation)."""
    return current_runtime()
