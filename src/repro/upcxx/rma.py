"""One-sided RMA: ``rput`` and ``rget``.

Both are asynchronous by default (paper principle #1) and progress through
the §III queues: the injection call charges the software injection cost,
enqueues the operation on defQ, and internal progress hands it to the
conduit (actQ).  When the conduit acknowledges remote completion, the next
internal progress promotes the operation to compQ, and user progress
fulfills its promise — running any chained ``.then`` callbacks.

``rput`` optionally supports remote completion (``remote_cx.as_rpc``): the
callback runs at the *target* after the bytes land, without a separate
round trip.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.gasnet.network import PATH_BTE, PATH_FMA
from repro.upcxx import serialization
from repro.upcxx.completion import Completion, resolve
from repro.upcxx.errors import GlobalPtrError
from repro.upcxx.future import Future
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.runtime import CompQItem, current_runtime


def _as_bytes(src, dest: GlobalPtr) -> bytes:
    """Coerce the source operand of an rput into raw bytes."""
    if isinstance(src, (bytes, bytearray, memoryview)):
        return bytes(src)
    if isinstance(src, np.ndarray):
        return np.ascontiguousarray(src).tobytes()
    if isinstance(src, str):
        return src.encode("utf-8")
    if np.isscalar(src):
        return np.asarray(src, dtype=dest.dtype).tobytes()
    raise TypeError(f"cannot rput object of type {type(src).__name__}")


def _pick_path(rt, nbytes: int) -> str:
    return PATH_FMA if nbytes < rt.costs.bte_threshold else PATH_BTE


def rput(
    src,
    dest: GlobalPtr,
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Non-blocking one-sided put of ``src`` into global memory at ``dest``.

    ``src`` may be bytes, a numpy array, a str, or a scalar (converted to
    ``dest.dtype``).  Returns a future unless a promise/remote-only
    completion was requested.
    """
    rt = current_runtime()
    data = _as_bytes(src, dest)
    nbytes = len(data)
    if nbytes > dest.nbytes:
        raise GlobalPtrError(f"rput of {nbytes}B exceeds destination span of {dest.nbytes}B")
    rt.n_rputs += 1
    sp = rt.spans
    sid = None
    t_api = 0.0
    if sp is not None:
        sid = rt.next_span_sid()
        t_api = rt.now()
    rt.sched.charge(rt._c_rma_inject)
    promise, fut = resolve(cx, rt)
    remote_rpc = cx.remote_rpc if cx is not None else None
    path = _pick_path(rt, nbytes)

    def injector():
        opid = rt.next_op_id()
        rt.actQ[opid] = ("rput", nbytes, dest.rank)
        t_active = rt.now()
        if sp is not None:
            # API call + injection charge + defQ dwell, up to NIC handoff
            sp.record(t_api, t_active, rt.rank, sid, "inject_sw", "rput", nbytes)

        # remote_cx work crosses the wire as (fn, args, t_active) data — the
        # conduit hands it to the target's runtime via the World's deliverer
        # (a closure here could not cross a shard boundary)
        rrpc = None
        if remote_rpc is not None:
            fn, args = remote_rpc
            rrpc = (fn, args, t_active)

        handle = rt.conduit.put_nb(
            rt.rank, dest.rank, dest.offset, data, path, remote_rpc=rrpc, span=sid
        )

        def on_done(h):  # network context at initiator
            def fulfill():
                rt.actQ.pop(opid, None)
                if promise is not None:
                    promise.fulfill_anonymous(1)

            rt.gasnet_completed(
                CompQItem.acquire(rt._c_completion, fulfill, "rput", nbytes, t_active, sid=sid),
                h.time_done,
            )
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)

    rt.enqueue_deferred(injector, kind="rput", nbytes=nbytes)
    rt.internal_progress()
    return fut


def rget(
    src: GlobalPtr,
    count: Optional[int] = None,
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Non-blocking one-sided get from global memory.

    Fetches ``count`` elements (default: the pointer's full span).  The
    future's value is a numpy array of ``src.dtype`` (or the scalar itself
    when ``count == 1`` and the pointer is scalar-typed).
    """
    rt = current_runtime()
    n = src.count if count is None else count
    # n == 0 is legal (a zero-length get completes as a no-op transfer)
    if n < 0 or n > src.count:
        raise GlobalPtrError(f"rget of {n} elements outside span of {src.count}")
    nbytes = n * src.itemsize
    rt.n_rgets += 1
    sp = rt.spans
    sid = None
    t_api = 0.0
    if sp is not None:
        sid = rt.next_span_sid()
        t_api = rt.now()
    rt.sched.charge(rt._c_rma_inject)
    promise, fut = resolve(cx, rt)
    # a user-supplied promise may track many operations, so it is fulfilled
    # anonymously (no value); only the default as_future carries the data
    anonymous = cx is not None and cx.kind == "promise"
    path = _pick_path(rt, nbytes)
    scalar = n == 1

    def injector():
        opid = rt.next_op_id()
        rt.actQ[opid] = ("rget", nbytes, src.rank)
        t_active = rt.now()
        if sp is not None:
            sp.record(t_api, t_active, rt.rank, sid, "inject_sw", "rget", nbytes)
        handle = rt.conduit.get_nb(rt.rank, src.rank, src.offset, nbytes, path, span=sid)

        def on_done(h):  # network context
            raw = h.data

            def fulfill():
                rt.actQ.pop(opid, None)
                if promise is None:
                    return
                if anonymous:
                    promise.fulfill_anonymous(1)
                    return
                arr = np.frombuffer(raw, dtype=src.dtype)
                value = arr[0].item() if scalar else arr.copy()
                promise.fulfill_result(value)

            rt.gasnet_completed(
                CompQItem.acquire(rt._c_completion, fulfill, "rget", nbytes, t_active, sid=sid),
                h.time_done,
            )
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)

    rt.enqueue_deferred(injector, kind="rget", nbytes=nbytes)
    rt.internal_progress()
    return fut


def rput_then_rpc(src, dest: GlobalPtr, fn, *args) -> None:
    """Convenience for ``rput(..., remote_cx.as_rpc(fn, *args))``.

    The data lands at ``dest`` and then ``fn(*args)`` executes on the
    owning rank — one network traversal, no initiator-side round trip.
    """
    from repro.upcxx.completion import remote_cx

    rput(src, dest, cx=remote_cx.as_rpc(fn, *args))
