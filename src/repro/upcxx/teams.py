"""Teams: ordered subsets of ranks (``upcxx::team``).

A team is an ordered list of world ranks; team rank *i* is the *i*-th
member.  ``team_world()`` covers all ranks; ``local_team()`` covers the
ranks sharing the caller's node (computable without communication from the
machine topology, as on a real system); ``split(color, key)`` is a
collective that partitions a team, implemented with real messages (gather
to the team leader, then scatter of the assignments) — teams deliberately
avoid any globally-replicated state, per the paper's scalability principle.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

from repro.upcxx.errors import UpcxxError
from repro.upcxx.runtime import Runtime, current_runtime


def _stable_uid(members: Sequence[int], salt: str = "") -> int:
    """Deterministic team uid derived from the member list."""
    h = hashlib.sha256((salt + ",".join(map(str, members))).encode()).digest()
    return int.from_bytes(h[:8], "little") | (1 << 62)


class Team:
    """An ordered subset of world ranks, as seen by one member rank."""

    def __init__(self, rt: Runtime, uid: int, members: List[int]):
        self.rt = rt
        self.uid = uid
        self.members = list(members)
        self._index = {w: i for i, w in enumerate(self.members)}
        rt.teams[uid] = self
        # release collective traffic that arrived before this rank built the team
        from repro.upcxx.collectives import flush_team_waiters

        flush_team_waiters(rt, self)

    # ------------------------------------------------------------- queries
    def rank_n(self) -> int:
        """Number of members (``team::rank_n``)."""
        return len(self.members)

    def rank_me(self) -> int:
        """The caller's team rank (``team::rank_me``)."""
        try:
            return self._index[self.rt.rank]
        except KeyError:
            raise UpcxxError(f"rank {self.rt.rank} is not a member of team {self.uid}") from None

    def __getitem__(self, team_rank: int) -> int:
        """World rank of team rank ``team_rank`` (for rpc targets)."""
        return self.members[team_rank]

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def from_world(self, world_rank: int) -> int:
        """Translate a world rank to this team's rank."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise UpcxxError(f"world rank {world_rank} not in team {self.uid}") from None

    # ----------------------------------------------------------- construction
    def create_subteam(self, members: Sequence[int]) -> "Team":
        """Explicitly construct a subteam from a known member list.

        Collective over ``members`` (every member must call with the same
        list).  Requires no communication — the uid is derived
        deterministically from the member list — mirroring
        ``upcxx::team::create``.
        """
        ms = list(members)
        for m in ms:
            if m not in self._index:
                raise UpcxxError(f"rank {m} is not in the parent team")
        if self.rt.rank not in ms:
            raise UpcxxError("create_subteam caller must be a member")
        uid = _stable_uid(ms, salt=f"sub:{self.uid}:")
        existing = self.rt.teams.get(uid)
        if existing is not None:
            return existing
        return Team(self.rt, uid, ms)

    def split(self, color: int, key: int) -> "Team":
        """Collective split: members with equal ``color`` form a new team,
        ordered by ``(key, world rank)`` (``upcxx::team::split``).

        Implemented with real communication: members send ``(color, key)``
        to the team leader, which computes the partition and scatters each
        member its new team.
        """
        from repro.upcxx.rpc import rpc_ff

        rt = self.rt
        st = rt.coll_state.setdefault(("split", self.uid), {"epoch": 0, "results": {}})
        epoch = st["epoch"]
        st["epoch"] += 1

        leader = self.members[0]
        rpc_ff(leader, _split_gather, self.uid, epoch, rt.rank, color, key, len(self.members))
        rt.wait_quiet(lambda: epoch in st["results"], reason=f"team::split epoch {epoch}")
        members = st["results"].pop(epoch)
        uid = _stable_uid(members, salt=f"split:{self.uid}:{epoch}:")
        return Team(rt, uid, members)


# --------------------------------------------------------- split machinery
def _split_gather(team_uid: int, epoch: int, world_rank: int, color: int, key: int, n: int):
    """Leader side: collect (color, key) pairs; scatter results when full."""
    from repro.upcxx.rpc import rpc_ff

    rt = current_runtime()
    st = rt.coll_state.setdefault(("split-gather", team_uid), {})
    entries = st.setdefault(epoch, [])
    entries.append((color, key, world_rank))
    if len(entries) < n:
        return
    del st[epoch]
    by_color: dict = {}
    for c, k, w in entries:
        by_color.setdefault(c, []).append((k, w))
    for c in sorted(by_color):
        group = [w for _k, w in sorted(by_color[c])]
        for w in group:
            rpc_ff(w, _split_deliver, team_uid, epoch, group)


def _split_deliver(team_uid: int, epoch: int, members: list):
    """Member side: record the split result for the waiting caller."""
    rt = current_runtime()
    st = rt.coll_state.setdefault(("split", team_uid), {"epoch": 0, "results": {}})
    st["results"][epoch] = list(members)


# ------------------------------------------------------------- world/local
def team_world(rt: Optional[Runtime] = None) -> Team:
    """The team of all ranks (``upcxx::world()``)."""
    rt = rt or current_runtime()
    return rt.team_world()


def local_team(rt: Optional[Runtime] = None) -> Team:
    """The team of ranks sharing the caller's node (``upcxx::local_team``)."""
    rt = rt or current_runtime()
    machine = rt.world.machine
    node = machine.node_of(rt.rank)
    members = [r for r in machine.ranks_on_node(node) if r < rt.world.n_ranks]
    uid = _stable_uid(members, salt="local:")
    existing = rt.teams.get(uid)
    if existing is not None:
        return existing
    return Team(rt, uid, members)
