"""Asynchronous collectives: barrier, broadcast, reductions.

All collectives are non-blocking and future-based (the paper lists "a rich
set of non-blocking collective operations" as the then-current work; the
ones needed by the benchmarks are implemented here with scalable
algorithms over RPC):

- ``barrier_async`` — dissemination barrier: ⌈log₂ n⌉ rounds, each rank
  sending one token per round to ``(me + 2^k) mod n``;
- ``broadcast`` — binomial tree from the root;
- ``reduce_one`` / ``reduce_all`` — binomial-tree reduction (deterministic
  combine order: children merge in ascending virtual rank).

Every rank of the team must call each collective, in the same order —
the standard UPC++ contract.  State is per-(team, epoch) so collectives
from different epochs may overlap in flight.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.upcxx.future import Future, Promise, make_future
from repro.upcxx.runtime import CompQItem, current_runtime
from repro.upcxx.teams import Team

_OPS = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def _resolve_op(op: Union[str, Callable]) -> Callable:
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; use one of {sorted(_OPS)}") from None


def _team_of(rt, team: Optional[Team]) -> Team:
    return team if team is not None else rt.team_world()


def _with_team(rt, team_uid: int, thunk: Callable[[Team], None]) -> None:
    """Run ``thunk(team)`` now, or defer until this rank constructs the team.

    Collective traffic can outrun a peer that has not yet finished its own
    (communication-free) team construction; deferral keeps semantics clean.
    """
    team = rt.teams.get(team_uid)
    if team is not None:
        thunk(team)
        return
    waiters = rt.coll_state.setdefault(("team-wait", team_uid), [])
    waiters.append(thunk)


def flush_team_waiters(rt, team: Team) -> None:
    """Called by Team construction: release collective traffic that raced it."""
    waiters = rt.coll_state.pop(("team-wait", team.uid), [])
    for thunk in waiters:
        rt.enqueue_complete(CompQItem(0.0, lambda t=thunk: t(team), "team-wait"))


# ------------------------------------------------------------------ barrier
def _bar_promise(rt, team_uid: int, epoch: int, rnd: int) -> Promise:
    st = rt.coll_state.setdefault(("bar", team_uid), {"epoch": 0, "promises": {}})
    key = (epoch, rnd)
    p = st["promises"].get(key)
    if p is None:
        p = Promise(rt)
        st["promises"][key] = p
    return p


def _bar_recv(team_uid: int, epoch: int, rnd: int) -> None:
    """RPC body: a dissemination token arrived for (epoch, round)."""
    rt = current_runtime()
    _bar_promise(rt, team_uid, epoch, rnd).fulfill_anonymous(1)


def barrier_async(team: Optional[Team] = None) -> Future:
    """Non-blocking dissemination barrier; future ready when all arrived."""
    from repro.upcxx.rpc import rpc_ff

    rt = current_runtime()
    team = _team_of(rt, team)
    st = rt.coll_state.setdefault(("bar", team.uid), {"epoch": 0, "promises": {}})
    epoch = st["epoch"]
    st["epoch"] += 1
    n = team.rank_n()
    if n == 1:
        return make_future()
    me = team.rank_me()
    rounds = (n - 1).bit_length()  # ceil(log2 n)

    f: Future = make_future()
    for k in range(rounds):
        pk = _bar_promise(rt, team.uid, epoch, k)

        def step(k=k, pk=pk):
            peer = team[(me + (1 << k)) % n]
            rpc_ff(peer, _bar_recv, team.uid, epoch, k)
            return pk.get_future()

        f = f.then(step)

    def cleanup():
        for k in range(rounds):
            st["promises"].pop((epoch, k), None)

    return f.then(cleanup)


def barrier(team: Optional[Team] = None) -> None:
    """Blocking barrier (``upcxx::barrier``)."""
    barrier_async(team).wait()


# ---------------------------------------------------------------- broadcast
def _bcast_children(vrank: int, n: int) -> list:
    """Children of ``vrank`` in the binomial broadcast tree of size ``n``."""
    mask = 1
    while mask < n and not (vrank & mask):
        mask <<= 1
    mask >>= 1
    children = []
    while mask > 0:
        if vrank + mask < n:
            children.append(vrank + mask)
        mask >>= 1
    return children


def _bcast_promise(rt, team_uid: int, epoch: int) -> Promise:
    st = rt.coll_state.setdefault(("bcast", team_uid), {"epoch": 0, "promises": {}})
    p = st["promises"].get(epoch)
    if p is None:
        p = Promise(rt)
        st["promises"][epoch] = p
    return p


def _bcast_forward(rt, team: Team, epoch: int, root: int, value) -> None:
    from repro.upcxx.rpc import rpc_ff

    n = team.rank_n()
    me = team.rank_me()
    vrank = (me - root) % n
    for child_v in _bcast_children(vrank, n):
        child_world = team[(child_v + root) % n]
        rpc_ff(child_world, _bcast_recv, team.uid, epoch, root, value)


def _bcast_recv(team_uid: int, epoch: int, root: int, value) -> None:
    """RPC body: broadcast payload arrived; deliver locally and forward.

    Note: the promise is NOT removed here — the payload may arrive before
    the local ``broadcast()`` call, which must still find the fulfilled
    promise (cleanup belongs to the local caller).
    """
    rt = current_runtime()

    def go(team: Team):
        _bcast_promise(rt, team_uid, epoch).fulfill_result(value)
        _bcast_forward(rt, team, epoch, root, value)

    _with_team(rt, team_uid, go)


def broadcast(value, root: int = 0, team: Optional[Team] = None) -> Future:
    """Non-blocking broadcast from team rank ``root``; future of the value.

    Non-root callers pass any placeholder value (ignored), as in
    ``upcxx::broadcast``.
    """
    rt = current_runtime()
    team = _team_of(rt, team)
    st = rt.coll_state.setdefault(("bcast", team.uid), {"epoch": 0, "promises": {}})
    epoch = st["epoch"]
    st["epoch"] += 1
    if team.rank_n() == 1:
        return make_future(value)
    if team.rank_me() == root:
        p = _bcast_promise(rt, team.uid, epoch)
        p.fulfill_result(value)
        st["promises"].pop(epoch, None)
        _bcast_forward(rt, team, epoch, root, value)
        return p.get_future()
    p = _bcast_promise(rt, team.uid, epoch)
    fut = p.get_future()
    # cleanup once the local caller has its value (the handler must not
    # remove the promise — the payload can outrun this call)
    fut._on_ready(lambda: st["promises"].pop(epoch, None))
    return fut


# ---------------------------------------------------------------- reductions
def _red_entry(rt, team_uid: int, epoch: int) -> dict:
    st = rt.coll_state.setdefault(("red", team_uid), {"epoch": 0, "entries": {}})
    entry = st["entries"].get(epoch)
    if entry is None:
        entry = {
            "child_vals": {},  # child vrank -> contribution
            "have_own": False,
            "own": None,
            "expected": None,  # set when the local call happens
            "op": None,
            "promise": Promise(rt),
            "root": None,
            "team": None,
        }
        st["entries"][epoch] = entry
    return entry


def _red_try_complete(rt, team_uid: int, epoch: int) -> None:
    entry = _red_entry(rt, team_uid, epoch)
    if not entry["have_own"] or entry["expected"] is None:
        return
    if len(entry["child_vals"]) < entry["expected"]:
        return
    from repro.upcxx.rpc import rpc_ff

    op = entry["op"]
    acc = entry["own"]
    for child_v in sorted(entry["child_vals"]):
        acc = op(acc, entry["child_vals"][child_v])

    team: Team = entry["team"]
    n = team.rank_n()
    root = entry["root"]
    me = team.rank_me()
    vrank = (me - root) % n
    rt.coll_state[("red", team_uid)]["entries"].pop(epoch, None)
    if vrank == 0:
        entry["promise"].fulfill_result(acc)
        return
    parent_v = vrank & (vrank - 1)  # clear my lowest set bit
    parent_world = team[(parent_v + root) % n]
    rpc_ff(parent_world, _red_recv, team_uid, epoch, vrank, acc)
    entry["promise"].fulfill_result(None)


def _red_recv(team_uid: int, epoch: int, child_vrank: int, value) -> None:
    """RPC body: a child subtree's partial reduction arrived."""
    rt = current_runtime()
    entry = _red_entry(rt, team_uid, epoch)
    entry["child_vals"][child_vrank] = value
    _red_try_complete(rt, team_uid, epoch)


def reduce_one(value, op: Union[str, Callable] = "+", root: int = 0, team: Optional[Team] = None) -> Future:
    """Non-blocking reduction to team rank ``root``.

    The root's future yields the reduced value; other ranks' futures yield
    ``None`` once their subtree contribution has been sent on.
    """
    rt = current_runtime()
    team = _team_of(rt, team)
    st = rt.coll_state.setdefault(("red", team.uid), {"epoch": 0, "entries": {}})
    epoch = st["epoch"]
    st["epoch"] += 1
    opf = _resolve_op(op)
    n = team.rank_n()
    if n == 1:
        return make_future(value)
    me = team.rank_me()
    vrank = (me - root) % n
    entry = _red_entry(rt, team.uid, epoch)
    entry["have_own"] = True
    entry["own"] = value
    entry["op"] = opf
    entry["expected"] = len(_bcast_children(vrank, n))
    entry["root"] = root
    entry["team"] = team
    fut = entry["promise"].get_future()
    _red_try_complete(rt, team.uid, epoch)
    return fut


def reduce_all(value, op: Union[str, Callable] = "+", team: Optional[Team] = None) -> Future:
    """Non-blocking all-reduce: reduce to team rank 0, then broadcast."""
    rt = current_runtime()
    team = _team_of(rt, team)
    f = reduce_one(value, op, 0, team)
    return f.then(lambda r: broadcast(r, 0, team))


# ------------------------------------------------------------ gather/scatter
def gather(value, root: int = 0, team: Optional[Team] = None) -> Future:
    """Non-blocking gather to team rank ``root``.

    The root's future yields the list of values ordered by team rank;
    other ranks get ``None``.  Implemented as a binomial-tree reduction
    merging per-rank dictionaries (scalable: no rank handles more than its
    subtree's values at once).
    """
    rt = current_runtime()
    team = _team_of(rt, team)
    me = team.rank_me()
    n = team.rank_n()
    f = reduce_one({me: value}, lambda a, b: {**a, **b}, root, team)

    def finish(merged):
        if merged is None:
            # keep arity 1 (a then-callback returning bare None would
            # collapse to an empty future and break downstream chaining)
            return make_future(None)
        return [merged[i] for i in range(n)]

    return f.then(finish)


def allgather(value, team: Optional[Team] = None) -> Future:
    """Non-blocking allgather: everyone gets the team-ordered value list."""
    rt = current_runtime()
    team = _team_of(rt, team)
    f = gather(value, 0, team)
    return f.then(lambda lst: broadcast(lst, 0, team))


def _scatter_subtree(team: Team, epoch: int, root: int, chunk: dict) -> None:
    """Forward scatter payloads down the binomial tree, splitting the
    value dictionary by child subtree at each hop."""
    from repro.upcxx.rpc import rpc_ff

    n = team.rank_n()
    me = team.rank_me()
    vrank = (me - root) % n
    # children of vrank get the vrank-ranges [child, child + mask)
    mask = 1
    while mask < n and not (vrank & mask):
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < n:
            sub = {v: chunk[v] for v in range(child_v, min(child_v + mask, n)) if v in chunk}
            child_world = team[(child_v + root) % n]
            rpc_ff(child_world, _scatter_recv, team.uid, epoch, root, sub)
        mask >>= 1


def _scatter_recv(team_uid: int, epoch: int, root: int, chunk: dict) -> None:
    rt = current_runtime()

    def go(team: Team):
        me_v = (team.rank_me() - root) % team.rank_n()
        p = _bcast_promise(rt, ("scatter", team_uid), epoch)
        p.fulfill_result(chunk[me_v])
        _scatter_subtree(team, epoch, root, chunk)

    _with_team(rt, team_uid, go)


def scatter(values, root: int = 0, team: Optional[Team] = None) -> Future:
    """Non-blocking scatter from ``root``: rank *i* receives ``values[i]``.

    Non-root callers pass any placeholder for ``values``.
    """
    rt = current_runtime()
    team = _team_of(rt, team)
    st = rt.coll_state.setdefault(("bcast", ("scatter", team.uid)), {"epoch": 0, "promises": {}})
    epoch = st["epoch"]
    st["epoch"] += 1
    n = team.rank_n()
    if n == 1:
        return make_future(values[0])
    if team.rank_me() == root:
        if len(values) != n:
            raise ValueError(f"scatter needs {n} values, got {len(values)}")
        # index values by virtual rank so subtree splits are contiguous
        chunk = {(i - root) % n: values[i] for i in range(n)}
        p = _bcast_promise(rt, ("scatter", team.uid), epoch)
        p.fulfill_result(chunk[0])
        st["promises"].pop(epoch, None)
        _scatter_subtree(team, epoch, root, chunk)
        return p.get_future()
    p = _bcast_promise(rt, ("scatter", team.uid), epoch)
    fut = p.get_future()
    fut._on_ready(lambda: st["promises"].pop(epoch, None))
    return fut
