"""Rank-level replication and online recovery for aggregated stores.

The paper's DHT/KV story ends where most PGAS runtimes end: one crash
and the whole run unwinds with a :class:`RankDeadError`.  This module
adds the missing availability layer on top of :class:`AggStore` and the
survivable heartbeat machinery (``Scheduler.on_rank_dead``):

- :class:`ReplicaMap` — deterministic primary-replica placement.  A
  key's *home* is its routed owner (:func:`default_route` by default);
  its owner set is the first ``factor`` alive ranks walking the ring
  from the home.  Because a death only ever shifts later candidates
  earlier, every *surviving* original owner stays in the owner set —
  the invariant the recovery proof below leans on.
- :class:`ReplicatedStore` — a veneer over one :class:`AggStore` that
  fans each update out to every owner (riding the store's existing
  batching, credits, and quiescence), routes reads to the primary, and
  reacts to a detected death in four deterministic steps:

  1. **exclude** the dead peer from the store (forgive its in-flight
     acks, restore credits, drop buffered traffic, purge the read
     cache, re-point quiescence at the alive subteam);
  2. **failover** every outstanding read that targeted the dead rank to
     the key's new primary (first completion wins — a late reply from
     the dead rank is harmless);
  3. run the **service hook** (``on_death``) so the app can settle its
     own write accounting;
  4. **re-replicate**: ship the keys the dead rank co-owned to the
     recruit ranks that joined each owner set, restoring the factor
     online (install-if-absent, so a recruit's fresher post-detection
     state is never clobbered).

- :meth:`ReplicatedStore.anti_entropy` — a drain-time sweep (after
  :meth:`AggStore.quiesce`) where the first surviving *original* owner
  of each key replace-syncs the recruits.  Correctness: a surviving
  original owner received every update from every surviving writer
  (it is in both the pre- and post-detection owner sets, and delivery
  between alive ranks is reliable), so after quiescence its value is
  the exact combine over all surviving writers' updates; copying it
  onto the recruits makes every replica exact.

With ``factor == 1`` the veneer degenerates bit-identically to the bare
store (same buffers, same flush order, same future chains), so turning
replication off costs nothing — the property the chaos-determinism
tests pin.  The design assumes at most ``factor - 1`` failures between
recoveries; past that, a key can lose all its copies (reads then serve
the default, counted by the service as lost writes).

All recovery work happens in rank context: the death listener runs in
network context and only *stages* the handler onto the runtime's
completion queue (the ``_deliver_remote_cx`` pattern), so every
downstream effect carries a deterministic causal stamp on all three
backends.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Union

from repro.upcxx.aggregator import AggStore, _as_list, default_route
from repro.upcxx.collectives import barrier
from repro.upcxx.dist_object import DistObject
from repro.upcxx.rpc import rpc
from repro.upcxx.runtime import CompQItem, current_runtime


# ------------------------------------------------------------- rpc bodies
def _repl_install(dobj: DistObject, keys, vals) -> int:
    """RPC body at a recruit: install shipped keys *if absent*.

    Stage-1 recovery runs while the service is still serving, so a
    recruit may already hold a fresher post-detection value for a key;
    install-if-absent never clobbers it.  The drain-time
    :func:`_repl_sync` sweep makes the value exact either way.
    """
    rt = current_runtime()
    state = dobj.value
    klist = _as_list(keys)
    vlist = _as_list(vals)
    rt.charge_sw(rt.cpu.map_insert * len(klist))
    data = state["data"]
    installed = 0
    for k, v in zip(klist, vlist):
        if k not in data:
            data[k] = v
            installed += 1
    return installed


def _repl_sync(dobj: DistObject, keys, vals) -> int:
    """RPC body at a recruit: replace-sync shipped keys (drain time).

    Runs after global quiescence, so the shipped values are the exact
    combine over every surviving writer's updates.
    """
    rt = current_runtime()
    state = dobj.value
    klist = _as_list(keys)
    vlist = _as_list(vals)
    rt.charge_sw(rt.cpu.map_insert * len(klist))
    data = state["data"]
    for k, v in zip(klist, vlist):
        data[k] = v
    return len(klist)


# ------------------------------------------------------------ placement
class ReplicaMap:
    """Deterministic successor-ring replica placement.

    ``owners(key)`` is the first ``factor`` *alive* ranks walking the
    ring from the key's routed home.  Pure rank-local arithmetic over
    the shared dead set — every rank computes identical owner sets
    without communication.
    """

    def __init__(self, n_ranks: int, factor: int, route: Callable = default_route):
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        self.n = n_ranks
        self.factor = min(factor, n_ranks)
        self._route = route
        #: team ranks detected dead (shared view, updated at detection)
        self.dead: Set[int] = set()

    def home(self, key) -> int:
        """The key's routed home rank (ignores deaths)."""
        return self._route(key, self.n)

    def owners(self, key, dead: Optional[Iterable[int]] = None) -> List[int]:
        """Ring-ordered owner set of ``key`` against a dead set
        (default: the current one).  May be shorter than ``factor``
        when fewer ranks survive."""
        excluded = self.dead if dead is None else set(dead)
        home = self._route(key, self.n)
        out: List[int] = []
        for i in range(self.n):
            r = (home + i) % self.n
            if r in excluded:
                continue
            out.append(r)
            if len(out) == self.factor:
                break
        return out

    def primary(self, key) -> int:
        """First alive owner — the read target."""
        return self.owners(key)[0]

    def mark_dead(self, rank: int) -> None:
        self.dead.add(rank)

    def alive(self) -> List[int]:
        return [r for r in range(self.n) if r not in self.dead]


# ------------------------------------------------------------- the store
class ReplicatedStore:
    """A replication veneer over one :class:`AggStore`.

    Constructor is collective (it builds the underlying store's
    DistObject).  All :class:`AggStore` keyword knobs pass through;
    ``replication`` sets the target copy count and ``on_death`` is the
    service hook ``(dead_team_rank, t_detect)`` run in rank context
    after read failover but before re-replication ships.
    """

    def __init__(
        self,
        combine: Union[str, Callable] = "+",
        batch_size: int = 64,
        *,
        replication: int = 1,
        team=None,
        max_dwell: Optional[float] = None,
        credits: Optional[int] = None,
        cache_capacity: int = 0,
        route: Callable = default_route,
        on_batch_flushed: Optional[Callable] = None,
        on_batch_acked: Optional[Callable] = None,
        on_death: Optional[Callable[[int, float], None]] = None,
    ):
        rt = current_runtime()
        self._rt = rt
        self.store = AggStore(
            combine,
            batch_size,
            team=team,
            max_dwell=max_dwell,
            credits=credits,
            cache_capacity=cache_capacity,
            route=route,
            on_batch_flushed=on_batch_flushed,
            on_batch_acked=on_batch_acked,
        )
        self.team = self.store.team
        self._my = self.store._my_trank
        self.map = ReplicaMap(self.team.rank_n(), replication, route)
        self.replication = self.map.factor
        self._on_death_cb = on_death
        # -- outstanding reads (insertion-ordered: failover re-issues scan
        #    this deterministically) -----------------------------------------
        self._reads: dict = {}
        self._read_seq = 0
        # -- recovery accounting --------------------------------------------
        self.failover_reads = 0
        self.rereplicated_keys = 0
        self.synced_keys = 0
        self.deaths_seen = 0
        #: simulated seconds from detection until this rank's stage-1
        #: ships were all acked (0.0 when it had nothing to ship)
        self.recovery_s = 0.0
        self.factor_restored = True
        self._pending_ships = 0
        self._t_detect: Optional[float] = None
        # the listener fires only under survivable fault plans; it stages
        # rank-context work, never touching state from network context
        rt.sched.on_rank_dead(self._on_dead_listener)

    # ------------------------------------------------------------ updates
    def owners(self, key) -> List[int]:
        """Current owner set of ``key`` (ring order, primary first)."""
        return self.map.owners(key)

    def update(self, key, value) -> None:
        """Fan one update out to every owner (batched per destination)."""
        for o in self.map.owners(key):
            self.store.update_to(o, key, value)

    def poll(self) -> None:
        self.store.poll()

    def flush(self) -> None:
        self.store.flush()

    # -------------------------------------------------------------- reads
    def read(self, key, default=None, cb: Optional[Callable] = None) -> None:
        """Read ``key`` from its primary; ``cb(key, value)`` on completion.

        The read is tracked until it completes so a detected death can
        retarget it to a surviving replica instead of losing it.
        """
        self._read_seq += 1
        ctx = {
            "id": self._read_seq,
            "key": key,
            "default": default,
            "cb": cb,
            "dest": -1,
            "done": False,
        }
        self._reads[ctx["id"]] = ctx
        self._issue(ctx)

    def _issue(self, ctx: dict) -> None:
        dest = self.map.primary(ctx["key"])
        ctx["dest"] = dest

        def _done(v, ctx=ctx):
            # first completion wins: a late reply from a since-dead
            # primary and its failover re-issue may both land
            if not ctx["done"]:
                ctx["done"] = True
                del self._reads[ctx["id"]]
                cb = ctx["cb"]
                if cb is not None:
                    cb(ctx["key"], v)
            return v

        self.store.read_from(dest, ctx["key"], ctx["default"]).then(_done)

    def reads_outstanding(self) -> int:
        return len(self._reads)

    # ----------------------------------------------------- death handling
    def _on_dead_listener(self, dead_world: int, err, t_detect: float) -> None:
        """Network context: stage the death handler into rank context."""
        rt = self._rt
        if dead_world not in self.team or rt._crash_at is not None:
            return
        dead = self.team.from_world(dead_world)
        if dead == self._my:
            return
        item = CompQItem.acquire(
            rt._c_rpc_dispatch,
            lambda: self._handle_death(dead, t_detect),
            "rank_death",
        )
        rt.gasnet_completed(item, t_detect)

    def _handle_death(self, dead: int, t_detect: float) -> None:
        """Rank context: exclusion, read failover, service hook, stage-1
        re-replication — in that order, identically on every rank."""
        rt = self._rt
        t0 = rt.now()
        self.deaths_seen += 1
        self._t_detect = t_detect
        dead_before = set(self.map.dead)
        self.map.mark_dead(dead)
        alive_world = [self.team[r] for r in self.map.alive()]
        alive_team = self.team.create_subteam(alive_world)
        self.store.exclude_dead(dead, alive_team)
        # retarget outstanding reads aimed at the dead rank
        for ctx in [c for c in self._reads.values() if c["dest"] == dead]:
            if not ctx["done"]:
                self.failover_reads += 1
                rt._ep.kv_failover_reads += 1
                self._issue(ctx)
        if self._on_death_cb is not None:
            self._on_death_cb(dead, t_detect)
        self._rereplicate(dead, dead_before, t_detect)
        sp = rt.spans
        if sp is not None:
            sp.record(t0, rt.now(), rt.rank, rt.next_span_sid(),
                      "death_exclude", "repl", 0)

    def _rereplicate(self, dead: int, dead_before: set, t_detect: float) -> None:
        """Stage 1: ship each co-owned key slice to its recruit ranks.

        The first surviving owner in ring order ships (every rank
        computes the same election without communication).  Ships are
        acked RPCs; when the last ack lands, ``recovery_s`` records the
        detection-to-restored interval.
        """
        rt = self._rt
        data = self.store.state["data"]
        me = self._my
        ship: dict = {}
        for k, v in data.items():
            old = self.map.owners(k, dead=dead_before)
            if dead not in old:
                continue
            survivors = [r for r in old if r not in self.map.dead]
            if not survivors or survivors[0] != me:
                continue
            recruits = [r for r in self.map.owners(k) if r not in old]
            for rec in recruits:
                ks, vs = ship.setdefault(rec, ([], []))
                ks.append(k)
                vs.append(v)
        # one lookup-ish charge per scanned key: the recovery scan is
        # real work and must show up on the simulated clock
        rt.charge_sw(rt.cpu.map_lookup * max(1, len(data)))
        if not ship:
            return
        self.factor_restored = False
        for rec in sorted(ship):
            ks, vs = ship[rec]
            self.rereplicated_keys += len(ks)
            rt._ep.kv_rereplicated += len(ks)
            self._pending_ships += 1
            t0 = rt.now()
            fut = rpc(
                self.team[rec], _repl_install, self.store._dobj,
                AggStore._pack(ks), AggStore._pack(vs),
            )
            fut.then(lambda _v, t0=t0, n=len(ks): self._ship_done(t0, n, t_detect))

    def _ship_done(self, t0: float, n: int, t_detect: float) -> None:
        rt = self._rt
        self._pending_ships -= 1
        sp = rt.spans
        if sp is not None:
            sp.record(t0, rt.now(), rt.rank, rt.next_span_sid(),
                      "rereplicate", "repl", n)
        if self._pending_ships == 0:
            self.recovery_s = max(self.recovery_s, rt.now() - t_detect)
            self.factor_restored = True

    # ---------------------------------------------------------- drain side
    def anti_entropy(self) -> None:
        """Drain-time replace-sync (collective over the alive team).

        Call after :meth:`AggStore.quiesce` and after all reads have
        completed.  For every local key whose original owner set lost a
        member, the first surviving *original* owner — whose value is
        now the exact combine over all surviving writers — replace-syncs
        the recruits.  Symmetric no-op when nothing died.
        """
        rt = self._rt
        if not self.map.dead:
            return
        t0 = rt.now()
        data = self.store.state["data"]
        me = self._my
        ship: dict = {}
        for k, v in data.items():
            original = self.map.owners(k, dead=frozenset())
            survivors = [r for r in original if r not in self.map.dead]
            if not survivors or survivors[0] != me:
                continue
            recruits = [r for r in self.map.owners(k) if r not in original]
            for rec in recruits:
                ks, vs = ship.setdefault(rec, ([], []))
                ks.append(k)
                vs.append(v)
        rt.charge_sw(rt.cpu.map_lookup * max(1, len(data)))
        pending = [0]

        def _acked(_v, pending=pending):
            pending[0] -= 1
            return _v

        for rec in sorted(ship):
            ks, vs = ship[rec]
            self.synced_keys += len(ks)
            pending[0] += 1
            rpc(
                self.team[rec], _repl_sync, self.store._dobj,
                AggStore._pack(ks), AggStore._pack(vs),
            ).then(_acked)
        rt.wait_quiet(lambda: pending[0] == 0, "repl::anti-entropy")
        sp = rt.spans
        if sp is not None and ship:
            sp.record(t0, rt.now(), rt.rank, rt.next_span_sid(),
                      "anti_entropy", "repl", sum(len(ks) for ks, _ in ship.values()))
        barrier(team=self.store.quiesce_team)

    # ------------------------------------------------------------- queries
    def local_items(self) -> dict:
        return self.store.local_items()

    def stats(self) -> dict:
        out = self.store.stats()
        out.update(
            replication=self.replication,
            deaths_seen=self.deaths_seen,
            failover_reads=self.failover_reads,
            rereplicated_keys=self.rereplicated_keys,
            synced_keys=self.synced_keys,
            recovery_s=self.recovery_s,
            factor_restored=self.factor_restored,
        )
        return out
