"""Shared-segment memory management (``upcxx::allocate`` / ``new_array``).

Allocation is always in the **calling rank's own** shared segment (remote
allocation requires an RPC — see the paper's DHT ``make_lz``, which is an
RPC precisely because there is no remote allocate).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.runtime import current_runtime


def allocate(nbytes: int, rt=None) -> GlobalPtr:
    """Allocate ``nbytes`` of uninitialized local shared memory.

    ``nbytes == 0`` is legal (as in UPC++): the pointer is valid, distinct,
    and deallocatable, and zero-byte rput/rget through it are no-ops.
    """
    rt = rt or current_runtime()
    rt.charge_sw(rt.costs.alloc)
    off = rt.conduit.segment(rt.rank).allocate(nbytes)
    return GlobalPtr(rt.rank, off, np.uint8, nbytes)


def new_array(dtype, count: int, rt=None) -> GlobalPtr:
    """Allocate a typed array in local shared memory (``upcxx::new_array``).

    ``count == 0`` is legal, mirroring ``new T[0]``.
    """
    rt = rt or current_runtime()
    dt = np.dtype(dtype)
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rt.charge_sw(rt.costs.alloc)
    off = rt.conduit.segment(rt.rank).allocate(dt.itemsize * count)
    return GlobalPtr(rt.rank, off, dt, count)


def deallocate(gptr: GlobalPtr, rt=None) -> None:
    """Free shared memory previously allocated by this rank."""
    rt = rt or current_runtime()
    if gptr.rank != rt.rank:
        raise ValueError(
            f"rank {rt.rank} cannot deallocate memory owned by rank {gptr.rank} "
            "(use an RPC to the owner)"
        )
    rt.charge_sw(rt.costs.alloc)
    rt.conduit.segment(rt.rank).deallocate(gptr.offset)


def segment_usage(rt=None) -> dict:
    """Local shared-segment accounting (diagnostics)."""
    rt = rt or current_runtime()
    seg = rt.conduit.segment(rt.rank)
    return {
        "size": seg.size,
        "in_use": seg.bytes_in_use,
        "peak": seg.peak_in_use,
        "free": seg.free_bytes,
        "allocs": seg.n_allocs,
    }
