"""Global pointers: typed references into any rank's shared segment.

A :class:`GlobalPtr` names ``(rank, byte offset, element dtype)`` within
the PGAS global memory.  Per the paper's explicit-data-motion principle it
**cannot be dereferenced** — data moves only through ``rput``/``rget``/
atomics — but it supports pointer arithmetic, comparison, and conversion
to/from a local (numpy) view by the owning rank (``local()``), mirroring
``global_ptr<T>::local()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.upcxx.errors import GlobalPtrError


@dataclass(frozen=True)
class GlobalPtr:
    """A typed pointer into rank ``rank``'s shared segment.

    ``kind`` names the memory the pointer refers to: ``"host"`` (the
    default shared segment) or ``"device"`` (GPU memory, see
    :mod:`repro.upcxx.device`) — the memory-kinds extension the paper
    lists as future work.
    """

    rank: int
    offset: int
    dtype: np.dtype = np.dtype(np.uint8)
    #: number of elements in the underlying allocation reachable from here
    count: int = 0
    kind: str = "host"

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.kind not in ("host", "device"):
            raise GlobalPtrError(f"unknown memory kind {self.kind!r}")

    # --------------------------------------------------------------- algebra
    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Bytes spanned by the ``count`` elements from this pointer."""
        return self.count * self.itemsize

    def __add__(self, n: int) -> "GlobalPtr":
        if not isinstance(n, int):
            return NotImplemented
        if n < 0:
            return self.__sub__(-n)
        if n > self.count:
            raise GlobalPtrError(f"pointer arithmetic past end: +{n} with count {self.count}")
        return GlobalPtr(self.rank, self.offset + n * self.itemsize, self.dtype, self.count - n, self.kind)

    def __sub__(self, n):
        if isinstance(n, GlobalPtr):
            if n.rank != self.rank or n.dtype != self.dtype:
                raise GlobalPtrError("pointer difference requires same rank and dtype")
            delta = self.offset - n.offset
            if delta % self.itemsize:
                raise GlobalPtrError("misaligned pointer difference")
            return delta // self.itemsize
        if not isinstance(n, int):
            return NotImplemented
        return GlobalPtr(self.rank, self.offset - n * self.itemsize, self.dtype, self.count + n, self.kind)

    def __getitem__(self, i: int) -> "GlobalPtr":
        """``p[i]`` — pointer to the i-th element (no dereference!)."""
        return self + i

    def is_null(self) -> bool:
        return self.count == 0 and self.offset == 0 and self.rank < 0

    def __bool__(self) -> bool:
        return not self.is_null()

    def where(self) -> int:
        """The owning rank (``global_ptr::where()``)."""
        return self.rank

    def cast(self, dtype) -> "GlobalPtr":
        """Reinterpret as another element type (must divide the span)."""
        dt = np.dtype(dtype)
        span = self.nbytes
        if span % dt.itemsize:
            raise GlobalPtrError(f"cannot cast span of {span}B to dtype {dt}")
        return GlobalPtr(self.rank, self.offset, dt, span // dt.itemsize, self.kind)

    # ----------------------------------------------------------------- local
    def local(self) -> np.ndarray:
        """Owner-only zero-copy numpy view (``global_ptr::local()``).

        Device pointers cannot be viewed directly from the host (as on a
        real GPU); use :func:`repro.upcxx.copy` to move the data.
        """
        from repro.upcxx.runtime import current_runtime

        rt = current_runtime()
        if rt.rank != self.rank:
            raise GlobalPtrError(
                f"rank {rt.rank} cannot take a local view of memory owned by rank {self.rank}"
            )
        if self.kind != "host":
            raise GlobalPtrError("cannot take a host-local view of device memory; use upcxx.copy")
        return rt.world.conduit.segment(self.rank).view(self.offset, self.dtype, self.count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "" if self.kind == "host" else f", {self.kind}"
        return f"gptr(rank={self.rank}, off={self.offset}, {self.dtype}x{self.count}{k})"


#: the null global pointer
NULL = GlobalPtr(rank=-1, offset=0, dtype=np.uint8, count=0)
