"""Memory kinds: GPU device segments and the generalized ``upcxx::copy``.

The paper's §VI names this as the immediate future work: "enhance UPC++'s
one-sided communication to express transfers to and from other memories
(such as that of GPUs) with extensions to the existing abstractions."
This module implements that extension the way UPC++ later shipped it
(memory kinds):

- :class:`Device` — a per-rank GPU with its own registered segment;
  ``device.allocate(dtype, n)`` returns a :class:`GlobalPtr` of kind
  ``"device"`` (same pointer algebra, no host dereference);
- :func:`copy` — one-sided copy between *any* two global pointers (or a
  host array endpoint), regardless of owner or memory kind.  Host↔host
  copies ride the NIC; transfers touching device memory additionally cross
  the owning rank's PCIe-class staging link, which serializes transfers
  and adds latency — so the simulated cost structure matches a
  GPUDirect-less interconnect.

Like every UPC++ operation, ``copy`` is asynchronous and completes through
the usual completion objects.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.upcxx.completion import Completion, resolve
from repro.upcxx.errors import GlobalPtrError, UpcxxError
from repro.upcxx.future import Future
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.runtime import CompQItem, current_runtime
from repro.gasnet.network import PATH_BTE, PATH_FMA

#: default device segment size
_DEFAULT_DEVICE_SEGMENT = 64 * 1024 * 1024


class Device:
    """One rank's GPU (``upcxx::cuda_device`` + ``device_allocator``)."""

    def __init__(self, segment_size: int = _DEFAULT_DEVICE_SEGMENT):
        rt = current_runtime()
        self.rt = rt
        self.rank = rt.rank
        self.segment = rt.conduit.ensure_device_segment(rt.rank, segment_size)

    def allocate(self, dtype, count: int) -> GlobalPtr:
        """Allocate a typed array in this rank's device segment."""
        dt = np.dtype(dtype)
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.rt.charge_sw(self.rt.costs.alloc)
        off = self.segment.allocate(dt.itemsize * count)
        return GlobalPtr(self.rank, off, dt, count, kind="device")

    def deallocate(self, gptr: GlobalPtr) -> None:
        if gptr.kind != "device" or gptr.rank != self.rank:
            raise UpcxxError("can only deallocate this rank's own device memory")
        self.rt.charge_sw(self.rt.costs.alloc)
        self.segment.deallocate(gptr.offset)

    def usage(self) -> dict:
        return {"size": self.segment.size, "in_use": self.segment.bytes_in_use}


def _common_bytes(src, dst: GlobalPtr, count: Optional[int]):
    """Validate endpoints; returns (nbytes, count_elems)."""
    if isinstance(src, GlobalPtr):
        n = min(src.count, dst.count) if count is None else count
        if n <= 0 or n > src.count or n > dst.count:
            raise GlobalPtrError(f"copy of {n} elements outside operand spans")
        if src.dtype != dst.dtype:
            raise GlobalPtrError(f"copy dtype mismatch: {src.dtype} vs {dst.dtype}")
        return n * src.itemsize, n
    arr = np.ascontiguousarray(src)
    n = len(arr) if count is None else count
    if n <= 0 or n > len(arr):
        raise GlobalPtrError(f"copy of {n} elements outside source array of {len(arr)}")
    if n > dst.count:
        raise GlobalPtrError(f"copy of {n} elements exceeds destination span {dst.count}")
    if arr.dtype != dst.dtype:
        raise GlobalPtrError(f"copy dtype mismatch: {arr.dtype} vs {dst.dtype}")
    return n * dst.itemsize, n


def copy(
    src: Union[GlobalPtr, np.ndarray],
    dst: GlobalPtr,
    count: Optional[int] = None,
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Generalized one-sided copy (``upcxx::copy``).

    ``src`` may be a global pointer of any kind/owner or a local host
    array; ``dst`` is a global pointer of any kind/owner.  Completion is
    local operation completion (data committed at the destination and
    acknowledged).  Third-party copies (neither endpoint local) route
    through the initiator, like the reference implementation.
    """
    rt = current_runtime()
    me = rt.rank
    net = rt.world.network
    nbytes, n = _common_bytes(src, dst, count)
    rt.charge_sw(rt.costs.rma_inject)
    src_is_local_host = (
        not isinstance(src, GlobalPtr) or (src.rank == rt.rank and src.kind == "host")
    )
    if src_is_local_host and dst.rank == rt.rank and dst.kind == "host":
        rt.charge_copy(nbytes)  # plain local memcpy
    promise, fut = resolve(cx, rt)
    path = PATH_FMA if nbytes < rt.costs.bte_threshold else PATH_BTE

    def finish_at(t: float):
        """Complete the operation at simulated time t (network context)."""

        def fulfill():
            if promise is not None:
                promise.fulfill_anonymous(1)

        def cb():
            rt.gasnet_completed(
                CompQItem(rt.cpu.t(rt.costs.completion), fulfill, "copy", nbytes), t
            )
            rt.sched.wake(me, t)

        rt.sched.post_at(t, cb)

    def store_phase(data: bytes, t_ready: float):
        """Write ``data`` into dst starting no earlier than ``t_ready``."""
        seg = rt.conduit.segment_of(dst.rank, dst.kind)
        if dst.rank == me:
            if dst.kind == "device":
                done = rt.conduit.pcie_transfer(me, nbytes, t_ready)
                rt.sched.post_at(done, lambda: (seg.write(dst.offset, data), finish_at(done))[1])
            else:
                def commit():
                    seg.write(dst.offset, data)
                    finish_at(t_ready)

                rt.sched.post_at(t_ready, commit)
            return

        # remote destination: wire put (from the initiator), then an extra
        # PCIe hop at the target for device memory
        rt.sched.post_at(t_ready, lambda: _raw_put(rt, me, dst, data, path, t_ready, finish_at))

    # ---------------------------------------------------------- fetch phase
    now = rt.sched.now()
    if isinstance(src, np.ndarray) or not isinstance(src, GlobalPtr):
        data = np.ascontiguousarray(src).tobytes()[:nbytes]
        store_phase(data, now)
        return fut

    src_seg_kind = src.kind
    if src.rank == me:
        data = bytes(rt.conduit.segment_of(me, src_seg_kind).read(src.offset, nbytes))
        if src_seg_kind == "device":
            t_ready = rt.conduit.pcie_transfer(me, nbytes, now)
        else:
            t_ready = now
        store_phase(data, t_ready)
        return fut

    # remote source: one-sided get, plus a PCIe hop at the source for
    # device memory (staged through the source's host memory)
    handle = _raw_get(rt, me, src, nbytes, path)

    def on_got(h):
        t = h.time_done
        if src_seg_kind == "device":
            t = rt.conduit.pcie_transfer(src.rank, nbytes, t)
        store_phase(h.data, t)

    handle.on_complete(on_got)
    return fut


def _raw_put(rt, me: int, dst: GlobalPtr, data: bytes, path: str, start: float, finish_at) -> None:
    """Wire put into the destination's segment of the right kind.

    Runs in network context: all times are explicit (no rank-clock reads).
    """
    conduit = rt.conduit
    seg = conduit.segment_of(dst.rank, dst.kind)
    nbytes = len(data)
    # reuse the conduit's wire machinery but commit into the chosen segment
    _, arrival = conduit._inject(me, dst.rank, nbytes, path, start)
    same = conduit.machine.same_node(me, dst.rank)
    ack_latency = conduit.network.latency(same)

    def commit():
        t_commit = arrival
        if dst.kind == "device":
            t_commit = conduit.pcie_transfer(dst.rank, nbytes, arrival)

        def write_and_ack():
            seg.write(dst.offset, data)
            finish_at(t_commit + ack_latency)

        rt.sched.post_at(t_commit, write_and_ack)

    rt.sched.post_at(arrival, commit)


def _raw_get(rt, me: int, src: GlobalPtr, nbytes: int, path: str):
    """Wire get from the source's segment of the right kind."""
    from repro.gasnet.handle import Handle

    conduit = rt.conduit
    seg = conduit.segment_of(src.rank, src.kind)
    handle = Handle(f"copy-get {me}<-{src.rank} {nbytes}B")
    _, req_arrival = conduit._inject(me, src.rank, conduit.network.header_bytes, PATH_FMA, rt.sched.now())
    src_ep = conduit.endpoints[src.rank]
    same = conduit.machine.same_node(me, src.rank)

    def service():
        data = seg.read(src.offset, nbytes)
        begin = max(req_arrival, src_ep.nic_free_at)
        occ = conduit.network.occupancy(nbytes, path, same)
        src_ep.nic_free_at = begin + occ
        back = begin + occ + conduit.network.latency(same)
        rt.sched.post_at(back, lambda: handle.complete(back, data=data))

    rt.sched.post_at(req_arrival, service)
    return handle
