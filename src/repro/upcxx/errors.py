"""Exception types for the UPC++ layer."""

from __future__ import annotations


class UpcxxError(RuntimeError):
    """Base class for UPC++-layer errors (misuse, not simulation faults)."""


class NotInSpmdError(UpcxxError):
    """A UPC++ API was called outside a running SPMD region."""


class GlobalPtrError(UpcxxError):
    """Invalid global-pointer operation (bad arithmetic, wrong owner...)."""


class SerializationError(UpcxxError):
    """An object could not be serialized for the wire."""
