"""The UPC++ runtime: progress engine and per-rank state.

Faithful to the paper's §III, each rank's :class:`Runtime` keeps the three
unordered operation queues:

- **defQ** — operations in the *deferred* state, not yet handed to GASNet.
  (Injection calls enqueue here; internal progress drains it.)
- **actQ** — operations in the *active* state: handed to the conduit, which
  completes them without further initiator attentiveness (NIC offload).
- **compQ** — operations in the *complete* state: finished transfers whose
  promises await fulfillment, plus **incoming RPCs** awaiting execution.
  compQ is drained **only by user-level progress** — a rank that computes
  without calling ``progress()`` stalls its incoming RPCs and its own
  future callbacks, exactly the attentiveness behavior the paper warns
  about.

Internal progress (which happens on every call into the library) drains
defQ, promotes conduit-completed operations into compQ, and moves due
active messages from the conduit inbox into compQ.  User progress
(``progress()``/``wait()``) additionally *executes* compQ: fulfilling
promises (which runs ``.then`` callbacks inline) and dispatching RPC
bodies.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.gasnet.am import AMMessage
from repro.gasnet.conduit import Conduit
from repro.gasnet.cpumodel import CpuModel
from repro.gasnet.machine import Machine
from repro.gasnet.network import NetworkModel
from repro.sim.coop import Scheduler, current_client, current_scheduler
from repro.sim.errors import RankCrashed
from repro.sim.rng import RankRandom
from repro.upcxx.costs import DEFAULT_COSTS, UpcxxCosts
from repro.upcxx.errors import NotInSpmdError
from repro.upcxx.future import Future


class CompQItem:
    """One entry of compQ: a CPU charge plus a rank-context thunk.

    ``nbytes``/``t_active``/``t_staged`` are optional observability tags:
    payload size, the time the operation became *active* (handed to the
    conduit), and the time its completion was staged for promotion.  They
    feed the op-lifecycle dwell histograms when metrics are enabled and
    cost nothing otherwise.  ``sid``/``t_polled`` are the causal-span
    analogues: the operation's span correlation id and the time an
    inbox-delivered item was polled (the compQ span starts there rather
    than at wire arrival, so the inbox and compQ phases tile instead of
    overlapping).

    Items are single-use (built, executed once by user progress, dead), so
    ``progress()`` recycles them through a free list; hot creators go
    through :meth:`acquire`.
    """

    __slots__ = ("cost", "fn", "kind", "nbytes", "t_active", "t_staged", "sid", "t_polled")

    _pool: list = []
    _POOL_MAX = 256

    def __init__(
        self,
        cost: float,
        fn: Callable[[], None],
        kind: str = "op",
        nbytes: int = 0,
        t_active: Optional[float] = None,
        t_staged: Optional[float] = None,
        sid: Optional[tuple] = None,
    ):
        self.cost = cost  # seconds, already platform-scaled
        self.fn = fn
        self.kind = kind
        self.nbytes = nbytes
        self.t_active = t_active
        self.t_staged = t_staged
        self.sid = sid
        self.t_polled: Optional[float] = None

    @classmethod
    def acquire(
        cls,
        cost: float,
        fn: Callable[[], None],
        kind: str = "op",
        nbytes: int = 0,
        t_active: Optional[float] = None,
        t_staged: Optional[float] = None,
        sid: Optional[tuple] = None,
    ) -> "CompQItem":
        """Pooled constructor: reuse an executed item when one is free."""
        pool = cls._pool
        if pool:
            item = pool.pop()
            item.cost = cost
            item.fn = fn
            item.kind = kind
            item.nbytes = nbytes
            item.t_active = t_active
            item.t_staged = t_staged
            item.sid = sid
            item.t_polled = None
            return item
        return cls(cost, fn, kind, nbytes, t_active, t_staged, sid)

    @classmethod
    def release(cls, item: "CompQItem") -> None:
        """Return an executed item to the free list (caller owns it)."""
        pool = cls._pool
        if len(pool) < cls._POOL_MAX:
            item.fn = None
            pool.append(item)


class World:
    """Per-job UPC++ state shared by all ranks (conduit, registries)."""

    def __init__(
        self,
        sched: Scheduler,
        machine: Machine,
        network: NetworkModel,
        cpu: CpuModel,
        costs: UpcxxCosts = DEFAULT_COSTS,
        segment_size: int = 32 * 1024 * 1024,
        seed: int = 0,
        metrics=None,
        spans=None,
        faults=None,
        telemetry=None,
    ):
        self.sched = sched
        self.machine = machine
        self.network = network
        self.cpu = cpu
        self.costs = costs
        self.seed = seed
        #: optional repro.util.metrics.Metrics collecting op-lifecycle data
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        #: optional repro.util.spans.SpanBuffer collecting causal spans
        self.spans = spans if spans is not None and spans.enabled else None
        #: optional repro.util.telemetry.Telemetry (windowed rollups +
        #: flight recorder); same gating discipline as metrics/spans
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        if (
            self.telemetry is not None
            and faults is not None
            and faults.crashes
            and not faults.survivable
        ):
            # freeze rings/windows at the first crash time so post-mortem
            # bundles are bit-identical across backends (the sharded
            # backend over-executes survivors past the abort point).
            # Survivable plans keep recording: execution past the crash is
            # deterministic there, and the post-crash windows are the story.
            self.telemetry.freeze_at = min(faults.crashes.values())
        if faults is not None and faults.survivable:
            # every process of the job (including shard workers that host
            # no crashing rank) must return results instead of re-raising
            # the recorded death at end of run
            sched._survivable = True
        #: optional repro.sim.faults.FaultPlan (chaos injection)
        self.faults = faults
        self.conduit = Conduit(
            sched, machine, network, segment_size, metrics=self.metrics,
            spans=self.spans, faults=faults, telemetry=self.telemetry,
        )
        self.conduit._remote_cx_deliver = self._deliver_remote_cx
        self.n_ranks = sched.n_ranks
        self.runtimes: List[Optional["Runtime"]] = [None] * self.n_ranks
        #: next team uid (uids are assigned collectively & deterministically)
        self.team_uid_seq = 1  # 0 is reserved for world

    def _deliver_remote_cx(
        self, dst_rank: int, fn, args, nbytes: int, t_active: float, arrival: float,
        sid: Optional[tuple] = None,
    ) -> None:
        """Hand a remote_cx::as_rpc to ``dst_rank``'s runtime (network
        context, at the process that owns ``dst_rank``).

        Called by the conduit when a put's bytes land; the RPC is staged on
        the target's compQ and the target woken, exactly as if the target
        had received it locally.  ``sid`` threads the initiating put's
        span correlation id through to the target-side execution spans.
        """
        target_rt = self.runtimes[dst_rank]
        item = CompQItem.acquire(
            target_rt._c_rpc_dispatch,
            lambda: fn(*args),
            "remote_cx_rpc",
            nbytes=nbytes,
            t_active=t_active,
            sid=sid,
        )
        target_rt.gasnet_completed(item, arrival)
        self.sched.wake(dst_rank, arrival)


class Runtime:
    """One rank's view of the UPC++ library."""

    def __init__(self, world: World, rank: int):
        self.world = world
        self.rank = rank
        self.sched = world.sched
        self.cpu = world.cpu
        self.costs = world.costs
        self.conduit = world.conduit
        self.rng = RankRandom(world.seed, rank, salt="upcxx")
        #: per-rank metrics sink (None when observability is off)
        self.metrics = world.metrics.rank(rank) if world.metrics is not None else None
        #: causal span buffer (None when span tracing is off)
        self.spans = world.spans
        #: per-rank telemetry sink (None when telemetry is off); the
        #: endpoint reference feeds NIC/reliability/agg counters into
        #: rollup snapshots without touching the conduit hot path
        self.telemetry = world.telemetry.rank(rank) if world.telemetry is not None else None
        self._ep = world.conduit.endpoints[rank]
        #: per-rank span-id counter; sids are (rank, seq), minted in rank
        #: context in program order, hence identical on every backend
        self._span_seq = 0
        #: scheduler trace buffer (records only when the buffer is enabled)
        self._trace = world.sched.trace
        #: this rank's AM inbox (cached; hot-path polled every progress)
        self._inbox = world.conduit.inbox(rank)

        # Precomputed platform-scaled charges for the per-op hot path.
        # cpu.t(base) is a single multiply, so memoizing the product here
        # is bit-identical to charging cpu.t(costs.x) at each call site.
        cpu = world.cpu
        costs = world.costs
        self._c_progress_poll = cpu.t(costs.progress_poll)
        self._c_rpc_inject = cpu.t(costs.rpc_inject)
        self._c_rpc_reply_inject = cpu.t(costs.rpc_reply_inject)
        self._c_rma_inject = cpu.t(costs.rma_inject)
        self._c_completion = cpu.t(costs.completion)
        self._c_rpc_dispatch = cpu.t(costs.rpc_dispatch)
        self._c_then_dispatch = cpu.t(costs.then_dispatch)
        #: memo of copy_time(nbytes) — workloads reuse a few payload sizes
        self._copy_cache: dict = {}

        # §III queues
        self.defQ: deque = deque()  # (injector, kind, nbytes, t_enqueued)
        self.actQ: dict = {}  # opid -> description (diagnostics)
        self.compQ: deque = deque()  # CompQItem
        #: network-context staging area: conduit-completed ops waiting for
        #: the next internal progress to be promoted into compQ
        self._gasnet_done: deque = deque()

        self._op_seq = 0
        #: outstanding RPC replies: token -> callable(result)
        self.reply_table: dict = {}
        self._token_seq = 0

        #: dist_object registry: (team_uid, index) -> DistObject; plus
        #: deferred RPCs waiting for a dist_object to be constructed
        self.dist_objects: dict = {}
        self.dist_waiters: dict = {}
        self.dist_creation_seq: dict = {}  # team_uid -> next index

        #: collectives state (epoch counters etc.), keyed by team uid
        self.coll_state: dict = {}

        #: teams known to this rank: uid -> Team
        self.teams: dict = {}

        # counters
        self.n_rputs = 0
        self.n_rgets = 0
        self.n_rpcs_sent = 0
        self.n_rpcs_executed = 0
        self.n_progress_calls = 0

        #: simulated time at which this rank dies (fault injection); None
        #: while alive.  Checked on every call into the library.
        self._crash_at: Optional[float] = None
        plan = world.faults
        if plan is not None and rank in plan.crashes:
            self._arm_crash(plan, plan.crashes[rank])

        world.runtimes[rank] = self

    # ---------------------------------------------------------- fault crashes
    def _arm_crash(self, plan, t_die: float) -> None:
        """Schedule this rank's fail-stop death and its detection.

        Two events, both posted in rank context at clock 0 (hence identical
        on every backend and owned by this rank's shard):

        - *die* at ``t_die``: marks the rank dead (fail-stop — the next call
          into the library raises the internal :class:`RankCrashed` control
          exception and the rank's fiber/thread simply stops) and records
          the :class:`RankDeadError` for the end-of-run verdict.
        - *detect* at ``t_die + detect_timeout``: the simulated heartbeat
          timeout fires on the survivors; unless the run already failed,
          the scheduler aborts every rank with :class:`RankDeadError` so
          blocked collectives/waits never hang.

        Under a *survivable* plan the detect event instead notifies the
        scheduler's death listeners (``Scheduler._notify_dead``) and the
        run keeps going.  Because execution continues past detection, the
        detect event's causal stamp must be identical on every backend: it
        is armed under the synthetic stamp ``(0.0, rank, 0)`` — disjoint
        from every organically minted stamp (rank-context seqs start at 1)
        and exactly what the sharded backend's remote-detection events use.
        """
        rank = self.rank
        sched = self.sched
        err = plan.dead_error(rank)

        def die() -> None:
            self._crash_at = t_die
            sched._dead_ranks[rank] = err
            # kick the rank so a blocked fiber re-enters the library and
            # observes its own death instead of sleeping forever
            sched.wake(rank, t_die)

        sched.post_at(t_die, die)
        t_detect = t_die + plan.detect_timeout
        if plan.survivable:

            def detect() -> None:
                sched._notify_dead(rank, err, t_detect)

            sched.post_keyed(t_detect, (0.0, rank, 0), detect)
        else:

            def detect() -> None:
                if sched._failure is None:
                    sched._fail(err)

            sched.post_at(t_detect, detect)

    # ----------------------------------------------------------- telemetry
    def _pending_snapshot(self) -> dict:
        """JSON-safe snapshot of this rank's in-flight operation state.

        Feeds the blackbox pending-op table: queue depths plus a bounded
        sample of operation descriptions (rank-local state read in program
        order, hence identical on every backend).
        """
        from repro.util.telemetry import _PENDING_DETAIL

        return {
            "defQ": len(self.defQ),
            "actQ": len(self.actQ),
            "actQ_ops": [str(v) for v in list(self.actQ.values())[:_PENDING_DETAIL]],
            "compQ": len(self.compQ),
            "compQ_kinds": [it.kind for it in list(self.compQ)[:_PENDING_DETAIL]],
            "staged": len(self._gasnet_done),
            "replies": len(self.reply_table),
        }

    def _telemetry_finalize(self) -> None:
        """Close the final (partial) rollup window at normal completion."""
        tel = self.telemetry
        if tel is not None:
            tel.finalize(
                self.sched.now(),
                (len(self.defQ), len(self.actQ), len(self.compQ), len(self._gasnet_done)),
                self._ep,
            )

    # --------------------------------------------------------------- charges
    def charge_sw(self, base_seconds: float) -> None:
        """Charge a Haswell-calibrated software cost, platform-scaled."""
        self.sched.charge(self.cpu.t(base_seconds))

    def charge_copy(self, nbytes: int) -> None:
        """Charge a CPU copy/serialization of ``nbytes``."""
        if nbytes > 0:
            self.sched.charge(self.copy_time(nbytes))

    def copy_time(self, nbytes: int) -> float:
        """Memoized ``cpu.copy_time`` (same division, computed once/size)."""
        t = self._copy_cache.get(nbytes)
        if t is None:
            t = self._copy_cache[nbytes] = self.cpu.copy_time(nbytes)
        return t

    def compute(self, seconds: float) -> None:
        """Model application computation (no progress happens inside)."""
        self.sched.charge(seconds)

    def now(self) -> float:
        return self.sched.now()

    # ------------------------------------------------------------ op plumbing
    def next_op_id(self) -> int:
        self._op_seq += 1
        return self._op_seq

    def next_token(self) -> int:
        self._token_seq += 1
        return self._token_seq

    def next_span_sid(self) -> tuple:
        """Mint the next span correlation id (only called when spans on)."""
        self._span_seq += 1
        return (self.rank, self._span_seq)

    def enqueue_deferred(self, injector: Callable[[], None], kind: str = "op", nbytes: int = 0) -> None:
        """Put an operation in the deferred state (defQ).

        ``kind``/``nbytes`` tag the operation for the metrics layer (op
        counts, byte totals, deferred-dwell histograms); they do not affect
        execution.
        """
        t_enq = self.sched.now() if self.metrics is not None else 0.0
        self.defQ.append((injector, kind, nbytes, t_enq))

    def gasnet_completed(self, item: CompQItem, t_complete: Optional[float] = None) -> None:
        """Network context: a conduit op finished; stage for promotion.

        ``t_complete`` is the network-context completion time (e.g. the
        handle's ``time_done``); it stamps the item for complete→fulfilled
        dwell accounting.  Network context must not read a rank clock, so
        the time travels as an explicit argument.
        """
        if t_complete is not None:
            item.t_staged = t_complete
        self._gasnet_done.append(item)

    def enqueue_complete(self, item: CompQItem) -> None:
        """Rank context: place an item directly into compQ."""
        self.compQ.append(item)

    # -------------------------------------------------------------- progress
    def internal_progress(self) -> None:
        """Progress that happens on any call into the library.

        Drains defQ into the conduit, promotes conduit completions into
        compQ, and moves due inbox AMs into compQ.  Does NOT execute compQ.
        """
        tel = self.telemetry
        if self._crash_at is not None:
            if tel is not None:
                # capture the dying rank's in-flight state at its last
                # deterministic point (queue contents as of the previous
                # suspension — identical on every backend)
                tel.record_death(
                    self._crash_at, self._pending_snapshot(),
                    (len(self.defQ), len(self.actQ), len(self.compQ), len(self._gasnet_done)),
                    self._ep,
                )
            raise RankCrashed(f"rank {self.rank} crashed at t={self._crash_at!r}")
        # ensure due network events have been delivered at our clock
        sched = self.sched
        sched.checkpoint()
        m = self.metrics
        if m is not None:
            m.sample_queues(
                sched.now(), len(self.defQ), len(self.actQ), len(self.compQ), len(self._gasnet_done)
            )
        if tel is not None:
            tel.tick(
                sched.now(), len(self.defQ), len(self.actQ), len(self.compQ),
                len(self._gasnet_done), self._ep,
            )
        defQ = self.defQ
        while defQ:
            injector, kind, nbytes, t_enq = defQ.popleft()
            if m is not None:
                m.op_injected(kind, nbytes, sched.now() - t_enq)
            if tel is not None:
                tel.op(kind, nbytes)
            injector()
        compQ = self.compQ
        staged = self._gasnet_done
        while staged:
            compQ.append(staged.popleft())
        # merged inbox drain: head check and pop read the deque directly
        # (arrival times are nondecreasing, exactly what has_due/poll use)
        inbox = self._inbox
        queue = inbox._queue
        if queue:
            now = sched.now()
            trace = self._trace
            sp = self.spans
            dispatch = _AM_DISPATCH
            while queue and queue[0].arrival <= now:
                inbox.n_polled += 1
                msg = queue.popleft()
                handler = dispatch.get(msg.tag)
                if handler is None:
                    raise NotInSpmdError(f"no dispatcher for AM tag {msg.tag!r}")
                if m is not None:
                    m.am_polled(msg.tag, now - msg.arrival)
                if tel is not None:
                    tel.am(now, msg.tag)
                if trace.enabled:
                    trace.record(now, self.rank, "am", msg.tag)
                item = handler(self, msg)
                if item.t_staged is None:
                    item.t_staged = msg.arrival
                if item.t_active is None:
                    meta = msg.meta
                    if meta is not None:
                        item.t_active = meta.get("t_injected")
                if sp is not None:
                    meta = msg.meta
                    msid = None if meta is None else meta.get("sid")
                    if msid is not None:
                        # inbox dwell: wire arrival -> this poll; the compQ
                        # span then starts here so the two phases tile
                        item.sid = msid
                        item.t_polled = now
                        sp.record(msg.arrival, now, self.rank, msid, "inbox", item.kind, msg.nbytes)
                compQ.append(item)
                # the handler captured what it needed from the envelope
                AMMessage.release(msg)
        if m is not None:
            m.sample_queues(
                sched.now(), len(defQ), len(self.actQ), len(compQ), len(staged)
            )

    def progress(self) -> None:
        """User-level progress: also executes compQ to completion."""
        self.n_progress_calls += 1
        m = self.metrics
        sched = self.sched
        if m is not None:
            m.user_progress(sched.now())
        sched.charge(self._c_progress_poll)
        self.internal_progress()
        compQ = self.compQ
        staged = self._gasnet_done
        trace = self._trace
        sp = self.spans
        tel = self.telemetry
        release = CompQItem.release
        if m is None and sp is None and tel is None and not trace.enabled:
            # Observability off: the execute loop carries zero per-item
            # instrumentation — charge, run, release (the "zero-cost when
            # off" discipline; one sentinel check for the whole drain).
            charge = sched.charge
            while compQ:
                item = compQ.popleft()
                cost = item.cost
                if cost > 0:
                    charge(cost)
                item.fn()
                release(item)
                # completions staged in network context while this item
                # executed must not wait for compQ to drain (see below)
                while staged:
                    compQ.append(staged.popleft())
                if not compQ:
                    self.internal_progress()
            return
        while compQ:
            item = compQ.popleft()
            cost = item.cost
            sid = item.sid if sp is not None else None
            t_exec = sched.now() if sid is not None else 0.0
            if cost > 0:
                sched.charge(cost)
            if m is not None:
                m.op_executed(item, sched.now())
            if trace.enabled:
                trace.record(sched.now(), self.rank, "exec", item.kind)
            if tel is not None:
                tel.exec_note(item.kind)
            item.fn()
            if sid is not None:
                # compQ dwell (attentiveness) then execution software; the
                # exec span absorbs the item's CPU charge and its body
                t_q = item.t_polled
                if t_q is None:
                    t_q = item.t_staged
                if t_q is not None:
                    sp.record(t_q, t_exec, self.rank, sid, "compq", item.kind, item.nbytes)
                sp.record(t_exec, sched.now(), self.rank, sid, "exec_sw", item.kind, item.nbytes)
            release(item)
            # completions staged in network context while this item executed
            # (acks that arrived during its CPU charge or nested injections)
            # must not wait for compQ to drain: promote them immediately so
            # their fulfillment time reflects attentiveness, not queue depth.
            while staged:
                compQ.append(staged.popleft())
            if not compQ:
                # executing items may have injected ops / received arrivals
                self.internal_progress()
        if m is not None:
            m.user_progress_done(sched.now())

    def wait_on(self, fut: Future) -> None:
        """Spin around user progress until ``fut`` is ready (paper: wait)."""
        while not fut.ready():
            self.progress()
            if fut.ready():
                break
            self.sched.block("upcxx::wait")

    def wait_quiet(self, pred: Callable[[], bool], reason: str = "upcxx::quiesce") -> None:
        """Progress until an arbitrary predicate holds (library-internal)."""
        while not pred():
            self.progress()
            if pred():
                break
            self.sched.block(reason)

    # -------------------------------------------------------------- teams
    def team_world(self):
        from repro.upcxx.teams import Team

        team = self.teams.get(0)
        if team is None:
            team = Team(self, uid=0, members=list(range(self.world.n_ranks)))
            self.teams[0] = team
        return team


#: AM tag -> (runtime, msg) -> CompQItem; populated by rpc/collectives
_AM_DISPATCH: dict = {}


def register_am(tag: str, builder: Callable) -> None:
    """Register a compQ-item builder for an AM tag (module initialization)."""
    _AM_DISPATCH[tag] = builder


def current_runtime() -> Runtime:
    """The calling rank's runtime (inside a UPC++ SPMD region).

    Reads the scheduler's per-rank client slot (O(1)); ``rank_env()`` is
    kept in sync by the bootstrap for external introspection.
    """
    rt = current_client()
    if rt is None or not isinstance(rt, Runtime):
        raise NotInSpmdError("UPC++ is not initialized on this rank (use upcxx.run_spmd)")
    return rt
