"""Remote atomics (``upcxx::atomic_domain``).

An :class:`AtomicDomain` is constructed collectively with the set of
operations it will perform; its operations target single elements in
shared segments through global pointers.  On the simulated Aries NIC the
update is **hardware-offloaded**: it applies at the target at wire-arrival
time with no target CPU involvement (paper §II — "on network hardware with
appropriate capabilities ... remote atomic updates can also be offloaded,
improving latency and scalability").

All operations are asynchronous and future-returning; fetching ops yield
the value *before* the update (like ``fetch_add``), ``load`` yields the
current value, ``compare_exchange`` yields the previous value.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.upcxx.completion import Completion, resolve
from repro.upcxx.errors import UpcxxError
from repro.upcxx.future import Future
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.runtime import CompQItem, current_runtime

#: domain op name -> (conduit op, fetches?)
_OP_TABLE = {
    "load": ("get", True),
    "store": ("put", False),
    "add": ("add", False),
    "fetch_add": ("fetch_add", True),
    "min": ("min", False),
    "max": ("max", False),
    "bit_and": ("bit_and", False),
    "bit_or": ("bit_or", False),
    "bit_xor": ("bit_xor", False),
    "compare_exchange": ("cas", True),
}


class AtomicDomain:
    """A set of atomic operations over one element dtype."""

    def __init__(self, ops: Iterable[str], dtype=np.int64, team=None):
        rt = current_runtime()
        self.rt = rt
        self.dtype = np.dtype(dtype)
        self.ops = frozenset(ops)
        unknown = self.ops - set(_OP_TABLE)
        if unknown:
            raise UpcxxError(f"unsupported atomic ops: {sorted(unknown)}")
        self.team = team if team is not None else rt.team_world()

    def _issue(self, op: str, gptr: GlobalPtr, operands: tuple, cx: Optional[Completion]) -> Optional[Future]:
        if op not in self.ops:
            raise UpcxxError(f"op {op!r} not declared in this atomic_domain ({sorted(self.ops)})")
        if gptr.dtype != self.dtype:
            raise UpcxxError(f"atomic_domain dtype {self.dtype} != pointer dtype {gptr.dtype}")
        rt = self.rt
        conduit_op, fetches = _OP_TABLE[op]
        sp = rt.spans
        sid = None
        t_api = 0.0
        if sp is not None:
            sid = rt.next_span_sid()
            t_api = rt.now()
        rt.charge_sw(rt.costs.atomic_inject)
        promise, fut = resolve(cx, rt)
        anonymous = cx is not None and cx.kind == "promise"

        def injector():
            opid = rt.next_op_id()
            rt.actQ[opid] = f"amo {op} -> {gptr.rank}"
            t_active = rt.now()
            if sp is not None:
                sp.record(t_api, t_active, rt.rank, sid, "inject_sw", "amo", self.dtype.itemsize)
            handle = rt.conduit.amo(
                rt.rank, gptr.rank, gptr.offset, conduit_op, self.dtype, operands, span=sid
            )

            def on_done(h):
                def fulfill():
                    rt.actQ.pop(opid, None)
                    if promise is None:
                        return
                    if anonymous:
                        promise.fulfill_anonymous(1)
                    elif fetches:
                        promise.fulfill_result(h.data)
                    else:
                        promise.fulfill_result()

                rt.gasnet_completed(
                    CompQItem.acquire(
                        rt._c_completion,
                        fulfill,
                        "amo",
                        self.dtype.itemsize,
                        t_active,
                        sid=sid,
                    ),
                    h.time_done,
                )
                rt.sched.wake(rt.rank, h.time_done)

            handle.on_complete(on_done)

        rt.enqueue_deferred(injector, kind="amo", nbytes=self.dtype.itemsize)
        rt.internal_progress()
        return fut

    # ------------------------------------------------------------- operations
    def load(self, gptr: GlobalPtr, cx=None) -> Future:
        """Future of the current value at ``gptr``."""
        return self._issue("load", gptr, (), cx)

    def store(self, gptr: GlobalPtr, value, cx=None) -> Future:
        """Atomically store ``value``."""
        return self._issue("store", gptr, (value,), cx)

    def add(self, gptr: GlobalPtr, value, cx=None) -> Future:
        """Atomic add without fetch."""
        return self._issue("add", gptr, (value,), cx)

    def fetch_add(self, gptr: GlobalPtr, value, cx=None) -> Future:
        """Atomic add; future of the pre-update value."""
        return self._issue("fetch_add", gptr, (value,), cx)

    def min(self, gptr: GlobalPtr, value, cx=None) -> Future:
        return self._issue("min", gptr, (value,), cx)

    def max(self, gptr: GlobalPtr, value, cx=None) -> Future:
        return self._issue("max", gptr, (value,), cx)

    def bit_and(self, gptr: GlobalPtr, value, cx=None) -> Future:
        return self._issue("bit_and", gptr, (value,), cx)

    def bit_or(self, gptr: GlobalPtr, value, cx=None) -> Future:
        return self._issue("bit_or", gptr, (value,), cx)

    def bit_xor(self, gptr: GlobalPtr, value, cx=None) -> Future:
        return self._issue("bit_xor", gptr, (value,), cx)

    def compare_exchange(self, gptr: GlobalPtr, expected, desired, cx=None) -> Future:
        """Atomic CAS; future of the previous value (success iff == expected)."""
        return self._issue("compare_exchange", gptr, (expected, desired), cx)
