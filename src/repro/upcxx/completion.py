"""Completion objects: how an operation reports that it finished.

Mirrors the UPC++ completion API used in the paper's benchmarks:

- ``operation_cx.as_future()`` — the default; the injection call returns a
  future readied at operation completion (during user progress).
- ``operation_cx.as_promise(p)`` — registers a dependency on an existing
  promise; completion retires it.  The paper's flood benchmark tracks many
  puts with one promise this way.
- ``remote_cx.as_rpc(fn, *args)`` — runs ``fn`` at the *target* once the
  data has landed in target memory (supported by :func:`repro.upcxx.rma.rput`).

An injection call receives one :class:`Completion`; :func:`resolve` turns
it into the (promise, future-to-return) pair the runtime threads through
the defQ/actQ/compQ machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.upcxx.future import Future, Promise


@dataclass(frozen=True)
class Completion:
    """A requested completion notification."""

    kind: str  # "future" | "promise"
    promise: Optional[Promise] = None
    #: optional remote completion: (fn, args) executed at the target
    remote_rpc: Optional[Tuple[Callable, tuple]] = field(default=None)

    def with_remote_rpc(self, fn: Callable, *args) -> "Completion":
        """Attach a remote_cx.as_rpc to this completion request."""
        return Completion(kind=self.kind, promise=self.promise, remote_rpc=(fn, args))


class operation_cx:
    """Namespace mirroring ``upcxx::operation_cx``."""

    @staticmethod
    def as_future() -> Completion:
        return Completion(kind="future")

    @staticmethod
    def as_promise(p: Promise) -> Completion:
        return Completion(kind="promise", promise=p)


class remote_cx:
    """Namespace mirroring ``upcxx::remote_cx`` (remote completion only)."""

    @staticmethod
    def as_rpc(fn: Callable, *args) -> Completion:
        # remote-only completion: no local future is produced
        return Completion(kind="none", remote_rpc=(fn, args))


def resolve(cx: Optional[Completion], rt) -> Tuple[Optional[Promise], Optional[Future]]:
    """Normalize a completion request into (promise, returned future).

    - ``None`` or as_future: fresh promise, future returned to caller.
    - as_promise(p): register one dependency on ``p``; caller gets None.
    - remote-only: no local tracking at all.
    """
    if cx is None or cx.kind == "future":
        p = Promise(rt)
        p.require_anonymous(1)  # the operation itself is one dependency
        return p, p.finalize()
    if cx.kind == "promise":
        assert cx.promise is not None
        cx.promise.require_anonymous(1)
        return cx.promise, None
    if cx.kind == "none":
        return None, None
    raise ValueError(f"unknown completion kind {cx.kind!r}")
