"""Views: zero-copy serialization of user sequences into RPC payloads.

``upcxx::view`` lets an RPC ship a sequence directly out of user memory
and exposes it at the target as a non-owning window into the incoming
network buffer (paper §IV-D: the extend-add RPCs send packed doubles as
views).  Here :class:`View` wraps a contiguous numpy array (or anything
convertible to one); serialization writes the raw bytes, and
deserialization yields a View whose backing array aliases the received
buffer — the receiving side is charged **no deserialization copy**.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class View:
    """A non-owning, contiguous, typed window over element data."""

    __slots__ = ("_array",)

    def __init__(self, array: np.ndarray):
        arr = np.ascontiguousarray(array)
        self._array = arr

    @classmethod
    def from_iterable(cls, items: Iterable, dtype=np.float64) -> "View":
        return cls(np.fromiter(items, dtype=dtype))

    def __len__(self) -> int:
        return self._array.shape[0] if self._array.ndim else 1

    def __iter__(self) -> Iterator:
        return iter(self._array)

    def __getitem__(self, i):
        return self._array[i]

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def nbytes(self) -> int:
        return self._array.nbytes

    def to_numpy(self) -> np.ndarray:
        """The backing array (aliases the network buffer on the target)."""
        return self._array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<View {self._array.dtype}x{len(self)}>"


def make_view(container) -> View:
    """Create a view over a numpy array or sequence (``upcxx::make_view``)."""
    if isinstance(container, View):
        return container
    if isinstance(container, np.ndarray):
        return View(container)
    return View(np.asarray(container))
