"""repro.upcxx — the paper's contribution: UPC++ v1.0 in Python.

Public API surface (mirroring the C++ names used throughout the paper):

Execution
    run_spmd, rank_me, rank_n, progress, compute, sim_now
Asynchrony
    Future, Promise, make_future, when_all, to_future
Global memory
    GlobalPtr, NULL, allocate, new_array, deallocate
RMA
    rput, rget, rput_then_rpc, rput_irregular, rget_irregular,
    rput_strided, rget_strided
RPC
    rpc, rpc_ff, View, make_view
Completions
    operation_cx, remote_cx
Atomics
    AtomicDomain
Memory kinds (the paper's stated future work)
    Device, copy
Teams & distributed objects
    Team, team_world, local_team, DistObject
Collectives
    barrier, barrier_async, broadcast, reduce_one, reduce_all
"""

from repro.upcxx.aggregator import AggStore
from repro.upcxx.replication import ReplicaMap, ReplicatedStore
from repro.upcxx.api import (
    compute,
    default_ppn,
    in_spmd,
    progress,
    rank_me,
    rank_n,
    run_spmd,
    runtime_here,
    sim_now,
)
from repro.upcxx.atomics import AtomicDomain
from repro.upcxx.collectives import (
    allgather,
    barrier,
    barrier_async,
    broadcast,
    gather,
    reduce_all,
    reduce_one,
    scatter,
)
from repro.upcxx.completion import Completion, operation_cx, remote_cx
from repro.upcxx.costs import DEFAULT_COSTS, UpcxxCosts
from repro.upcxx.device import Device, copy
from repro.upcxx.dist_object import DistObject
from repro.upcxx.errors import (
    GlobalPtrError,
    NotInSpmdError,
    SerializationError,
    UpcxxError,
)
from repro.upcxx.future import Future, Promise, make_future, to_future, when_all
from repro.upcxx.global_ptr import NULL, GlobalPtr
from repro.upcxx.memory import allocate, deallocate, new_array, segment_usage
from repro.upcxx.persona import (
    Persona,
    current_persona,
    discharge,
    lpc,
    lpc_ff,
    master_persona,
    progress_required,
)
from repro.upcxx.rma import rget, rput, rput_then_rpc
from repro.upcxx.rpc import rpc, rpc_ff
from repro.upcxx.runtime import Runtime, World, current_runtime
from repro.upcxx.teams import Team, local_team, team_world
from repro.upcxx.view import View, make_view
from repro.upcxx.vis import rget_irregular, rget_strided, rput_irregular, rput_strided

__all__ = [
    # execution
    "run_spmd",
    "rank_me",
    "rank_n",
    "progress",
    "compute",
    "sim_now",
    "in_spmd",
    "runtime_here",
    "default_ppn",
    # asynchrony
    "Future",
    "Promise",
    "make_future",
    "when_all",
    "to_future",
    # memory
    "GlobalPtr",
    "NULL",
    "allocate",
    "new_array",
    "deallocate",
    "segment_usage",
    # memory kinds (paper §VI future work)
    "Device",
    "copy",
    # rma
    "rput",
    "rget",
    "rput_then_rpc",
    "rput_irregular",
    "rget_irregular",
    "rput_strided",
    "rget_strided",
    # rpc
    "rpc",
    "rpc_ff",
    "View",
    "make_view",
    # completions
    "Completion",
    "operation_cx",
    "remote_cx",
    # atomics
    "AtomicDomain",
    # teams / dist objects
    "Team",
    "team_world",
    "local_team",
    "DistObject",
    # collectives
    "barrier",
    "barrier_async",
    "broadcast",
    "reduce_one",
    "reduce_all",
    "gather",
    "allgather",
    "scatter",
    # personas / progress
    "Persona",
    "master_persona",
    "current_persona",
    "lpc",
    "lpc_ff",
    "progress_required",
    "discharge",
    # aggregation (HipMer-style destination batching)
    "AggStore",
    # replication / online recovery
    "ReplicaMap",
    "ReplicatedStore",
    # costs / runtime access
    "UpcxxCosts",
    "DEFAULT_COSTS",
    "Runtime",
    "World",
    "current_runtime",
    # errors
    "UpcxxError",
    "NotInSpmdError",
    "GlobalPtrError",
    "SerializationError",
]
