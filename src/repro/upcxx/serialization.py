"""Wire serialization for RPC arguments and return values.

A compact tagged binary format covering the types UPC++ programs actually
ship — scalars, strings, bytes, containers, numpy arrays, global pointers,
views, and distributed-object references — with a pickle escape hatch for
anything else.  Packing produces real bytes (what travels on the simulated
wire and determines transfer timing); unpacking reconstructs the objects at
the target.

Two properties matter for fidelity:

- :class:`~repro.upcxx.view.View` payloads deserialize as views over the
  received buffer (zero-copy at the target, as in UPC++);
- ``measure()`` reports the exact wire size so CPU serialization costs can
  be charged proportionally.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.upcxx.errors import SerializationError
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.view import View

# one-byte type tags
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_TUPLE = 8
_T_LIST = 9
_T_DICT = 10
_T_NDARRAY = 11
_T_GPTR = 12
_T_VIEW = 13
_T_DISTREF = 14
_T_PICKLE = 15
_T_CUSTOM = 16

#: user-registered class serializers: cls -> (type_id, to_wire, from_wire)
_CUSTOM_BY_CLS: dict = {}
#: type_id -> from_wire
_CUSTOM_BY_ID: dict = {}

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

# precomputed one-byte tag frames: bytes([...]) per element is a measurable
# allocation cost on the RPC hot path, so each tag is materialized once
_B_NONE = bytes([_T_NONE])
_B_TRUE = bytes([_T_TRUE])
_B_FALSE = bytes([_T_FALSE])
_B_INT = bytes([_T_INT])
_B_BIGINT = bytes([_T_BIGINT])
_B_FLOAT = bytes([_T_FLOAT])
_B_STR = bytes([_T_STR])
_B_BYTES = bytes([_T_BYTES])
_B_TUPLE = bytes([_T_TUPLE])
_B_LIST = bytes([_T_LIST])
_B_DICT = bytes([_T_DICT])
_B_NDARRAY = bytes([_T_NDARRAY])
_B_GPTR = bytes([_T_GPTR])
_B_VIEW = bytes([_T_VIEW])
_B_DISTREF = bytes([_T_DISTREF])
_B_PICKLE = bytes([_T_PICKLE])
_B_CUSTOM = bytes([_T_CUSTOM])
_B_KIND_HOST = bytes([0])
_B_KIND_DEVICE = bytes([1])


@dataclass(frozen=True)
class DistObjectRef:
    """Wire token naming a distributed object: (team uid, creation index)."""

    team_uid: int
    index: int


def _is_dist_object(obj: Any) -> bool:
    """Late-bound isinstance check (avoids a circular import)."""
    from repro.upcxx.dist_object import DistObject

    return isinstance(obj, DistObject)


def _pack_len(out: List[bytes], n: int) -> None:
    out.append(_U32.pack(n))


def _pack_into(out: List[bytes], obj: Any) -> None:
    if obj is None:
        out.append(_B_NONE)
    elif obj is True:
        out.append(_B_TRUE)
    elif obj is False:
        out.append(_B_FALSE)
    elif isinstance(obj, int):
        if -(2**63) <= obj < 2**63:
            out.append(_B_INT)
            out.append(_I64.pack(obj))
        else:
            raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            out.append(_B_BIGINT)
            _pack_len(out, len(raw))
            out.append(raw)
    elif isinstance(obj, float):
        out.append(_B_FLOAT)
        out.append(_F64.pack(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_B_STR)
        _pack_len(out, len(raw))
        out.append(raw)
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out.append(_B_BYTES)
        _pack_len(out, len(raw))
        out.append(raw)
    elif isinstance(obj, tuple):
        out.append(_B_TUPLE)
        _pack_len(out, len(obj))
        for x in obj:
            _pack_into(out, x)
    elif isinstance(obj, list):
        out.append(_B_LIST)
        _pack_len(out, len(obj))
        for x in obj:
            _pack_into(out, x)
    elif isinstance(obj, dict):
        out.append(_B_DICT)
        _pack_len(out, len(obj))
        for k, v in obj.items():
            _pack_into(out, k)
            _pack_into(out, v)
    elif isinstance(obj, View):
        arr = obj.to_numpy()
        dt = str(arr.dtype).encode()
        out.append(_B_VIEW)
        _pack_len(out, len(dt))
        out.append(dt)
        raw = arr.tobytes()
        _pack_len(out, len(raw))
        out.append(raw)
    elif isinstance(obj, np.ndarray):
        dt = str(obj.dtype).encode()
        shape = obj.shape
        out.append(_B_NDARRAY)
        _pack_len(out, len(dt))
        out.append(dt)
        _pack_len(out, len(shape))
        for s in shape:
            out.append(_U32.pack(s))
        raw = np.ascontiguousarray(obj).tobytes()
        _pack_len(out, len(raw))
        out.append(raw)
    elif isinstance(obj, np.generic):  # numpy scalar
        _pack_into(out, obj.item())
    elif isinstance(obj, GlobalPtr):
        out.append(_B_GPTR)
        out.append(_I64.pack(obj.rank))
        out.append(_I64.pack(obj.offset))
        dt = str(obj.dtype).encode()
        _pack_len(out, len(dt))
        out.append(dt)
        out.append(_I64.pack(obj.count))
        out.append(_B_KIND_HOST if obj.kind == "host" else _B_KIND_DEVICE)
    elif isinstance(obj, DistObjectRef):
        out.append(_B_DISTREF)
        out.append(_I64.pack(obj.team_uid))
        out.append(_I64.pack(obj.index))
    elif _is_dist_object(obj):
        # a dist_object serializes as its global id (never by value)
        _pack_into(out, obj.ref())
    elif type(obj) in _CUSTOM_BY_CLS:
        type_id, to_wire, _from_wire = _CUSTOM_BY_CLS[type(obj)]
        out.append(_B_CUSTOM)
        tid = type_id.encode()
        _pack_len(out, len(tid))
        out.append(tid)
        _pack_into(out, to_wire(obj))
    else:
        try:
            raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        out.append(_B_PICKLE)
        _pack_len(out, len(raw))
        out.append(raw)


class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        b = self.buf[self.pos : self.pos + n]
        if len(b) != n:
            raise SerializationError("truncated buffer")
        self.pos += n
        return b

    def take_view(self, n: int) -> memoryview:
        if self.pos + n > len(self.buf):
            raise SerializationError("truncated buffer")
        mv = memoryview(self.buf)[self.pos : self.pos + n]
        self.pos += n
        return mv

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]


def _unpack_from(r: _Reader) -> Any:
    tag = r.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.i64()
    if tag in (_T_BIGINT, _T_PICKLE):
        return pickle.loads(r.take(r.u32()))
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return r.take(r.u32()).decode("utf-8")
    if tag == _T_BYTES:
        return r.take(r.u32())
    if tag == _T_TUPLE:
        n = r.u32()
        return tuple(_unpack_from(r) for _ in range(n))
    if tag == _T_LIST:
        n = r.u32()
        return [_unpack_from(r) for _ in range(n)]
    if tag == _T_DICT:
        n = r.u32()
        return {_unpack_from(r): _unpack_from(r) for _ in range(n)}
    if tag == _T_VIEW:
        dt = np.dtype(r.take(r.u32()).decode())
        nraw = r.u32()
        # zero-copy: the view aliases the incoming buffer
        arr = np.frombuffer(r.take_view(nraw), dtype=dt)
        return View(arr)
    if tag == _T_NDARRAY:
        dt = np.dtype(r.take(r.u32()).decode())
        ndim = r.u32()
        shape = tuple(_U32.unpack(r.take(4))[0] for _ in range(ndim))
        nraw = r.u32()
        arr = np.frombuffer(r.take(nraw), dtype=dt).reshape(shape).copy()
        return arr
    if tag == _T_GPTR:
        rank = r.i64()
        offset = r.i64()
        dt = np.dtype(r.take(r.u32()).decode())
        count = r.i64()
        kind = "host" if r.take(1)[0] == 0 else "device"
        return GlobalPtr(rank, offset, dt, count, kind)
    if tag == _T_DISTREF:
        return DistObjectRef(r.i64(), r.i64())
    if tag == _T_CUSTOM:
        type_id = r.take(r.u32()).decode()
        from_wire = _CUSTOM_BY_ID.get(type_id)
        if from_wire is None:
            raise SerializationError(f"no deserializer registered for {type_id!r}")
        return from_wire(_unpack_from(r))
    raise SerializationError(f"unknown tag {tag}")


# -------------------------------------------------------- custom serializers
def register_serialization(cls, to_wire, from_wire, type_id: str = None) -> None:
    """Register wire serialization for a user class.

    The analogue of ``UPCXX_SERIALIZED_VALUES``/``SERIALIZED_FIELDS``:
    ``to_wire(obj)`` returns any already-serializable value and
    ``from_wire(value)`` reconstructs the instance at the target.
    """
    tid = type_id or f"{cls.__module__}.{cls.__qualname__}"
    _CUSTOM_BY_CLS[cls] = (tid, to_wire, from_wire)
    _CUSTOM_BY_ID[tid] = from_wire


def serializable_fields(*fields):
    """Class decorator: serialize by the named constructor fields.

    The analogue of ``UPCXX_SERIALIZED_FIELDS(...)``::

        @serializable_fields("key", "weight")
        class Edge:
            def __init__(self, key, weight): ...
    """

    def wrap(cls):
        register_serialization(
            cls,
            to_wire=lambda obj: tuple(getattr(obj, f) for f in fields),
            from_wire=lambda values: cls(*values),
        )
        return cls

    return wrap


def pack(obj: Any) -> bytes:
    """Serialize ``obj`` into wire bytes."""
    # Fast path: a top-level bytes/bytearray payload (the dominant AM/RPC
    # shape in the DHT workloads, and the dominant cross-shard envelope
    # body) skips the dispatch chain and list assembly.  The emitted frame
    # is byte-identical to the general path: tag + u32 length + raw.
    t = type(obj)
    if t is bytes:
        return _B_BYTES + _U32.pack(len(obj)) + obj
    if t is bytearray:
        return _B_BYTES + _U32.pack(len(obj)) + bytes(obj)
    if t is tuple:
        # Flat argument tuples of scalars/refs/pointers are the other hot
        # RPC shape (every request and reply envelope); emit their frames
        # inline — byte-identical to _pack_into — and bail to the general
        # recursive packer on the first element it doesn't cover.
        out = [_B_TUPLE, _U32.pack(len(obj))]
        append = out.append
        for x in obj:
            tx = type(x)
            if tx is int:
                if -(2**63) <= x < 2**63:
                    append(_B_INT)
                    append(_I64.pack(x))
                else:
                    break
            elif tx is bytes:
                append(_B_BYTES)
                append(_U32.pack(len(x)))
                append(x)
            elif tx is DistObjectRef:
                append(_B_DISTREF)
                append(_I64.pack(x.team_uid))
                append(_I64.pack(x.index))
            elif tx is GlobalPtr:
                append(_B_GPTR)
                append(_I64.pack(x.rank))
                append(_I64.pack(x.offset))
                dt = str(x.dtype).encode()
                append(_U32.pack(len(dt)))
                append(dt)
                append(_I64.pack(x.count))
                append(_B_KIND_HOST if x.kind == "host" else _B_KIND_DEVICE)
            elif tx is float:
                append(_B_FLOAT)
                append(_F64.pack(x))
            elif tx is str:
                raw = x.encode("utf-8")
                append(_B_STR)
                append(_U32.pack(len(raw)))
                append(raw)
            elif x is None:
                append(_B_NONE)
            elif x is True:
                append(_B_TRUE)
            elif x is False:
                append(_B_FALSE)
            elif tx is tuple:
                # One level of nested scalar tuples: causal stamps and
                # span sids ride inside every traced cross-shard envelope
                # meta, and they must not knock the whole meta off the
                # fast path.  Byte-identical to _pack_into.
                sub: Optional[List[bytes]] = [_B_TUPLE, _U32.pack(len(x))]
                sapp = sub.append
                for y in x:
                    ty = type(y)
                    if ty is int:
                        if -(2**63) <= y < 2**63:
                            sapp(_B_INT)
                            sapp(_I64.pack(y))
                        else:
                            sub = None
                            break
                    elif ty is float:
                        sapp(_B_FLOAT)
                        sapp(_F64.pack(y))
                    elif ty is bytes:
                        sapp(_B_BYTES)
                        sapp(_U32.pack(len(y)))
                        sapp(y)
                    elif ty is str:
                        raw = y.encode("utf-8")
                        sapp(_B_STR)
                        sapp(_U32.pack(len(raw)))
                        sapp(raw)
                    elif y is None:
                        sapp(_B_NONE)
                    elif y is True:
                        sapp(_B_TRUE)
                    elif y is False:
                        sapp(_B_FALSE)
                    else:
                        sub = None
                        break
                if sub is None:
                    break
                out.extend(sub)
            else:
                break
        else:
            return b"".join(out)
    out = []
    _pack_into(out, obj)
    return b"".join(out)


def unpack(buf: bytes) -> Any:
    """Deserialize one object from ``buf``."""
    # Fast paths mirroring pack(): a whole-buffer bytes frame needs no
    # reader state — one tag check, one length check, one slice — and a
    # flat tuple of scalars/refs/pointers is decoded inline without the
    # per-element reader dispatch.  Any anomaly (unexpected tag, short
    # buffer, trailing bytes) falls through to the general path, which
    # raises the proper SerializationError.
    n = len(buf)
    if n >= 5:
        tag = buf[0]
        if tag == _T_BYTES and 5 + _U32.unpack_from(buf, 1)[0] == n:
            return buf[5:]  # same slice the general path's take() would produce
        if tag == _T_TUPLE:
            count = _U32.unpack_from(buf, 1)[0]
            pos = 5
            vals: List[Any] = []
            append = vals.append
            ok = True
            try:
                for _ in range(count):
                    if pos >= n:
                        ok = False
                        break
                    t = buf[pos]
                    pos += 1
                    if t == _T_INT:
                        append(_I64.unpack_from(buf, pos)[0])
                        pos += 8
                    elif t == _T_BYTES:
                        ln = _U32.unpack_from(buf, pos)[0]
                        pos += 4
                        append(buf[pos : pos + ln])
                        pos += ln
                    elif t == _T_DISTREF:
                        append(
                            DistObjectRef(
                                _I64.unpack_from(buf, pos)[0],
                                _I64.unpack_from(buf, pos + 8)[0],
                            )
                        )
                        pos += 16
                    elif t == _T_GPTR:
                        rank = _I64.unpack_from(buf, pos)[0]
                        offset = _I64.unpack_from(buf, pos + 8)[0]
                        pos += 16
                        ln = _U32.unpack_from(buf, pos)[0]
                        pos += 4
                        dt = np.dtype(buf[pos : pos + ln].decode())
                        pos += ln
                        cnt = _I64.unpack_from(buf, pos)[0]
                        pos += 8
                        kind = "host" if buf[pos] == 0 else "device"
                        pos += 1
                        append(GlobalPtr(rank, offset, dt, cnt, kind))
                    elif t == _T_FLOAT:
                        append(_F64.unpack_from(buf, pos)[0])
                        pos += 8
                    elif t == _T_STR:
                        ln = _U32.unpack_from(buf, pos)[0]
                        pos += 4
                        append(buf[pos : pos + ln].decode("utf-8"))
                        pos += ln
                    elif t == _T_NONE:
                        append(None)
                    elif t == _T_TRUE:
                        append(True)
                    elif t == _T_FALSE:
                        append(False)
                    elif t == _T_TUPLE:
                        # one nested level of scalars, mirroring pack()
                        sub_n = _U32.unpack_from(buf, pos)[0]
                        pos += 4
                        sub: List[Any] = []
                        for _ in range(sub_n):
                            if pos >= n:
                                ok = False
                                break
                            st = buf[pos]
                            pos += 1
                            if st == _T_INT:
                                sub.append(_I64.unpack_from(buf, pos)[0])
                                pos += 8
                            elif st == _T_FLOAT:
                                sub.append(_F64.unpack_from(buf, pos)[0])
                                pos += 8
                            elif st == _T_BYTES:
                                ln = _U32.unpack_from(buf, pos)[0]
                                pos += 4
                                sub.append(buf[pos : pos + ln])
                                pos += ln
                            elif st == _T_STR:
                                ln = _U32.unpack_from(buf, pos)[0]
                                pos += 4
                                sub.append(buf[pos : pos + ln].decode("utf-8"))
                                pos += ln
                            elif st == _T_NONE:
                                sub.append(None)
                            elif st == _T_TRUE:
                                sub.append(True)
                            elif st == _T_FALSE:
                                sub.append(False)
                            else:
                                ok = False
                                break
                        if not ok:
                            break
                        append(tuple(sub))
                    else:
                        ok = False
                        break
            except struct.error:
                ok = False
            if ok and pos == n:
                return tuple(vals)
    r = _Reader(buf)
    obj = _unpack_from(r)
    if r.pos != len(buf):
        raise SerializationError(f"trailing bytes: {len(buf) - r.pos}")
    return obj


def measure(obj: Any) -> int:
    """Wire size of ``obj`` in bytes (cheap: packs once)."""
    return len(pack(obj))


def copy_free_bytes(obj: Any) -> int:
    """Bytes of ``obj`` that move zero-copy (View payloads).

    Used to discount target-side deserialization CPU charges.
    """
    if isinstance(obj, View):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(copy_free_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(copy_free_bytes(v) for v in obj.values())
    return 0


def split_roundtrip(obj: Any) -> Tuple[bytes, Any]:
    """Pack then unpack (testing helper): returns (wire bytes, clone)."""
    raw = pack(obj)
    return raw, unpack(raw)
