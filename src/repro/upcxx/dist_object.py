"""Distributed objects (``upcxx::dist_object<T>``).

A dist_object is a *collective* object: every rank of a team constructs its
own local representative, and the set of representatives shares one global
id — ``(team uid, per-team creation index)`` — assigned by construction
order (which UPC++ requires to be identical on all members; we inherit that
contract).  No rank stores pointers to remote representatives, keeping the
structure scalable (paper §II: distributed objects replace non-scalable
symmetric heaps).

Key behaviors reproduced:

- passing a dist_object as an RPC argument ships only its id; the RPC body
  receives the **target's** local representative;
- if an RPC arrives before the target has constructed its representative,
  the RPC is *deferred* until construction (UPC++ guarantee);
- ``fetch(team_rank)`` retrieves a remote representative's value via RPC.
"""

from __future__ import annotations

from typing import Optional

from repro.upcxx.future import Future
from repro.upcxx.runtime import current_runtime
from repro.upcxx.serialization import DistObjectRef
from repro.upcxx.teams import Team


class DistObject:
    """One rank's representative of a team-distributed object."""

    def __init__(self, value, team: Optional[Team] = None):
        rt = current_runtime()
        self.rt = rt
        self.team = team if team is not None else rt.team_world()
        self._value = value
        index = rt.dist_creation_seq.get(self.team.uid, 0)
        rt.dist_creation_seq[self.team.uid] = index + 1
        self.index = index
        self.key = (self.team.uid, index)
        rt.charge_sw(rt.costs.dist_object_lookup)
        if self.key in rt.dist_objects:
            raise RuntimeError(f"dist_object id {self.key} registered twice on rank {rt.rank}")
        rt.dist_objects[self.key] = self
        # release RPCs that arrived before construction (UPC++ defers them)
        for item in rt.dist_waiters.pop(self.key, []):
            rt.enqueue_complete(item)

    # ---------------------------------------------------------------- value
    @property
    def value(self):
        """The local representative's value (``operator*``)."""
        return self._value

    @value.setter
    def value(self, v):
        self._value = v

    def ref(self) -> DistObjectRef:
        """The wire token for RPC argument translation."""
        return DistObjectRef(self.team.uid, self.index)

    def fetch(self, team_rank: int) -> Future:
        """Future of the representative value on team rank ``team_rank``.

        Explicit communication, per the paper's no-implicit-communication
        principle (``dist_object::fetch``).
        """
        from repro.upcxx.rpc import rpc

        target_world = self.team[team_rank]
        return rpc(target_world, _fetch_value, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DistObject team={self.team.uid} idx={self.index}>"


def _fetch_value(dobj: DistObject):
    """RPC body for fetch: runs on the target with its representative."""
    return dobj.value
