"""Destination-batched update aggregation (the HipMer motif as a subsystem).

The paper's biggest application-level win is *update aggregation*:
instead of paying one network round trip per DHT update, updates are
buffered per destination rank and shipped as one RPC per full buffer,
converting a latency-bound loop into an injection-rate-bound stream
(Fig. 9's 5.6 -> 25.5 M updates/s).  Until now that motif lived as a
one-off app (``repro.apps.dht.aggregating``); :class:`AggStore` promotes
it to a reusable runtime layer, in the style of the Conveyors/HipMer
aggregators:

- **Destination batching** — ``update(key, value)`` buffers locally by
  owner rank (``hash_target`` by default); a full buffer flushes as one
  ``rpc_ff`` carrying parallel key/value arrays.
- **Pluggable combine** — the target merges each update into its shard
  with a per-store combine function (``"+"``, ``"replace"``, ``"min"``,
  ``"max"`` or any callable).  The combine is registered locally at
  construction, so it never crosses the wire.
- **Adaptive flush** — buffers also flush on *simulated-time* dwell
  (``max_dwell``): at low offered load a partial batch does not strand
  in its buffer past the deadline.  ``poll()`` is the pacing hook apps
  call from their request loop.
- **Credit-based flow control** — with ``credits=k`` at most ``k``
  batches per peer are in flight; the target acks each applied batch and
  the ack returns the credit.  An exhausted peer stalls the sender in
  simulated time (recorded as a ``credit_wait`` span — the report's
  ``backpressure`` bucket — and charged to the conduit's endpoint
  accounting), which is exactly the NIC-friendly backpressure the
  "MPI Progress For All" line of work argues for.
- **Counting quiescence** — :meth:`quiesce` replaces the repeated
  all-reduce polling loop of the old ``AggregatingCounter.sync`` with
  counting-based termination detection: one all-reduce of the per-
  destination *sent* counts, then each rank waits locally until its
  *applied* count reaches what the world owes it.  One collective per
  round instead of an unbounded polling loop.
- **Hot-key read cache** — with ``cache_capacity > 0``, :meth:`read`
  serves repeated keys from a local LRU.  A read-through registers the
  reader as a *watcher* at the owner; when a later batch updates a
  watched key the owner queues an invalidation, piggybacked onto the
  aggregated flush stream (data batches headed to the watcher carry it
  for free; otherwise it flushes with the store's own batching rules).
  Coherence rides the conduit's per-channel FIFO delivery: the fill
  reply is injected before any subsequent invalidation for the same
  key, so a stale value can never outlive the invalidation that
  supersedes it.

Everything is deterministic: buffers are plain per-destination lists
filled in program order, flush order is ascending destination rank, and
all pacing is simulated time — so results, traces, and span
fingerprints stay bit-identical across the coroutine, thread, and
sharded backends (pinned by ``tests/test_chaos_determinism.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, List, Optional, Union

import numpy as np

from repro.upcxx.collectives import barrier, reduce_all
from repro.upcxx.dist_object import DistObject
from repro.upcxx.future import Future, make_future
from repro.upcxx.rpc import rpc, rpc_ff
from repro.upcxx.runtime import current_runtime
from repro.upcxx.view import make_view


# ------------------------------------------------------------------ combines
def combine_add(old, new):
    """Accumulate (the HipMer k-mer counting combine)."""
    return old + new


def combine_replace(old, new):
    """Last-writer-wins (KV put semantics)."""
    return new


def combine_min(old, new):
    return new if new < old else old


def combine_max(old, new):
    return new if new > old else old


#: named combines — resolved locally on every rank at construction, so a
#: combine function never needs to be serialized
COMBINES = {
    "+": combine_add,
    "replace": combine_replace,
    "min": combine_min,
    "max": combine_max,
}

_MISS = object()


def default_route(key, n_ranks: int) -> int:
    """Deterministic key -> owner mapping (splitmix64 finalizer).

    Non-integer keys go through blake2b rather than ``hash()``: builtin
    string hashing is salted per process, which would scatter a key's
    owner across runs and break cross-backend bit-identity.
    """
    if not isinstance(key, int):
        key = int.from_bytes(
            hashlib.blake2b(repr(key).encode(), digest_size=8).digest(), "big"
        )
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z = z ^ (z >> 31)
    return z % n_ranks


# ------------------------------------------------------------- rpc bodies
def _as_list(payload):
    """Batch payload -> plain list (Views arrive as zero-copy arrays)."""
    if hasattr(payload, "to_numpy"):
        return payload.to_numpy().tolist()
    return list(payload)


def _apply_invals(rt, state, store: "AggStore", keys) -> None:
    """Apply a list of cache-invalidation keys at a watcher rank."""
    klist = _as_list(keys)
    # one lookup-ish charge per eviction probe
    rt.charge_sw(rt.cpu.map_lookup * len(klist))
    state["applied_invals"] += len(klist)
    cache = store._cache
    if cache is not None:
        for k in klist:
            if cache.pop(k, _MISS) is not _MISS:
                store.cache_invalidations += 1


def _agg_apply(dobj: DistObject, src: int, seq: int, keys, vals, invals) -> None:
    """RPC body: merge one aggregated batch into the local shard.

    ``src`` is the sender's team rank when it wants an ack (credits or
    latency tracking), else ``-1``.  ``invals`` piggybacks invalidation
    keys the sender's shard owes *this* rank as a cache client.
    """
    rt = current_runtime()
    state = dobj.value
    store: AggStore = state["store"]
    klist = _as_list(keys)
    vlist = _as_list(vals)
    rt.charge_sw(rt.cpu.map_insert * len(klist))
    combine = state["combine"]
    data = state["data"]
    watchers = state["watchers"]
    for k, v in zip(klist, vlist):
        old = data.get(k, _MISS)
        data[k] = v if old is _MISS else combine(old, v)
        if watchers:
            ws = watchers.get(k)
            if ws:
                for w in ws:
                    if w != src:
                        store._queue_inval(w, k)
    state["applied_updates"] += len(klist)
    state["applied_batches"] += 1
    if invals:
        _apply_invals(rt, state, store, invals)
    if src >= 0:
        rpc_ff(store.team[src], _agg_ack, dobj, store._my_trank, seq)


def _agg_ack(dobj: DistObject, from_trank: int, seq: int) -> None:
    """RPC body at the *origin*: one batch was applied; return its credit."""
    dobj.value["store"]._on_ack(from_trank, seq)


def _agg_invalidate(dobj: DistObject, keys) -> None:
    """RPC body: standalone invalidation batch at a watcher rank."""
    rt = current_runtime()
    state = dobj.value
    _apply_invals(rt, state, state["store"], keys)


def _agg_read(dobj: DistObject, key, reader: int, default):
    """RPC body at the owner: read-through; optionally register a watcher."""
    rt = current_runtime()
    rt.charge_sw(rt.cpu.map_lookup)
    state = dobj.value
    if reader >= 0:
        ws = state["watchers"].setdefault(key, [])
        if reader not in ws:
            ws.append(reader)
    return state["data"].get(key, default)


# ---------------------------------------------------------------- the store
class AggStore:
    """A destination-batched distributed map (collective constructor).

    Parameters
    ----------
    combine:
        ``"+"``, ``"replace"``, ``"min"``, ``"max"`` or a callable
        ``(old, new) -> merged`` applied at the owner.  Must be uniform
        across ranks.
    batch_size:
        updates buffered per destination before a flush (>= 1).
    team:
        the participating team (default: world).
    max_dwell:
        optional simulated-seconds deadline: a partial batch older than
        this flushes at the next :meth:`poll` / :meth:`update`.
    credits:
        optional per-peer bound on in-flight (unacked) batches; the
        sender stalls in simulated time when a peer's credits run out.
    cache_capacity:
        >0 enables the hot-key read cache (LRU of that many keys) and
        watcher-based invalidation.  Must be uniform across ranks (it
        decides whether :meth:`quiesce` runs its invalidation round).
    route:
        key -> team-rank mapping (default :func:`default_route`).
    on_batch_flushed / on_batch_acked:
        measurement hooks: ``(dest_trank, seq, n_updates)`` at flush
        time and ``(dest_trank, seq, t_now)`` when the ack returns
        (acks are enabled by ``credits`` or by ``on_batch_acked``).
    """

    def __init__(
        self,
        combine: Union[str, Callable] = "+",
        batch_size: int = 64,
        *,
        team=None,
        max_dwell: Optional[float] = None,
        credits: Optional[int] = None,
        cache_capacity: int = 0,
        route: Callable[[int, int], int] = default_route,
        on_batch_flushed: Optional[Callable[[int, int, int], None]] = None,
        on_batch_acked: Optional[Callable[[int, int, float], None]] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if credits is not None and credits < 1:
            raise ValueError(f"credits must be >= 1, got {credits}")
        rt = current_runtime()
        self._rt = rt
        self.team = team if team is not None else rt.team_world()
        self.batch_size = batch_size
        self.max_dwell = max_dwell
        self.cache_capacity = cache_capacity
        self._route = route
        self._on_batch_flushed = on_batch_flushed
        self._on_batch_acked = on_batch_acked
        combine_fn = COMBINES[combine] if isinstance(combine, str) else combine
        n = self.team.rank_n()
        self._n = n
        self._my_trank = self.team.rank_me()
        #: local shard + counters; the ``store`` back-pointer lets RPC
        #: bodies reach the target rank's AggStore instance
        self.state = {
            "data": {},
            "combine": combine_fn,
            "watchers": {},
            "applied_updates": 0,
            "applied_batches": 0,
            "applied_invals": 0,
            "store": self,
        }
        self._dobj = DistObject(self.state, team=self.team)
        # -- per-destination buffers (team-rank indexed) --------------------
        self._buf_keys: List[list] = [[] for _ in range(n)]
        self._buf_vals: List[list] = [[] for _ in range(n)]
        self._t_first: List[Optional[float]] = [None] * n
        self._inval_buf: List[list] = [[] for _ in range(n)]
        self._t_first_inval: List[Optional[float]] = [None] * n
        # -- quiescence accounting ------------------------------------------
        self._sent_updates = np.zeros(n, dtype=np.int64)
        self._sent_invals = np.zeros(n, dtype=np.int64)
        self.batches_sent = 0
        self.updates_sent = 0
        self.acks_received = 0
        self._batch_seq = 0
        # -- flow control ---------------------------------------------------
        self._credits: Optional[List[int]] = None if credits is None else [credits] * n
        self._credits_init = credits
        self._wants_ack = credits is not None or on_batch_acked is not None
        self.credit_stalls = 0
        self.credit_stall_s = 0.0
        # -- dead-peer exclusion (repro.upcxx.replication) ------------------
        #: peers detected dead: no sends, no credit waits, acks forgiven
        self._dead_peers: set = set()
        #: unacked in-flight batches per destination (forgiveness basis)
        self._inflight_to: List[int] = [0] * n
        #: batches to a now-dead peer whose ack will never arrive; counts
        #: toward the quiescence ack drain in place of the lost acks
        self.acks_forgiven = 0
        #: late acks from a dead peer, dropped (the batch was forgiven)
        self.acks_ignored = 0
        #: buffered updates dropped because their destination died
        self.updates_dropped = 0
        #: cache entries purged wholesale at a death (coherence reset)
        self.cache_purges = 0
        #: team the quiescence collectives run on; swapped to the alive
        #: subteam by exclude_dead so a dead rank cannot hang the drain
        self.quiesce_team = self.team
        # -- hot-key cache --------------------------------------------------
        self._cache: Optional[OrderedDict] = OrderedDict() if cache_capacity > 0 else None
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0

    # ----------------------------------------------------------- update side
    def dest_of(self, key) -> int:
        """Team rank owning ``key``."""
        return self._route(key, self._n)

    def update(self, key, value) -> None:
        """Buffer one update; flushes the destination's buffer when full."""
        self.update_to(self.dest_of(key), key, value)

    def update_to(self, t: int, key, value) -> None:
        """Buffer one update for an explicit destination (the replication
        layer's fan-out entry point; :meth:`update` is the routed case).
        Updates addressed to a detected-dead peer are dropped — the caller
        owns a surviving copy or accounts the loss."""
        if t in self._dead_peers:
            self.updates_dropped += 1
            return
        bk = self._buf_keys[t]
        bk.append(key)
        self._buf_vals[t].append(value)
        self._sent_updates[t] += 1
        if self._cache is not None:
            # local write-invalidate: our own cached copy is stale now
            self._cache.pop(key, None)
        if len(bk) >= self.batch_size:
            self._flush_dest(t)
        elif self.max_dwell is not None and self._t_first[t] is None:
            self._t_first[t] = self._rt.now()

    def poll(self) -> None:
        """Flush any buffer whose oldest entry exceeded ``max_dwell``.

        The pacing hook: request loops call this between operations so a
        partial batch cannot strand past its dwell deadline at low load.
        """
        if self.max_dwell is None:
            return
        deadline = self._rt.now() - self.max_dwell
        for t in range(self._n):
            tf = self._t_first[t]
            if tf is not None and tf <= deadline:
                self._flush_dest(t)
            ti = self._t_first_inval[t]
            if ti is not None and ti <= deadline and self._t_first[t] is None:
                self._flush_invals_dest(t)

    def flush(self) -> None:
        """Push out every partially-filled data buffer (invals piggyback)."""
        for t in range(self._n):
            self._flush_dest(t)

    def _drop_dead_buffer(self, t: int) -> None:
        """Discard the (undeliverable) buffer for a detected-dead peer."""
        bk = self._buf_keys[t]
        if bk:
            self._sent_updates[t] -= len(bk)
            self.updates_dropped += len(bk)
            self._buf_keys[t] = []
            self._buf_vals[t] = []
        self._t_first[t] = None

    def _flush_dest(self, t: int) -> None:
        bk = self._buf_keys[t]
        if not bk:
            return
        if t in self._dead_peers:
            self._drop_dead_buffer(t)
            return
        rt = self._rt
        credits = self._credits
        if credits is not None and credits[t] == 0:
            # backpressure: stall in simulated time until the peer acks
            self.credit_stalls += 1
            t0 = rt.now()
            rt.wait_quiet(
                lambda: credits[t] > 0 or t in self._dead_peers, "agg::credit"
            )
            dt = rt.now() - t0
            if dt > 0.0:
                self.credit_stall_s += dt
                rt.conduit.endpoints[rt.rank].agg_credit_stall_s += dt
                sp = rt.spans
                if sp is not None:
                    sp.record(t0, rt.now(), rt.rank, rt.next_span_sid(),
                              "credit_wait", "agg", len(bk))
            if t in self._dead_peers:
                # the peer died while we stalled on its credits: the
                # exclusion restored them, but the buffer is undeliverable
                self._drop_dead_buffer(t)
                return
            bk = self._buf_keys[t]
        # snapshot *after* any stall: updates buffered meanwhile ride along
        bv = self._buf_vals[t]
        self._buf_keys[t] = []
        self._buf_vals[t] = []
        self._t_first[t] = None
        inv = self._inval_buf[t]
        if inv:
            self._inval_buf[t] = []
            self._t_first_inval[t] = None
        keys = self._pack(bk)
        vals = self._pack(bv)
        invals = self._pack(inv) if inv else ()
        if credits is not None:
            credits[t] -= 1
        self._batch_seq += 1
        seq = self._batch_seq
        self.batches_sent += 1
        self.updates_sent += len(bk)
        if self._wants_ack:
            self._inflight_to[t] += 1
        ep = rt.conduit.endpoints[rt.rank]
        ep.agg_batches += 1
        ep.agg_updates += len(bk)
        src = self._my_trank if self._wants_ack else -1
        cb = self._on_batch_flushed
        if cb is not None:
            cb(t, seq, len(bk))
        rpc_ff(self.team[t], _agg_apply, self._dobj, src, seq, keys, vals, invals)

    @staticmethod
    def _pack(items: list):
        """int-only batches ship as zero-copy int64 views; else verbatim."""
        if items and all(type(x) is int for x in items):
            arr = np.asarray(items, dtype=np.int64)
            return make_view(arr)
        return tuple(items)

    def _on_ack(self, dest_trank: int, seq: int) -> None:
        if dest_trank in self._dead_peers:
            # a straggler ack from a peer we already excluded: its batch
            # was forgiven and its credit restored — drop it entirely so
            # the quiescence arithmetic stays exact
            self.acks_ignored += 1
            return
        self.acks_received += 1
        if self._inflight_to[dest_trank] > 0:
            self._inflight_to[dest_trank] -= 1
        if self._credits is not None:
            self._credits[dest_trank] += 1
        cb = self._on_batch_acked
        if cb is not None:
            cb(dest_trank, seq, self._rt.now())

    # ------------------------------------------------------- invalidations
    def _queue_inval(self, watcher_trank: int, key) -> None:
        """Owner side: queue one invalidation for a watcher (piggybacked)."""
        if watcher_trank in self._dead_peers:
            # a pre-crash read RPC can still register a now-dead watcher;
            # never owe coherence traffic to a peer that cannot ack it
            return
        buf = self._inval_buf[watcher_trank]
        buf.append(key)
        self._sent_invals[watcher_trank] += 1
        if len(buf) >= self.batch_size:
            self._flush_invals_dest(watcher_trank)
        elif self.max_dwell is not None and self._t_first_inval[watcher_trank] is None:
            self._t_first_inval[watcher_trank] = self._rt.now()

    def _flush_invals_dest(self, t: int) -> None:
        buf = self._inval_buf[t]
        if not buf:
            return
        if t in self._dead_peers:
            self._sent_invals[t] -= len(buf)
            self._inval_buf[t] = []
            self._t_first_inval[t] = None
            return
        self._inval_buf[t] = []
        self._t_first_inval[t] = None
        # no credit, no ack: invalidations are small control traffic and
        # must be sendable from inside an RPC body without blocking
        rpc_ff(self.team[t], _agg_invalidate, self._dobj, self._pack(buf))

    def flush_invals(self) -> None:
        for t in range(self._n):
            self._flush_invals_dest(t)

    # -------------------------------------------------------------- reads
    def read(self, key, default=None) -> Future:
        """Asynchronous read of ``key`` (cache, then owner read-through)."""
        return self.read_from(self.dest_of(key), key, default)

    def read_from(self, t: int, key, default=None) -> Future:
        """Read-through against an explicit holder rank (the replication
        layer's failover entry point; :meth:`read` is the routed case)."""
        rt = self._rt
        cache = self._cache
        if cache is not None:
            v = cache.get(key, _MISS)
            if v is not _MISS:
                self.cache_hits += 1
                # endpoint-level mirror: telemetry rollups snapshot the
                # conduit endpoint, which outlives any one AggStore
                rt._ep.agg_cache_hits += 1
                t0 = rt.now()
                rt.charge_sw(rt.cpu.map_lookup)
                sp = rt.spans
                if sp is not None:
                    sp.record(t0, rt.now(), rt.rank, rt.next_span_sid(),
                              "cache_hit", "agg", 0)
                cache.move_to_end(key)
                return make_future(v)
            self.cache_misses += 1
        reader = self._my_trank if cache is not None else -1
        fut = rpc(self.team[t], _agg_read, self._dobj, key, reader, default)
        if cache is not None:
            fut = fut.then(lambda v, k=key: self._fill_cache(k, v))
        return fut

    def _fill_cache(self, key, value):
        cache = self._cache
        cache[key] = value
        cache.move_to_end(key)
        if len(cache) > self.cache_capacity:
            cache.popitem(last=False)
        return value

    # ----------------------------------------------------- death handling
    def exclude_dead(self, trank: int, alive_team) -> None:
        """Cut a detected-dead peer out of every delivery obligation.

        Idempotent.  After this call the store can reach quiescence with
        the peer gone: its in-flight batches are *forgiven* (they count
        toward the ack drain in place of the acks that will never come),
        its credits are restored so no sender stalls on it forever, its
        buffered traffic is dropped, and the quiescence collectives are
        re-pointed at ``alive_team`` so a dead rank cannot hang them.
        The whole read cache is purged: the keys the dead rank owned are
        about to fail over to new primaries that hold no watcher
        registrations for us, so coherence restarts cold.
        """
        if trank in self._dead_peers:
            return
        self._dead_peers.add(trank)
        # forgive unackable in-flight batches and restore their credits
        forgiven = self._inflight_to[trank]
        if forgiven:
            self.acks_forgiven += forgiven
            self._inflight_to[trank] = 0
        if self._credits is not None:
            self._credits[trank] = self._credits_init
        # drop buffered traffic addressed to the dead peer
        self._drop_dead_buffer(trank)
        inv = self._inval_buf[trank]
        if inv:
            self._sent_invals[trank] -= len(inv)
            self._inval_buf[trank] = []
        self._t_first_inval[trank] = None
        # stop owing the dead peer coherence traffic
        for ws in self.state["watchers"].values():
            if trank in ws:
                ws.remove(trank)
        # purge the local cache wholesale: failed-over owners hold no
        # watcher registration for us, so cached copies of their keys
        # could go silently stale — restart cold and re-register
        if self._cache is not None and self._cache:
            self.cache_purges += len(self._cache)
            self._cache.clear()
        self.quiesce_team = alive_team

    # --------------------------------------------------------- quiescence
    def quiesce(self) -> None:
        """Global quiescence (collective): counting-based termination.

        One all-reduce of per-destination *sent* counts; each rank then
        waits locally until its *applied* count reaches the global
        expectation, and a barrier seals the round.  With caching on, a
        second round settles the invalidations those applies generated,
        and a final local wait drains outstanding acks so credits and
        latency callbacks are all home before returning.
        """
        rt = self._rt
        me = self._my_trank
        team = self.quiesce_team
        self.flush()
        expected = reduce_all(
            self._sent_updates.copy(), lambda a, b: a + b, team=team
        ).wait()
        owed = int(expected[me])
        # ``>=``: a since-dead sender's pre-crash deliveries are not in
        # the alive-team expectation, so applied may legitimately overshoot
        rt.wait_quiet(lambda: self.state["applied_updates"] >= owed, "agg::quiesce")
        barrier(team=team)
        if self.cache_capacity > 0:
            # all data batches are applied everywhere, so every
            # invalidation that will ever be generated is now queued
            self.flush_invals()
            expected_inv = reduce_all(
                self._sent_invals.copy(), lambda a, b: a + b, team=team
            ).wait()
            owed_inv = int(expected_inv[me])
            rt.wait_quiet(
                lambda: self.state["applied_invals"] >= owed_inv, "agg::quiesce-inv"
            )
            barrier(team=team)
        if self._wants_ack:
            rt.wait_quiet(
                lambda: self.acks_received + self.acks_forgiven >= self.batches_sent,
                "agg::quiesce-ack",
            )
            barrier(team=team)

    # ------------------------------------------------------------- queries
    def local_items(self) -> dict:
        return dict(self.state["data"])

    def local_size(self) -> int:
        return len(self.state["data"])

    def stats(self) -> dict:
        """Deterministic per-rank counters (JSON-ready)."""
        return {
            "batches_sent": self.batches_sent,
            "updates_sent": self.updates_sent,
            "invals_sent": int(self._sent_invals.sum()),
            "acks_received": self.acks_received,
            "applied_updates": self.state["applied_updates"],
            "applied_batches": self.state["applied_batches"],
            "applied_invals": self.state["applied_invals"],
            "credit_stalls": self.credit_stalls,
            "credit_stall_s": self.credit_stall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "acks_forgiven": self.acks_forgiven,
            "acks_ignored": self.acks_ignored,
            "updates_dropped": self.updates_dropped,
            "cache_purges": self.cache_purges,
        }
