"""Personas and local procedure calls (LPC).

In UPC++ a *persona* represents a progress identity; every rank starts
with its **master persona**, and LPCs enqueue work onto a persona's queue
to be executed during that persona's user-level progress.  Our simulated
ranks are single-threaded, so each rank has exactly its master persona —
but the LPC mechanism itself is faithfully useful: it defers work into the
progress engine (the §III compQ), which is how UPC++ code schedules
"run this later, during progress, with a future for the result".
"""

from __future__ import annotations

from typing import Callable

from repro.upcxx.errors import UpcxxError
from repro.upcxx.future import Future, Promise
from repro.upcxx.runtime import CompQItem, Runtime, current_runtime


class Persona:
    """A progress identity (one master persona per simulated rank)."""

    __slots__ = ("rt", "name")

    def __init__(self, rt: Runtime, name: str = "master"):
        self.rt = rt
        self.name = name

    @property
    def rank(self) -> int:
        return self.rt.rank

    def lpc(self, fn: Callable, *args) -> Future:
        """Enqueue ``fn(*args)`` onto this persona's progress queue.

        Returns a future of the result, fulfilled when the function runs
        during user-level progress (a following ``wait()``/``progress()``).
        """
        rt = self.rt
        if rt is not current_runtime():
            raise UpcxxError("LPC to another rank's persona: use rpc instead")
        promise = Promise(rt)

        def run():
            result = fn(*args)
            if isinstance(result, Future):
                result._on_ready(lambda: promise.fulfill_result(*result._values))
            elif result is None:
                promise.fulfill_result()
            else:
                promise.fulfill_result(result)

        rt.enqueue_complete(CompQItem(rt.cpu.t(rt.costs.then_dispatch), run, "lpc"))
        return promise.get_future()

    def lpc_ff(self, fn: Callable, *args) -> None:
        """Fire-and-forget LPC (no future)."""
        rt = self.rt
        if rt is not current_runtime():
            raise UpcxxError("LPC to another rank's persona: use rpc_ff instead")
        rt.enqueue_complete(
            CompQItem(rt.cpu.t(rt.costs.then_dispatch), lambda: fn(*args), "lpc_ff")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Persona {self.name} of rank {self.rank}>"


def master_persona() -> Persona:
    """The calling rank's master persona (``upcxx::master_persona``)."""
    rt = current_runtime()
    persona = rt.__dict__.get("_master_persona")
    if persona is None:
        persona = Persona(rt, "master")
        rt.__dict__["_master_persona"] = persona
    return persona


def current_persona() -> Persona:
    """The persona executing right now (single-threaded ranks: the master)."""
    return master_persona()


def lpc(fn: Callable, *args) -> Future:
    """LPC onto the calling rank's master persona."""
    return master_persona().lpc(fn, *args)


def lpc_ff(fn: Callable, *args) -> None:
    """Fire-and-forget LPC onto the calling rank's master persona."""
    master_persona().lpc_ff(fn, *args)


def progress_required() -> bool:
    """Whether this rank has runtime work pending (``upcxx::progress_required``).

    True when compQ holds unexecuted items, operations await injection, or
    conduit completions await promotion.
    """
    rt = current_runtime()
    if rt.compQ or rt.defQ or rt._gasnet_done:
        return True
    return rt.conduit.inbox(rt.rank).has_due(rt.sched.now())


def discharge() -> None:
    """Progress until no runtime work remains (``upcxx::discharge``)."""
    rt = current_runtime()
    while progress_required():
        rt.progress()
