"""Remote procedure calls: ``rpc`` and ``rpc_ff``.

An RPC ships a function and its serialized arguments to a target rank.
Progression matches the paper's Fig. 2: the injection is staged on the
initiator's defQ, handed to GASNet as an AM (actQ), and lands in the
*target's* compQ where it waits for the target's **user-level progress**
to execute.  A returning RPC sends its value back the same way, fulfilling
the initiator's future during the initiator's user progress.

Argument handling:

- :class:`~repro.upcxx.view.View` arguments serialize zero-copy on the
  target (a window into the network buffer);
- :class:`~repro.upcxx.dist_object.DistObject` arguments are translated to
  global ids on the wire and to the *target's local representative* on
  arrival; if the target has not constructed its representative yet, the
  RPC is deferred until it does (UPC++ semantics);
- an RPC body returning a :class:`Future` delays the reply until that
  future is ready, and the initiator's future yields the inner value.

In this in-process simulation, functions travel by reference: RPC bodies
must not rely on mutating captured initiator state (on a real machine they
could not), and the test suite's apps follow that rule.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.upcxx import serialization
from repro.upcxx.errors import UpcxxError
from repro.upcxx.future import Future, Promise
from repro.upcxx.runtime import CompQItem, Runtime, current_runtime, register_am

#: wire overhead of an RPC envelope beyond the packed arguments
_ENVELOPE_BYTES = 48


class _FnRef:
    """Placeholder for a callable argument shipped by reference.

    Real UPC++ ships function pointers; in this in-process simulation,
    callables found in RPC arguments travel out-of-band (indexed into the
    envelope's function table) rather than through the byte serializer.
    """

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __reduce__(self):  # picklable so it can ride the byte stream
        return (_FnRef, (self.index,))


class _UnresolvedDistObject(Exception):
    """Raised during argument resolution when a dist_object id is unknown."""

    def __init__(self, key):
        super().__init__(f"dist_object {key} not yet constructed")
        self.key = key


#: late-bound DistObject class (import cycle: dist_object imports rpc)
_DistObject = None

#: argument types that never need translation or resolution: not a
#: DistObject/DistObjectRef/_FnRef, not callable, and not a container that
#: could hide one.  Arg tuples made only of these skip the recursive walk
#: on both sides of the wire (the hot RPC shapes are flat scalar tuples).
_PASSTHROUGH_ARG_TYPES = frozenset(
    {int, float, str, bytes, bytearray, memoryview, bool, type(None)}
)


def _translate_args_out(rt: Runtime, args: tuple) -> tuple:
    """Initiator side: replace DistObject arguments by wire references.

    Recurses through containers so dist_objects nested in lists/dicts
    (e.g. forwarded argument packs) are translated too.
    """
    passthrough = _PASSTHROUGH_ARG_TYPES
    for a in args:
        if type(a) not in passthrough:
            break
    else:
        return args, []
    global _DistObject
    if _DistObject is None:
        from repro.upcxx.dist_object import DistObject as _DistObject  # noqa: F811

    DistObject = _DistObject
    fns: list = []

    def walk(a):
        if isinstance(a, DistObject):
            return a.ref()
        if callable(a) and not isinstance(a, type):
            fns.append(a)
            return _FnRef(len(fns) - 1)
        if isinstance(a, tuple):
            return tuple(walk(x) for x in a)
        if isinstance(a, list):
            return [walk(x) for x in a]
        if isinstance(a, dict):
            return {k: walk(v) for k, v in a.items()}
        return a

    return tuple(walk(a) for a in args), fns


def _resolve_args_in(rt: Runtime, args: tuple, fns: list) -> tuple:
    """Target side: replace DistObjectRef tokens by local representatives
    and _FnRef placeholders by the shipped callables.

    Raises :class:`_UnresolvedDistObject` (deferring the RPC) if any named
    dist_object has not been constructed here yet.
    """
    passthrough = _PASSTHROUGH_ARG_TYPES
    for a in args:
        if type(a) not in passthrough:
            break
    else:
        return args

    def walk(a):
        if isinstance(a, _FnRef):
            return fns[a.index]
        if isinstance(a, serialization.DistObjectRef):
            key = (a.team_uid, a.index)
            obj = rt.dist_objects.get(key)
            if obj is None:
                raise _UnresolvedDistObject(key)
            return obj
        if isinstance(a, tuple):
            return tuple(walk(x) for x in a)
        if isinstance(a, list):
            return [walk(x) for x in a]
        if isinstance(a, dict):
            return {k: walk(v) for k, v in a.items()}
        return a

    return tuple(walk(a) for a in args)


def _inject_am(
    rt: Runtime,
    target: int,
    tag: str,
    payload: dict,
    nbytes: int,
    sid: Optional[tuple] = None,
    t_api: float = 0.0,
    parent: Optional[tuple] = None,
) -> None:
    """Stage an AM on defQ and run internal progress (Fig. 2 left side).

    ``sid``/``t_api`` open the op's ``inject_sw`` span (minted by the
    caller *before* its injection charges); ``parent`` links a reply to
    the request that spawned it.
    """

    def injector():
        opid = rt.next_op_id()
        rt.actQ[opid] = (tag, target, nbytes)
        if sid is not None:
            rt.spans.record(t_api, rt.now(), rt.rank, sid, "inject_sw", tag[6:], nbytes, parent)
        handle = rt.conduit.am_send(rt.rank, target, tag, payload, nbytes=nbytes, span=sid)
        handle.on_complete(lambda h: rt.actQ.pop(opid, None))

    # metrics kind: the tag minus its "upcxx." namespace, so injection and
    # execution of the same op family share one name ("rpc", "rpc_reply")
    rt.enqueue_deferred(injector, kind=tag[6:], nbytes=nbytes)
    rt.internal_progress()


def rpc(target: int, fn: Callable, *args) -> Future:
    """Run ``fn(*args)`` on rank ``target``; future of its return value."""
    rt = current_runtime()
    if not 0 <= target < rt.world.n_ranks:
        raise UpcxxError(f"rpc target {target} out of range [0, {rt.world.n_ranks})")
    rt.n_rpcs_sent += 1
    sid = None
    t_api = 0.0
    if rt.spans is not None:
        sid = rt.next_span_sid()
        t_api = rt.now()
    wire_args, fns = _translate_args_out(rt, args)
    raw = serialization.pack(wire_args)
    view_bytes = serialization.copy_free_bytes(args)
    nraw = len(raw)
    rt.sched.charge(rt._c_rpc_inject)
    rt.charge_copy(nraw)

    promise = Promise(rt)
    token = rt.next_token()
    rt.reply_table[token] = promise
    # envelope tuple: (fn, fns, raw, token, reply_to, copy_bytes)
    payload = (fn, fns, raw, token, rt.rank, nraw - view_bytes)
    _inject_am(rt, target, "upcxx.rpc", payload, nbytes=nraw + _ENVELOPE_BYTES,
               sid=sid, t_api=t_api)
    return promise.get_future()


def rpc_ff(target: int, fn: Callable, *args) -> None:
    """Fire-and-forget RPC: no acknowledgment, nothing returned (``rpc_ff``)."""
    rt = current_runtime()
    if not 0 <= target < rt.world.n_ranks:
        raise UpcxxError(f"rpc_ff target {target} out of range [0, {rt.world.n_ranks})")
    rt.n_rpcs_sent += 1
    sid = None
    t_api = 0.0
    if rt.spans is not None:
        sid = rt.next_span_sid()
        t_api = rt.now()
    wire_args, fns = _translate_args_out(rt, args)
    raw = serialization.pack(wire_args)
    view_bytes = serialization.copy_free_bytes(args)
    nraw = len(raw)
    rt.sched.charge(rt._c_rpc_inject)
    rt.charge_copy(nraw)
    payload = (fn, fns, raw, None, rt.rank, nraw - view_bytes)
    _inject_am(rt, target, "upcxx.rpc", payload, nbytes=nraw + _ENVELOPE_BYTES,
               sid=sid, t_api=t_api)


# --------------------------------------------------------------- dispatchers
def _execute_rpc_body(rt: Runtime, payload: tuple, req_sid: Optional[tuple] = None) -> None:
    """Run an incoming RPC (rank context, inside user progress)."""
    fn, fns, raw, token, reply_to, _copy_bytes = payload
    args = serialization.unpack(raw)
    try:
        resolved = _resolve_args_in(rt, args, fns)
    except _UnresolvedDistObject as ex:
        # Defer until the local representative is constructed.
        item = CompQItem(0.0, lambda: _execute_rpc_body(rt, payload, req_sid), "rpc-deferred")
        rt.dist_waiters.setdefault(ex.key, []).append(item)
        return

    rt.n_rpcs_executed += 1
    result = fn(*resolved)
    if token is None:
        return

    def send_reply(values: tuple) -> None:
        reply_raw = serialization.pack(values)
        # the reply is a child operation, causally linked to the request
        rsid = None
        t_api = 0.0
        if rt.spans is not None:
            rsid = rt.next_span_sid()
            t_api = rt.now()
        rt.sched.charge(rt._c_rpc_reply_inject)
        rt.charge_copy(len(reply_raw))
        _inject_am(
            rt,
            reply_to,
            "upcxx.rpc_reply",
            (token, reply_raw),
            nbytes=len(reply_raw) + _ENVELOPE_BYTES,
            sid=rsid,
            t_api=t_api,
            parent=req_sid,
        )

    if isinstance(result, Future):
        result._on_ready(lambda: send_reply(result._values))
    elif result is None:
        send_reply(())
    else:
        send_reply((result,))


def _dispatch_rpc(rt: Runtime, msg) -> CompQItem:
    """Build the compQ item for an arrived RPC request."""
    payload = msg.payload
    meta = msg.meta
    req_sid = None if meta is None else meta.get("sid")
    cost = rt._c_rpc_dispatch + rt.copy_time(payload[5])
    return CompQItem.acquire(
        cost, lambda: _execute_rpc_body(rt, payload, req_sid), "rpc", nbytes=msg.nbytes
    )


def _dispatch_rpc_reply(rt: Runtime, msg) -> CompQItem:
    """Build the compQ item for an arrived RPC reply."""
    token, raw = msg.payload

    def run():
        promise = rt.reply_table.pop(token, None)
        if promise is None:
            raise UpcxxError(f"orphan rpc reply token {token}")
        values = serialization.unpack(raw)
        promise.fulfill_result(*values)

    cost = rt._c_completion + rt.copy_time(len(raw))
    return CompQItem.acquire(cost, run, "rpc_reply", nbytes=msg.nbytes)


register_am("upcxx.rpc", _dispatch_rpc)
register_am("upcxx.rpc_reply", _dispatch_rpc_reply)
