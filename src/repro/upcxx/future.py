"""Futures and promises — the asynchrony backbone of UPC++ v1.0.

Semantics follow the paper's §II:

- A :class:`Promise` is the producer side: a dependency counter (starting
  at 1) plus an optional result tuple.  ``require_anonymous`` registers
  extra dependencies, ``fulfill_anonymous`` retires them,
  ``fulfill_result`` supplies values (retiring one dependency), and
  ``finalize`` retires the initial dependency and returns the future.
- A :class:`Future` is the consumer side: query ``ready()``, retrieve
  ``result()``, block in ``wait()`` (a spin loop around user progress),
  chain callbacks with ``then()``, and conjoin with :func:`when_all`.

Unlike ``std::future``, these manage asynchrony *within* a rank: they are
readied only during that rank's user-level progress (or directly by rank
code), never from another thread — exactly the paper's model.  Callbacks
attached via ``then()`` run inline as soon as their dependencies are
satisfied, which by construction happens inside user progress.

Value conventions (mirroring ``future<T...>``):

- an empty future carries ``()`` and its callbacks take no arguments;
- a single-value future carries ``(v,)`` and callbacks take ``v``;
- multi-value futures (from :func:`when_all`) unpack into callback args.

A ``then`` callback returning a :class:`Future` is flattened (the chained
future completes with the inner future's values), matching UPC++.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.upcxx.errors import UpcxxError


class Future:
    """Consumer handle for an asynchronous operation's values."""

    __slots__ = ("_ready", "_values", "_callbacks", "_rt")

    def __init__(self, rt=None):
        self._ready = False
        self._values: Tuple = ()
        #: lazily allocated — most futures never get a callback
        self._callbacks: Optional[List[Callable[[], None]]] = None
        self._rt = rt

    # ------------------------------------------------------------- queries
    def ready(self) -> bool:
        """Whether the values are available."""
        return self._ready

    def result(self):
        """The future's value (None / scalar / tuple by arity).

        Unlike UPC++ (where ``result()`` on a non-ready future is UB), this
        raises if not ready — fail fast beats undefined behavior.
        """
        if not self._ready:
            raise UpcxxError("Future.result() called before the future is ready")
        if len(self._values) == 0:
            return None
        if len(self._values) == 1:
            return self._values[0]
        return self._values

    # ------------------------------------------------------ completion side
    def _fulfill(self, values: Tuple) -> None:
        """Make the future ready (rank context only)."""
        if self._ready:
            raise UpcxxError("future fulfilled twice")
        self._ready = True
        self._values = tuple(values)
        callbacks, self._callbacks = self._callbacks, None
        if callbacks is not None:
            for cb in callbacks:
                cb()

    # ------------------------------------------------------------ chaining
    def _runtime(self):
        if self._rt is not None:
            return self._rt
        from repro.upcxx.runtime import current_runtime

        return current_runtime()

    def then(self, fn: Callable) -> "Future":
        """Chain ``fn`` onto this future; returns the future of its result.

        ``fn`` is invoked with this future's values unpacked.  If ``fn``
        returns a Future the chain is flattened.
        """
        rt = self._runtime()
        out = Future(rt)

        def run():
            rt.sched.charge(rt._c_then_dispatch)
            res = fn(*self._values)
            if isinstance(res, Future):
                res._on_ready(lambda: out._fulfill(res._values))
            elif res is None:
                out._fulfill(())
            else:
                out._fulfill((res,))

        self._on_ready(run)
        return out

    def _on_ready(self, cb: Callable[[], None]) -> None:
        if self._ready:
            cb()
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def wait(self):
        """Block until ready (spin loop around user progress); return result."""
        rt = self._runtime()
        rt.wait_on(self)
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._ready:
            return f"<Future ready {self._values!r}>"
        n = 0 if self._callbacks is None else len(self._callbacks)
        return f"<Future pending ({n} callbacks)>"


class Promise:
    """Producer handle: dependency counter + result slot.

    Created with one initial (unretired) dependency, like
    ``upcxx::promise``; ``finalize()`` retires it and returns the future.
    """

    __slots__ = ("_future", "_deps", "_finalized", "_results_set")

    def __init__(self, rt=None):
        self._future = Future(rt)
        self._deps = 1
        self._finalized = False
        self._results_set = False

    def require_anonymous(self, n: int) -> None:
        """Register ``n`` more dependencies."""
        if n < 0:
            raise ValueError(f"negative dependency count: {n}")
        if self._deps <= 0:
            raise UpcxxError("promise already satisfied; cannot add dependencies")
        self._deps += n

    def fulfill_anonymous(self, n: int) -> None:
        """Retire ``n`` dependencies; readies the future at zero."""
        if n < 0:
            raise ValueError(f"negative dependency count: {n}")
        self._retire(n)

    def fulfill_result(self, *values) -> None:
        """Supply the result values and retire one dependency."""
        if self._results_set:
            raise UpcxxError("promise result set twice")
        self._results_set = True
        self._future._values = tuple(values)  # staged; visible when ready
        self._retire(1)

    def finalize(self) -> Future:
        """Retire the initial dependency; returns the associated future."""
        if self._finalized:
            raise UpcxxError("promise finalized twice")
        self._finalized = True
        self._retire(1)
        return self._future

    def get_future(self) -> Future:
        """The future tied to this promise (without finalizing)."""
        return self._future

    def _retire(self, n: int) -> None:
        if n == 0:
            return
        if self._deps < n:
            raise UpcxxError(f"promise over-fulfilled: {self._deps} deps, retiring {n}")
        self._deps -= n
        if self._deps == 0:
            staged = self._future._values
            self._future._values = ()
            self._future._fulfill(staged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Promise deps={self._deps} finalized={self._finalized}>"


def make_future(*values) -> Future:
    """A trivially ready future carrying ``values`` (``upcxx::make_future``)."""
    f = Future()
    f._ready = True
    f._values = tuple(values)
    return f


def when_all(*items) -> Future:
    """Conjoin futures (and plain values) into one future of all values.

    Mirrors ``upcxx::when_all``: readiness of the result is readiness of
    every input, and the result's value tuple is the concatenation of the
    inputs' values (plain values contribute themselves).
    """
    futures = [x for x in items if isinstance(x, Future)]
    out = Future(futures[0]._rt if futures else None)
    pending = sum(1 for f in futures if not f.ready())

    def gather() -> Tuple:
        vals: List[Any] = []
        for x in items:
            if isinstance(x, Future):
                vals.extend(x._values)
            else:
                vals.append(x)
        return tuple(vals)

    if pending == 0:
        out._ready = True
        out._values = gather()
        return out

    state = {"left": pending}

    def one_done():
        state["left"] -= 1
        if state["left"] == 0:
            out._fulfill(gather())

    for f in futures:
        if not f.ready():
            f._on_ready(one_done)
    return out


def to_future(x) -> Future:
    """Coerce: futures pass through, plain values become ready futures."""
    if isinstance(x, Future):
        return x
    return make_future(x)
