"""Non-contiguous RMA (VIS: Vector/Indexed/Strided), paper §II.

UPC++ extends put/get to non-contiguous shapes so multidimensional-array
traffic does not need one injection per fragment:

- ``rput_irregular`` / ``rget_irregular`` — arbitrary (pointer, data)
  fragment lists (the *vector* flavor);
- ``rput_strided`` / ``rget_strided`` — regular 2-D strided sections
  (column panels of the block-cyclic fronts in the sparse solver).

The whole operation shares a single injection charge plus a small
per-fragment cost, and completes (single future/promise) when every
fragment has committed — cheaper than naive per-fragment rput both in
software and because fragments pipeline on the NIC.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gasnet.network import PATH_BTE, PATH_FMA
from repro.upcxx.completion import Completion, resolve
from repro.upcxx.errors import GlobalPtrError, UpcxxError
from repro.upcxx.future import Future
from repro.upcxx.global_ptr import GlobalPtr
from repro.upcxx.rma import _as_bytes
from repro.upcxx.runtime import CompQItem, current_runtime


def rput_irregular(
    fragments: Sequence[Tuple[GlobalPtr, object]],
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Put many (destination pointer, data) fragments as one operation.

    All fragments must target the same rank (one VIS operation maps to one
    network flow, as in GASNet VIS).
    """
    rt = current_runtime()
    frags: List[Tuple[GlobalPtr, bytes]] = []
    for gptr, data in fragments:
        frags.append((gptr, _as_bytes(data, gptr)))
    if not frags:
        raise UpcxxError("rput_irregular requires at least one fragment")
    dst_rank = frags[0][0].rank
    for gptr, raw in frags:
        if gptr.rank != dst_rank:
            raise GlobalPtrError("all fragments of one rput_irregular must target one rank")
        if len(raw) > gptr.nbytes:
            raise GlobalPtrError(f"fragment of {len(raw)}B exceeds span {gptr.nbytes}B")

    rt.charge_sw(rt.costs.rma_inject + rt.costs.vis_per_fragment * len(frags))
    promise, fut = resolve(cx, rt)
    total = sum(len(raw) for _, raw in frags)
    path = PATH_FMA if total < rt.costs.bte_threshold else PATH_BTE

    def injector():
        opid = rt.next_op_id()
        rt.actQ[opid] = f"rput_irregular {len(frags)} frags -> {dst_rank}"
        t_active = rt.now()
        state = {"left": len(frags)}

        def on_done(h):
            state["left"] -= 1
            if state["left"]:
                return

            def fulfill():
                rt.actQ.pop(opid, None)
                if promise is not None:
                    promise.fulfill_anonymous(1)

            rt.gasnet_completed(
                CompQItem(rt.cpu.t(rt.costs.completion), fulfill, "vis", total, t_active),
                h.time_done,
            )
            rt.sched.wake(rt.rank, h.time_done)

        for gptr, raw in frags:
            rt.conduit.put_nb(rt.rank, dst_rank, gptr.offset, raw, path).on_complete(on_done)

    rt.enqueue_deferred(injector, kind="rput_irregular", nbytes=total)
    rt.internal_progress()
    return fut


def rget_irregular(
    fragments: Sequence[GlobalPtr],
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Get many fragments as one operation; future of a list of arrays."""
    rt = current_runtime()
    frags = list(fragments)
    if not frags:
        raise UpcxxError("rget_irregular requires at least one fragment")
    src_rank = frags[0].rank
    for gptr in frags:
        if gptr.rank != src_rank:
            raise GlobalPtrError("all fragments of one rget_irregular must target one rank")

    rt.charge_sw(rt.costs.rma_inject + rt.costs.vis_per_fragment * len(frags))
    promise, fut = resolve(cx, rt)
    anonymous = cx is not None and cx.kind == "promise"
    total = sum(g.nbytes for g in frags)
    path = PATH_FMA if total < rt.costs.bte_threshold else PATH_BTE

    def injector():
        opid = rt.next_op_id()
        rt.actQ[opid] = f"rget_irregular {len(frags)} frags <- {src_rank}"
        t_active = rt.now()
        results: List[Optional[np.ndarray]] = [None] * len(frags)
        state = {"left": len(frags)}

        def make_cb(i: int, gptr: GlobalPtr):
            def on_done(h):
                results[i] = np.frombuffer(h.data, dtype=gptr.dtype).copy()
                state["left"] -= 1
                if state["left"]:
                    return

                def fulfill():
                    rt.actQ.pop(opid, None)
                    if promise is None:
                        return
                    if anonymous:
                        promise.fulfill_anonymous(1)
                    else:
                        promise.fulfill_result(list(results))

                rt.gasnet_completed(
                    CompQItem(rt.cpu.t(rt.costs.completion), fulfill, "vis", total, t_active),
                    h.time_done,
                )
                rt.sched.wake(rt.rank, h.time_done)

            return on_done

        for i, gptr in enumerate(frags):
            rt.conduit.get_nb(rt.rank, src_rank, gptr.offset, gptr.nbytes, path).on_complete(
                make_cb(i, gptr)
            )

    rt.enqueue_deferred(injector, kind="rget_irregular", nbytes=total)
    rt.internal_progress()
    return fut


def _strided_fragments(base: GlobalPtr, n_rows: int, n_cols: int, col_stride_elems: int):
    """Pointers to the ``n_cols`` column fragments of a strided section."""
    if n_rows <= 0 or n_cols <= 0:
        raise UpcxxError("strided section must be non-empty")
    span_needed = (n_cols - 1) * col_stride_elems + n_rows
    if span_needed > base.count:
        raise GlobalPtrError(
            f"strided section needs {span_needed} elements, pointer spans {base.count}"
        )
    out = []
    for c in range(n_cols):
        p = base + c * col_stride_elems
        out.append(GlobalPtr(p.rank, p.offset, p.dtype, n_rows))
    return out


def rput_strided(
    src: np.ndarray,
    dest: GlobalPtr,
    col_stride_elems: int,
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Put a 2-D array (rows x cols, Fortran-style columns) into a strided
    remote section whose columns start ``col_stride_elems`` apart."""
    arr = np.asarray(src)
    if arr.ndim != 2:
        raise UpcxxError(f"rput_strided needs a 2-D array, got ndim={arr.ndim}")
    n_rows, n_cols = arr.shape
    ptrs = _strided_fragments(dest, n_rows, n_cols, col_stride_elems)
    frags = [(ptrs[c], np.ascontiguousarray(arr[:, c])) for c in range(n_cols)]
    return rput_irregular(frags, cx)


def rget_strided(
    src: GlobalPtr,
    n_rows: int,
    n_cols: int,
    col_stride_elems: int,
    cx: Optional[Completion] = None,
) -> Optional[Future]:
    """Get a strided 2-D section; future of an (n_rows, n_cols) array."""
    ptrs = _strided_fragments(src, n_rows, n_cols, col_stride_elems)
    fut = rget_irregular(ptrs, cx)
    if fut is None:
        return None
    return fut.then(lambda cols: np.column_stack(cols))
