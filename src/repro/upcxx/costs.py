"""Software-path CPU costs of the UPC++ runtime.

These are the per-operation instruction-path costs the *library* adds on
top of the hardware, calibrated on Haswell (the platform CPU model scales
them for KNL).  The decomposition follows the paper's §III queues:

- injection cost — creating the promise, enqueueing on *defQ*, handing the
  operation to GASNet (moving it to *actQ*);
- completion cost — promoting a finished operation to *compQ* and
  fulfilling its promise during user progress;
- progress-poll cost — the fixed cost of one ``progress()`` call;
- RPC dispatch — deserializing the envelope and invoking the user function
  at the target.

Magnitudes are representative of GASNet-EX-era measurements (small
fractions of a microsecond) and are the single place to recalibrate if one
wants to model a different runtime generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import US


@dataclass(frozen=True)
class UpcxxCosts:
    """Haswell-calibrated per-op software costs (seconds)."""

    #: rput/rget: promise creation + defQ enqueue + GASNet injection
    rma_inject: float = 0.35 * US
    #: promoting one completed op actQ -> compQ and fulfilling its promise
    completion: float = 0.06 * US
    #: fixed cost of one progress() call (queue polling)
    progress_poll: float = 0.05 * US
    #: scheduling/invoking one .then() callback
    then_dispatch: float = 0.06 * US
    #: RPC injection (envelope build + AM send), excluding payload copy
    rpc_inject: float = 0.50 * US
    #: RPC execution setup at the target (envelope decode + call)
    rpc_dispatch: float = 0.60 * US
    #: sending an RPC's return value back
    rpc_reply_inject: float = 0.35 * US
    #: shared-segment allocate/deallocate
    alloc: float = 0.25 * US
    #: remote atomic injection
    atomic_inject: float = 0.30 * US
    #: per-fragment extra cost for non-contiguous (VIS) transfers
    vis_per_fragment: float = 0.08 * US
    #: dist_object registry lookup/registration
    dist_object_lookup: float = 0.08 * US

    #: GASNet path selection: FMA below this many bytes, BTE at/above.
    #: (GASNet-EX tunes this low; Cray MPICH's RMA path does not — one
    #: source of the paper's Fig. 3b bandwidth gap.)
    bte_threshold: int = 4096


DEFAULT_COSTS = UpcxxCosts()
