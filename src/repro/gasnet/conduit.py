"""The conduit: GASNet-EX-style data movement over the simulated wire.

The conduit owns per-rank *endpoints* (shared segment + AM inbox + NIC
injection state) and implements the four hardware services the paper's
runtime consumes:

- ``put_nb``   — one-sided RMA put with NIC offload; the handle completes
  when the remote commit has been acknowledged (GASNet "remote completion",
  which is what a blocking ``upcxx::rput(...).wait()`` observes).
- ``get_nb``   — one-sided RMA get; the handle carries the fetched bytes.
- ``am_send``  — active message; delivered into the destination inbox at
  wire arrival (waking the destination if it is blocked), *executed* only
  when the destination polls.  The handle completes at source-side
  injection completion (buffer reusable).
- ``amo``      — remote atomic, NIC-offloaded: the update applies at the
  target segment at arrival time with **no target CPU involvement**,
  mirroring Aries hardware atomics (paper §II).

Timing: each endpoint's NIC serializes injections (``occupancy``); wire
latency is added per the machine topology (intra-node transfers take the
shared-memory path).  The conduit charges **no software CPU time** — the
client layer (UPC++ or MPI) charges its own per-operation software costs,
because that is precisely where the two stacks differ in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.gasnet.am import AMInbox, AMMessage
from repro.gasnet.handle import Handle
from repro.gasnet.machine import Machine
from repro.gasnet.network import NetworkModel, PATH_FMA
from repro.gasnet.segment import Segment
from repro.sim.coop import Scheduler
from repro.sim.errors import SimError


class _Endpoint:
    """Per-rank conduit state."""

    __slots__ = (
        "rank",
        "segment",
        "device_segment",
        "inbox",
        "nic_free_at",
        "pcie_free_at",
        "n_puts",
        "n_gets",
        "n_ams",
        "n_amos",
        "bytes_out",
        "n_retx",
        "n_dropped",
        "n_dup",
        "n_acks",
        "agg_batches",
        "agg_updates",
        "agg_credit_stall_s",
        "agg_cache_hits",
        "kv_shed",
        "kv_failover_reads",
        "kv_rereplicated",
    )

    def __init__(self, rank: int, segment_size: int):
        self.rank = rank
        self.segment = Segment(segment_size, owner_rank=rank)
        #: GPU segment, created on demand by ensure_device_segment
        self.device_segment = None
        self.inbox = AMInbox(rank)
        self.nic_free_at = 0.0
        #: host<->device link occupancy (one transfer at a time)
        self.pcie_free_at = 0.0
        self.n_puts = 0
        self.n_gets = 0
        self.n_ams = 0
        self.n_amos = 0
        self.bytes_out = 0
        # reliability-layer counters (all attributed to the initiating
        # endpoint, even for ack frames flowing the other way)
        self.n_retx = 0
        self.n_dropped = 0
        self.n_dup = 0
        self.n_acks = 0
        # aggregation-layer injection accounting (repro.upcxx.aggregator):
        # batches/updates this endpoint coalesced onto the wire, and the
        # simulated time it stalled waiting for per-peer credits
        self.agg_batches = 0
        self.agg_updates = 0
        self.agg_credit_stall_s = 0.0
        self.agg_cache_hits = 0
        # service/replication-layer counters (repro.upcxx.replication and
        # the KV service): admission-control sheds, reads retargeted to a
        # surviving replica, and keys re-shipped to restore the factor
        self.kv_shed = 0
        self.kv_failover_reads = 0
        self.kv_rereplicated = 0


#: atomic ops supported by the simulated NIC (name -> (applies, returns_old))
_AMO_OPS = {
    "add",
    "fetch_add",
    "put",
    "get",
    "cas",
    "min",
    "max",
    "bit_and",
    "bit_or",
    "bit_xor",
}


class Conduit:
    """All endpoints of one job plus the wire model gluing them together."""

    def __init__(
        self,
        sched: Scheduler,
        machine: Machine,
        network: NetworkModel,
        segment_size: int = 32 * 1024 * 1024,
        metrics=None,
        spans=None,
        faults=None,
        telemetry=None,
    ):
        if machine.n_ranks < sched.n_ranks:
            raise ValueError(
                f"machine has {machine.n_ranks} slots but job has {sched.n_ranks} ranks"
            )
        self.sched = sched
        self.machine = machine
        self.network = network
        #: optional repro.util.metrics.Metrics for NIC injection accounting
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        #: optional repro.util.spans.SpanBuffer for causal span tracing;
        #: ops that carry a ``span`` correlation id record their NIC and
        #: wire phases here (passive: no clock reads, no event posts)
        self.spans = spans if spans is not None and spans.enabled else None
        #: optional repro.util.telemetry.Telemetry (windowed rollups +
        #: flight recorder); the conduit records nothing itself — runtimes
        #: read endpoint counters — but the reference is the cross-shard
        #: anchor the sharded backend uses to collect/merge per-rank state
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        #: optional repro.sim.faults.FaultPlan; when set, every op routes
        #: through the reliable-delivery layer (seq/ack/retransmit)
        self._faults = faults
        #: per-(sender, receiver) channel state: [next_seq, last_commit_time]
        self._rel_chan: dict = {}
        self.endpoints = [_Endpoint(r, segment_size) for r in range(sched.n_ranks)]
        # hot-path lookup tables: rank -> node (replaces machine.same_node
        # calls per op), the two propagation latencies, and a memo of
        # occupancy(nbytes, path, same_node) keyed by its arguments — real
        # workloads send a handful of distinct sizes millions of times
        self._node = [machine.node_of(r) for r in range(sched.n_ranks)]
        self._lat_net = network.latency_oneway
        self._lat_shm = network.latency_oneway_shm
        self._occ_cache: dict = {}
        # Sharded-backend plumbing.  ``_shard`` is bound inside each worker
        # process (None on single-process backends); ``_remote_cx_deliver``
        # is installed by the UPC++ World so the conduit can hand
        # remote_cx::as_rpc work to the *target's* runtime without the
        # initiator capturing it in a closure (closures don't cross shards).
        self._shard = None
        self._remote_cx_deliver: Optional[Callable] = None
        #: handles awaiting a cross-shard completion envelope, by id
        self._pending_handles: dict = {}
        self._next_hid = 0
        reg = getattr(sched, "register_conduit", None)
        if reg is not None:
            reg(self)

    # ---------------------------------------------------------- shard routing
    def bind_shard(self, shard) -> None:
        """Attach this conduit to a sharded-backend worker process.

        Registers the envelope handlers that execute the remote half of
        each conduit op when it arrives from a peer shard.

        **Emission-margin contract** (what the sharded window protocol
        leans on — see ``repro.sim.shard`` docstring §2): every
        ``emit_envelope`` this conduit issues targets a rank on another
        *node*, and every such fire time — data arrivals, AM deliveries,
        completion acks, retransmit ladders under fault injection — rides
        at least one ``network.latency_oneway`` past the simulated moment
        it was decided.  Completion (``cpl``) envelopes are the tight
        case: their margin is *exactly* one ``latency_oneway``, which is
        why the window protocol's floor term provisions exactly one hop
        and adapts only its self-horizon term.  Envelope metas stay flat
        tuples of scalars/bytes wherever possible so the per-(peer,
        window) batch frames encode them via the tagged serializer's raw
        path instead of the pickler.
        """
        self._shard = shard
        shard.set_envelope_handlers(
            {
                "put": self._env_put,
                "get": self._env_get,
                "am": self._env_am,
                "acc": self._env_acc,
                "amo": self._env_amo,
                "cpl": self._env_complete,
            }
        )

    def _is_local(self, rank: int) -> bool:
        """Does ``rank`` live in this process?  Always true unsharded."""
        shard = self._shard
        return shard is None or shard.shard_is_local(rank)

    def _check_local(self, rank: int, what: str):
        if not self._is_local(rank):
            raise SimError(
                f"direct {what} access to rank {rank} from shard "
                f"{self._shard._shard_id}: rank {rank} lives on another "
                "shard; only conduit ops (put/get/am/amo) cross shards"
            )

    def _register_handle(self, handle: Handle) -> int:
        hid = self._next_hid
        self._next_hid = hid + 1
        self._pending_handles[hid] = handle
        return hid

    def _env_complete(self, meta, fire_time: float) -> None:
        """Cross-shard completion envelope: finish a waiting local handle."""
        hid, has_data, data = meta
        handle = self._pending_handles.pop(hid)
        if has_data:
            handle.complete(fire_time, data=data)
        else:
            handle.complete(fire_time)

    # -------------------------------------------------------------- accessors
    def segment(self, rank: int) -> Segment:
        if self._shard is not None:
            self._check_local(rank, "segment")
        return self.endpoints[rank].segment

    def inbox(self, rank: int) -> AMInbox:
        if self._shard is not None:
            self._check_local(rank, "inbox")
        return self.endpoints[rank].inbox

    # --------------------------------------------------------- device memory
    def ensure_device_segment(self, rank: int, size: int) -> Segment:
        """Create (once) and return ``rank``'s GPU segment."""
        if self._shard is not None:
            self._check_local(rank, "device segment")
        ep = self.endpoints[rank]
        if ep.device_segment is None:
            ep.device_segment = Segment(size, owner_rank=rank)
        return ep.device_segment

    def device_segment(self, rank: int) -> Segment:
        if self._shard is not None:
            self._check_local(rank, "device segment")
        ep = self.endpoints[rank]
        if ep.device_segment is None:
            raise RuntimeError(f"rank {rank} has no device segment (create a Device first)")
        return ep.device_segment

    def segment_of(self, rank: int, kind: str) -> Segment:
        """Segment lookup by memory kind."""
        if kind == "host":
            return self.segment(rank)
        if kind == "device":
            return self.device_segment(rank)
        raise ValueError(f"unknown memory kind {kind!r}")

    def pcie_transfer(self, rank: int, nbytes: int, start: float) -> float:
        """Schedule one host<->device staging transfer on ``rank``'s PCIe
        link; returns the completion time (the link serializes transfers)."""
        ep = self.endpoints[rank]
        begin = max(start, ep.pcie_free_at)
        done = begin + self.network.pcie_time(nbytes)
        ep.pcie_free_at = done
        return done

    # ------------------------------------------------------------ wire timing
    def _inject(
        self,
        src: int,
        dst: int,
        nbytes: int,
        path: str,
        start: float,
        occ_scale: float = 1.0,
        span: Optional[tuple] = None,
        kind: str = "op",
    ):
        """Schedule one wire transfer; returns (injection_done, arrival).

        ``occ_scale`` multiplies the injection occupancy; client layers use
        values > 1 to model software pipelines that under-drive the NIC
        (e.g. Cray MPICH's mid-size RMA path in the paper's Fig. 3b).
        ``span``, when given, records the backpressure/occupancy/wire
        phases of this transfer under that correlation id.
        """
        if occ_scale <= 0:
            raise ValueError(f"occ_scale must be positive, got {occ_scale}")
        ep = self.endpoints[src]
        node = self._node
        same = node[src] == node[dst]
        nic_free = ep.nic_free_at
        begin = start if start > nic_free else nic_free
        key = (nbytes, path, same)
        occ = self._occ_cache.get(key)
        if occ is None:
            occ = self._occ_cache[key] = self.network.occupancy(nbytes, path, same)
        occ *= occ_scale
        done = begin + occ
        ep.nic_free_at = done
        ep.bytes_out += nbytes
        arrival = done + (self._lat_shm if same else self._lat_net)
        if self.metrics is not None:
            # wire time = occupancy; backpressure = time spent queued behind
            # earlier injections on this NIC before the wire was free
            self.metrics.rank(src).nic_injected(nbytes, occ, begin - start)
        sp = self.spans
        if sp is not None and span is not None:
            sp.record(start, begin, src, span, "nic_wait", kind, nbytes)
            sp.record(begin, done, src, span, "nic_occ", kind, nbytes)
            sp.record(done, arrival, src, span, "wire", kind, nbytes)
        return done, arrival

    # ------------------------------------------------- reliable delivery
    # With a FaultPlan bound, every conduit op becomes a *reliable channel*
    # transfer: per-(sender,receiver) sequence numbers, receipt acks, and
    # timeout + exponential-backoff retransmission, with in-order commit at
    # the receiver.  Because every fault decision is a pure hash of
    # (plan seed, channel, seq, attempt) — see repro.sim.faults — the whole
    # retransmit ladder is computable at send time: the sender charges each
    # attempt to its NIC (occupancy, backpressure, metrics, retry spans)
    # and then posts exactly ONE commit event and one completion, exactly
    # mirroring the fault-free event structure.  That is what keeps a
    # zero-fault plan bit-identical to ``faults=None`` and fault runs
    # bit-identical across all three scheduler backends.
    def _rel_ladder(
        self,
        snd: int,
        rcv: int,
        nbytes: int,
        path: str,
        start: float,
        occ_scale: float,
        span,
        kind: str,
        ack_lat: float,
        phases: tuple,
    ):
        """Run one reliable-channel transfer analytically.

        Charges every transmission attempt to ``snd``'s NIC and returns
        ``(done0, commit_at, ack_recv)``:

        - ``done0``     — injection-done time of the *first* attempt
          (source-buffer-reusable point, e.g. AM source completion);
        - ``commit_at`` — when the frame commits in-order at the receiver
          (``None`` if the receiver crashed before any attempt landed);
        - ``ack_recv``  — when the sender observes the commit acknowledged
          (``None`` if no ack ever survived, e.g. receiver died mid-ladder).
        """
        plan = self._faults
        ep = self.endpoints[snd]
        chan = self._rel_chan.get((snd, rcv))
        if chan is None:
            chan = self._rel_chan[(snd, rcv)] = [0, 0.0]
        seq = chan[0]
        chan[0] = seq + 1
        node = self._node
        same = node[snd] == node[rcv]
        key = (nbytes, path, same)
        occ = self._occ_cache.get(key)
        if occ is None:
            occ = self._occ_cache[key] = self.network.occupancy(nbytes, path, same)
        occ *= occ_scale
        lat = self._lat_shm if same else self._lat_net
        rto = plan.rto_for(lat, ack_lat)
        cutoff = plan.crash_cutoff(rcv)
        mrank = self.metrics.rank(snd) if self.metrics is not None else None
        sp = self.spans if span is not None else None
        inf = float("inf")
        acked_at = inf
        first_arrival = None
        done0 = done = start
        n_drop = n_dup = n_ack = 0
        max_retx = plan.max_retx
        t = start
        i = 0
        while True:
            if i > 0:
                # exponential backoff from the previous injection's end
                t = done + rto * (2.0 ** (i - 1))
                if acked_at <= t or i > max_retx:
                    break
            begin = t if t > ep.nic_free_at else ep.nic_free_at
            begin = plan.stall_until(snd, begin)
            done = begin + occ
            ep.nic_free_at = done
            ep.bytes_out += nbytes
            if mrank is not None:
                mrank.nic_injected(nbytes, occ, begin - t)
            if sp is not None:
                if i == 0:
                    sp.record(t, begin, snd, span, phases[0], kind, nbytes)
                    sp.record(begin, done, snd, span, phases[1], kind, nbytes)
                    sp.record(done, done + lat, snd, span, phases[2], kind, nbytes)
                else:
                    sp.record(t, done, snd, span, "retry", kind, nbytes)
            if i == 0:
                done0 = done
            if plan.drops_frame(snd, rcv, seq, i):
                n_drop += 1
            else:
                arrival = done + lat + plan.jitter_of(snd, rcv, seq, i)
                if arrival <= cutoff:
                    if first_arrival is None or arrival < first_arrival:
                        first_arrival = arrival
                    if plan.duplicates(snd, rcv, seq, i):
                        n_dup += 1
                    if plan.drops_ack(snd, rcv, seq, i):
                        n_drop += 1
                    else:
                        n_ack += 1
                        ack_at = arrival + ack_lat + plan.ack_jitter_of(snd, rcv, seq, i)
                        if ack_at < acked_at:
                            acked_at = ack_at
            i += 1
        if first_arrival is None:
            commit_at = None
        else:
            # in-order commit: a late first delivery (jitter/retransmit)
            # cannot overtake an earlier frame already committed on this
            # channel; fault-free arrivals are already nondecreasing, so
            # the clamp is a no-op then
            last = chan[1]
            commit_at = first_arrival if first_arrival > last else last
            chan[1] = commit_at
        if commit_at is not None and acked_at < inf:
            ack_recv = commit_at + ack_lat
            if acked_at > ack_recv:
                ack_recv = acked_at
        else:
            ack_recv = None
        ep.n_retx += i - 1
        ep.n_dropped += n_drop
        ep.n_dup += n_dup
        ep.n_acks += n_ack
        if mrank is not None:
            mrank.rel_update(i - 1, n_drop, n_dup, n_ack)
        return done0, commit_at, ack_recv

    def _rel_put(self, src, dst, dst_off, data, path, occ_scale, remote_rpc, span):
        """Reliable-mode put: same event structure as the fault-free path,
        with commit/ack times produced by the retransmit ladder."""
        data = bytes(data)
        nbytes = len(data)
        sched = self.sched
        now = sched.now()
        self.endpoints[src].n_puts += 1
        handle = Handle(("put", src, dst, nbytes))
        node = self._node
        ack_lat = self._lat_shm if node[src] == node[dst] else self._lat_net
        _, commit_at, ack_recv = self._rel_ladder(
            src, dst, nbytes, path, now, occ_scale, span,
            "put", ack_lat, ("nic_wait", "nic_occ", "wire"),
        )
        if span is not None and self.spans is not None and ack_recv is not None:
            self.spans.record(ack_recv - ack_lat, ack_recv, src, span, "ack_wire", "put", nbytes)
        if commit_at is None:
            # receiver crashed before any attempt landed; the op can never
            # complete — crash detection (RankDeadError) unblocks the caller
            return handle
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, commit_at, "put",
                (src, dst, dst_off, data, hid, ack_recv, remote_rpc, nbytes, span),
            )
            return handle
        dst_seg = self.endpoints[dst].segment

        def commit_and_ack():
            dst_seg.write(dst_off, data)
            if remote_rpc is not None:
                fn, args, t_active = remote_rpc
                self._remote_cx_deliver(dst, fn, args, nbytes, t_active, commit_at, span)
            if ack_recv is not None:
                sched.post_at(ack_recv, lambda: handle.complete(ack_recv))

        sched.post_at(commit_at, commit_and_ack)
        return handle

    def _rel_get_service(self, src, dst, dst_off, nbytes, path, occ_scale, span, req_commit, complete):
        """Reliable-mode reply half of a get, run at the target at request
        commit time: reads memory and streams the reply back over the
        reverse channel's retransmit ladder."""
        dst_ep = self.endpoints[dst]
        data = bytes(dst_ep.segment.read(dst_off, nbytes))
        node = self._node
        ack_lat = self._lat_shm if node[src] == node[dst] else self._lat_net
        _, commit_at, _ = self._rel_ladder(
            dst, src, nbytes, path, req_commit, occ_scale, span,
            "get", ack_lat, ("remote_nic_wait", "remote_occ", "wire_back"),
        )
        if commit_at is not None:
            complete(commit_at, data)

    def _rel_get(self, src, dst, dst_off, nbytes, path, occ_scale, span):
        """Reliable-mode get: request rides the forward channel's ladder,
        the reply the reverse channel's."""
        sched = self.sched
        now = sched.now()
        self.endpoints[src].n_gets += 1
        handle = Handle(("get", src, dst, nbytes))
        node = self._node
        req_lat = self._lat_shm if node[src] == node[dst] else self._lat_net
        _, req_commit, _ = self._rel_ladder(
            src, dst, self.network.header_bytes, PATH_FMA, now, 1.0, span,
            "get", req_lat, ("nic_wait", "nic_occ", "wire"),
        )
        if req_commit is None:
            return handle
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, req_commit, "get",
                (src, dst, dst_off, nbytes, path, occ_scale, hid, span),
            )
            return handle

        def service_request():
            self._rel_get_service(
                src, dst, dst_off, nbytes, path, occ_scale, span, req_commit,
                lambda back, data: sched.post_at(
                    back, lambda: handle.complete(back, data=data)
                ),
            )

        sched.post_at(req_commit, service_request)
        return handle

    def _rel_am(self, src, dst, tag, payload, nbytes, path, token, meta, occ_scale, span):
        """Reliable-mode active message: source completion at first
        injection end, delivery at channel commit."""
        sched = self.sched
        now = sched.now()
        self.endpoints[src].n_ams += 1
        handle = Handle(("am", src, dst, tag, nbytes))
        node = self._node
        ack_lat = self._lat_shm if node[src] == node[dst] else self._lat_net
        inj_done, commit_at, _ = self._rel_ladder(
            src, dst, nbytes, path, now, occ_scale, span,
            "am", ack_lat, ("nic_wait", "nic_occ", "wire"),
        )
        msg_meta = dict(meta) if meta else None
        if self.metrics is not None:
            if msg_meta is None:
                msg_meta = {}
            msg_meta["t_injected"] = now
        if span is not None and self.spans is not None:
            if msg_meta is None:
                msg_meta = {}
            msg_meta["sid"] = span
        if commit_at is None:
            sched.post_at(inj_done, lambda: handle.complete(inj_done))
            return handle
        if not self._is_local(dst):
            self._shard.emit_envelope(
                dst, commit_at, "am",
                (src, dst, tag, payload, nbytes, token, msg_meta),
            )
            sched.post_at(inj_done, lambda: handle.complete(inj_done))
            return handle
        msg = AMMessage.acquire(src, dst, tag, payload, nbytes, commit_at, token, msg_meta)
        inbox = self.endpoints[dst].inbox

        def deliver():
            inbox.deliver(msg)
            sched.wake(dst, commit_at)

        sched.post_at(commit_at, deliver)
        sched.post_at(inj_done, lambda: handle.complete(inj_done))
        return handle

    def _rel_acc(self, src, dst, dst_off, arr, dt, op, path, occ_scale, span):
        """Reliable-mode accumulate: applies at commit, completes at ack."""
        nbytes = arr.nbytes
        sched = self.sched
        now = sched.now()
        self.endpoints[src].n_amos += 1
        handle = Handle(("acc", op, src, dst, nbytes))
        ack_lat = self.network.latency(self.machine.same_node(src, dst))
        _, commit_at, ack_recv = self._rel_ladder(
            src, dst, nbytes, path, now, occ_scale, span,
            "acc", ack_lat, ("nic_wait", "nic_occ", "wire"),
        )
        if span is not None and self.spans is not None and ack_recv is not None:
            self.spans.record(ack_recv - ack_lat, ack_recv, src, span, "ack_wire", "acc", nbytes)
        if commit_at is None:
            return handle
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, commit_at, "acc",
                (src, dst, dst_off, arr.tobytes(), dt.str, op, hid, ack_recv),
            )
            return handle
        seg = self.endpoints[dst].segment

        def apply_and_ack():
            self._acc_apply(seg, dst_off, dt, arr, op)
            if ack_recv is not None:
                sched.post_at(ack_recv, lambda: handle.complete(ack_recv))

        sched.post_at(commit_at, apply_and_ack)
        return handle

    def _rel_amo(self, src, dst, dst_off, op, dt, operands, span):
        """Reliable-mode atomic: applies at commit, result returns at ack."""
        sched = self.sched
        now = sched.now()
        self.endpoints[src].n_amos += 1
        handle = Handle(("amo", op, src, dst))
        amo_bytes = dt.itemsize + self.network.header_bytes
        back_lat = self.network.latency(self.machine.same_node(src, dst))
        _, commit_at, ack_recv = self._rel_ladder(
            src, dst, amo_bytes, PATH_FMA, now, 1.0, span,
            "amo", back_lat, ("nic_wait", "nic_occ", "wire"),
        )
        if span is not None and self.spans is not None and ack_recv is not None:
            self.spans.record(ack_recv - back_lat, ack_recv, src, span, "ack_wire", "amo", dt.itemsize)
        if commit_at is None:
            return handle
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, commit_at, "amo",
                (src, dst, dst_off, op, dt.str, operands, hid, ack_recv),
            )
            return handle
        seg = self.endpoints[dst].segment

        def apply():
            old = self._amo_apply(seg, dst_off, dt, op, operands)
            if ack_recv is not None:
                sched.post_at(ack_recv, lambda: handle.complete(ack_recv, data=old))

        sched.post_at(commit_at, apply)
        return handle

    # ------------------------------------------------------------------- put
    def put_nb(
        self,
        src: int,
        dst: int,
        dst_off: int,
        data,
        path: str = PATH_FMA,
        occ_scale: float = 1.0,
        remote_rpc: Optional[tuple] = None,
        span: Optional[tuple] = None,
    ) -> Handle:
        """One-sided put of ``data`` into ``dst``'s segment at ``dst_off``.

        Rank context (must be called by rank ``src``).  The returned handle
        completes at ack time (remote commit acknowledged).
        ``remote_rpc``, if given, is a ``(fn, args, t_active)`` triple run
        at the target the instant the bytes land (UPC++
        ``remote_cx::as_rpc`` piggybacking); it is structured data — not a
        closure — so it can cross shard boundaries.  ``span`` is the
        client's span correlation id; it also rides the cross-shard
        envelope so target-side effects stay correlated.
        """
        if self._faults is not None:
            return self._rel_put(src, dst, dst_off, data, path, occ_scale, remote_rpc, span)
        data = bytes(data)
        nbytes = len(data)
        sched = self.sched
        now = sched.now()
        ep = self.endpoints[src]
        ep.n_puts += 1
        handle = Handle(("put", src, dst, nbytes))
        _, arrival = self._inject(src, dst, nbytes, path, now, occ_scale, span, "put")
        node = self._node
        ack_latency = self._lat_shm if node[src] == node[dst] else self._lat_net
        ack_time = arrival + ack_latency
        if span is not None and self.spans is not None:
            # remote commit is instantaneous; the ack rides one latency back
            self.spans.record(arrival, ack_time, src, span, "ack_wire", "put", nbytes)
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, arrival, "put",
                (src, dst, dst_off, data, hid, ack_time, remote_rpc, nbytes, span),
            )
            return handle
        dst_seg = self.endpoints[dst].segment

        def commit_and_ack():
            dst_seg.write(dst_off, data)
            if remote_rpc is not None:
                fn, args, t_active = remote_rpc
                self._remote_cx_deliver(dst, fn, args, nbytes, t_active, arrival, span)
            sched.post_at(ack_time, lambda: handle.complete(ack_time))

        sched.post_at(arrival, commit_and_ack)
        return handle

    def _env_put(self, meta, fire_time: float) -> None:
        """Target half of a cross-shard put (network context, dst shard)."""
        src, dst, dst_off, data, hid, ack_time, remote_rpc, nbytes, span = meta
        self.endpoints[dst].segment.write(dst_off, data)
        if remote_rpc is not None:
            fn, args, t_active = remote_rpc
            self._remote_cx_deliver(dst, fn, args, nbytes, t_active, fire_time, span)
        if ack_time is not None:
            self._shard.emit_envelope(src, ack_time, "cpl", (hid, False, None))

    # ------------------------------------------------------------------- get
    def get_nb(
        self,
        src: int,
        dst: int,
        dst_off: int,
        nbytes: int,
        path: str = PATH_FMA,
        occ_scale: float = 1.0,
        span: Optional[tuple] = None,
    ) -> Handle:
        """One-sided get of ``nbytes`` from ``dst``'s segment at ``dst_off``.

        The handle completes when the data lands back at ``src``; the bytes
        are available as ``handle.data``.
        """
        if self._faults is not None:
            return self._rel_get(src, dst, dst_off, nbytes, path, occ_scale, span)
        sched = self.sched
        now = sched.now()
        ep = self.endpoints[src]
        ep.n_gets += 1
        handle = Handle(("get", src, dst, nbytes))
        # request: small control message
        _, req_arrival = self._inject(
            src, dst, self.network.header_bytes, PATH_FMA, now, 1.0, span, "get"
        )
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, req_arrival, "get",
                (src, dst, dst_off, nbytes, path, occ_scale, hid, span),
            )
            return handle
        dst_ep = self.endpoints[dst]
        node = self._node
        same = node[src] == node[dst]

        def service_request():
            # The destination NIC reads memory and streams the reply; no
            # destination CPU is involved (true RDMA read).
            data = dst_ep.segment.read(dst_off, nbytes)
            begin = max(req_arrival, dst_ep.nic_free_at)
            key = (nbytes, path, same)
            occ = self._occ_cache.get(key)
            if occ is None:
                occ = self._occ_cache[key] = self.network.occupancy(nbytes, path, same)
            occ *= occ_scale
            dst_ep.nic_free_at = begin + occ
            back = begin + occ + (self._lat_shm if same else self._lat_net)
            if self.metrics is not None:
                # the reply stream occupies the *destination* NIC
                self.metrics.rank(dst).nic_injected(nbytes, occ, begin - req_arrival)
            sp = self.spans
            if sp is not None and span is not None:
                sp.record(req_arrival, begin, dst, span, "remote_nic_wait", "get", nbytes)
                sp.record(begin, begin + occ, dst, span, "remote_occ", "get", nbytes)
                sp.record(begin + occ, back, dst, span, "wire_back", "get", nbytes)
            sched.post_at(back, lambda: handle.complete(back, data=data))

        sched.post_at(req_arrival, service_request)
        return handle

    def _env_get(self, meta, fire_time: float) -> None:
        """Target half of a cross-shard get: the destination NIC reads
        memory and streams the reply (network context, dst shard)."""
        src, dst, dst_off, nbytes, path, occ_scale, hid, span = meta
        if self._faults is not None:
            self._rel_get_service(
                src, dst, dst_off, nbytes, path, occ_scale, span, fire_time,
                lambda back, data: self._shard.emit_envelope(
                    src, back, "cpl", (hid, True, data)
                ),
            )
            return
        dst_ep = self.endpoints[dst]
        data = bytes(dst_ep.segment.read(dst_off, nbytes))
        begin = max(fire_time, dst_ep.nic_free_at)
        key = (nbytes, path, False)  # cross-shard is always cross-node
        occ = self._occ_cache.get(key)
        if occ is None:
            occ = self._occ_cache[key] = self.network.occupancy(nbytes, path, False)
        occ *= occ_scale
        dst_ep.nic_free_at = begin + occ
        back = begin + occ + self._lat_net
        if self.metrics is not None:
            self.metrics.rank(dst).nic_injected(nbytes, occ, begin - fire_time)
        sp = self.spans
        if sp is not None and span is not None:
            sp.record(fire_time, begin, dst, span, "remote_nic_wait", "get", nbytes)
            sp.record(begin, begin + occ, dst, span, "remote_occ", "get", nbytes)
            sp.record(begin + occ, back, dst, span, "wire_back", "get", nbytes)
        self._shard.emit_envelope(src, back, "cpl", (hid, True, data))

    # -------------------------------------------------------------------- AM
    def am_send(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        nbytes: int,
        path: str = PATH_FMA,
        token: Any = None,
        meta: Optional[dict] = None,
        occ_scale: float = 1.0,
        span: Optional[tuple] = None,
    ) -> Handle:
        """Send an active message; handle completes at source injection end.

        The destination is woken at arrival so a rank blocked in ``wait()``
        (user-level progress) can process the message; a rank that is busy
        computing will only see it at its next progress call.  ``span``
        rides the message metadata (``msg_meta["sid"]``) so the target's
        progress engine can correlate inbox dwell and dispatch.
        """
        if self._faults is not None:
            return self._rel_am(src, dst, tag, payload, nbytes, path, token, meta, occ_scale, span)
        sched = self.sched
        now = sched.now()
        ep = self.endpoints[src]
        ep.n_ams += 1
        handle = Handle(("am", src, dst, tag, nbytes))
        inj_done, arrival = self._inject(src, dst, nbytes, path, now, occ_scale, span, "am")
        msg_meta = dict(meta) if meta else None
        if self.metrics is not None:
            # lets the receiver account wire time (active -> complete dwell)
            if msg_meta is None:
                msg_meta = {}
            msg_meta["t_injected"] = now
        if span is not None and self.spans is not None:
            if msg_meta is None:
                msg_meta = {}
            msg_meta["sid"] = span
        if not self._is_local(dst):
            # source-side injection completion stays local; delivery crosses
            self._shard.emit_envelope(
                dst, arrival, "am",
                (src, dst, tag, payload, nbytes, token, msg_meta),
            )
            sched.post_at(inj_done, lambda: handle.complete(inj_done))
            return handle
        msg = AMMessage.acquire(src, dst, tag, payload, nbytes, arrival, token, msg_meta)
        inbox = self.endpoints[dst].inbox

        def deliver():
            inbox.deliver(msg)
            sched.wake(dst, arrival)

        sched.post_at(arrival, deliver)
        sched.post_at(inj_done, lambda: handle.complete(inj_done))
        return handle

    def _env_am(self, meta, fire_time: float) -> None:
        """Target half of a cross-shard AM: deliver + wake (dst shard)."""
        src, dst, tag, payload, nbytes, token, msg_meta = meta
        msg = AMMessage.acquire(src, dst, tag, payload, nbytes, fire_time, token, msg_meta)
        self.endpoints[dst].inbox.deliver(msg)
        self.sched.wake(dst, fire_time)

    # ------------------------------------------------------------- accumulate
    def accumulate_nb(
        self,
        src: int,
        dst: int,
        dst_off: int,
        data,
        dtype,
        op: str = "+",
        path: str = PATH_FMA,
        occ_scale: float = 1.0,
        span: Optional[tuple] = None,
    ) -> Handle:
        """Element-wise remote accumulate (MPI_Accumulate-class operation).

        The update applies at the target at arrival time with no target CPU
        (modeling the NIC/async-agent path Cray MPICH uses for passive
        target accumulates).  The handle completes at ack time.
        """
        if op not in ("+", "max", "min", "replace"):
            raise ValueError(f"unsupported accumulate op {op!r}")
        dt = np.dtype(dtype)
        arr = np.ascontiguousarray(np.asarray(data, dtype=dt))
        if self._faults is not None:
            return self._rel_acc(src, dst, dst_off, arr, dt, op, path, occ_scale, span)
        nbytes = arr.nbytes
        now = self.sched.now()
        ep = self.endpoints[src]
        ep.n_amos += 1
        handle = Handle(("acc", op, src, dst, nbytes))
        _, arrival = self._inject(src, dst, nbytes, path, now, occ_scale, span, "acc")
        same = self.machine.same_node(src, dst)
        ack_latency = self.network.latency(same)
        if span is not None and self.spans is not None:
            self.spans.record(arrival, arrival + ack_latency, src, span, "ack_wire", "acc", nbytes)
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, arrival, "acc",
                (src, dst, dst_off, arr.tobytes(), dt.str, op, hid, arrival + ack_latency),
            )
            return handle
        seg = self.endpoints[dst].segment

        def apply_and_ack():
            self._acc_apply(seg, dst_off, dt, arr, op)
            done = arrival + ack_latency
            self.sched.post_at(done, lambda: handle.complete(done))

        self.sched.post_at(arrival, apply_and_ack)
        return handle

    @staticmethod
    def _acc_apply(seg: Segment, dst_off: int, dt, arr, op: str) -> None:
        """Apply one accumulate update to a target segment in place."""
        cells = seg.view(dst_off, dt, len(arr))
        if op == "+":
            cells += arr
        elif op == "max":
            np.maximum(cells, arr, out=cells)
        elif op == "min":
            np.minimum(cells, arr, out=cells)
        else:  # replace
            cells[:] = arr

    def _env_acc(self, meta, fire_time: float) -> None:
        """Target half of a cross-shard accumulate (dst shard)."""
        src, dst, dst_off, raw, dtstr, op, hid, ack_time = meta
        dt = np.dtype(dtstr)
        self._acc_apply(self.endpoints[dst].segment, dst_off, dt, np.frombuffer(raw, dtype=dt), op)
        if ack_time is not None:
            self._shard.emit_envelope(src, ack_time, "cpl", (hid, False, None))

    # ------------------------------------------------------------------- AMO
    def amo(
        self,
        src: int,
        dst: int,
        dst_off: int,
        op: str,
        dtype,
        operands: tuple = (),
        span: Optional[tuple] = None,
    ) -> Handle:
        """NIC-offloaded remote atomic on one element at ``dst_off``.

        Supported ops: add, fetch_add, put, get, cas, min, max, bit_and,
        bit_or, bit_xor.  The handle completes when the result returns to
        the initiator; fetching ops expose the prior value via
        ``handle.data``.
        """
        if op not in _AMO_OPS:
            raise ValueError(f"unsupported atomic op {op!r}")
        dt = np.dtype(dtype)
        if self._faults is not None:
            return self._rel_amo(src, dst, dst_off, op, dt, operands, span)
        now = self.sched.now()
        ep = self.endpoints[src]
        ep.n_amos += 1
        handle = Handle(("amo", op, src, dst))
        amo_bytes = dt.itemsize + self.network.header_bytes
        _, arrival = self._inject(src, dst, amo_bytes, PATH_FMA, now, 1.0, span, "amo")
        same = self.machine.same_node(src, dst)
        back_latency = self.network.latency(same)
        if span is not None and self.spans is not None:
            # the NIC applies the atomic at arrival; result rides one latency back
            self.spans.record(arrival, arrival + back_latency, src, span, "ack_wire", "amo", dt.itemsize)
        if not self._is_local(dst):
            hid = self._register_handle(handle)
            self._shard.emit_envelope(
                dst, arrival, "amo",
                (src, dst, dst_off, op, dt.str, operands, hid, arrival + back_latency),
            )
            return handle
        seg = self.endpoints[dst].segment

        def apply():
            old = self._amo_apply(seg, dst_off, dt, op, operands)
            done = arrival + back_latency
            self.sched.post_at(done, lambda: handle.complete(done, data=old))

        self.sched.post_at(arrival, apply)
        return handle

    @staticmethod
    def _amo_apply(seg: Segment, dst_off: int, dt, op: str, operands: tuple):
        """Apply one atomic to a target segment; returns the prior value."""
        cell = seg.view(dst_off, dt, 1)
        old = cell[0].item()
        if op in ("add", "fetch_add"):
            cell[0] = old + operands[0]
        elif op == "put":
            cell[0] = operands[0]
        elif op == "get":
            pass
        elif op == "cas":
            expected, desired = operands
            if old == expected:
                cell[0] = desired
        elif op == "min":
            cell[0] = min(old, operands[0])
        elif op == "max":
            cell[0] = max(old, operands[0])
        elif op == "bit_and":
            cell[0] = old & operands[0]
        elif op == "bit_or":
            cell[0] = old | operands[0]
        elif op == "bit_xor":
            cell[0] = old ^ operands[0]
        return old

    def _env_amo(self, meta, fire_time: float) -> None:
        """Target half of a cross-shard atomic (dst shard)."""
        src, dst, dst_off, op, dtstr, operands, hid, done = meta
        old = self._amo_apply(self.endpoints[dst].segment, dst_off, np.dtype(dtstr), op, operands)
        if done is not None:
            self._shard.emit_envelope(src, done, "cpl", (hid, True, old))

    # ------------------------------------------------------------------ misc
    def peer_send_cutoff(self, rank: int) -> float:
        """Simulated time after which frames addressed to ``rank`` are
        never delivered (``inf`` for a rank that never crashes).

        This is the reliability layer's dead-peer send cutoff surfaced to
        upper layers: the replication/failover machinery
        (:mod:`repro.upcxx.replication`) consults it to decide whether an
        in-flight operation can still land at a peer, without reaching
        into the fault plan itself.
        """
        if self._faults is None:
            return float("inf")
        return self._faults.crash_cutoff(rank)

    def wake_on(self, handle: Handle, rank: int) -> None:
        """Convenience: wake ``rank`` when ``handle`` completes."""
        handle.on_complete(lambda h: self.sched.wake(rank, h.time_done))

    def stats(self) -> dict:
        """Aggregate counters across endpoints."""
        return {
            "puts": sum(e.n_puts for e in self.endpoints),
            "gets": sum(e.n_gets for e in self.endpoints),
            "ams": sum(e.n_ams for e in self.endpoints),
            "amos": sum(e.n_amos for e in self.endpoints),
            "bytes_out": sum(e.bytes_out for e in self.endpoints),
            "frames_retransmitted": sum(e.n_retx for e in self.endpoints),
            "frames_dropped": sum(e.n_dropped for e in self.endpoints),
            "frames_duplicated": sum(e.n_dup for e in self.endpoints),
            "acks": sum(e.n_acks for e in self.endpoints),
            "agg_batches": sum(e.agg_batches for e in self.endpoints),
            "agg_updates": sum(e.agg_updates for e in self.endpoints),
            "agg_credit_stall_s": sum(e.agg_credit_stall_s for e in self.endpoints),
            "kv_shed": sum(e.kv_shed for e in self.endpoints),
            "kv_failover_reads": sum(e.kv_failover_reads for e in self.endpoints),
            "kv_rereplicated": sum(e.kv_rereplicated for e in self.endpoints),
        }
