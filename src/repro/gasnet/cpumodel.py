"""Per-platform CPU cost model.

The paper evaluates on two Cori partitions whose *relative* serial speed is
what matters for our shapes:

- **Haswell**: 2.3 GHz Xeon E5-2698v3 — the reference (factor 1.0).
- **KNL**: 1.4 GHz Xeon Phi 7250 — much slower serial core.  Software
  overheads (runtime bookkeeping, serialization, hash-table work) scale by
  ``serial_factor``; wire times do not.

All costs below are software-path costs *charged by client layers* through
this model, so UPC++ and MPI can have distinct profiles over identical
hardware.  Baseline magnitudes follow published instruction-path
measurements for GASNet-EX/Cray MPICH-era runtimes (fractions of a
microsecond per operation on Haswell).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GiB, US


@dataclass(frozen=True)
class CpuModel:
    """Costs of CPU-side work on one platform."""

    name: str
    #: multiplier on every software-path cost (KNL ~ 2.6x slower serial)
    serial_factor: float
    #: memory copy / serialization throughput (bytes/second)
    copy_bw: float
    #: cost of hashing + std::unordered_map-style insert (excluding payload copy)
    map_insert: float = 0.20 * US
    #: cost of a map lookup
    map_lookup: float = 0.12 * US
    #: function-call/lambda dispatch overhead
    call_dispatch: float = 0.05 * US
    #: dense floating point throughput (flops/second) for factorization work
    flop_rate: float = 2.0e9
    #: scattered read-modify-write throughput (updates/second): indexed
    #: accumulation into a distributed front is cache-unfriendly and runs
    #: far below streaming rate on both platforms
    scatter_rate: float = 0.45e9

    def t(self, base_seconds: float) -> float:
        """Scale a Haswell-calibrated software cost to this platform."""
        return base_seconds * self.serial_factor

    def copy_time(self, nbytes: int) -> float:
        """Time to copy/serialize ``nbytes`` through the CPU."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return nbytes / self.copy_bw

    def accumulate_time(self, n_values: int) -> float:
        """Time to scatter-accumulate ``n_values`` doubles (indexed RMW)."""
        if n_values < 0:
            raise ValueError(f"negative count: {n_values}")
        return n_values / self.scatter_rate


#: Cori Haswell: 2.3 GHz Xeon E5-2698v3.
HASWELL = CpuModel(
    name="haswell",
    serial_factor=1.0,
    copy_bw=8.0 * GiB,
    flop_rate=2.4e9,
    scatter_rate=0.45e9,
)

#: Cori KNL: 1.4 GHz Xeon Phi 7250 — slow serial core, slower per-core
#: memory path for pointer-chasing workloads.
KNL = CpuModel(
    name="knl",
    serial_factor=2.6,
    copy_bw=3.2 * GiB,
    flop_rate=1.1e9,
    scatter_rate=0.17e9,
)


def platform_cpu(name: str) -> CpuModel:
    """Look up a platform CPU model by name."""
    try:
        return {"haswell": HASWELL, "knl": KNL}[name.lower()]
    except KeyError:
        raise ValueError(f"unknown platform {name!r}; expected 'haswell' or 'knl'") from None
