"""Shared segments: the registered memory every rank exposes for RMA.

Each rank owns one :class:`Segment` — a contiguous byte region that remote
ranks may read and write through the conduit (the PGAS "global memory" of
Fig. 1 in the paper).  A first-fit free-list allocator with coalescing
implements ``upcxx::allocate``/``deallocate``.

Typed views are provided through numpy (``view(offset, dtype, count)``),
which is how the UPC++ layer implements typed global pointers without
copying.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class SegmentAllocationError(MemoryError):
    """The shared segment cannot satisfy an allocation."""


class Segment:
    """A rank's registered shared segment with a first-fit allocator.

    Alignment: all allocations are rounded up to ``align`` bytes (default
    64, a cache line), so successive allocations never share a line —
    matching how real PGAS allocators avoid false sharing.
    """

    def __init__(self, size: int, owner_rank: int, align: int = 64):
        if size <= 0:
            raise ValueError(f"segment size must be positive, got {size}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError(f"alignment must be a positive power of two, got {align}")
        self.size = size
        self.owner_rank = owner_rank
        self.align = align
        self.mem = bytearray(size)
        # free list: sorted list of (offset, length)
        self._free: List[Tuple[int, int]] = [(0, size)]
        self._live: dict = {}  # offset -> length
        self.bytes_in_use = 0
        self.peak_in_use = 0
        self.n_allocs = 0

    # ------------------------------------------------------------- allocator
    def _round(self, n: int) -> int:
        a = self.align
        return (n + a - 1) & ~(a - 1)

    def allocate(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the segment offset.

        ``nbytes == 0`` is legal (UPC++ ``allocate(0)``/``new_array<T>(0)``
        are): it consumes one alignment unit so the returned offset is a
        distinct, freeable allocation.  Raises
        :class:`SegmentAllocationError` when no hole fits.
        """
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        need = self._round(nbytes) if nbytes else self.align
        for i, (off, length) in enumerate(self._free):
            if length >= need:
                if length == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, length - need)
                self._live[off] = need
                self.bytes_in_use += need
                self.peak_in_use = max(self.peak_in_use, self.bytes_in_use)
                self.n_allocs += 1
                return off
        raise SegmentAllocationError(
            f"segment of rank {self.owner_rank}: cannot allocate {nbytes} bytes "
            f"({self.bytes_in_use}/{self.size} in use, {len(self._free)} holes)"
        )

    def deallocate(self, offset: int) -> None:
        """Free a previous allocation by its offset."""
        try:
            length = self._live.pop(offset)
        except KeyError:
            raise ValueError(f"offset {offset} is not a live allocation") from None
        self.bytes_in_use -= length
        # insert into sorted free list and coalesce neighbors
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, length))
        # coalesce with next
        if lo + 1 < len(self._free):
            noff, nlen = self._free[lo + 1]
            if offset + length == noff:
                self._free[lo] = (offset, length + nlen)
                del self._free[lo + 1]
        # coalesce with previous
        if lo > 0:
            poff, plen = self._free[lo - 1]
            off2, len2 = self._free[lo]
            if poff + plen == off2:
                self._free[lo - 1] = (poff, plen + len2)
                del self._free[lo]

    def allocation_size(self, offset: int) -> int:
        """Rounded size of the live allocation at ``offset``."""
        return self._live[offset]

    def is_live(self, offset: int) -> bool:
        return offset in self._live

    # ------------------------------------------------------------- accessors
    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside segment of size {self.size}"
            )

    def write(self, offset: int, data) -> None:
        """Raw byte store (used by the conduit to commit remote puts)."""
        data = bytes(data) if not isinstance(data, (bytes, bytearray, memoryview)) else data
        n = len(data)
        self._check_range(offset, n)
        self.mem[offset : offset + n] = data

    def read(self, offset: int, nbytes: int) -> bytes:
        """Raw byte load (used by the conduit to service remote gets)."""
        self._check_range(offset, nbytes)
        return bytes(self.mem[offset : offset + nbytes])

    def view(self, offset: int, dtype, count: int) -> np.ndarray:
        """Zero-copy typed numpy view into the segment."""
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * count
        self._check_range(offset, nbytes)
        return np.frombuffer(memoryview(self.mem)[offset : offset + nbytes], dtype=dt)

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    def check_invariants(self) -> None:
        """Verify allocator consistency (tests/property checks)."""
        regions = sorted(
            [(off, length, "free") for off, length in self._free]
            + [(off, length, "live") for off, length in self._live.items()]
        )
        pos = 0
        for off, length, _kind in regions:
            if off < pos:
                raise AssertionError(f"overlapping regions at offset {off}")
            pos = off + length
        if pos > self.size:
            raise AssertionError("regions extend past segment end")
        covered = sum(length for _, length, _ in regions)
        if covered != self.size:
            raise AssertionError(f"coverage {covered} != size {self.size}")
        # free list must be sorted and fully coalesced
        for (o1, l1), (o2, _l2) in zip(self._free, self._free[1:]):
            if o1 + l1 >= o2 and o1 + l1 == o2:
                raise AssertionError(f"uncoalesced free blocks at {o1}+{l1} and {o2}")
            if o2 <= o1:
                raise AssertionError("free list not sorted")
