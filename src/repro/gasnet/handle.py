"""Completion handles for conduit operations.

A :class:`Handle` is GASNet's notification object: the conduit marks it
complete (in network context) at the simulated instant the operation's
completion condition is met, and runs any attached callbacks.  Client
layers attach callbacks that move runtime bookkeeping forward (e.g. the
UPC++ runtime promotes the operation's promise from *actQ* to *compQ*) and
wake the owning rank if it is blocked in ``wait()``.

Callbacks run with the scheduler lock held — they must be cheap,
non-blocking, and must not execute user code.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class Handle:
    """One in-flight conduit operation's completion state.

    ``op`` is a diagnostic label; hot paths pass a cheap tuple like
    ``("put", src, dst, nbytes)`` rather than a formatted string.  The
    callback list is allocated lazily — most handles get exactly zero or
    one callback.
    """

    __slots__ = ("op", "done", "time_done", "_callbacks", "data")

    def __init__(self, op: object = "op"):
        self.op = op
        self.done = False
        self.time_done: Optional[float] = None
        self._callbacks: Optional[List[Callable[["Handle"], None]]] = None
        #: payload slot (e.g. bytes fetched by a get)
        self.data = None

    def on_complete(self, fn: Callable[["Handle"], None]) -> None:
        """Attach a network-context callback; fires immediately if done."""
        if self.done:
            fn(self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def complete(self, time: float, data=None) -> None:
        """Mark complete at simulated ``time`` (network context only)."""
        if self.done:
            raise RuntimeError(f"handle {self.op!r} completed twice")
        self.done = True
        self.time_done = time
        if data is not None:
            self.data = data
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"done@{self.time_done}" if self.done else "pending"
        return f"<Handle {self.op} {state}>"
