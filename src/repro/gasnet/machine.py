"""Machine topology: how ranks map onto nodes.

Cori-style placement: ranks are laid out in contiguous blocks of
``procs_per_node`` (rank r lives on node r // ppn), matching the default
SLURM block distribution used in the paper's runs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Machine:
    """A homogeneous cluster of ``n_nodes`` nodes, ``procs_per_node`` each.

    The total rank count is ``n_nodes * procs_per_node``; jobs may use fewer
    ranks (the tail of the last node stays idle), mirroring how a real
    allocation can be under-subscribed.
    """

    n_nodes: int
    procs_per_node: int
    name: str = "machine"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.procs_per_node < 1:
            raise ValueError(f"procs_per_node must be >= 1, got {self.procs_per_node}")

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.procs_per_node

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank`` (block placement)."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank // self.procs_per_node

    def same_node(self, a: int, b: int) -> bool:
        """Whether two ranks share a node (=> shared-memory data path)."""
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> range:
        """All ranks placed on ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        lo = node * self.procs_per_node
        return range(lo, lo + self.procs_per_node)

    @classmethod
    def for_ranks(cls, n_ranks: int, procs_per_node: int, name: str = "machine") -> "Machine":
        """Smallest machine of ``procs_per_node``-wide nodes fitting ``n_ranks``."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        n_nodes = -(-n_ranks // procs_per_node)  # ceil division
        return cls(n_nodes=n_nodes, procs_per_node=procs_per_node, name=name)
