"""Wire-level network model (the simulated Cray Aries fabric).

The model separates two hardware transfer paths, mirroring Aries:

- **FMA** (Fused Memory Access): CPU-driven stores into the NIC; very low
  startup, moderate bandwidth.  Used for small transfers and AM headers.
- **BTE** (Block Transfer Engine): DMA offload; a startup cost, then full
  link bandwidth.  Used for large transfers.

A transfer from rank *s* to rank *d* consists of:

1. **NIC injection occupancy** at the source: the NIC link can carry one
   message at a time, so a flood of messages serializes on
   ``occupancy(nbytes, path)``.  This is what limits flood bandwidth once
   software injection overhead stops being the bottleneck.
2. **Wire latency**: ``latency_oneway`` (much smaller intra-node).
3. **Delivery** at the destination.

Numbers are calibrated against published Aries/GASNet-EX measurements
(~1.3 us round trip small put, ~10 GiB/s per-NIC streaming bandwidth) so
the microbenchmark *shapes* in the paper's Fig. 3 are reproduced; absolute
values are representative, not authoritative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GiB, KiB, US

PATH_FMA = "fma"
PATH_BTE = "bte"


@dataclass(frozen=True)
class NetworkModel:
    """Parametric network timing model.

    All times in seconds, bandwidths in bytes/second.
    """

    name: str = "generic"
    latency_oneway: float = 0.65 * US
    latency_oneway_shm: float = 0.15 * US
    bw_fma: float = 7.6 * GiB
    bw_bte: float = 10.2 * GiB
    bw_shm: float = 14.0 * GiB
    bte_startup: float = 0.12 * US
    header_bytes: int = 64  # control/header traffic per message
    # ---- device (GPU) memory path: PCIe-class staging link per node ----
    pcie_latency: float = 1.80 * US
    pcie_bw: float = 12.0 * GiB
    #: same-device copies (HBM-to-HBM through the GPU's memory system)
    device_local_bw: float = 40.0 * GiB

    def pcie_time(self, nbytes: int) -> float:
        """One traversal of the host<->device link."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.pcie_latency + nbytes / self.pcie_bw

    def occupancy(self, nbytes: int, path: str, same_node: bool) -> float:
        """NIC (or memory port) time consumed injecting one message."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        total = nbytes + self.header_bytes
        if same_node:
            return total / self.bw_shm
        if path == PATH_FMA:
            return total / self.bw_fma
        if path == PATH_BTE:
            return self.bte_startup + total / self.bw_bte
        raise ValueError(f"unknown path {path!r}")

    def latency(self, same_node: bool) -> float:
        """One-way propagation latency."""
        return self.latency_oneway_shm if same_node else self.latency_oneway

    def best_path(self, nbytes: int, threshold: int) -> str:
        """Pick FMA below ``threshold`` bytes, BTE at/above it.

        The threshold is a *software* decision — GASNet-EX and Cray MPICH
        choose differently, which is one source of the paper's Fig. 3b gap —
        so it is a parameter, not a constant of the hardware.
        """
        return PATH_FMA if nbytes < threshold else PATH_BTE


@dataclass(frozen=True)
class AriesNetwork(NetworkModel):
    """The Cray Aries dragonfly defaults used for Cori in this reproduction."""

    name: str = "aries"


def aries() -> AriesNetwork:
    """Factory for the default Aries model."""
    return AriesNetwork()
