"""Active Messages: typed envelopes and per-rank inboxes.

An AM carries an opaque payload plus a client-layer handler tag from a
source to a destination rank.  The conduit appends arriving messages to the
destination's :class:`AMInbox` at wire-arrival time and wakes the rank;
the message's *handler runs only when the destination polls* (the paper's
attentiveness requirement — a rank buried in computation stalls incoming
RPCs).
"""

from __future__ import annotations

from collections import deque
from typing import Any, List, Optional


class AMMessage:
    """One active message as it sits in an inbox.

    Envelopes are allocated per message on the hot path, so the class is
    slotted and recycled through a free list: :meth:`acquire` reuses a
    released envelope when one is available, and a client layer that has
    fully consumed a message (handler dispatched, no field retained) may
    hand it back with :meth:`release`.  Releasing is strictly optional —
    layers that retain messages (e.g. MPI unexpected-message queues)
    simply never release them.
    """

    __slots__ = ("src", "dst", "tag", "payload", "nbytes", "arrival", "token", "meta")

    #: free list of released envelopes (bounded; see release())
    _pool: List["AMMessage"] = []
    _POOL_MAX = 256

    def __init__(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        nbytes: int,
        arrival: float = 0.0,
        token: Any = None,
        meta: Optional[dict] = None,
    ):
        self.src = src
        self.dst = dst
        #: client-layer dispatch tag (e.g. "upcxx.rpc", "mpi.eager")
        self.tag = tag
        #: opaque payload object (already-serialized bytes or a token structure)
        self.payload = payload
        #: payload size in bytes as it traveled on the wire
        self.nbytes = nbytes
        #: simulated arrival time at the destination NIC
        self.arrival = arrival
        #: optional client-layer correlation token (reply routing)
        self.token = token
        #: optional observability tags (None when nothing was attached)
        self.meta = meta

    @classmethod
    def acquire(
        cls,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        nbytes: int,
        arrival: float = 0.0,
        token: Any = None,
        meta: Optional[dict] = None,
    ) -> "AMMessage":
        """Pooled constructor: reuse a released envelope when available."""
        pool = cls._pool
        if pool:
            msg = pool.pop()
            msg.src = src
            msg.dst = dst
            msg.tag = tag
            msg.payload = payload
            msg.nbytes = nbytes
            msg.arrival = arrival
            msg.token = token
            msg.meta = meta
            return msg
        return cls(src, dst, tag, payload, nbytes, arrival, token, meta)

    @classmethod
    def release(cls, msg: "AMMessage") -> None:
        """Return a fully-consumed envelope to the free list.

        The caller asserts nothing retains ``msg`` (payload references may
        live on; the envelope itself must be dead).
        """
        pool = cls._pool
        if len(pool) < cls._POOL_MAX:
            msg.payload = None
            msg.token = None
            msg.meta = None
            pool.append(msg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AMMessage(src={self.src}, dst={self.dst}, tag={self.tag!r}, "
            f"nbytes={self.nbytes}, arrival={self.arrival})"
        )


class AMInbox:
    """A destination rank's queue of arrived-but-unprocessed AMs."""

    __slots__ = ("rank", "_queue", "n_received", "n_polled")

    def __init__(self, rank: int):
        self.rank = rank
        self._queue: deque = deque()
        self.n_received = 0
        self.n_polled = 0

    def deliver(self, msg: AMMessage) -> None:
        """Append an arrived message (network context)."""
        self._queue.append(msg)
        self.n_received += 1

    def poll(self, now: float) -> Optional[AMMessage]:
        """Pop the oldest message that has arrived by ``now`` (rank context).

        Arrival times are nondecreasing in the queue (FIFO wire per pair and
        global event ordering), so checking the head suffices.
        """
        if self._queue and self._queue[0].arrival <= now:
            self.n_polled += 1
            return self._queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def has_due(self, now: float) -> bool:
        """Whether a message is ready to be processed at time ``now``."""
        return bool(self._queue) and self._queue[0].arrival <= now
