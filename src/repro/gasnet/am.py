"""Active Messages: typed envelopes and per-rank inboxes.

An AM carries an opaque payload plus a client-layer handler tag from a
source to a destination rank.  The conduit appends arriving messages to the
destination's :class:`AMInbox` at wire-arrival time and wakes the rank;
the message's *handler runs only when the destination polls* (the paper's
attentiveness requirement — a rank buried in computation stalls incoming
RPCs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class AMMessage:
    """One active message as it sits in an inbox."""

    src: int
    dst: int
    #: client-layer dispatch tag (e.g. "upcxx.rpc", "mpi.eager")
    tag: str
    #: opaque payload object (already-serialized bytes or a token structure)
    payload: Any
    #: payload size in bytes as it traveled on the wire
    nbytes: int
    #: simulated arrival time at the destination NIC
    arrival: float = 0.0
    #: optional client-layer correlation token (reply routing)
    token: Any = None
    meta: dict = field(default_factory=dict)


class AMInbox:
    """A destination rank's queue of arrived-but-unprocessed AMs."""

    __slots__ = ("rank", "_queue", "n_received", "n_polled")

    def __init__(self, rank: int):
        self.rank = rank
        self._queue: deque = deque()
        self.n_received = 0
        self.n_polled = 0

    def deliver(self, msg: AMMessage) -> None:
        """Append an arrived message (network context)."""
        self._queue.append(msg)
        self.n_received += 1

    def poll(self, now: float) -> Optional[AMMessage]:
        """Pop the oldest message that has arrived by ``now`` (rank context).

        Arrival times are nondecreasing in the queue (FIFO wire per pair and
        global event ordering), so checking the head suffices.
        """
        if self._queue and self._queue[0].arrival <= now:
            self.n_polled += 1
            return self._queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def has_due(self, now: float) -> bool:
        """Whether a message is ready to be processed at time ``now``."""
        return bool(self._queue) and self._queue[0].arrival <= now
