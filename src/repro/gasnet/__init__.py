"""GASNet-EX substitute: the communication substrate UPC++ runs on.

The real UPC++ runtime sits on GASNet-EX, which provides one-sided RMA
(put/get), Active Messages (AM), shared segments, and completion
notification over the Cray Aries NIC.  This package reproduces that
contract over the deterministic DES in :mod:`repro.sim`:

- :mod:`repro.gasnet.machine` — node/rank topology (nodes x procs-per-node);
- :mod:`repro.gasnet.network` — the wire model: one-way latency, FMA/BTE
  bandwidth paths, per-NIC injection serialization;
- :mod:`repro.gasnet.cpumodel` — per-platform software cost model
  (Haswell vs. KNL serial-speed ratio, per-byte copy/serialize costs);
- :mod:`repro.gasnet.segment` — the shared segment and its allocator;
- :mod:`repro.gasnet.handle` — completion handles;
- :mod:`repro.gasnet.am` — active-message inboxes and dispatch bookkeeping;
- :mod:`repro.gasnet.conduit` — ties it together: ``put_nb``/``get_nb``/
  ``am_send``/``amo`` plus per-rank polling.

The conduit models *hardware* time only (NIC occupancy, wire latency,
remote commit).  Software CPU overheads are charged by the client layers
(:mod:`repro.upcxx`, :mod:`repro.mpisim`) so that the two stacks can differ
exactly where the paper says they differ.
"""

from repro.gasnet.machine import Machine
from repro.gasnet.network import NetworkModel, AriesNetwork, PATH_FMA, PATH_BTE
from repro.gasnet.cpumodel import CpuModel, HASWELL, KNL
from repro.gasnet.segment import Segment, SegmentAllocationError
from repro.gasnet.handle import Handle
from repro.gasnet.am import AMMessage, AMInbox
from repro.gasnet.conduit import Conduit

__all__ = [
    "Machine",
    "NetworkModel",
    "AriesNetwork",
    "PATH_FMA",
    "PATH_BTE",
    "CpuModel",
    "HASWELL",
    "KNL",
    "Segment",
    "SegmentAllocationError",
    "Handle",
    "AMMessage",
    "AMInbox",
    "Conduit",
]
