"""Small statistics helpers for benchmark post-processing.

The paper reports "best of 10 batch jobs" for the microbenchmarks and "mean
of 10 runs" for the application motifs; :func:`summarize` captures all the
aggregates either convention needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Aggregate statistics over a sample of measurements."""

    n: int
    mean: float
    minimum: float
    maximum: float
    median: float
    stdev: float
    # tail percentiles (linear interpolation between order statistics);
    # defaulted so older call sites constructing Summary directly still work
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    p999: float = 0.0

    @property
    def best(self) -> float:
        """Alias for ``minimum`` (paper convention: best == lowest time)."""
        return self.minimum


def _percentile_sorted(xs: Sequence[float], q: float) -> float:
    """``q``-th percentile of a sorted sample, linearly interpolated
    between neighboring order statistics (numpy's default convention)."""
    n = len(xs)
    if n == 1:
        return xs[0]
    pos = (n - 1) * (q / 100.0)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= n:
        return xs[-1]
    return xs[lo] + frac * (xs[lo + 1] - xs[lo])


def summarize(samples: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` for a non-empty sample sequence.

    Samples must be finite: a NaN would sort arbitrarily (every comparison
    against it is false), silently corrupting min/median/best for any
    figure built on the summary, so NaN/inf raise :class:`ValueError`
    instead.
    """
    xs = []
    for x in samples:
        v = float(x)
        if not math.isfinite(v):
            raise ValueError(f"summarize() requires finite samples, got {v!r}")
        xs.append(v)
    if not xs:
        raise ValueError("summarize() requires at least one sample")
    xs.sort()
    n = len(xs)
    # fsum + clamping: a naive sum()/n can land one ulp outside [min, max]
    # (e.g. three identical samples), breaking min <= mean <= max
    mean = min(max(math.fsum(xs) / n, xs[0]), xs[-1])
    if n % 2:
        median = xs[n // 2]
    else:
        median = 0.5 * (xs[n // 2 - 1] + xs[n // 2])
    if n > 1:
        var = math.fsum((x - mean) ** 2 for x in xs) / (n - 1)
    else:
        var = 0.0
    return Summary(
        n=n,
        mean=mean,
        minimum=xs[0],
        maximum=xs[-1],
        median=median,
        stdev=math.sqrt(var),
        p50=_percentile_sorted(xs, 50),
        p95=_percentile_sorted(xs, 95),
        p99=_percentile_sorted(xs, 99),
        p999=_percentile_sorted(xs, 99.9),
    )


def geomean(samples: Iterable[float]) -> float:
    """Geometric mean of strictly positive samples."""
    logs = []
    for x in samples:
        x = float(x)
        if not math.isfinite(x):
            raise ValueError(f"geomean requires finite samples, got {x!r}")
        if x <= 0:
            raise ValueError(f"geomean requires positive samples, got {x}")
        logs.append(math.log(x))
    if not logs:
        raise ValueError("geomean() requires at least one sample")
    return math.exp(sum(logs) / len(logs))


def speedup(baseline: float, contender: float) -> float:
    """Speedup of ``contender`` relative to ``baseline`` for time-like metrics.

    Returns >1 when the contender is faster (lower time).
    """
    if contender <= 0:
        raise ValueError(f"contender time must be positive, got {contender}")
    return baseline / contender
