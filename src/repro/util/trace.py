"""Bounded event tracing for debugging simulated runs.

The simulator can record a ring buffer of (time, rank, kind, detail) events.
Tracing is off by default (zero overhead beyond a predicate check) and is
mainly used by tests asserting determinism: two runs with the same seed must
produce byte-identical traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    time: float
    rank: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time * 1e6:12.3f}us r{self.rank:<4d}] {self.kind}: {self.detail}"


class TraceBuffer:
    """A bounded in-memory trace.

    ``capacity=None`` keeps everything (tests); a finite capacity keeps the
    most recent events (debugging long runs).
    """

    def __init__(self, capacity: Optional[int] = None, enabled: bool = True):
        self.enabled = enabled
        self._events: deque = deque(maxlen=capacity)

    def record(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        if self.enabled:
            self._events.append(TraceEvent(time, rank, kind, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()

    def fingerprint(self) -> int:
        """Order-sensitive hash of the whole trace (determinism checks)."""
        acc = 0
        for ev in self._events:
            acc = hash((acc, round(ev.time, 12), ev.rank, ev.kind, ev.detail))
        return acc

    def dump(self, limit: Optional[int] = None) -> str:
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)
