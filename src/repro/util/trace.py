"""Bounded event tracing for debugging simulated runs.

The simulator can record a ring buffer of (time, rank, kind, detail) events.
Tracing is off by default (zero overhead beyond a predicate check) and is
mainly used by tests asserting determinism: two runs with the same seed must
produce byte-identical traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    time: float
    rank: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time * 1e6:12.3f}us r{self.rank:<4d}] {self.kind}: {self.detail}"


class TraceBuffer:
    """A bounded in-memory trace.

    ``capacity=None`` keeps everything (tests); a finite capacity keeps the
    most recent events (debugging long runs).
    """

    def __init__(self, capacity: Optional[int] = None, enabled: bool = True):
        self.enabled = enabled
        self._events: deque = deque(maxlen=capacity)

    def record(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        if self.enabled:
            self._events.append(TraceEvent(time, rank, kind, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()

    def fingerprint(self) -> int:
        """Order-sensitive hash of the whole trace (determinism checks)."""
        acc = 0
        for ev in self._events:
            acc = hash((acc, round(ev.time, 12), ev.rank, ev.kind, ev.detail))
        return acc

    def canonical_events(self) -> list:
        """Events stably sorted by ``(time, rank)``.

        Within one rank, records are appended in that rank's execution
        order on every backend; *across* ranks the interleaving at equal
        timestamps depends on the scheduler's internal dispatch order,
        which legitimately differs between the single-process and sharded
        backends.  The canonical order — stable sort by (time, rank),
        preserving each rank's own subsequence — is backend-invariant.
        """
        return sorted(self._events, key=lambda ev: (ev.time, ev.rank))

    def canonical_fingerprint(self) -> int:
        """Order-sensitive hash of the canonical (backend-invariant) trace."""
        acc = 0
        for ev in self.canonical_events():
            acc = hash((acc, round(ev.time, 12), ev.rank, ev.kind, ev.detail))
        return acc

    def extend_canonical(self, event_lists) -> None:
        """Merge per-shard event lists into this buffer in canonical order.

        ``event_lists`` is an iterable of per-shard event sequences (shard
        order).  Concatenation preserves each rank's execution order (a
        rank lives on exactly one shard); the stable (time, rank) sort then
        produces the same canonical stream a single-process run would.
        """
        merged: list = []
        for events in event_lists:
            merged.extend(events)
        merged.sort(key=lambda ev: (ev.time, ev.rank))
        self._events.extend(merged)

    def dump(self, limit: Optional[int] = None) -> str:
        events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)
