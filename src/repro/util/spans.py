"""Causal span tracing for simulated runs (observability layer).

A *span* is one phase of one operation's lifecycle, tagged with a
correlation id that threads the whole chain together: for an ``rput``,
``inject_sw`` (API call + defQ dwell) → ``nic_wait`` (backpressure) →
``nic_occ`` (injection occupancy) → ``wire`` (propagation) →
``ack_wire`` (remote commit acknowledgment) → ``compq`` (staged,
waiting for user progress — the attentiveness gap) → ``exec_sw``
(promise fulfillment).  RPCs add the target-side ``inbox`` dwell and
dispatch phases, and their replies are child operations linked to the
request via ``parent``.

Design rules (shared with :class:`repro.util.metrics.Metrics`):

- **Passive.**  Recording never reads a clock, posts an event, or
  charges CPU time; all times arrive as explicit arguments.  Enabling
  spans therefore cannot perturb a single simulated timestamp.
- **Off by default.**  When no buffer is installed the instrumented
  layers skip every hook behind one ``is not None`` check.
- **Deterministic.**  Correlation ids are ``(initiator_rank, seq)``
  with a per-rank counter, so they are identical on every scheduler
  backend; records are plain tuples that cross shard boundaries by
  pickling, and the canonical order (stable sort by
  ``(t0, t1, rank, sid, phase)``) is backend-invariant, exactly like
  :meth:`repro.util.trace.TraceBuffer.canonical_events`.
  :meth:`SpanBuffer.fingerprint` is a content hash of that canonical
  stream — bit-identical across the coroutine, thread, and sharded
  backends (pinned by ``tests/test_backend_determinism.py``), and
  process-stable (no dependence on ``PYTHONHASHSEED``).

A record is the tuple ``(t0, t1, rank, sid, phase, kind, nbytes,
parent)``:

========  ==========================================================
field     meaning
========  ==========================================================
t0, t1    simulated start/end of the phase (seconds); ``t0 <= t1``
rank      the rank whose resource/context the phase describes
sid       operation correlation id ``(initiator_rank, seq)``
phase     lifecycle phase name (see :data:`PHASES`)
kind      operation family ("rput", "rpc", ...) — display only
nbytes    payload size the phase moved/served (0 if n/a)
parent    ``sid`` of the causally-parent operation, or ``None``
========  ==========================================================
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Optional, Tuple

#: every phase the instrumented layers emit, with the attribution
#: category the critical-path report folds it into
PHASES = {
    # initiator software: API overhead, defQ dwell, injection charges
    "inject_sw": "software",
    # completion software: compQ execution (promise fulfillment, RPC
    # dispatch + body, reply deserialization)
    "exec_sw": "software",
    # NIC queueing behind earlier injections (source or target NIC)
    "nic_wait": "backpressure",
    "remote_nic_wait": "backpressure",
    # NIC injection occupancy (bytes streaming onto the wire)
    "nic_occ": "occupancy",
    "remote_occ": "occupancy",
    # propagation latency legs
    "wire": "wire",
    "wire_back": "wire",
    "ack_wire": "wire",
    # waiting on the *target's* or initiator's progress engine
    "inbox": "attentiveness",
    "compq": "attentiveness",
    # reliability layer: retransmission attempts (fault injection);
    # one span per re-sent frame, [backoff fire, re-injection done]
    "retry": "retry",
    # aggregation layer (repro.upcxx.aggregator): sender stalled on
    # per-peer flow-control credits [stall begin, credit returned]
    "credit_wait": "backpressure",
    # hot-key read served from the local cache (the map_lookup charge)
    "cache_hit": "cache",
    # replication layer: rank-death exclusion handler (cache purge,
    # credit restoration, read failover, write settlement)
    "death_exclude": "recovery",
    # stage-1 re-replication ship [issue, recruit's ack] restoring the
    # replication factor after a detected death
    "rereplicate": "recovery",
    # drain-time replace-sync sweep making every replica exact
    "anti_entropy": "recovery",
}

SpanRecord = Tuple[float, float, int, tuple, str, str, int, Optional[tuple]]

#: canonical sort key — backend-invariant for the same reason as
#: TraceBuffer: a rank's own records are appended in its execution
#: order on every backend, and the key is unique per record (one op
#: never emits the same phase twice at identical times on one rank)
def _canon_key(r: SpanRecord):
    return (r[0], r[1], r[2], r[3], r[4])


class SpanBuffer:
    """Append-only buffer of causal span records.

    Pass one to ``upcxx.run_spmd(spans=...)``; render with
    ``python -m repro.tools.report`` or export to Perfetto via
    :func:`repro.util.trace_export.chrome_trace_span_events`.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._records: List[SpanRecord] = []

    # ------------------------------------------------------------ recording
    def record(
        self,
        t0: float,
        t1: float,
        rank: int,
        sid: tuple,
        phase: str,
        kind: str,
        nbytes: int = 0,
        parent: Optional[tuple] = None,
    ) -> None:
        """Record one phase (any context; times are explicit arguments)."""
        self._records.append((t0, t1, rank, sid, phase, kind, nbytes, parent))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()

    # ------------------------------------------------------- canonical view
    def canonical_records(self) -> List[SpanRecord]:
        """Records stably sorted by ``(t0, t1, rank, sid, phase)``."""
        return sorted(self._records, key=_canon_key)

    def extend_canonical(self, record_lists: Iterable[Iterable[SpanRecord]]) -> None:
        """Merge per-shard record lists in canonical order (parent side).

        Concatenation preserves each rank's own append order (a rank
        lives on exactly one shard); the stable sort then reproduces the
        canonical stream a single-process run would yield.
        """
        merged: List[SpanRecord] = []
        for records in record_lists:
            merged.extend(tuple(r) for r in records)
        merged.sort(key=_canon_key)
        self._records.extend(merged)

    def fingerprint(self) -> str:
        """Content hash of the canonical stream (hex digest).

        Uses blake2b over a rounded repr, so the digest is identical
        across backends, processes, and interpreter hash seeds.
        """
        h = hashlib.blake2b(digest_size=16)
        for r in self.canonical_records():
            h.update(
                repr(
                    (round(r[0], 12), round(r[1], 12), r[2], r[3], r[4], r[5], r[6], r[7])
                ).encode()
            )
        return h.hexdigest()

    # --------------------------------------------------------------- export
    def as_dicts(self) -> List[dict]:
        """Canonical records as JSON-ready dicts."""
        return [
            {
                "t0": r[0],
                "t1": r[1],
                "rank": r[2],
                "sid": list(r[3]),
                "phase": r[4],
                "kind": r[5],
                "nbytes": r[6],
                "parent": None if r[7] is None else list(r[7]),
            }
            for r in self.canonical_records()
        ]
