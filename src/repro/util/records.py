"""Benchmark result containers and plain-text table rendering.

Every figure-reproduction benchmark produces one or more :class:`BenchSeries`
(one line in the paper's plot) collected into a :class:`BenchTable` (the
whole figure).  The table renders as aligned monospace text so benchmark
output can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence


@dataclass
class BenchSeries:
    """One plotted line: a label plus (x, y) points.

    ``x`` is the sweep variable (message size, process count, ...) and ``y``
    the metric (seconds, bytes/s, ...).  Points are kept in insertion order.
    """

    label: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x):
        """Return the y value recorded for sweep point ``x``."""
        for xi, yi in zip(self.xs, self.ys):
            if xi == x:
                return yi
        raise KeyError(f"series {self.label!r} has no point x={x!r}")

    def as_dict(self) -> dict:
        return {"label": self.label, "x": list(self.xs), "y": list(self.ys)}


@dataclass
class BenchTable:
    """A figure: a title, an x-axis name, and several series over shared xs."""

    title: str
    x_name: str
    y_name: str
    series: list = field(default_factory=list)

    def new_series(self, label: str, **meta) -> BenchSeries:
        s = BenchSeries(label=label, meta=dict(meta))
        self.series.append(s)
        return s

    def get(self, label: str) -> BenchSeries:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labeled {label!r} in table {self.title!r}")

    def ratio(self, numerator: str, denominator: str, x) -> float:
        """y(numerator)/y(denominator) at sweep point ``x``."""
        return self.get(numerator).y_at(x) / self.get(denominator).y_at(x)

    def render(self, x_fmt: Callable = str, y_fmt: Callable = str) -> str:
        return format_table(self, x_fmt=x_fmt, y_fmt=y_fmt)


def format_table(
    table: BenchTable,
    x_fmt: Callable = str,
    y_fmt: Callable = str,
) -> str:
    """Render a :class:`BenchTable` as aligned monospace text.

    The union of all series' x values forms the rows; series that lack a
    point at some x show ``-``.
    """
    all_xs: list = []
    for s in table.series:
        for x in s.xs:
            if x not in all_xs:
                all_xs.append(x)
    try:
        all_xs.sort()
    except TypeError:
        pass  # heterogeneous x values: keep insertion order

    headers = [table.x_name] + [s.label for s in table.series]
    rows = []
    for x in all_xs:
        row = [x_fmt(x)]
        for s in table.series:
            try:
                row.append(y_fmt(s.y_at(x)))
            except KeyError:
                row.append("-")
        rows.append(row)

    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [
        f"# {table.title}   [y: {table.y_name}]",
        fmt_row(headers),
        fmt_row(["-" * w for w in widths]),
    ]
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def series_from_mapping(label: str, points: Mapping) -> BenchSeries:
    """Build a series from an ``{x: y}`` mapping (sorted by x)."""
    s = BenchSeries(label=label)
    for x in sorted(points):
        s.add(x, points[x])
    return s
