"""Run profiling: aggregate per-rank operation statistics into a report.

The simulator makes every communication event observable; this module
collects the counters the runtime/conduit already maintain into a compact
per-run report — the "what did my program actually do on the network"
tooling a library of this kind ships with.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.util.units import fmt_bytes, fmt_time

#: environment switch: REPRO_PROFILE=1 cProfiles one rank's SPMD body
PROFILE_ENV = "REPRO_PROFILE"
#: which rank to profile (default 0); every rank runs the same body, so
#: one rank's profile is representative of the shared-layer hot path
PROFILE_RANK_ENV = "REPRO_PROFILE_RANK"
#: optional .pstats dump path (default: print top entries to stderr)
PROFILE_OUT_ENV = "REPRO_PROFILE_OUT"

#: when set (a list), :func:`maybe_profiled` wraps EVERY rank body in its
#: own cProfile and appends the finished profiles here instead of dumping
#: them — the collection mode :func:`profile_phase_breakdown` uses.
#: Per-fiber wrapping is mandatory: cProfile hooks only the calling
#: thread, and each simulated rank runs on its own carrier thread.
_collector: Optional[list] = None


def profiling_enabled() -> bool:
    """Whether rank bodies should be routed through :func:`maybe_profiled`:
    either ``REPRO_PROFILE`` asks for a per-rank cProfile dump, or a
    phase-breakdown collection pass is active."""
    return _collector is not None or os.environ.get(PROFILE_ENV, "") not in ("", "0")


def maybe_profiled(fn: Callable[[], object], rank: int) -> Callable[[], object]:
    """Wrap a rank body in cProfile when REPRO_PROFILE selects this rank.

    Profiling must happen *inside* the rank's fiber/thread — cProfile hooks
    the calling thread only, so profiling the main thread (which merely
    parks in ``Scheduler.run``) would observe nothing.  The profile is
    dumped when the body returns: to ``$REPRO_PROFILE_OUT`` as a pstats
    file if set, else as a top-40 cumulative-time table on stderr.
    """
    coll = _collector
    if coll is not None:

        def collected():
            import cProfile

            prof = cProfile.Profile()
            prof.enable()
            try:
                return fn()
            finally:
                prof.disable()
                coll.append(prof)

        return collected
    if not profiling_enabled() or rank != int(os.environ.get(PROFILE_RANK_ENV, "0")):
        return fn

    def profiled():
        import cProfile
        import pstats

        prof = cProfile.Profile()
        prof.enable()
        try:
            return fn()
        finally:
            prof.disable()
            out = os.environ.get(PROFILE_OUT_ENV)
            if out:
                prof.dump_stats(out)
                print(f"[repro] rank {rank} profile written to {out}", file=sys.stderr)
            else:
                stats = pstats.Stats(prof, stream=sys.stderr)
                stats.sort_stats("cumulative")
                print(f"[repro] rank {rank} cProfile (REPRO_PROFILE=1):", file=sys.stderr)
                stats.print_stats(40)

    return profiled


# ----------------------------------------------------- per-phase breakdown
#: hot-path phases, matched against profiled filenames in order; the
#: first hit wins, so the narrower instrumentation patterns must precede
#: the broad per-layer directories
_PHASE_PATTERNS = (
    ("instrumentation", ("/repro/util/spans", "/repro/util/metrics", "/repro/util/trace")),
    ("scheduler", ("/repro/sim/",)),
    ("conduit", ("/repro/gasnet/",)),
    ("upcxx_api", ("/repro/upcxx/",)),
    ("workload", ("/repro/apps/", "/repro/bench/")),
)

#: all phase keys a breakdown dict carries, in reporting order
PHASE_KEYS = tuple(name for name, _ in _PHASE_PATTERNS) + ("blocked_wait", "other")


def classify_phases(profiles: list) -> Dict[str, float]:
    """Aggregate per-fiber cProfile objects into per-phase tottime seconds.

    ``blocked_wait`` collects ``_thread.lock.acquire`` time — a parked
    fiber's baton wait, which sums *across* fibers and therefore exceeds
    wall clock; it is reported separately so the CPU-bound phases can be
    read as honest fractions of interpreter work.
    """
    out: Dict[str, float] = {k: 0.0 for k in PHASE_KEYS}
    for prof in profiles:
        for entry in prof.getstats():
            code = entry.code
            tt = entry.inlinetime
            if not tt:
                continue
            if isinstance(code, str):  # built-in: "<method 'acquire' of ...>"
                if "acquire" in code and "lock" in code:
                    out["blocked_wait"] += tt
                else:
                    out["other"] += tt
                continue
            fname = code.co_filename.replace(os.sep, "/")
            for phase, pats in _PHASE_PATTERNS:
                if any(p in fname for p in pats):
                    out[phase] += tt
                    break
            else:
                out["other"] += tt
    return out


def profile_phase_breakdown(run: Callable[[], object]) -> Dict[str, object]:
    """Run ``run()`` with every rank body cProfiled; return the per-phase
    hot-path breakdown (scheduler vs conduit vs upcxx API vs
    instrumentation) the perf harness embeds in ``BENCH_perf.json``.

    The profiled pass is separate from any timed measurement — cProfile
    multiplies Python call cost several-fold, so its absolute seconds are
    only meaningful relative to each other.  Fractions are therefore
    reported over the CPU-bound phases only (``blocked_wait`` excluded).
    """
    global _collector
    profiles: list = []
    prev = _collector
    _collector = profiles
    try:
        run()
    finally:
        _collector = prev
    seconds = classify_phases(profiles)
    cpu_total = sum(v for k, v in seconds.items() if k != "blocked_wait")
    return {
        "phases_s": {k: round(v, 4) for k, v in seconds.items()},
        "fractions": {
            k: round(v / cpu_total, 4) if cpu_total else 0.0
            for k, v in seconds.items()
            if k != "blocked_wait"
        },
        "n_fibers_profiled": len(profiles),
        "note": (
            "per-fiber cProfile tottime aggregated over all ranks; "
            "blocked_wait is parked baton time summed across fibers "
            "(exceeds wall clock by design); fractions cover CPU-bound "
            "phases only and are profiler-inflated but comparable"
        ),
    }


@dataclass
class RankProfile:
    """One rank's operation counts at a point in time."""

    rank: int
    rputs: int = 0
    rgets: int = 0
    rpcs_sent: int = 0
    rpcs_executed: int = 0
    progress_calls: int = 0
    sim_time: float = 0.0

    @classmethod
    def capture(cls) -> "RankProfile":
        """Snapshot the calling rank's counters (inside an SPMD region)."""
        from repro.upcxx.runtime import current_runtime

        rt = current_runtime()
        return cls(
            rank=rt.rank,
            rputs=rt.n_rputs,
            rgets=rt.n_rgets,
            rpcs_sent=rt.n_rpcs_sent,
            rpcs_executed=rt.n_rpcs_executed,
            progress_calls=rt.n_progress_calls,
            sim_time=rt.now(),
        )

    def delta(self, earlier: "RankProfile") -> "RankProfile":
        """Counters accumulated since an earlier snapshot."""
        if earlier.rank != self.rank:
            raise ValueError("profiles from different ranks")
        return RankProfile(
            rank=self.rank,
            rputs=self.rputs - earlier.rputs,
            rgets=self.rgets - earlier.rgets,
            rpcs_sent=self.rpcs_sent - earlier.rpcs_sent,
            rpcs_executed=self.rpcs_executed - earlier.rpcs_executed,
            progress_calls=self.progress_calls - earlier.progress_calls,
            sim_time=self.sim_time - earlier.sim_time,
        )


@dataclass
class RunProfile:
    """A whole job's profile: per-rank rows plus conduit totals."""

    ranks: List[RankProfile] = field(default_factory=list)
    conduit: Dict[str, int] = field(default_factory=dict)

    def add(self, p: RankProfile) -> None:
        self.ranks.append(p)

    def totals(self) -> Dict[str, int]:
        out = {
            "rputs": sum(p.rputs for p in self.ranks),
            "rgets": sum(p.rgets for p in self.ranks),
            "rpcs_sent": sum(p.rpcs_sent for p in self.ranks),
            "rpcs_executed": sum(p.rpcs_executed for p in self.ranks),
            "progress_calls": sum(p.progress_calls for p in self.ranks),
        }
        out.update({f"wire_{k}": v for k, v in self.conduit.items()})
        return out

    def imbalance(self) -> float:
        """Max/mean ratio of per-rank message initiations (load balance)."""
        loads = [p.rputs + p.rgets + p.rpcs_sent for p in self.ranks]
        if not loads or sum(loads) == 0:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def report(self) -> str:
        """Human-readable summary."""
        t = self.totals()
        lines = [
            "== run profile ==",
            f"ranks: {len(self.ranks)}",
            f"rputs: {t['rputs']}  rgets: {t['rgets']}  "
            f"rpcs: {t['rpcs_sent']} sent / {t['rpcs_executed']} executed",
            f"progress calls: {t['progress_calls']}",
        ]
        if self.conduit:
            lines.append(
                "wire: "
                + "  ".join(f"{k}={v}" for k, v in sorted(self.conduit.items()) if k != "bytes_out")
            )
            if "bytes_out" in self.conduit:
                lines.append(f"bytes on the wire: {fmt_bytes(self.conduit['bytes_out'])}")
        if self.ranks:
            tmax = max(p.sim_time for p in self.ranks)
            lines.append(f"simulated time: {fmt_time(tmax)}")
            lines.append(f"initiation imbalance (max/mean): {self.imbalance():.2f}")
        return "\n".join(lines)


def profile_spmd(fn, ranks: int, **run_kwargs) -> RunProfile:
    """Run ``fn`` under :func:`repro.upcxx.run_spmd`, collecting a profile."""
    import repro.upcxx as upcxx

    prof = RunProfile()
    holder: dict = {}

    def wrapped():
        fn()
        upcxx.barrier()
        prof.add(RankProfile.capture())
        holder["conduit"] = upcxx.current_runtime().conduit

    upcxx.run_spmd(wrapped, ranks, **run_kwargs)
    prof.ranks.sort(key=lambda p: p.rank)
    prof.conduit = holder["conduit"].stats()
    return prof
