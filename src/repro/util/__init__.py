"""Shared utilities: units, statistics, benchmark records, tracing.

These helpers are deliberately dependency-light so every other subpackage
(`sim`, `gasnet`, `upcxx`, `mpisim`, `apps`, `bench`) can use them without
import cycles.
"""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    US,
    MS,
    NS,
    fmt_bytes,
    fmt_time,
    fmt_rate,
    parse_size,
)
from repro.util.stats import Summary, summarize, geomean, speedup
from repro.util.records import BenchSeries, BenchTable, format_table
from repro.util.trace import TraceBuffer, TraceEvent
from repro.util.metrics import DwellHistogram, Metrics, RankMetrics
from repro.util.spans import PHASES, SpanBuffer
from repro.util.telemetry import RankTelemetry, Telemetry, dumps_blackbox
from repro.util.trace_export import (
    chrome_trace,
    chrome_trace_span_events,
    chrome_trace_telemetry_events,
    dumps_chrome_trace,
    dumps_metrics,
    export_chrome_trace,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "US",
    "MS",
    "NS",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "parse_size",
    "Summary",
    "summarize",
    "geomean",
    "speedup",
    "BenchSeries",
    "BenchTable",
    "format_table",
    "TraceBuffer",
    "TraceEvent",
    "Metrics",
    "RankMetrics",
    "DwellHistogram",
    "PHASES",
    "SpanBuffer",
    "Telemetry",
    "RankTelemetry",
    "dumps_blackbox",
    "chrome_trace",
    "chrome_trace_span_events",
    "chrome_trace_telemetry_events",
    "dumps_chrome_trace",
    "dumps_metrics",
    "export_chrome_trace",
]
