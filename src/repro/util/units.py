"""Units and human-readable formatting.

Simulated time throughout the code base is expressed in **seconds** as a
Python float; transfer sizes are in **bytes** as ints.  The constants here
make cost-model code read like the hardware documents it is derived from
(e.g. ``0.55 * US`` for a 550 ns wire latency).
"""

from __future__ import annotations

# ---------------------------------------------------------------- size units
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# ---------------------------------------------------------------- time units
# Base unit is the second.
NS: float = 1e-9
US: float = 1e-6
MS: float = 1e-3

_SIZE_SUFFIXES = [
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
]

_SIZE_PARSE = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def fmt_bytes(n: int) -> str:
    """Format a byte count compactly: ``8`` -> ``"8B"``, ``8192`` -> ``"8KiB"``.

    Exact multiples render without a fraction so benchmark tables line up
    with the power-of-two transfer sizes used in the paper's figures.
    """
    if n < 0:
        raise ValueError(f"negative byte count: {n}")
    for unit, suffix in _SIZE_SUFFIXES:
        if n >= unit:
            if n % unit == 0:
                return f"{n // unit}{suffix}"
            return f"{n / unit:.2f}{suffix}"
    return f"{n}B"


def parse_size(text: str) -> int:
    """Parse ``"8K"``, ``"4MiB"``, ``"512"`` ... into a byte count."""
    s = text.strip().lower()
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    num, suffix = s[:idx], s[idx:].strip()
    if not num:
        raise ValueError(f"cannot parse size {text!r}")
    if suffix not in _SIZE_PARSE:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(num) * _SIZE_PARSE[suffix]


def fmt_time(t: float) -> str:
    """Format a duration in the most natural SI unit (``1.50us``, ``2.3ms``)."""
    if t < 0:
        return "-" + fmt_time(-t)
    if t == 0:
        return "0s"
    if t < 1e-6:
        return f"{t / NS:.1f}ns"
    if t < 1e-3:
        return f"{t / US:.2f}us"
    if t < 1.0:
        return f"{t / MS:.2f}ms"
    return f"{t:.3f}s"


def fmt_rate(bytes_per_sec: float) -> str:
    """Format a bandwidth (``"9.34GiB/s"``)."""
    if bytes_per_sec >= GiB:
        return f"{bytes_per_sec / GiB:.2f}GiB/s"
    if bytes_per_sec >= MiB:
        return f"{bytes_per_sec / MiB:.2f}MiB/s"
    if bytes_per_sec >= KiB:
        return f"{bytes_per_sec / KiB:.2f}KiB/s"
    return f"{bytes_per_sec:.1f}B/s"
