"""Windowed telemetry rollups + per-rank flight recorder + blackbox bundles.

This is the continuous-visibility layer the span/metrics machinery is not:
spans capture *everything* (full per-op lifecycle, heavyweight), metrics
capture *distributions* (dwell histograms), while telemetry captures
**cheap periodic counter snapshots** plus a **bounded ring of recent
events** — the GASNet-EX performance-counter philosophy.  It is designed
for three properties:

1. **Deterministic across backends.**  Snapshots are taken in rank
   context at fixed *simulated-time* window edges (the first library call
   at-or-after each edge closes the window), and every counter read is a
   pure observation of rank-local state — no clock-bearing events are
   posted and nothing perturbs the schedule.  Because all three backends
   execute each rank's program in an identical causal order, the rollup
   stream is bit-identical across coroutines/threads/sharded runs.

2. **Near-zero cost, exactly zero when off.**  The runtime keeps a single
   per-rank reference (``None`` when telemetry is absent); every hook is
   one ``is not None`` check.  When on, a tick is three float compares
   and the flight recorder is a bounded ``deque.append``.

3. **Crash-safe.**  Under a fault plan with rank crashes the recorder
   *freezes* at the first crash time: entries stamped after the cutoff
   are not admitted, so the bundle reflects the job as of the moment of
   death.  Every backend stops executing at exactly the heartbeat
   detection time (the sharded backend arms the detection event on every
   shard and fences its CMB windows at each crash/detect time), so the
   ring's contents — and therefore the ``blackbox.json`` post-mortem
   bundle — are bit-identical on every backend.

Usage::

    tel = Telemetry(window_s=20e-6)
    try:
        upcxx.run_spmd(body, 8, telemetry=tel, faults="seed=3,crash=1@3e-4")
    except RankDeadError:
        bundle = tel.blackbox          # dict; also written to
                                       # tel.blackbox_path when set
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

#: schema tag embedded in every blackbox bundle
BLACKBOX_SCHEMA = "repro-blackbox/1"

#: default rollup cadence (simulated seconds); ~the paper's RPC-scale
DEFAULT_WINDOW_S = 20e-6

#: default flight-recorder depth (events kept per rank)
DEFAULT_RING = 64

#: cap on per-queue detail captured in a pending-op snapshot
_PENDING_DETAIL = 16


class RankTelemetry:
    """One rank's telemetry: cumulative counters, windows, flight ring.

    All mutation happens in rank context in program order, so the state is
    a pure function of (program, seed) on every backend.  Times arrive as
    explicit arguments — this class never reads a clock.
    """

    def __init__(self, rank: int, window_s: float = DEFAULT_WINDOW_S,
                 ring: int = DEFAULT_RING, freeze_at: Optional[float] = None):
        self.rank = rank
        self.window_s = window_s
        #: flight recorder: (t, kind, detail) tuples, oldest evicted first
        self.ring: deque = deque(maxlen=ring)
        #: closed rollup windows (list of dicts, see _close)
        self.windows: List[dict] = []
        #: freeze cutoff (first crash time of the fault plan, if any) —
        #: nothing stamped after it is admitted, so crash-run state
        #: reflects the job exactly as of the moment of death
        self.freeze_at = freeze_at
        # cumulative counters (since t=0)
        self.ops: Dict[str, int] = {}
        self.bytes: Dict[str, int] = {}
        self.executed = 0
        self.ams = 0
        self.ticks = 0
        # crash post-mortem state
        self.died_at: Optional[float] = None
        self.pending: Optional[dict] = None
        #: replication-layer state table (set by the KV service at drain:
        #: factor, shard size, deaths seen, restored flag, recovery time)
        self.replica: Optional[dict] = None
        # window bookkeeping
        self._next_edge = window_s
        self._last_t: Optional[float] = None
        self._win_gap = 0.0

    # ------------------------------------------------------------- recording
    def tick(self, t: float, ndef: int, nact: int, ncomp: int, nstaged: int,
             ep) -> None:
        """One library entry at simulated time ``t`` (rank context).

        Updates the attentiveness gap and closes rollup windows whose edge
        has passed.  ``ep`` is this rank's conduit endpoint (NIC counters).
        """
        freeze = self.freeze_at
        if freeze is not None and t > freeze:
            return
        self.ticks += 1
        last = self._last_t
        if last is not None:
            gap = t - last
            if gap > self._win_gap:
                self._win_gap = gap
        self._last_t = t
        if t >= self._next_edge:
            w = int(t / self.window_s)
            self._close(t, w, False, (ndef, nact, ncomp, nstaged), ep)
            self._next_edge = (w + 1) * self.window_s

    def op(self, kind: str, nbytes: int) -> None:
        """An operation left the deferred state (rank context)."""
        ops = self.ops
        ops[kind] = ops.get(kind, 0) + 1
        if nbytes:
            b = self.bytes
            b[kind] = b.get(kind, 0) + nbytes
        t = self._last_t
        if t is not None:
            self.note(t, "inject", kind)

    def am(self, t: float, tag: str) -> None:
        """An active message was polled from the inbox (rank context)."""
        self.ams += 1
        self.note(t, "am", tag)

    def exec_note(self, kind: str) -> None:
        """A compQ item was executed by user progress (rank context)."""
        self.executed += 1
        t = self._last_t
        if t is not None:
            self.note(t, "exec", kind)

    def note(self, t: float, kind: str, detail: str) -> None:
        """Append a flight-recorder entry (bounded; freeze-gated)."""
        freeze = self.freeze_at
        if freeze is not None and t > freeze:
            return
        self.ring.append((t, kind, detail))

    def record_death(self, t_die: float, pending: dict, queues, ep) -> None:
        """This rank observed its own fail-stop crash (rank context)."""
        if self.died_at is not None:
            return
        freeze = self.freeze_at
        if freeze is not None and t_die > freeze:
            # a second, later crash that some backends never reach —
            # excluded so the bundle stays deterministic
            return
        self.died_at = t_die
        self.pending = pending
        self.note(t_die, "crash", f"rank {self.rank} fail-stop")
        self._close(t_die, int(t_die / self.window_s), True, queues, ep)

    def finalize(self, t: float, queues, ep) -> None:
        """Close the final (partial) window at normal completion."""
        self._close(t, int(t / self.window_s), True, queues, ep)

    def _close(self, t: float, w: int, final: bool, queues, ep) -> None:
        """Snapshot cumulative counters into a closed rollup window."""
        win = {
            "w": w,
            "t": t,
            "final": final,
            "queues": [queues[0], queues[1], queues[2], queues[3]],
            "ops": dict(self.ops),
            "bytes": dict(self.bytes),
            "executed": self.executed,
            "ams": self.ams,
            "ticks": self.ticks,
            "max_gap_s": self._win_gap,
            "nic": {
                "puts": ep.n_puts,
                "gets": ep.n_gets,
                "ams": ep.n_ams,
                "amos": ep.n_amos,
                "bytes_out": ep.bytes_out,
                "backlog_s": max(0.0, ep.nic_free_at - t),
            },
            "rel": {
                "retx": ep.n_retx,
                "dropped": ep.n_dropped,
                "dup": ep.n_dup,
                "acks": ep.n_acks,
            },
            "agg": {
                "batches": ep.agg_batches,
                "updates": ep.agg_updates,
                "credit_stall_s": ep.agg_credit_stall_s,
                "cache_hits": ep.agg_cache_hits,
            },
            "kv": {
                "shed": ep.kv_shed,
                "failover_reads": ep.kv_failover_reads,
                "rereplicated": ep.kv_rereplicated,
            },
        }
        self.windows.append(win)
        self._win_gap = 0.0

    # --------------------------------------------------------------- export
    def as_dict(self) -> dict:
        """JSON-safe dump of this rank's full telemetry state."""
        return {
            "rank": self.rank,
            "window_s": self.window_s,
            "died_at": self.died_at,
            "pending": self.pending,
            "replica": self.replica,
            "ring": [[t, kind, detail] for (t, kind, detail) in self.ring],
            "windows": list(self.windows),
            "totals": {
                "ops": dict(self.ops),
                "bytes": dict(self.bytes),
                "executed": self.executed,
                "ams": self.ams,
                "ticks": self.ticks,
            },
        }

    def tail(self, cutoff: Optional[float] = None) -> List[list]:
        """Flight-recorder tail, truncated at ``cutoff`` when given."""
        if cutoff is None:
            return [[t, kind, detail] for (t, kind, detail) in self.ring]
        return [[t, kind, detail] for (t, kind, detail) in self.ring
                if t <= cutoff]

    def last_window(self, cutoff: Optional[float] = None) -> Optional[dict]:
        """The most recent closed window at-or-before ``cutoff``."""
        for win in reversed(self.windows):
            if cutoff is None or win["t"] <= cutoff:
                return win
        return None


class Telemetry:
    """Job-level telemetry sink: one :class:`RankTelemetry` per rank.

    Mirrors the gating discipline of :class:`repro.util.Metrics`: pass an
    instance to ``run_spmd(telemetry=...)``; ``enabled=False`` (or passing
    ``None``) makes every runtime hook a single ``is None`` check.

    ``blackbox_path``: when a run ends in ``RankDeadError``/``RankFailure``
    the post-mortem bundle is stored as :attr:`blackbox` and — when a path
    is configured — written there as canonical JSON (byte-identical across
    backends for the same seed).
    """

    def __init__(self, enabled: bool = True, window_s: float = DEFAULT_WINDOW_S,
                 ring: int = DEFAULT_RING, blackbox_path: Optional[str] = None):
        self.enabled = enabled
        self.window_s = window_s
        self.ring = ring
        self.blackbox_path = blackbox_path
        #: first crash time of the active fault plan (set by the runtime);
        #: freezes rings/windows so crash bundles are backend-identical
        self.freeze_at: Optional[float] = None
        #: last post-mortem bundle built (dict), if any
        self.blackbox: Optional[dict] = None
        self._ranks: Dict[int, RankTelemetry] = {}

    # ------------------------------------------------------------- plumbing
    def rank(self, r: int) -> RankTelemetry:
        """The per-rank sink for rank ``r`` (created on first use)."""
        rt = self._ranks.get(r)
        if rt is None:
            rt = self._ranks[r] = RankTelemetry(
                r, self.window_s, self.ring, freeze_at=self.freeze_at)
        return rt

    @property
    def ranks(self) -> Dict[int, RankTelemetry]:
        return dict(sorted(self._ranks.items()))

    def merge_ranks(self, ranks: Dict[int, RankTelemetry]) -> None:
        """Adopt per-rank telemetry collected elsewhere (shard workers)."""
        self._ranks.update(ranks)

    def set_replica_state(self, rank: int, state: dict) -> None:
        """Record a rank's replication-layer state table (blackbox feed)."""
        self.rank(rank).replica = state

    # --------------------------------------------------------------- export
    def as_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "ranks": {str(r): rt.as_dict() for r, rt in sorted(self._ranks.items())},
        }

    def dumps(self) -> str:
        """Canonical JSON dump (byte-identical for identical state)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------- blackbox
    def build_blackbox(self, err, faults=None) -> dict:
        """Assemble the post-mortem bundle for a failed (or survived) run.

        For *fatal* crash plans the bundle is truncated at the first crash
        time: every backend is guaranteed to have executed all rank-context
        work stamped at-or-before that cutoff, so the bundle is
        bit-identical across coroutines/threads/sharded for the same seed.
        Non-crash failures (``RankFailure``) carry no cutoff.

        ``err=None`` records a *survived* crash run (survivable plan +
        replication): no cutoff is applied — execution past the crash is
        itself deterministic — and the verdict states that the service
        outlived its failures.  Per-rank entries then carry the
        replication-layer ``replica`` state table.
        """
        crashes = getattr(faults, "crashes", None) if faults is not None else None
        survivable = bool(getattr(faults, "survivable", False))
        cutoff: Optional[float] = None
        if crashes and not (survivable and err is None):
            cutoff = min(crashes.values())
        ranks = {}
        for r, rt in sorted(self._ranks.items()):
            ranks[str(r)] = {
                "dead": rt.died_at is not None,
                "died_at": rt.died_at,
                "tail": rt.tail(cutoff),
                "last_window": rt.last_window(cutoff),
                "pending": rt.pending,
                "replica": rt.replica,
            }
        if err is None:
            verdict = {
                "type": "Survived",
                "rank": None,
                "message": (
                    f"run completed through {len(crashes or {})} crash(es); "
                    "service stayed available"
                ),
            }
        else:
            verdict = {
                "type": type(err).__name__,
                "rank": getattr(err, "rank", None),
                "message": str(err),
            }
        verdict["detect_timeout_s"] = (
            getattr(faults, "detect_timeout", None) if faults is not None else None
        )
        return {
            "schema": BLACKBOX_SCHEMA,
            "verdict": verdict,
            "cutoff_s": cutoff,
            "window_s": self.window_s,
            "ranks": ranks,
        }

    def emit_blackbox(self, err, faults=None) -> dict:
        """Build, stash, and (if configured) write the blackbox bundle."""
        bundle = self.build_blackbox(err, faults)
        self.blackbox = bundle
        if self.blackbox_path:
            with open(self.blackbox_path, "w") as f:
                f.write(dumps_blackbox(bundle))
        return bundle


def dumps_blackbox(bundle: dict) -> str:
    """Canonical blackbox JSON (stable key order, no whitespace)."""
    return json.dumps(bundle, sort_keys=True, separators=(",", ":"))
