"""Op-lifecycle metrics for the progress engine (observability layer).

The paper's performance story rests on *attentiveness*: how promptly each
rank drains its §III queues (defQ/actQ/compQ).  This module provides the
measurement substrate that makes that behavior visible:

- :class:`Metrics` — one per job, handed to ``upcxx.run_spmd(metrics=...)``;
  holds one :class:`RankMetrics` per rank.
- :class:`RankMetrics` — queue-depth time series (defQ/actQ/compQ plus the
  network-context staging area), per-op-kind dwell-time histograms for each
  state transition of Fig. 2 (deferred→active→complete→fulfilled),
  attentiveness tracking (sim-time gap between consecutive user
  ``progress()`` calls), per-kind operation/byte totals, AM inbox dwell,
  and NIC injection accounting.
- :class:`DwellHistogram` — log2-bucketed duration histogram (nanosecond
  resolution) with exact n/total/min/max, cheap to update and
  deterministic to export.

Everything here is passive data collection: no clock reads, no scheduler
interaction — callers pass explicit simulated times, so recording is safe
from both rank and network context.  When no ``Metrics`` is installed the
instrumented layers skip every hook behind a single ``is not None`` check,
keeping the disabled cost at noise level.

All exports (:meth:`Metrics.as_dict`) are pure functions of the recorded
events, so two same-seed runs serialize to byte-identical JSON — pinned by
``tests/test_examples_determinism.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: queue names, in the order they appear in a combined depth sample
QUEUE_NAMES = ("defQ", "actQ", "compQ", "staged")

#: the Fig. 2 state transitions a dwell histogram can describe
TRANSITIONS = ("deferred_to_active", "active_to_complete", "complete_to_fulfilled")


class DwellHistogram:
    """Log2-bucketed histogram of durations (seconds, ns resolution).

    Bucket ``i`` covers ``[2**(i-1), 2**i)`` nanoseconds (bucket 0 holds
    sub-nanosecond and zero durations).  Alongside the buckets the exact
    count, sum, min and max are kept, so means are not quantized.
    """

    __slots__ = ("n", "total", "minimum", "maximum", "buckets")

    def __init__(self):
        self.n = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def add(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.n += 1
        self.total += seconds
        if self.minimum is None or seconds < self.minimum:
            self.minimum = seconds
        if self.maximum is None or seconds > self.maximum:
            self.maximum = seconds
        idx = int(seconds * 1e9).bit_length()
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (seconds) from the log2 buckets.

        Linearly interpolates between the edges of the bucket the target
        count lands in (rather than reporting the bucket upper bound),
        then clamps into the exact observed ``[min, max]`` range.  Returns
        0.0 for an empty histogram.
        """
        if self.n == 0:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = self.n * (q / 100.0)
        seen = 0
        value = self.maximum
        for i in sorted(self.buckets):
            count = self.buckets[i]
            if seen + count >= target:
                lo_ns = 0.0 if i == 0 else float(1 << (i - 1))
                hi_ns = 1.0 if i == 0 else float(1 << i)
                frac = (target - seen) / count
                value = (lo_ns + frac * (hi_ns - lo_ns)) * 1e-9
                break
            seen += count
        return min(max(value, self.minimum), self.maximum)

    def merge(self, other: "DwellHistogram") -> "DwellHistogram":
        """Fold ``other`` into this histogram in place (cross-rank SLOs).

        Exact n/total/min/max merge exactly; the log2 buckets add
        count-wise, so merged percentiles carry the same per-bucket
        interpolation error as single-rank ones.  Returns ``self``.
        """
        if other.n == 0:
            return self
        self.n += other.n
        self.total += other.total
        if self.minimum is None or other.minimum < self.minimum:
            self.minimum = other.minimum
        if self.maximum is None or other.maximum > self.maximum:
            self.maximum = other.maximum
        for i, c in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + c
        return self

    @classmethod
    def from_dict(cls, d: dict) -> "DwellHistogram":
        """Rebuild a histogram from :meth:`as_dict` output (the sharded
        backend returns per-rank results as plain dicts)."""
        h = cls()
        h.n = d["n"]
        h.total = d["total_s"]
        if h.n:
            h.minimum = d["min_s"]
            h.maximum = d["max_s"]
        for lo_ns, count in d["buckets"]:
            h.buckets[0 if lo_ns == 0 else int(lo_ns).bit_length()] = count
        return h

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": 0.0 if self.minimum is None else self.minimum,
            "max_s": 0.0 if self.maximum is None else self.maximum,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "p999_s": self.percentile(99.9),
            # [lower bound of bucket in ns, count], ascending
            "buckets": [
                [0 if i == 0 else 1 << (i - 1), self.buckets[i]] for i in sorted(self.buckets)
            ],
        }


class RankMetrics:
    """All observability state of one rank.  Created via :meth:`Metrics.rank`."""

    #: combined queue-depth samples kept before deterministic decimation
    MAX_QUEUE_SAMPLES = 1 << 16

    def __init__(self, rank: int):
        self.rank = rank
        # -- queue-depth time series: (t, defQ, actQ, compQ, staged) --------
        self.queue_samples: List[Tuple[float, int, int, int, int]] = []
        self._sample_stride = 1
        self._sample_seq = 0
        # -- per-op-kind dwell histograms: (kind, transition) -> histogram --
        self.dwell: Dict[Tuple[str, str], DwellHistogram] = {}
        # -- per-kind op/byte totals (counted at injection) ------------------
        self.op_counts: Dict[str, int] = {}
        self.op_bytes: Dict[str, int] = {}
        #: compQ items executed, per kind
        self.executed: Dict[str, int] = {}
        # -- attentiveness ---------------------------------------------------
        self.n_user_progress = 0
        self._last_progress: Optional[float] = None
        self.progress_gap = DwellHistogram()
        self.max_gap = 0.0
        self.max_gap_at = 0.0
        # -- AM inbox dwell (arrival -> poll), per tag -----------------------
        self.inbox_dwell: Dict[str, DwellHistogram] = {}
        # -- NIC injection accounting (filled by the conduit) ----------------
        self.nic_injections = 0
        self.nic_bytes = 0
        self.nic_occupancy = 0.0
        self.nic_backpressure = 0.0
        # -- reliability layer (fault injection; attributed to initiator) ----
        self.rel_retransmits = 0
        self.rel_dropped = 0
        self.rel_duplicated = 0
        self.rel_acks = 0

    # ------------------------------------------------------------- recording
    def sample_queues(self, t: float, defq: int, actq: int, compq: int, staged: int) -> None:
        """Record one combined queue-depth sample (rank context).

        Consecutive identical depth vectors are deduplicated; when the
        series hits :data:`MAX_QUEUE_SAMPLES` it is decimated by keeping
        every other sample and the sampling stride doubles — deterministic,
        bounded memory for arbitrarily long runs.
        """
        self._sample_seq += 1
        if self._sample_seq % self._sample_stride:
            return
        samples = self.queue_samples
        if samples and samples[-1][1:] == (defq, actq, compq, staged):
            return
        samples.append((t, defq, actq, compq, staged))
        if len(samples) >= self.MAX_QUEUE_SAMPLES:
            del samples[1::2]
            self._sample_stride *= 2

    def dwell_hist(self, kind: str, transition: str) -> DwellHistogram:
        h = self.dwell.get((kind, transition))
        if h is None:
            h = self.dwell[(kind, transition)] = DwellHistogram()
        return h

    def op_injected(self, kind: str, nbytes: int, deferred_dwell: float) -> None:
        """An operation left defQ and was handed to the conduit."""
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1
        self.op_bytes[kind] = self.op_bytes.get(kind, 0) + nbytes
        self.dwell_hist(kind, "deferred_to_active").add(deferred_dwell)

    def op_executed(self, item, now: float) -> None:
        """A compQ item ran during user progress (rank context, time ``now``)."""
        kind = item.kind
        self.executed[kind] = self.executed.get(kind, 0) + 1
        t_staged = item.t_staged
        if t_staged is not None:
            if item.t_active is not None:
                self.dwell_hist(kind, "active_to_complete").add(t_staged - item.t_active)
            self.dwell_hist(kind, "complete_to_fulfilled").add(now - t_staged)

    def user_progress(self, now: float) -> None:
        """A user-level ``progress()`` call began at simulated time ``now``."""
        self.n_user_progress += 1
        if self._last_progress is not None:
            gap = now - self._last_progress
            self.progress_gap.add(gap)
            if gap > self.max_gap:
                self.max_gap = gap
                self.max_gap_at = now
        self._last_progress = now

    def user_progress_done(self, now: float) -> None:
        """The same ``progress()`` call finished draining compQ at ``now``."""
        self._last_progress = now

    def am_polled(self, tag: str, dwell: float) -> None:
        """An AM was polled from the inbox ``dwell`` seconds after arrival."""
        h = self.inbox_dwell.get(tag)
        if h is None:
            h = self.inbox_dwell[tag] = DwellHistogram()
        h.add(dwell)

    def nic_injected(self, nbytes: int, occupancy: float, backpressure: float) -> None:
        """The conduit injected one message from this rank's NIC."""
        self.nic_injections += 1
        self.nic_bytes += nbytes
        self.nic_occupancy += occupancy
        self.nic_backpressure += backpressure

    def rel_update(self, retransmits: int, dropped: int, duplicated: int, acks: int) -> None:
        """One reliable-channel ladder finished for an op this rank sent."""
        self.rel_retransmits += retransmits
        self.rel_dropped += dropped
        self.rel_duplicated += duplicated
        self.rel_acks += acks

    # --------------------------------------------------------------- export
    def queue_series(self) -> Dict[str, List[List[float]]]:
        """Per-queue depth series, deduplicated per queue."""
        out: Dict[str, List[List[float]]] = {}
        for qi, name in enumerate(QUEUE_NAMES, start=1):
            series: List[List[float]] = []
            for sample in self.queue_samples:
                depth = sample[qi]
                if series and series[-1][1] == depth:
                    continue
                series.append([sample[0], depth])
            out[name] = series
        return out

    def as_dict(self) -> dict:
        kinds = sorted(set(self.op_counts) | set(self.executed))
        return {
            "rank": self.rank,
            "queues": self.queue_series(),
            "dwell": {
                kind: {
                    tr: self.dwell[(kind, tr)].as_dict()
                    for tr in TRANSITIONS
                    if (kind, tr) in self.dwell
                }
                for kind in sorted({k for k, _ in self.dwell})
            },
            "ops": {
                kind: {
                    "injected": self.op_counts.get(kind, 0),
                    "bytes": self.op_bytes.get(kind, 0),
                    "executed": self.executed.get(kind, 0),
                }
                for kind in kinds
            },
            "attentiveness": {
                "n_user_progress": self.n_user_progress,
                "max_gap_s": self.max_gap,
                "max_gap_at_s": self.max_gap_at,
                "gap": self.progress_gap.as_dict(),
            },
            "inbox_dwell": {tag: h.as_dict() for tag, h in sorted(self.inbox_dwell.items())},
            "nic": {
                "injections": self.nic_injections,
                "bytes": self.nic_bytes,
                "occupancy_s": self.nic_occupancy,
                "backpressure_s": self.nic_backpressure,
            },
            "reliability": {
                "retransmits": self.rel_retransmits,
                "frames_dropped": self.rel_dropped,
                "frames_duplicated": self.rel_duplicated,
                "acks": self.rel_acks,
            },
        }


class Metrics:
    """Job-wide op-lifecycle metrics; pass to ``upcxx.run_spmd(metrics=...)``.

    ``enabled=False`` turns every hook into a no-op (the instrumented
    layers see ``None`` and skip recording entirely).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._ranks: Dict[int, RankMetrics] = {}

    def rank(self, rank: int) -> RankMetrics:
        rm = self._ranks.get(rank)
        if rm is None:
            rm = self._ranks[rank] = RankMetrics(rank)
        return rm

    @property
    def ranks(self) -> List[RankMetrics]:
        return [self._ranks[r] for r in sorted(self._ranks)]

    def max_attentiveness_gap(self) -> float:
        """The worst progress gap observed on any rank (seconds)."""
        return max((rm.max_gap for rm in self._ranks.values()), default=0.0)

    def as_dict(self) -> dict:
        return {
            "n_ranks": len(self._ranks),
            "max_attentiveness_gap_s": self.max_attentiveness_gap(),
            "ranks": [rm.as_dict() for rm in self.ranks],
        }
