"""Chrome/Perfetto trace export for simulated runs.

Converts a :class:`~repro.util.trace.TraceBuffer` (and optionally a
:class:`~repro.util.metrics.Metrics`) into the Chrome Trace Event JSON
format, loadable in ``ui.perfetto.dev`` or ``chrome://tracing`` with one
lane (tid) per rank:

- scheduler ``block``/``resume`` pairs become complete ("X") duration
  events named by the block reason, so idle/waiting intervals are visible
  as spans;
- every other trace event becomes a thread-scoped instant ("i") event
  (AM polls, compQ executions, user annotations);
- metrics queue-depth samples become counter ("C") tracks, one per rank,
  plotting defQ/actQ/compQ/staged depths over time.

Timestamps are microseconds of *simulated* time.  Export is a pure
function of the inputs: two same-seed runs produce byte-identical JSON
(pinned by ``tests/test_examples_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from repro.util.metrics import Metrics, QUEUE_NAMES
from repro.util.trace import TraceBuffer

#: simulated seconds -> trace microseconds
_US = 1e6


def chrome_trace_events(trace: TraceBuffer, metrics: Optional[Metrics] = None) -> List[dict]:
    """Build the ``traceEvents`` list (one lane per rank)."""
    events: List[dict] = []
    ranks = sorted({ev.rank for ev in trace})
    if metrics is not None:
        ranks = sorted(set(ranks) | {rm.rank for rm in metrics.ranks})
    for r in ranks:
        events.append(
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": r, "args": {"name": f"rank {r}"}}
        )

    open_block: dict = {}
    for ev in trace:
        if ev.kind == "block":
            # an unmatched earlier block (abort path) degrades to an instant
            prev = open_block.pop(ev.rank, None)
            if prev is not None:
                events.append(_instant(prev))
            open_block[ev.rank] = ev
        elif ev.kind == "resume" and ev.rank in open_block:
            b = open_block.pop(ev.rank)
            events.append(
                {
                    "ph": "X",
                    "name": b.detail or "blocked",
                    "cat": "sched",
                    "pid": 0,
                    "tid": ev.rank,
                    "ts": b.time * _US,
                    "dur": (ev.time - b.time) * _US,
                }
            )
        else:
            events.append(_instant(ev))
    for ev in open_block.values():
        events.append(_instant(ev))

    if metrics is not None:
        for rm in metrics.ranks:
            name = f"rank {rm.rank} queues"
            for sample in rm.queue_samples:
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "queues",
                        "pid": 0,
                        "tid": rm.rank,
                        "ts": sample[0] * _US,
                        "args": dict(zip(QUEUE_NAMES, sample[1:])),
                    }
                )

    events.sort(key=lambda e: (e.get("ts", -1.0), e["tid"], e["ph"], e["name"]))
    return events


def _instant(ev) -> dict:
    out = {
        "ph": "i",
        "s": "t",
        "name": ev.kind,
        "cat": "sim",
        "pid": 0,
        "tid": ev.rank,
        "ts": ev.time * _US,
    }
    if ev.detail:
        out["args"] = {"detail": ev.detail}
    return out


def chrome_trace(trace: TraceBuffer, metrics: Optional[Metrics] = None) -> dict:
    """The full Chrome Trace Event JSON document."""
    return {"displayTimeUnit": "ms", "traceEvents": chrome_trace_events(trace, metrics)}


def dumps_chrome_trace(trace: TraceBuffer, metrics: Optional[Metrics] = None) -> str:
    """Deterministic JSON text of the trace (byte-stable across runs)."""
    return json.dumps(chrome_trace(trace, metrics), sort_keys=True, separators=(",", ":"))


def export_chrome_trace(
    dest: Union[str, IO[str]],
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
) -> Union[str, IO[str]]:
    """Write the trace JSON to ``dest`` (a path or open text file)."""
    text = dumps_chrome_trace(trace, metrics)
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            fh.write(text)
    else:
        dest.write(text)
    return dest


def dumps_metrics(metrics: Metrics) -> str:
    """Deterministic JSON text of a metrics export."""
    return json.dumps(metrics.as_dict(), sort_keys=True, separators=(",", ":"))
