"""Chrome/Perfetto trace export for simulated runs.

Converts a :class:`~repro.util.trace.TraceBuffer` (and optionally a
:class:`~repro.util.metrics.Metrics`) into the Chrome Trace Event JSON
format, loadable in ``ui.perfetto.dev`` or ``chrome://tracing`` with one
lane (tid) per rank:

- scheduler ``block``/``resume`` pairs become complete ("X") duration
  events named by the block reason, so idle/waiting intervals are visible
  as spans;
- every other trace event becomes a thread-scoped instant ("i") event
  (AM polls, compQ executions, user annotations);
- metrics queue-depth samples become counter ("C") tracks, one per rank,
  plotting defQ/actQ/compQ/staged depths over time.

Sharded runs can pass ``shard_of`` (rank -> shard id) so each shard gets
its own Perfetto *process* (pid) instead of all ranks collapsing into one
track group; ``process_name``/``thread_name`` metadata events label the
tracks.  :func:`chrome_trace_span_events` renders a
:class:`~repro.util.spans.SpanBuffer` the same way, one "X" slice per
lifecycle phase.

Timestamps are microseconds of *simulated* time.  Export is a pure
function of the inputs: two same-seed runs produce byte-identical JSON
(pinned by ``tests/test_examples_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence, Union

from repro.util.metrics import Metrics, QUEUE_NAMES
from repro.util.trace import TraceBuffer

#: simulated seconds -> trace microseconds
_US = 1e6


def _pid_of(shard_of: Optional[Sequence[int]], rank: int) -> int:
    if shard_of is None:
        return 0
    try:
        return shard_of[rank]
    except (IndexError, KeyError):
        return 0


def _meta_events(
    ranks: Sequence[int], shard_of: Optional[Sequence[int]]
) -> List[dict]:
    """process_name / thread_name metadata for every (pid, tid) in use."""
    events: List[dict] = []
    pids: Dict[int, None] = {}
    for r in ranks:
        pids.setdefault(_pid_of(shard_of, r), None)
    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"shard {pid}" if shard_of is not None else "simulation"},
            }
        )
    for r in ranks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _pid_of(shard_of, r),
                "tid": r,
                "args": {"name": f"rank {r}"},
            }
        )
    return events


def chrome_trace_events(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
) -> List[dict]:
    """Build the ``traceEvents`` list (one process per shard, lane per rank)."""
    events: List[dict] = []
    ranks = sorted({ev.rank for ev in trace})
    if metrics is not None:
        ranks = sorted(set(ranks) | {rm.rank for rm in metrics.ranks})
    events.extend(_meta_events(ranks, shard_of))

    open_block: dict = {}
    for ev in trace:
        if ev.kind == "block":
            # an unmatched earlier block (abort path) degrades to an instant
            prev = open_block.pop(ev.rank, None)
            if prev is not None:
                events.append(_instant(prev, shard_of))
            open_block[ev.rank] = ev
        elif ev.kind == "resume" and ev.rank in open_block:
            b = open_block.pop(ev.rank)
            events.append(
                {
                    "ph": "X",
                    "name": b.detail or "blocked",
                    "cat": "sched",
                    "pid": _pid_of(shard_of, ev.rank),
                    "tid": ev.rank,
                    "ts": b.time * _US,
                    "dur": (ev.time - b.time) * _US,
                }
            )
        else:
            events.append(_instant(ev, shard_of))
    for ev in open_block.values():
        events.append(_instant(ev, shard_of))

    if metrics is not None:
        for rm in metrics.ranks:
            name = f"rank {rm.rank} queues"
            pid = _pid_of(shard_of, rm.rank)
            for sample in rm.queue_samples:
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "queues",
                        "pid": pid,
                        "tid": rm.rank,
                        "ts": sample[0] * _US,
                        "args": dict(zip(QUEUE_NAMES, sample[1:])),
                    }
                )

    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return events


def _instant(ev, shard_of: Optional[Sequence[int]] = None) -> dict:
    out = {
        "ph": "i",
        "s": "t",
        "name": ev.kind,
        "cat": "sim",
        "pid": _pid_of(shard_of, ev.rank),
        "tid": ev.rank,
        "ts": ev.time * _US,
    }
    if ev.detail:
        out["args"] = {"detail": ev.detail}
    return out


def chrome_trace_span_events(
    spans, shard_of: Optional[Sequence[int]] = None
) -> List[dict]:
    """Render a :class:`~repro.util.spans.SpanBuffer` as "X" slice events.

    One slice per lifecycle phase, named ``kind:phase``, on the lane of
    the rank whose resource the phase describes; the correlation id and
    causal parent ride in ``args`` so Perfetto's query view can join the
    chains.
    """
    records = spans.canonical_records()
    ranks = sorted({r[2] for r in records})
    events = _meta_events(ranks, shard_of)
    for t0, t1, rank, sid, phase, kind, nbytes, parent in records:
        args = {"sid": f"r{sid[0]}#{sid[1]}", "nbytes": nbytes}
        if parent is not None:
            args["parent"] = f"r{parent[0]}#{parent[1]}"
        events.append(
            {
                "ph": "X",
                "name": f"{kind}:{phase}",
                "cat": "span",
                "pid": _pid_of(shard_of, rank),
                "tid": rank,
                "ts": t0 * _US,
                "dur": (t1 - t0) * _US,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return events


def chrome_trace_telemetry_events(
    telemetry, shard_of: Optional[Sequence[int]] = None
) -> List[dict]:
    """Render telemetry rollup windows as Perfetto counter ("C") tracks.

    One sample per closed window on the owning rank's lane; cumulative
    snapshots are differenced into per-window activity so the tracks plot
    *rates*, while queue depths, NIC backlog and the attentiveness gap are
    instantaneous.  Five tracks per rank: ``tel.ops`` (injections/execs/
    AM polls), ``tel.queues`` (defQ/actQ/compQ/staged), ``tel.nic``
    (bytes + backlog + retransmits), ``tel.agg`` (batches/updates/stall/
    cache hits) and ``tel.attentiveness`` (max progress gap).  Pure
    function of the telemetry state — byte-identical across backends.
    """
    events: List[dict] = []
    ranks_map = telemetry.ranks
    events.extend(_meta_events(sorted(ranks_map), shard_of))
    for rank, rt in sorted(ranks_map.items()):
        pid = _pid_of(shard_of, rank)
        prev_ops = prev_exec = prev_ams = 0
        prev_bytes = prev_retx = 0
        prev_batches = prev_updates = prev_hits = 0
        prev_stall = 0.0
        for win in rt.windows:
            ts = win["t"] * _US
            n_ops = sum(win["ops"].values())
            n_bytes = win["nic"]["bytes_out"]
            n_retx = win["rel"]["retx"]
            agg = win["agg"]
            base = {"pid": pid, "tid": rank, "ph": "C", "ts": ts}
            events.append(dict(base, name=f"rank {rank} tel.ops", cat="telemetry", args={
                "injected": n_ops - prev_ops,
                "executed": win["executed"] - prev_exec,
                "am_polls": win["ams"] - prev_ams,
            }))
            events.append(dict(base, name=f"rank {rank} tel.queues", cat="telemetry", args={
                "defQ": win["queues"][0],
                "actQ": win["queues"][1],
                "compQ": win["queues"][2],
                "staged": win["queues"][3],
            }))
            events.append(dict(base, name=f"rank {rank} tel.nic", cat="telemetry", args={
                "bytes_out": n_bytes - prev_bytes,
                "backlog_us": win["nic"]["backlog_s"] * _US,
                "retransmits": n_retx - prev_retx,
            }))
            events.append(dict(base, name=f"rank {rank} tel.agg", cat="telemetry", args={
                "batches": agg["batches"] - prev_batches,
                "updates": agg["updates"] - prev_updates,
                "credit_stall_us": (agg["credit_stall_s"] - prev_stall) * _US,
                "cache_hits": agg["cache_hits"] - prev_hits,
            }))
            events.append(dict(base, name=f"rank {rank} tel.attentiveness",
                               cat="telemetry", args={
                "max_gap_us": win["max_gap_s"] * _US,
            }))
            prev_ops, prev_exec, prev_ams = n_ops, win["executed"], win["ams"]
            prev_bytes, prev_retx = n_bytes, n_retx
            prev_batches, prev_updates = agg["batches"], agg["updates"]
            prev_hits, prev_stall = agg["cache_hits"], agg["credit_stall_s"]
    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return events


def chrome_trace(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
    telemetry=None,
) -> dict:
    """The full Chrome Trace Event JSON document."""
    events = chrome_trace_events(trace, metrics, shard_of)
    if telemetry is not None:
        # counter tracks interleave with the span/instant lanes; re-sort so
        # the merged stream keeps the canonical deterministic order
        events.extend(chrome_trace_telemetry_events(telemetry, shard_of))
        seen = set()
        deduped = []
        for e in events:
            if e["ph"] == "M":
                key = (e["name"], e["pid"], e["tid"])
                if key in seen:
                    continue
                seen.add(key)
            deduped.append(e)
        events = deduped
        events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return {
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }


def dumps_chrome_trace(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
    telemetry=None,
) -> str:
    """Deterministic JSON text of the trace (byte-stable across runs)."""
    return json.dumps(
        chrome_trace(trace, metrics, shard_of, telemetry),
        sort_keys=True, separators=(",", ":")
    )


def export_chrome_trace(
    dest: Union[str, IO[str]],
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
    telemetry=None,
) -> Union[str, IO[str]]:
    """Write the trace JSON to ``dest`` (a path or open text file)."""
    text = dumps_chrome_trace(trace, metrics, shard_of, telemetry)
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            fh.write(text)
    else:
        dest.write(text)
    return dest


def dumps_metrics(metrics: Metrics) -> str:
    """Deterministic JSON text of a metrics export."""
    return json.dumps(metrics.as_dict(), sort_keys=True, separators=(",", ":"))
