"""Chrome/Perfetto trace export for simulated runs.

Converts a :class:`~repro.util.trace.TraceBuffer` (and optionally a
:class:`~repro.util.metrics.Metrics`) into the Chrome Trace Event JSON
format, loadable in ``ui.perfetto.dev`` or ``chrome://tracing`` with one
lane (tid) per rank:

- scheduler ``block``/``resume`` pairs become complete ("X") duration
  events named by the block reason, so idle/waiting intervals are visible
  as spans;
- every other trace event becomes a thread-scoped instant ("i") event
  (AM polls, compQ executions, user annotations);
- metrics queue-depth samples become counter ("C") tracks, one per rank,
  plotting defQ/actQ/compQ/staged depths over time.

Sharded runs can pass ``shard_of`` (rank -> shard id) so each shard gets
its own Perfetto *process* (pid) instead of all ranks collapsing into one
track group; ``process_name``/``thread_name`` metadata events label the
tracks.  :func:`chrome_trace_span_events` renders a
:class:`~repro.util.spans.SpanBuffer` the same way, one "X" slice per
lifecycle phase.

Timestamps are microseconds of *simulated* time.  Export is a pure
function of the inputs: two same-seed runs produce byte-identical JSON
(pinned by ``tests/test_examples_determinism.py``).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence, Union

from repro.util.metrics import Metrics, QUEUE_NAMES
from repro.util.trace import TraceBuffer

#: simulated seconds -> trace microseconds
_US = 1e6


def _pid_of(shard_of: Optional[Sequence[int]], rank: int) -> int:
    if shard_of is None:
        return 0
    try:
        return shard_of[rank]
    except (IndexError, KeyError):
        return 0


def _meta_events(
    ranks: Sequence[int], shard_of: Optional[Sequence[int]]
) -> List[dict]:
    """process_name / thread_name metadata for every (pid, tid) in use."""
    events: List[dict] = []
    pids: Dict[int, None] = {}
    for r in ranks:
        pids.setdefault(_pid_of(shard_of, r), None)
    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"shard {pid}" if shard_of is not None else "simulation"},
            }
        )
    for r in ranks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _pid_of(shard_of, r),
                "tid": r,
                "args": {"name": f"rank {r}"},
            }
        )
    return events


def chrome_trace_events(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
) -> List[dict]:
    """Build the ``traceEvents`` list (one process per shard, lane per rank)."""
    events: List[dict] = []
    ranks = sorted({ev.rank for ev in trace})
    if metrics is not None:
        ranks = sorted(set(ranks) | {rm.rank for rm in metrics.ranks})
    events.extend(_meta_events(ranks, shard_of))

    open_block: dict = {}
    for ev in trace:
        if ev.kind == "block":
            # an unmatched earlier block (abort path) degrades to an instant
            prev = open_block.pop(ev.rank, None)
            if prev is not None:
                events.append(_instant(prev, shard_of))
            open_block[ev.rank] = ev
        elif ev.kind == "resume" and ev.rank in open_block:
            b = open_block.pop(ev.rank)
            events.append(
                {
                    "ph": "X",
                    "name": b.detail or "blocked",
                    "cat": "sched",
                    "pid": _pid_of(shard_of, ev.rank),
                    "tid": ev.rank,
                    "ts": b.time * _US,
                    "dur": (ev.time - b.time) * _US,
                }
            )
        else:
            events.append(_instant(ev, shard_of))
    for ev in open_block.values():
        events.append(_instant(ev, shard_of))

    if metrics is not None:
        for rm in metrics.ranks:
            name = f"rank {rm.rank} queues"
            pid = _pid_of(shard_of, rm.rank)
            for sample in rm.queue_samples:
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": "queues",
                        "pid": pid,
                        "tid": rm.rank,
                        "ts": sample[0] * _US,
                        "args": dict(zip(QUEUE_NAMES, sample[1:])),
                    }
                )

    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return events


def _instant(ev, shard_of: Optional[Sequence[int]] = None) -> dict:
    out = {
        "ph": "i",
        "s": "t",
        "name": ev.kind,
        "cat": "sim",
        "pid": _pid_of(shard_of, ev.rank),
        "tid": ev.rank,
        "ts": ev.time * _US,
    }
    if ev.detail:
        out["args"] = {"detail": ev.detail}
    return out


def chrome_trace_span_events(
    spans, shard_of: Optional[Sequence[int]] = None
) -> List[dict]:
    """Render a :class:`~repro.util.spans.SpanBuffer` as "X" slice events.

    One slice per lifecycle phase, named ``kind:phase``, on the lane of
    the rank whose resource the phase describes; the correlation id and
    causal parent ride in ``args`` so Perfetto's query view can join the
    chains.
    """
    records = spans.canonical_records()
    ranks = sorted({r[2] for r in records})
    events = _meta_events(ranks, shard_of)
    for t0, t1, rank, sid, phase, kind, nbytes, parent in records:
        args = {"sid": f"r{sid[0]}#{sid[1]}", "nbytes": nbytes}
        if parent is not None:
            args["parent"] = f"r{parent[0]}#{parent[1]}"
        events.append(
            {
                "ph": "X",
                "name": f"{kind}:{phase}",
                "cat": "span",
                "pid": _pid_of(shard_of, rank),
                "tid": rank,
                "ts": t0 * _US,
                "dur": (t1 - t0) * _US,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"]))
    return events


def chrome_trace(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
) -> dict:
    """The full Chrome Trace Event JSON document."""
    return {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(trace, metrics, shard_of),
    }


def dumps_chrome_trace(
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
) -> str:
    """Deterministic JSON text of the trace (byte-stable across runs)."""
    return json.dumps(
        chrome_trace(trace, metrics, shard_of), sort_keys=True, separators=(",", ":")
    )


def export_chrome_trace(
    dest: Union[str, IO[str]],
    trace: TraceBuffer,
    metrics: Optional[Metrics] = None,
    shard_of: Optional[Sequence[int]] = None,
) -> Union[str, IO[str]]:
    """Write the trace JSON to ``dest`` (a path or open text file)."""
    text = dumps_chrome_trace(trace, metrics, shard_of)
    if isinstance(dest, str):
        with open(dest, "w") as fh:
            fh.write(text)
    else:
        dest.write(text)
    return dest


def dumps_metrics(metrics: Metrics) -> str:
    """Deterministic JSON text of a metrics export."""
    return json.dumps(metrics.as_dict(), sort_keys=True, separators=(",", ":"))
