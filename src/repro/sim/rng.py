"""Per-rank deterministic random streams.

Every rank derives an independent stream from ``(global_seed, rank)`` so
that results are reproducible regardless of scheduling and independent of
how many ranks exist (rank r's stream is the same whether the job has 2 or
512 ranks — important for weak-scaling benchmarks whose per-rank workload
must not change shape as the job grows).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

import numpy as np


def _derive_seed(global_seed: int, rank: int, salt: str = "") -> int:
    """Derive a 64-bit child seed via SHA-256 (stable across Python runs)."""
    h = hashlib.sha256(f"{global_seed}:{rank}:{salt}".encode()).digest()
    return int.from_bytes(h[:8], "little")


class RankRandom:
    """A rank's bundle of deterministic generators.

    Attributes
    ----------
    py : random.Random
        For scalar draws (targets, keys).
    np : numpy.random.Generator
        For bulk array draws (payload contents).
    """

    def __init__(self, global_seed: int, rank: int, salt: str = ""):
        self.seed = _derive_seed(global_seed, rank, salt)
        self.py = random.Random(self.seed)
        self.np = np.random.default_rng(self.seed)
        self.rank = rank

    def spawn(self, salt: str) -> "RankRandom":
        """Derive an independent child stream (e.g. per benchmark phase)."""
        child = RankRandom.__new__(RankRandom)
        child.seed = _derive_seed(self.seed, self.rank, salt)
        child.py = random.Random(child.seed)
        child.np = np.random.default_rng(child.seed)
        child.rank = self.rank
        return child

    def key64(self) -> int:
        """A uniform 64-bit key (the paper's DHT uses random 8-byte keys)."""
        return self.py.getrandbits(64)

    def bytes(self, n: int) -> bytes:
        """``n`` deterministic pseudorandom bytes."""
        return self.np.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def make_rank_rng(global_seed: Optional[int], rank: int, salt: str = "") -> RankRandom:
    """Factory used by the runtime; ``None`` seed means seed 0."""
    return RankRandom(0 if global_seed is None else global_seed, rank, salt)
