"""Deterministic discrete-event simulation (DES) kernel.

This package provides the execution substrate everything else runs on:

- :mod:`repro.sim.engine` — a time-ordered event queue with deterministic
  tie-breaking.
- :mod:`repro.sim.coop` — the cooperative SPMD runtime: every simulated
  process (*rank*) runs user code on its own OS thread, but a conservative
  scheduler guarantees that exactly one rank executes at a time and that the
  executing entity (rank or network event) is always the one with the
  globally minimal simulated timestamp.  This makes runs bit-deterministic
  while letting user code be written in the natural blocking style of the
  paper (``fut.wait()``).
- :mod:`repro.sim.rng` — per-rank deterministic random streams.

Simulated time is a float in seconds.  Wall-clock time plays no role in any
measured quantity.
"""

from repro.sim.errors import SimError, DeadlockError, RankFailure, SimAbort
from repro.sim.engine import EventQueue
from repro.sim.coop import Scheduler, current_scheduler, current_rank, run_spmd
from repro.sim.rng import RankRandom

__all__ = [
    "SimError",
    "DeadlockError",
    "RankFailure",
    "SimAbort",
    "EventQueue",
    "Scheduler",
    "current_scheduler",
    "current_rank",
    "run_spmd",
    "RankRandom",
]
