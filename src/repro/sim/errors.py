"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimError(RuntimeError):
    """Base class for simulator errors."""


class DeadlockError(SimError):
    """All ranks are blocked, the event queue is empty, yet ranks remain.

    The message lists every blocked rank with the reason it registered when
    it went to sleep, which is usually enough to find the missing
    ``progress()`` call or mismatched collective.
    """


class RankFailure(SimError):
    """User code on some rank raised an exception.

    The original exception is attached as ``__cause__`` and the failing rank
    id is available as :attr:`rank`.
    """

    def __init__(self, rank: int, message: str):
        super().__init__(f"rank {rank} failed: {message}")
        self.rank = rank


class RankDeadError(SimError):
    """A simulated rank crashed (fault injection) and was detected dead.

    Raised on surviving ranks once the heartbeat timeout expires.  The dead
    rank id is available as :attr:`rank`; the crash and detection times are
    embedded in the message so the verdict is reproducible bit-for-bit
    across scheduler backends.
    """

    def __init__(self, rank: int, message: str):
        super().__init__(message)
        self.rank = rank


class RankCrashed(BaseException):
    """Internal control-flow exception unwinding a crashed rank's fiber.

    Raised from inside the crashed rank's own progress path when its
    simulated clock passes the fault plan's crash time.  Like
    :class:`SimAbort` it derives from ``BaseException`` so user ``except
    Exception`` blocks cannot resurrect a dead rank.
    """


class SimAbort(BaseException):
    """Internal control-flow exception used to unwind rank threads.

    Raised inside a rank thread when the simulation is being torn down
    because another rank failed or a deadlock was detected.  It derives from
    ``BaseException`` so that well-meaning ``except Exception`` blocks in
    user code cannot swallow it.
    """
