"""Seeded fault injection for the deterministic simulator.

A :class:`FaultPlan` describes, from its *own* RNG stream (derived via
:func:`repro.sim.rng._derive_seed`, fully decoupled from the application
seed), a set of adversarial network conditions:

- **drops** — a payload or ack frame vanishes on the wire and must be
  retransmitted by the reliability layer in :mod:`repro.gasnet.conduit`;
- **duplicates** — a frame arrives more than once (masked by sequence
  numbers, counted in metrics);
- **jitter** — bounded extra wire latency per frame;
- **stalls** — transient per-NIC outage windows during which a rank's NIC
  cannot begin an injection;
- **crashes** — whole-rank death at a simulated time, detected by
  survivors through a heartbeat timeout and surfaced as
  :class:`repro.sim.errors.RankDeadError`.

Determinism is the hard requirement: every decision is a *pure function*
of ``(plan seed, stream name, src, dst, seq, attempt)`` — a stateless
hash, not a stateful generator — so the verdict of "was frame #3 of
channel 0→1 dropped on its second attempt?" is identical no matter which
scheduler backend asks, in which order, or how many times.  That is what
lets the conduit compute a whole retransmit ladder analytically at send
time and still be bit-identical across the coroutine, thread, and
sharded backends.

Plans can be given programmatically (``run_spmd(faults=FaultPlan(...))``),
as a spec string (``run_spmd(faults="seed=1,drop=0.2,crash=1@3e-4")`` or
the ``REPRO_FAULTS`` environment variable), or as a dict of the same
fields.
"""

from __future__ import annotations

import hashlib
import os
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.sim.rng import RankRandom

FAULTS_ENV = "REPRO_FAULTS"

#: environment default for the heartbeat detection timeout (seconds);
#: applies when the plan spec/dict does not set ``detect`` itself
HEARTBEAT_ENV = "REPRO_HEARTBEAT_TIMEOUT"

#: number of pre-sampled stall windows per rank (lazily materialized);
#: enough to cover any realistic run — beyond the last window the NIC is
#: considered permanently healthy again
_STALL_WINDOWS = 64

_TWO64 = float(2**64)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable description of injected faults.

    Parameters
    ----------
    seed:
        Root of the plan's private RNG stream.  Two runs with the same
        plan are bit-identical; changing only ``seed`` reshuffles every
        fault decision without touching application RNG.
    drop:
        Probability that a payload frame is lost in transit.  Also the
        probability (on an independent stream) that an ack frame is lost.
    dup:
        Probability that a delivered frame arrives twice.
    jitter:
        Upper bound (seconds) of uniform extra wire latency per frame.
    stall_rate:
        Mean rate (events/second of simulated time) of transient NIC
        outages per rank; ``0`` disables stalls.
    stall_s:
        Duration (seconds) of each NIC outage window.
    crash:
        Mapping of rank id → simulated crash time.
    detect_timeout:
        Heartbeat timeout: survivors raise ``RankDeadError`` at
        ``crash_time + detect_timeout``.  The ``REPRO_HEARTBEAT_TIMEOUT``
        environment variable supplies the default for specs/dicts that do
        not set ``detect`` themselves.
    survivable:
        When True, a detected crash does **not** unwind the run: the
        scheduler records the death, fires registered death listeners
        (``Scheduler.on_rank_dead``) and wakes the survivors, which keep
        executing — the mode the replication/failover layer
        (:mod:`repro.upcxx.replication`) builds on.  Default False
        (fail-stop, the paper's semantics).
    rto:
        Base retransmission timeout; ``None`` derives a safe default from
        the channel's latency so that a zero-fault plan never spuriously
        retransmits (keeping it bit-identical to ``faults=None``).
    max_retx:
        Retransmit attempts after which the frame *and* its ack are
        forced through, bounding every ladder (no-hang guarantee).
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    jitter: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.0
    crash: Dict[int, float] = field(default_factory=dict)
    detect_timeout: float = 2e-5
    survivable: bool = False
    rto: Optional[float] = None
    max_retx: int = 10

    # ------------------------------------------------------------------
    # stateless fault decisions
    # ------------------------------------------------------------------
    def _u(self, stream: str, src: int, dst: int, seq: int, attempt: int) -> float:
        """Uniform [0,1) draw, a pure function of the frame's identity."""
        h = hashlib.blake2b(
            f"{self.seed}:{stream}:{src}:{dst}:{seq}:{attempt}".encode(),
            digest_size=8,
        ).digest()
        return int.from_bytes(h, "little") / _TWO64

    def drops_frame(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Is this payload-frame transmission attempt lost?

        Forced ``False`` once ``attempt`` reaches :attr:`max_retx` so the
        retransmit ladder always terminates.
        """
        if self.drop <= 0.0 or attempt >= self.max_retx:
            return False
        return self._u("drop", src, dst, seq, attempt) < self.drop

    def drops_ack(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Is the ack for this delivered attempt lost on the way back?"""
        if self.drop <= 0.0 or attempt >= self.max_retx:
            return False
        return self._u("ackdrop", src, dst, seq, attempt) < self.drop

    def duplicates(self, src: int, dst: int, seq: int, attempt: int) -> bool:
        """Does this delivered attempt arrive twice at the receiver?"""
        if self.dup <= 0.0:
            return False
        return self._u("dup", src, dst, seq, attempt) < self.dup

    def jitter_of(self, src: int, dst: int, seq: int, attempt: int) -> float:
        """Extra wire latency for this payload-frame attempt."""
        if self.jitter <= 0.0:
            return 0.0
        return self._u("jitter", src, dst, seq, attempt) * self.jitter

    def ack_jitter_of(self, src: int, dst: int, seq: int, attempt: int) -> float:
        """Extra wire latency for this attempt's ack frame."""
        if self.jitter <= 0.0:
            return 0.0
        return self._u("ackjit", src, dst, seq, attempt) * self.jitter

    # ------------------------------------------------------------------
    # NIC stall windows
    # ------------------------------------------------------------------
    def _stall_starts(self, rank: int) -> List[float]:
        cache = self.__dict__.setdefault("_stall_cache", {})
        starts = cache.get(rank)
        if starts is None:
            rng = RankRandom(self.seed, rank, "faults.stall")
            starts, t = [], 0.0
            for _ in range(_STALL_WINDOWS):
                t += rng.py.expovariate(self.stall_rate) + self.stall_s
                starts.append(t)
            cache[rank] = starts
        return starts

    def stall_until(self, rank: int, t: float) -> float:
        """Earliest time ≥ ``t`` at which ``rank``'s NIC can inject.

        If ``t`` falls inside a pre-sampled outage window the injection
        is pushed to the window's end; otherwise ``t`` is returned
        unchanged.
        """
        if self.stall_rate <= 0.0 or self.stall_s <= 0.0:
            return t
        starts = self._stall_starts(rank)
        i = bisect_right(starts, t) - 1
        if i >= 0 and t < starts[i] + self.stall_s:
            return starts[i] + self.stall_s
        return t

    # ------------------------------------------------------------------
    # crashes
    # ------------------------------------------------------------------
    @property
    def crashes(self) -> Dict[int, float]:
        return self.crash

    def crash_cutoff(self, rank: int) -> float:
        """Time after which frames addressed to ``rank`` are never
        delivered (``inf`` when the rank never crashes)."""
        return self.crash.get(rank, float("inf"))

    def dead_error(self, rank: int):
        """The :class:`RankDeadError` survivors raise for ``rank``'s death.

        Single construction point so every backend — including shard
        workers that don't host the dead rank — raises a byte-identical
        verdict.
        """
        from repro.sim.errors import RankDeadError

        t_die = self.crash[rank]
        return RankDeadError(
            rank,
            f"rank {rank} died at t={t_die!r} "
            f"(heartbeat timeout after {self.detect_timeout!r}s)",
        )

    # ------------------------------------------------------------------
    # retransmission policy
    # ------------------------------------------------------------------
    def rto_for(self, lat: float, ack_lat: float) -> float:
        """Retransmission timeout for a channel with the given one-way
        latencies.  The default covers a full round trip plus the worst
        jitter on both legs with 2x margin, so a fault-free frame is
        always acked before its first retransmit would fire."""
        if self.rto is not None:
            return self.rto
        return 2.0 * (lat + ack_lat + 2.0 * self.jitter)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.dup:
            parts.append(f"dup={self.dup:g}")
        if self.jitter:
            parts.append(f"jitter={self.jitter:g}")
        if self.stall_rate:
            parts.append(f"stall={self.stall_rate:g}:{self.stall_s:g}")
        if self.crash:
            parts.append(
                "crash=" + "+".join(f"{r}@{t:g}" for r, t in sorted(self.crash.items()))
            )
            parts.append(f"detect={self.detect_timeout:g}")
        if self.survivable:
            parts.append("survive=1")
        return ",".join(parts)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse a comma-separated spec string.

        ``"seed=1,drop=0.25,dup=0.1,jitter=2e-6,stall=5000:1e-5,crash=1@3e-4+2@5e-4,detect=2e-5,rto=1e-5,max_retx=8"``
        """
        kw: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault spec item {item!r} (expected key=value)")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "seed":
                kw["seed"] = int(value)
            elif key == "drop":
                kw["drop"] = float(value)
            elif key == "dup":
                kw["dup"] = float(value)
            elif key == "jitter":
                kw["jitter"] = float(value)
            elif key == "stall":
                rate, _, dur = value.partition(":")
                kw["stall_rate"] = float(rate)
                kw["stall_s"] = float(dur) if dur else 1e-5
            elif key == "crash":
                crashes: Dict[int, float] = {}
                for entry in value.split("+"):
                    r, _, t = entry.partition("@")
                    crashes[int(r)] = float(t)
                kw["crash"] = crashes
            elif key == "detect":
                kw["detect_timeout"] = float(value)
            elif key == "survive":
                kw["survivable"] = bool(int(value))
            elif key == "rto":
                kw["rto"] = float(value)
            elif key == "max_retx":
                kw["max_retx"] = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return FaultPlan(**_apply_heartbeat_env(kw))

    @staticmethod
    def resolve(value: Union[None, str, dict, "FaultPlan"]) -> Optional["FaultPlan"]:
        """Coerce the ``run_spmd(faults=...)`` argument to a plan.

        ``None`` falls back to the ``REPRO_FAULTS`` environment variable
        (itself optional), a string is parsed as a spec, a dict becomes
        keyword arguments, and a plan passes through unchanged.
        """
        if value is None:
            env = os.environ.get(FAULTS_ENV, "").strip()
            if not env:
                return None
            value = env
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return FaultPlan.parse(value)
        if isinstance(value, dict):
            return FaultPlan(**_apply_heartbeat_env(dict(value)))
        raise TypeError(f"cannot interpret faults={value!r} as a FaultPlan")


def _apply_heartbeat_env(kw: dict) -> dict:
    """Fill ``detect_timeout`` from ``REPRO_HEARTBEAT_TIMEOUT`` when the
    spec/dict did not set it explicitly (explicit always wins; plans built
    programmatically as ``FaultPlan(...)`` are never rewritten)."""
    if "detect_timeout" not in kw:
        env = os.environ.get(HEARTBEAT_ENV, "").strip()
        if env:
            kw["detect_timeout"] = float(env)
    return kw


__all__ = ["FaultPlan", "FAULTS_ENV", "HEARTBEAT_ENV"]
