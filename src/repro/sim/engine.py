"""Time-ordered event queue with deterministic tie-breaking.

Events are ``(time, seq, callback)`` triples kept in a binary heap.  ``seq``
is a monotonically increasing insertion counter, so two events scheduled for
the same instant always fire in the order they were posted — the property
that makes whole-simulation runs reproducible.

Event callbacks are *network context*: they run with the scheduler lock held
and must be cheap and non-blocking (deliver a message to an inbox, fulfill a
handle, wake a rank).  They must never invoke user code directly.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

_INF = float("inf")


class EventQueue:
    """A deterministic priority queue of timestamped callbacks."""

    __slots__ = ("_heap", "_seq", "_count_posted", "_count_fired")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._count_posted = 0
        self._count_fired = 0

    def push(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to fire at simulated ``time``."""
        if time != time or time < 0 or time == _INF:  # NaN, negative, or inf
            raise ValueError(f"invalid event time: {time!r}")
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {type(fn).__name__}")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1
        self._count_posted += 1

    def push_keyed(self, time: float, key, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at ``time`` with an explicit tie-break ``key``.

        Used by the sharded backend, where the local insertion counter is
        meaningless across processes: ``key`` is a causal stamp that totally
        orders same-instant events identically on every shard.  ``key`` must
        be orderable against every other key pushed into this queue.
        """
        if time != time or time < 0 or time == _INF:  # NaN, negative, or inf
            raise ValueError(f"invalid event time: {time!r}")
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {type(fn).__name__}")
        heapq.heappush(self._heap, (time, key, fn))
        self._count_posted += 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self):
        """Remove and return ``(time, fn)`` for the earliest event."""
        time, _seq, fn = heapq.heappop(self._heap)
        self._count_fired += 1
        return time, fn

    def pop_entry(self):
        """Pop the earliest event as ``(time, key, fn)`` (key = tie-break)."""
        time, key, fn = heapq.heappop(self._heap)
        self._count_fired += 1
        return time, key, fn

    def account_fired(self, n: int) -> None:
        """Batched-drain accounting: credit ``n`` events popped directly.

        Schedulers that drain ``_heap`` in a tight loop (popping entries
        without calling :meth:`pop`) flush their fired-count once per batch
        through this method so :attr:`stats` stays accurate.
        """
        self._count_fired += n

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def stats(self) -> dict:
        """Lifetime counters, for tests and diagnostics."""
        return {
            "posted": self._count_posted,
            "fired": self._count_fired,
            "pending": len(self._heap),
        }
