"""Cooperative SPMD runtime over the discrete-event engine.

Every simulated process (*rank*) executes its user function on a dedicated
OS thread, written in ordinary blocking style.  A conservative scheduler
enforces the invariant that **exactly one entity runs at any instant**, and
that it is always the entity with the globally minimal simulated timestamp:

- a *rank* with the smallest local clock among ready ranks, or
- a pending *network event* (conduit delivery, completion) that is due no
  later than any ready rank.

Rank code interacts with the scheduler through four primitives:

``charge(dt)``
    advance my simulated clock by ``dt`` seconds of CPU work, yielding the
    baton if someone else is now earlier;
``post(delay, fn)`` / ``post_at(t, fn)``
    schedule a network-context callback (runs with the scheduler lock held,
    must not block or call user code);
``block(reason)``
    go to sleep until some event calls ``wake`` for me (spurious wake-ups
    are allowed — callers re-check their predicate);
``wake(rank, at_time)``
    make a blocked rank runnable, advancing its clock to at least
    ``at_time`` (network-context only).

Because events fire in deterministic (time, insertion) order and ranks are
resumed in deterministic (clock, rank) order, an entire simulation is a
pure function of its inputs and seed.  The GIL plus the baton discipline
mean library state needs no further locking: there is never true
concurrency between ranks or between a rank and an event callback.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, List, Optional, Sequence

from repro.sim.engine import EventQueue
from repro.sim.errors import DeadlockError, RankFailure, SimAbort, SimError
from repro.util.trace import TraceBuffer

# Rank states
_NEW = 0
_READY = 1
_RUNNING = 2
_BLOCKED = 3
_DONE = 4

_STATE_NAMES = {_NEW: "NEW", _READY: "READY", _RUNNING: "RUNNING", _BLOCKED: "BLOCKED", _DONE: "DONE"}

_tls = threading.local()

# Modest stacks: simulated ranks are shallow (library calls only), and jobs
# may create hundreds of rank threads.
_STACK_BYTES = 512 * 1024


class _RankCtl:
    """Per-rank control block (scheduler internals)."""

    __slots__ = (
        "rid",
        "state",
        "clock",
        "cond",
        "thread",
        "result",
        "block_reason",
        "ready_stamp",
        "env",
        "pending_wake",
    )

    def __init__(self, rid: int, lock: threading.RLock):
        self.rid = rid
        self.state = _NEW
        self.clock = 0.0
        self.cond = threading.Condition(lock)
        self.thread: Optional[threading.Thread] = None
        self.result = None
        self.block_reason = ""
        self.ready_stamp = 0
        self.env: dict = {}
        #: wake timestamps received while not blocked (sticky wakes);
        #: consumed by block() to prevent lost wakeups when events destined
        #: for this rank fire at *future* timestamps while another
        #: (later-clocked) rank drains the event queue
        self.pending_wake: list = []


class Scheduler:
    """The global conservative scheduler for one SPMD job."""

    def __init__(self, n_ranks: int, trace: Optional[TraceBuffer] = None, max_time: float = 1e6):
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        self.n_ranks = n_ranks
        self._lock = threading.RLock()
        self._events = EventQueue()
        self._ranks: List[_RankCtl] = [_RankCtl(r, self._lock) for r in range(n_ranks)]
        self._ready: list = []  # heap of (clock, rid, stamp)
        self._main_cond = threading.Condition(self._lock)
        self._failure: Optional[BaseException] = None
        self._n_done = 0
        self._running = False
        self.trace = trace if trace is not None else TraceBuffer(enabled=False)
        self.max_time = max_time
        self.env: dict = {}  # upper layers stash per-job singletons here
        self.switches = 0

    # ------------------------------------------------------------------ intro
    def _me(self) -> _RankCtl:
        ctx = getattr(_tls, "ctx", None)
        if ctx is None or ctx[0] is not self:
            raise SimError("not inside a rank thread of this scheduler")
        return self._ranks[ctx[1]]

    # ------------------------------------------------------------ rank context
    def now(self) -> float:
        """Current rank's simulated clock (seconds)."""
        return self._me().clock

    def rank_env(self, rid: Optional[int] = None) -> dict:
        """Per-rank scratch dict for upper layers."""
        if rid is None:
            return self._me().env
        return self._ranks[rid].env

    def charge(self, dt: float) -> None:
        """Advance my clock by ``dt`` seconds of simulated CPU time."""
        if dt < 0:
            raise ValueError(f"negative charge: {dt}")
        me = self._me()
        with self._lock:
            self._check_abort()
            me.clock += dt
            if me.clock > self.max_time:
                self._fail(SimError(f"simulated time exceeded max_time={self.max_time}"))
                raise SimAbort()
            self._checkpoint_locked(me)

    def checkpoint(self) -> None:
        """Deliver due events and yield if another entity is earlier.

        Library code calls this at every synchronization-relevant point that
        does not itself charge time.
        """
        me = self._me()
        with self._lock:
            self._check_abort()
            self._checkpoint_locked(me)

    def post(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        me = self._me()
        with self._lock:
            self._events.push(me.clock + delay, fn)

    def post_at(self, t: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback at absolute time ``t``.

        Callable from network context (events posting follow-on events).
        """
        with self._lock:
            self._events.push(t, fn)

    def block(self, reason: str = "") -> None:
        """Sleep until some event wakes me.  Spurious wake-ups possible."""
        me = self._me()
        with self._lock:
            self._check_abort()
            if me.pending_wake:
                # Wakes targeted us while we were runnable.  Any in our
                # past means state already changed: return immediately
                # (spurious wake; the caller re-checks its predicate).
                # Otherwise convert the earliest future one into a timer so
                # we resume exactly then; later ones stay pending.
                past = [t for t in me.pending_wake if t <= me.clock]
                if past:
                    me.pending_wake = [t for t in me.pending_wake if t > me.clock]
                    return
                t = min(me.pending_wake)
                me.pending_wake.remove(t)
                self._events.push(t, lambda: self.wake(me.rid, t))
            me.state = _BLOCKED
            me.block_reason = reason
            self.trace.record(me.clock, me.rid, "block", reason)
            self._dispatch_locked()
            while me.state != _RUNNING:
                me.cond.wait()
            self._check_abort()
            self.trace.record(me.clock, me.rid, "resume", reason)

    def sleep(self, dt: float) -> None:
        """Block for ``dt`` seconds of simulated time (pure delay)."""
        me = self._me()
        deadline = me.clock + dt
        self.post(dt, lambda: self.wake(me.rid, deadline))
        while me.clock < deadline:
            self.block(f"sleep until {deadline}")
        self.checkpoint()

    # -------------------------------------------------------- network context
    def wake(self, rid: int, at_time: float) -> None:
        """Make rank ``rid`` runnable with clock >= ``at_time``.

        Network-context only (the scheduler lock is already held because all
        events run under it); also safe from rank context thanks to the
        reentrant lock.
        """
        with self._lock:
            ctl = self._ranks[rid]
            if ctl.state == _BLOCKED:
                if at_time > ctl.clock:
                    ctl.clock = at_time
                ctl.state = _READY
                self._push_ready(ctl)
            elif ctl.state in (_READY, _RUNNING):
                # Sticky wake: the rank is runnable at an earlier clock and
                # may block before reaching ``at_time``; remember every such
                # wake so its next block() converts them into timers instead
                # of sleeping forever (lost-wakeup guard).
                ctl.pending_wake.append(at_time)
            # DONE: nothing to do.

    # ------------------------------------------------------------- internals
    def _push_ready(self, ctl: _RankCtl) -> None:
        ctl.ready_stamp += 1
        heapq.heappush(self._ready, (ctl.clock, ctl.rid, ctl.ready_stamp))

    def _peek_ready(self):
        """Return (clock, ctl) of the earliest ready rank, or None."""
        while self._ready:
            clock, rid, stamp = self._ready[0]
            ctl = self._ranks[rid]
            if ctl.state != _READY or stamp != ctl.ready_stamp or clock != ctl.clock:
                heapq.heappop(self._ready)  # stale entry
                continue
            return clock, ctl
        return None

    def _pop_ready(self) -> _RankCtl:
        clock, ctl = self._peek_ready()  # type: ignore[misc]
        heapq.heappop(self._ready)
        return ctl

    def _checkpoint_locked(self, me: _RankCtl) -> None:
        # Deliver due events — but only those that are *globally* minimal:
        # an event must never fire while a READY rank with an earlier clock
        # has not yet executed up to the event's timestamp (it could still
        # create causally-prior effects).  Blocked ranks do not gate firing:
        # they cannot act until an event wakes them.
        while True:
            et = self._events.peek_time()
            if et is None or et > me.clock:
                break
            top = self._peek_ready()
            if top is not None and et > top[0]:
                break  # an earlier rank must run first
            _, fn = self._events.pop()
            fn()
        top = self._peek_ready()
        if top is not None and top[0] < me.clock:
            # Someone is earlier: yield.
            me.state = _READY
            self._push_ready(me)
            self._dispatch_locked()
            while me.state != _RUNNING:
                me.cond.wait()
            self._check_abort()

    def _dispatch_locked(self) -> None:
        """Hand the baton to the next entity.  Caller must not be RUNNING."""
        while True:
            if self._failure is not None:
                self._abort_all_locked()
                return
            top = self._peek_ready()
            et = self._events.peek_time()
            if top is not None and (et is None or top[0] < et):
                ctl = self._pop_ready()
                ctl.state = _RUNNING
                self.switches += 1
                ctl.cond.notify()
                return
            if et is not None:
                # Event is due first (ties go to events so deliveries at
                # time t are visible to a rank resuming at time t).
                _, fn = self._events.pop()
                fn()
                continue
            # No ready ranks, no events.
            if self._n_done == self.n_ranks:
                self._main_cond.notify()
                return
            blocked = [
                f"  rank {c.rid} (clock {c.clock:.9f}s): {c.block_reason or '<no reason>'}"
                for c in self._ranks
                if c.state == _BLOCKED
            ]
            self._fail(
                DeadlockError(
                    "simulation deadlock: no runnable ranks and no pending events.\n"
                    + "\n".join(blocked)
                )
            )
            return

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._abort_all_locked()

    def _abort_all_locked(self) -> None:
        for ctl in self._ranks:
            if ctl.state in (_BLOCKED, _READY):
                ctl.state = _RUNNING  # so its wait-loop exits and aborts
                ctl.cond.notify()
        self._main_cond.notify()

    def _check_abort(self) -> None:
        if self._failure is not None:
            raise SimAbort()

    # ------------------------------------------------------------------- run
    def _bootstrap(self, ctl: _RankCtl, fn: Callable[[int], object]) -> None:
        _tls.ctx = (self, ctl.rid)
        try:
            with self._lock:
                while ctl.state != _RUNNING:
                    ctl.cond.wait()
                if self._failure is not None:
                    raise SimAbort()
            ctl.result = fn(ctl.rid)
        except SimAbort:
            pass
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with self._lock:
                if self._failure is None:
                    failure = RankFailure(ctl.rid, f"{type(exc).__name__}: {exc}")
                    failure.__cause__ = exc
                    self._failure = failure
                self._abort_all_locked()
        finally:
            _tls.ctx = None
            with self._lock:
                ctl.state = _DONE
                self._n_done += 1
                if self._failure is None:
                    self._dispatch_locked()
                else:
                    self._main_cond.notify()

    def run(self, fn: Callable[[int], object]) -> List[object]:
        """Run ``fn(rank)`` on every rank to completion; return the results.

        Raises :class:`RankFailure` if any rank raised, or
        :class:`DeadlockError` if the simulation wedged.
        """
        if self._running:
            raise SimError("Scheduler.run() is not reentrant")
        self._running = True
        old_stack = threading.stack_size()
        try:
            threading.stack_size(_STACK_BYTES)
        except (ValueError, RuntimeError):
            pass
        try:
            for ctl in self._ranks:
                ctl.thread = threading.Thread(
                    target=self._bootstrap,
                    args=(ctl, fn),
                    name=f"simrank-{ctl.rid}",
                    daemon=True,
                )
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):
                pass

        for ctl in self._ranks:
            assert ctl.thread is not None
            ctl.thread.start()

        with self._lock:
            for ctl in self._ranks:
                ctl.state = _READY
                self._push_ready(ctl)
            self._dispatch_locked()
            while self._n_done < self.n_ranks and self._failure is None:
                self._main_cond.wait()

        for ctl in self._ranks:
            assert ctl.thread is not None
            ctl.thread.join(timeout=30.0)

        if self._failure is not None:
            raise self._failure
        return [ctl.result for ctl in self._ranks]

    # ------------------------------------------------------------ diagnostics
    def snapshot(self) -> str:
        """Human-readable state of all ranks (for error messages/tests)."""
        with self._lock:
            lines = [
                f"rank {c.rid}: {_STATE_NAMES[c.state]} clock={c.clock:.9f}"
                + (f" [{c.block_reason}]" if c.state == _BLOCKED else "")
                for c in self._ranks
            ]
            lines.append(f"pending events: {len(self._events)}; switches: {self.switches}")
            return "\n".join(lines)


def current_scheduler() -> Scheduler:
    """The scheduler of the calling rank thread."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise SimError("no active simulation on this thread")
    return ctx[0]


def current_rank() -> int:
    """The rank id of the calling rank thread."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise SimError("no active simulation on this thread")
    return ctx[1]


def run_spmd(
    fn: Callable[[int], object],
    n_ranks: int,
    trace: Optional[TraceBuffer] = None,
    max_time: float = 1e6,
) -> Sequence[object]:
    """Convenience wrapper: build a scheduler and run ``fn`` on every rank."""
    sched = Scheduler(n_ranks, trace=trace, max_time=max_time)
    return sched.run(fn)
