"""Cooperative SPMD runtime over the discrete-event engine.

Every simulated process (*rank*) executes its user function in ordinary
blocking style.  A conservative scheduler enforces the invariant that
**exactly one entity runs at any instant**, and that it is always the
entity with the globally minimal simulated timestamp:

- a *rank* with the smallest local clock among ready ranks, or
- a pending *network event* (conduit delivery, completion) that is due no
  later than any ready rank.

Rank code interacts with the scheduler through four primitives:

``charge(dt)``
    advance my simulated clock by ``dt`` seconds of CPU work, yielding the
    baton if someone else is now earlier;
``post(delay, fn)`` / ``post_at(t, fn)``
    schedule a network-context callback (runs inside the dispatch loop,
    must not block or call user code);
``block(reason)``
    go to sleep until some event calls ``wake`` for me (spurious wake-ups
    are allowed — callers re-check their predicate);
``wake(rank, at_time)``
    make a blocked rank runnable, advancing its clock to at least
    ``at_time`` (network-context only).

Events are heap-keyed by ``(fire_time, causal stamp)``: a post from rank
context is stamped ``(poster clock, poster rank, per-rank seq)``, and a
post made while an event is firing extends the firing event's stamp with
a child index.  The stamp — not a global insertion counter — breaks ties
among events due at the same instant, so the fire order is a pure
function of causality, identical across every backend (including the
multi-process sharded one, where a global insertion order does not
exist).  Ranks are resumed in deterministic (clock, rank) order, so an
entire simulation is a pure function of its inputs and seed.

Three interchangeable backends implement the baton discipline:

``backend="coroutines"`` (default)
    Rank bodies run as cooperative fibers resumed by a dispatch loop.  All
    scheduler state is lock-free — the baton discipline itself (plus the
    GIL) is the mutual exclusion — and the hot path of ``charge()`` is a
    single comparison against a cached *horizon* (the earliest instant at
    which anything else could need to run).  Fiber switches hand the baton
    directly to the next runnable entity through one raw lock release.
    Because pure CPython cannot switch C stacks, each fiber's suspended
    call stack is carried by a parked OS thread; the dispatch structure,
    not thread elimination, is what makes switching cheap.

``backend="threads"``
    The original conservative scheduler: one OS thread per rank, a global
    re-entrant lock, and condition-variable handoffs.  Kept as the
    reference implementation.

``backend="sharded"``
    Conservative *parallel* DES (``repro.sim.shard``): simulated nodes
    are partitioned across ``REPRO_SIM_SHARDS`` forked worker processes,
    each running the coroutine machinery under a lookahead-bounded
    window protocol.  Wall-clock speedup scales with physical cores.

All backends produce bit-identical simulated times, results, and
canonical traces (see tests/test_backend_determinism.py).  Select one
per scheduler (``Scheduler(n, backend=...)``) or globally with the
``REPRO_SIM_BACKEND`` environment variable.
"""

from __future__ import annotations

import heapq
import os
import threading
import _thread
from typing import Callable, List, Optional, Sequence

from repro.sim.engine import EventQueue, _INF
from repro.sim.errors import DeadlockError, RankCrashed, RankFailure, SimAbort, SimError
from repro.util.trace import TraceBuffer

# Rank states
_NEW = 0
_READY = 1
_RUNNING = 2
_BLOCKED = 3
_DONE = 4

_STATE_NAMES = {_NEW: "NEW", _READY: "READY", _RUNNING: "RUNNING", _BLOCKED: "BLOCKED", _DONE: "DONE"}

_tls = threading.local()

# Modest stacks: simulated ranks are shallow (library calls only), and jobs
# may create thousands of rank fibers.
_STACK_BYTES = 512 * 1024

#: environment override for the default backend
BACKEND_ENV = "REPRO_SIM_BACKEND"
DEFAULT_BACKEND = "coroutines"


class Scheduler:
    """The global conservative scheduler for one SPMD job.

    Instantiating ``Scheduler(...)`` returns the selected backend
    implementation (:class:`CoroutineScheduler` by default,
    :class:`ThreadScheduler` with ``backend="threads"``); both are
    subclasses, so ``isinstance(s, Scheduler)`` holds either way.
    """

    def __new__(cls, *args, **kwargs):
        if cls is Scheduler:
            name = kwargs.get("backend") or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
            impl = _BACKENDS.get(name)
            if impl is None and name in _LAZY_BACKENDS:
                import importlib

                importlib.import_module(_LAZY_BACKENDS[name])
                impl = _BACKENDS.get(name)
            if impl is None:
                known = sorted(set(_BACKENDS) | set(_LAZY_BACKENDS))
                raise ValueError(
                    f"unknown scheduler backend {name!r}; expected one of {known}"
                )
            return object.__new__(impl)
        return object.__new__(cls)

    #: backend name, overridden by subclasses
    backend = "abstract"

    # ------------------------------------------------------------ shared API
    def sleep(self, dt: float) -> None:
        """Block for ``dt`` seconds of simulated time (pure delay)."""
        me = self._me()
        deadline = me.clock + dt
        self.post(dt, lambda: self.wake(me.rid, deadline))
        while me.clock < deadline:
            self.block(f"sleep until {deadline}")
        self.checkpoint()

    def rank_env(self, rid: Optional[int] = None) -> dict:
        """Per-rank scratch dict for upper layers."""
        if rid is None:
            return self._me().env
        return self._ranks[rid].env

    def set_client(self, obj) -> None:
        """Attach a client-layer runtime object to the calling rank.

        Retrieved in O(1) by :func:`current_client` — the fast path for
        per-operation runtime lookups (e.g. ``upcxx.current_runtime``).
        """
        self._me().client = obj

    def snapshot(self) -> str:
        """Human-readable state of all ranks (for error messages/tests)."""
        lines = [
            f"rank {c.rid}: {_STATE_NAMES[c.state]} clock={c.clock:.9f}"
            + (f" [{c.block_reason}]" if c.state == _BLOCKED else "")
            for c in self._ranks
        ]
        lines.append(f"pending events: {len(self._events)}; switches: {self.switches}")
        return "\n".join(lines)

    def register_conduit(self, conduit) -> None:
        """Conduits register here so ``stats()`` can fold in their
        reliability-layer frame counters."""
        self._conduits.append(conduit)

    # ------------------------------------------------- survivable crashes
    def on_rank_dead(self, fn: Callable[[int, BaseException, float], None]) -> None:
        """Register a death listener for *survivable* fault plans.

        ``fn(rank, err, t_detect)`` runs in network context at the
        heartbeat-detection instant, once per dead rank, in registration
        order (registration happens in rank context during bootstrap, so
        the order — and hence every downstream effect — is deterministic).
        Listeners must follow network-context rules: stage work for rank
        context (e.g. via a runtime completion queue) and call
        :meth:`wake`; never run user code or block.
        """
        self._dead_listeners.append(fn)

    def detected_dead(self) -> dict:
        """Ranks whose death the heartbeat has *detected* (survivable
        mode): rank -> RankDeadError.  Before detection a dead rank is
        indistinguishable from a slow one, exactly like the real thing."""
        return self._detected_dead

    def _rank_hosted(self, rank: int) -> bool:
        """Is ``rank`` simulated by this process?  (Sharded overrides.)"""
        return True

    def _notify_dead(self, rank: int, err: BaseException, t_detect: float) -> None:
        """Network context: the heartbeat timeout for ``rank`` fired under
        a survivable plan.  Instead of failing the run, record the death,
        run the death listeners, and wake every hosted survivor so blocked
        predicates re-evaluate against the new membership (spurious wakes
        are legal on every backend)."""
        if rank in self._detected_dead:
            return
        self._detected_dead[rank] = err
        for fn in list(self._dead_listeners):
            fn(rank, err, t_detect)
        for r in range(self.n_ranks):
            if r != rank and self._rank_hosted(r):
                self.wake(r, t_detect)

    def stats(self) -> dict:
        """Machine-readable run counters (perf harness / postmortems)."""
        ev = self._events.stats
        out = {
            "backend": self.backend,
            "n_ranks": self.n_ranks,
            "switches": self.switches,
            "events_posted": ev["posted"],
            "events_fired": ev["fired"],
        }
        conduits = getattr(self, "_conduits", None)
        if conduits:
            for key in (
                "frames_retransmitted",
                "frames_dropped",
                "frames_duplicated",
                "acks",
                "agg_batches",
                "agg_updates",
                "agg_credit_stall_s",
            ):
                out[key] = sum(c.stats()[key] for c in conduits)
        return out


def _consume_pending_wakes(sched: Scheduler, me) -> bool:
    """Shared ``block()`` prologue: drain sticky wakes in timestamp order.

    Wakes that targeted this rank while it was runnable are kept in
    ``pending_wake``.  Any at or before the rank's clock mean state already
    changed, so ``block()`` returns immediately (a spurious wake; the
    caller re-checks its predicate).  Otherwise the **earliest** future
    wake is converted into a timer so the rank resumes exactly then; later
    ones stay pending for subsequent blocks.  The list is sorted before
    consumption so wakes are always drained in timestamp order regardless
    of arrival order (lost-wakeup guard).

    Returns True if ``block()`` should return without sleeping.
    """
    pending = me.pending_wake
    if len(pending) > 1:
        pending.sort()
    clock = me.clock
    if pending[0] <= clock:
        me.pending_wake = [t for t in pending if t > clock]
        return True
    t = pending.pop(0)
    rid = me.rid
    sched._events.push(t, lambda: sched.wake(rid, t))
    return False


class _StampedQueue(EventQueue):
    """EventQueue whose heap keys are causal stamps, not insertion seqs.

    ``push`` derives the stamp from the owning scheduler's current
    context (rank posting, or firing event) — the minting logic of
    :func:`_make_stamp` is inlined here because ``push`` is on the
    per-operation hot path; ``push_keyed`` (inherited) inserts under an
    externally minted stamp (the sharded backend's cross-shard
    envelopes).  Stamps are tuples ordered by (create_time, origin...),
    globally unique, and identical across backends for the same logical
    post — equal-time ties resolve the same way everywhere.
    """

    __slots__ = ("_sched",)

    def __init__(self, sched: "Scheduler"):
        super().__init__()
        self._sched = sched

    def push(self, time: float, fn: Callable[[], None]) -> None:
        if time != time or time < 0 or time == _INF:  # NaN, negative, or inf
            raise ValueError(f"invalid event time: {time!r}")
        if not callable(fn):
            raise TypeError(f"event callback must be callable, got {type(fn).__name__}")
        sched = self._sched
        lane = sched._firing_lane
        if lane is not None:
            sched._fire_child += 1
            stamp = lane + (sched._fire_child,)
        else:
            me = sched._stamp_rank()
            if me is None:
                raise SimError("cannot mint an event stamp outside rank/network context")
            rid = me.rid
            seq = sched._post_seq[rid] = sched._post_seq[rid] + 1
            stamp = (me.clock, rid, seq)
        heapq.heappush(self._heap, (time, stamp, fn))
        self._count_posted += 1


def _make_stamp(sched) -> tuple:
    """Mint the causal stamp for an event being posted right now.

    Shared by every backend (``sched`` supplies ``_firing_lane``,
    ``_fire_child``, ``_post_seq`` and ``_stamp_rank()``): a post made
    while an event fires gets the firing event's stamp plus a child
    index (parents sort before children); a post from rank context gets
    ``(clock, rank, per-rank seq)``.
    """
    lane = sched._firing_lane
    if lane is not None:
        sched._fire_child += 1
        return lane + (sched._fire_child,)
    me = sched._stamp_rank()
    if me is None:
        raise SimError("cannot mint an event stamp outside rank/network context")
    seq = sched._post_seq[me.rid] = sched._post_seq[me.rid] + 1
    return (me.clock, me.rid, seq)


# ======================================================================
# Coroutine backend
# ======================================================================
class _Fiber:
    """Per-rank control block of the coroutine backend.

    The fiber's suspended stack is carried by a lazily-started OS thread
    parked on ``baton`` (a raw lock, initially held): releasing the baton
    resumes the fiber; the fiber parks itself by re-acquiring it.
    """

    __slots__ = (
        "rid",
        "state",
        "clock",
        "baton",
        "thread",
        "result",
        "block_reason",
        "ready_stamp",
        "env",
        "pending_wake",
        "client",
    )

    def __init__(self, rid: int):
        self.rid = rid
        self.state = _NEW
        self.clock = 0.0
        self.baton = _thread.allocate_lock()
        self.baton.acquire()  # parked until first dispatch
        self.thread: Optional[threading.Thread] = None
        self.result = None
        self.block_reason = ""
        self.ready_stamp = 0
        self.env: dict = {}
        #: wake timestamps received while not blocked (sticky wakes);
        #: consumed by block() in timestamp order to prevent lost wakeups
        self.pending_wake: list = []
        #: client-layer runtime attached via Scheduler.set_client
        self.client = None


class CoroutineScheduler(Scheduler):
    """Dispatch-loop scheduler: rank fibers, lock-free state, fast paths.

    Invariants (enforced by the baton discipline plus the GIL):

    - exactly one entity — the current fiber or a dispatching context —
      executes scheduler code at any instant, so no state needs locking;
    - ``_horizon`` is always ≤ the earliest instant at which a pending
      event is due or a ready rank could run (and ≤ ``max_time``), so
      ``charge()``/``checkpoint()`` may return immediately while the
      running rank's clock stays strictly below it (the fast path: the
      charging rank remains globally earliest and nothing is due).
    """

    backend = "coroutines"

    def __init__(self, n_ranks: int, trace: Optional[TraceBuffer] = None, max_time: float = 1e6, backend: Optional[str] = None):
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        self.n_ranks = n_ranks
        # causal-stamp state (see _make_stamp): the stamp of the event
        # currently firing, its running child index, and per-rank post seqs
        self._firing_lane: Optional[tuple] = None
        self._fire_child = 0
        self._post_seq = [0] * n_ranks
        self._events = _StampedQueue(self)
        self._eheap = self._events._heap  # direct alias for batched drains
        self._ranks: List[_Fiber] = [_Fiber(r) for r in range(n_ranks)]
        self._ready: list = []  # heap of (clock, rid, stamp)
        # bumped on every mutation that can change the validated heap top
        # (push, dispatch pop) — both the drain-loop gate and the memoized
        # _peek_ready result key off it
        self._ready_version = 0
        self._top_cache = None  # memoized (clock, ctl) for _ready_version
        self._top_version = -1
        self._failure: Optional[BaseException] = None
        #: rank -> RankDeadError, filled by fault-injection crash events
        self._dead_ranks: dict = {}
        #: survivable-mode state (see Scheduler.on_rank_dead): whether a
        #: crash ends the run, the detected-death registry, and listeners
        self._survivable = False
        self._dead_listeners: list = []
        self._detected_dead: dict = {}
        self._conduits: list = []
        self._n_done = 0
        self._running = False
        self._aborted = False
        self.trace = trace if trace is not None else TraceBuffer(enabled=False)
        self.max_time = max_time
        self.env: dict = {}  # upper layers stash per-job singletons here
        self.switches = 0
        #: the fiber currently holding the baton (None outside run())
        self._current: Optional[_Fiber] = None
        self._horizon = 0.0
        # Window bound hook: the sharded subclass lowers this to its CMB
        # window edge (and clamps it on envelope emission); in-process
        # backends leave it at +inf so _retarget never gates on it.
        self._wbound = float("inf")
        self._main_baton = _thread.allocate_lock()
        self._main_baton.acquire()
        self._main_release_guard = _thread.allocate_lock()
        self._fn: Optional[Callable[[int], object]] = None

    # ------------------------------------------------------------------ intro
    def _me(self) -> _Fiber:
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        return me

    def _stamp_rank(self) -> Optional[_Fiber]:
        return self._current

    def _make_stamp(self) -> tuple:
        return _make_stamp(self)

    # ------------------------------------------------------------ rank context
    def now(self) -> float:
        """Current rank's simulated clock (seconds)."""
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        return me.clock

    def charge(self, dt: float) -> None:
        """Advance my clock by ``dt`` seconds of simulated CPU time."""
        if dt < 0:
            raise ValueError(f"negative charge: {dt}")
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        me.clock = clock = me.clock + dt
        if clock < self._horizon:
            return  # fast path: still globally earliest, nothing due
        if self._failure is not None:
            raise SimAbort()
        if clock > self.max_time:
            self._fail(SimError(f"simulated time exceeded max_time={self.max_time}"))
            raise SimAbort()
        self._checkpoint_slow(me)

    def checkpoint(self) -> None:
        """Deliver due events and yield if another entity is earlier.

        Library code calls this at every synchronization-relevant point
        that does not itself charge time.
        """
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        if me.clock < self._horizon:
            return
        if self._failure is not None:
            raise SimAbort()
        self._checkpoint_slow(me)

    def post(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        t = me.clock + delay
        self._events.push(t, fn)
        if t < self._horizon:
            self._horizon = t

    def post_at(self, t: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback at absolute time ``t``.

        Callable from network context (events posting follow-on events).
        """
        self._events.push(t, fn)
        if t < self._horizon:
            self._horizon = t

    def post_keyed(self, t: float, stamp: tuple, fn: Callable[[], None]) -> None:
        """Schedule a callback under an externally minted causal stamp.

        Used for events whose tie-break order must be identical across
        *processes* (survivable crash detection): the synthetic stamp
        ``(0.0, rank, 0)`` sorts the same everywhere, matching the sharded
        backend's remote-detection events.
        """
        self._events.push_keyed(t, stamp, fn)
        if t < self._horizon:
            self._horizon = t

    def block(self, reason: str = "") -> None:
        """Sleep until some event wakes me.  Spurious wake-ups possible."""
        me = self._current
        if me is None:
            raise SimError("not inside a rank of this scheduler")
        if self._failure is not None:
            raise SimAbort()
        if me.pending_wake and _consume_pending_wakes(self, me):
            return
        me.state = _BLOCKED
        me.block_reason = reason
        trace = self.trace
        if trace.enabled:
            trace.record(me.clock, me.rid, "block", reason)
        self._switch_out(me)
        if trace.enabled:
            trace.record(me.clock, me.rid, "resume", reason)

    # -------------------------------------------------------- network context
    def wake(self, rid: int, at_time: float) -> None:
        """Make rank ``rid`` runnable with clock >= ``at_time``.

        Network-context only (events run inside the dispatch loop, which
        holds the baton); also safe from rank context.
        """
        ctl = self._ranks[rid]
        state = ctl.state
        if state == _BLOCKED:
            if at_time > ctl.clock:
                ctl.clock = at_time
            ctl.state = _READY
            self._push_ready(ctl)
        elif state == _READY or state == _RUNNING:
            # Sticky wake: the rank is runnable at an earlier clock and
            # may block before reaching ``at_time``; remember every such
            # wake so its next block() converts them into timers instead
            # of sleeping forever (lost-wakeup guard).
            ctl.pending_wake.append(at_time)
        # DONE: nothing to do.

    # ------------------------------------------------------------- internals
    def _push_ready(self, ctl: _Fiber) -> None:
        ctl.ready_stamp += 1
        clock = ctl.clock
        heapq.heappush(self._ready, (clock, ctl.rid, ctl.ready_stamp))
        self._ready_version += 1
        if clock < self._horizon:
            self._horizon = clock

    def _peek_ready(self):
        """Return (clock, ctl) of the earliest ready rank, or None.

        Memoized on ``_ready_version``: a validated top stays the top
        until a push or a dispatch pop (a READY rank's clock and stamp
        are frozen while it is READY), so repeated peeks between heap
        mutations are one version compare instead of a heap walk.
        """
        if self._top_version == self._ready_version:
            return self._top_cache
        ready = self._ready
        ranks = self._ranks
        top = None
        while ready:
            clock, rid, stamp = ready[0]
            ctl = ranks[rid]
            if ctl.state != _READY or stamp != ctl.ready_stamp or clock != ctl.clock:
                heapq.heappop(ready)  # stale entry
                continue
            top = (clock, ctl)
            break
        self._top_cache = top
        self._top_version = self._ready_version
        return top

    def _retarget(self) -> None:
        """Recompute the fast-path horizon after a dispatch decision."""
        if self._failure is not None:
            # keep the fast path broken so every rank observes the abort
            self._horizon = -1.0
            return
        h = self.max_time
        eheap = self._eheap
        if eheap:
            et = eheap[0][0]
            if et < h:
                h = et
        top = (
            self._top_cache
            if self._top_version == self._ready_version
            else self._peek_ready()
        )
        if top is not None and top[0] < h:
            h = top[0]
        wb = self._wbound
        if wb < h:
            h = wb
        self._horizon = h

    def _checkpoint_slow(self, me: _Fiber) -> None:
        # Deliver due events — but only those that are *globally* minimal:
        # an event must never fire while a READY rank with an earlier clock
        # has not yet executed up to the event's timestamp (it could still
        # create causally-prior effects).  Blocked ranks do not gate firing:
        # they cannot act until an event wakes them.
        #
        # The drain is batched: the event heap is walked directly, the
        # fired-event counter is flushed once, and the ready-heap gate is
        # re-read only when a fired event made a rank runnable.
        clock = me.clock
        eheap = self._eheap
        n_fired = 0
        version = self._ready_version
        top = (
            self._top_cache if self._top_version == version else self._peek_ready()
        )
        gate = top[0] if top is not None else None
        try:
            while eheap:
                et = eheap[0][0]
                if et > clock:
                    break
                if gate is not None and et > gate:
                    break  # an earlier rank must run first
                entry = heapq.heappop(eheap)
                n_fired += 1
                self._firing_lane = entry[1]
                self._fire_child = 0
                entry[2]()
                self._firing_lane = None
                if self._ready_version != version:
                    version = self._ready_version
                    top = self._peek_ready()
                    gate = top[0] if top is not None else None
        finally:
            self._firing_lane = None
            if n_fired:
                self._events.account_fired(n_fired)
        top = (
            self._top_cache
            if self._top_version == self._ready_version
            else self._peek_ready()
        )
        if top is not None and top[0] < clock:
            # Someone is earlier: yield.
            me.state = _READY
            self._push_ready(me)
            self._switch_out(me)
        else:
            self._retarget()

    def _switch_out(self, me: _Fiber) -> None:
        """Hand the baton to the next entity and park until resumed.

        If the dispatch re-selects *me* (an event at my own clock woke me
        back up), my baton was just released and the acquire succeeds
        immediately, leaving it held again — the protocol is insensitive
        to release-before-acquire ordering.
        """
        self._dispatch()
        me.baton.acquire()
        if self._failure is not None:
            raise SimAbort()

    def _dispatch(self) -> None:
        """Select and start the next entity.  Caller must not be RUNNING.

        Fires due events inline (batched), then either resumes the
        earliest ready fiber, releases the main thread (job finished), or
        declares deadlock.  The fired-event counter is flushed before any
        baton release so no other fiber can race the accounting.
        """
        eheap = self._eheap
        n_fired = 0
        while True:
            if self._failure is not None:
                if n_fired:
                    self._events.account_fired(n_fired)
                self._abort_all()
                return
            top = (
                self._top_cache
                if self._top_version == self._ready_version
                else self._peek_ready()
            )
            if top is not None and (not eheap or top[0] < eheap[0][0]):
                heapq.heappop(self._ready)
                self._ready_version += 1
                ctl = top[1]
                ctl.state = _RUNNING
                self.switches += 1
                self._current = ctl
                self._retarget()
                if n_fired:
                    self._events.account_fired(n_fired)
                if ctl.thread is None:
                    self._start_fiber(ctl)
                else:
                    ctl.baton.release()
                return
            if eheap:
                # Event is due first (ties go to events so deliveries at
                # time t are visible to a rank resuming at time t).
                entry = heapq.heappop(eheap)
                n_fired += 1
                self._firing_lane = entry[1]
                self._fire_child = 0
                entry[2]()
                self._firing_lane = None
                continue
            # No ready ranks, no events.
            if n_fired:
                self._events.account_fired(n_fired)
                n_fired = 0
            if self._n_done == self.n_ranks:
                self._current = None
                self._release_main()
                return
            blocked = [
                f"  rank {c.rid} (clock {c.clock:.9f}s): {c.block_reason or '<no reason>'}"
                for c in self._ranks
                if c.state == _BLOCKED
            ]
            self._fail(
                DeadlockError(
                    "simulation deadlock: no runnable ranks and no pending events.\n"
                    + "\n".join(blocked)
                )
            )
            return

    def _start_fiber(self, ctl: _Fiber) -> None:
        """Lazily create the carrier thread of ``ctl`` and let it run."""
        thread = threading.Thread(
            target=self._fiber_main,
            args=(ctl,),
            name=f"simrank-{ctl.rid}",
            daemon=True,
        )
        ctl.thread = thread
        thread.start()

    def _fiber_main(self, ctl: _Fiber) -> None:
        _tls.ctx = (self, ctl.rid, ctl)
        try:
            ctl.result = self._fn(ctl.rid)
        except SimAbort:
            pass
        except RankCrashed:
            pass  # fault-injected death: the rank just stops (fail-stop)
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            if self._failure is None:
                failure = RankFailure(ctl.rid, f"{type(exc).__name__}: {exc}")
                failure.__cause__ = exc
                self._failure = failure
            self._abort_all()
        finally:
            _tls.ctx = None
            ctl.state = _DONE
            ctl.client = None
            self._n_done += 1
            if self._failure is None:
                self._dispatch()
            else:
                self._release_main()

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._abort_all()

    def _abort_all(self) -> None:
        if self._aborted:
            return
        self._aborted = True
        # break the charge()/checkpoint() fast path: a rank resumed mid-
        # checkpoint must not keep running below a stale horizon, and the
        # memoized ready-top must not outlive the state flips below
        self._horizon = -1.0
        self._ready_version += 1
        self._current = None
        for ctl in self._ranks:
            if ctl.state in (_BLOCKED, _READY):
                if ctl.thread is None:
                    ctl.state = _DONE  # never started; nothing to unwind
                else:
                    # Parked fiber: release its baton once so it observes
                    # the failure, raises SimAbort, and unwinds.
                    ctl.state = _RUNNING
                    ctl.baton.release()
        self._release_main()

    def _release_main(self) -> None:
        # The guard lock makes "release main exactly once" atomic even if
        # several unwinding fibers race here.
        if self._main_release_guard.acquire(blocking=False):
            self._main_baton.release()

    # ------------------------------------------------------------------- run
    def run(self, fn: Callable[[int], object]) -> List[object]:
        """Run ``fn(rank)`` on every rank to completion; return the results.

        Raises :class:`RankFailure` if any rank raised, or
        :class:`DeadlockError` if the simulation wedged.
        """
        if self._running:
            raise SimError("Scheduler.run() is not reentrant")
        self._running = True
        self._fn = fn
        old_stack = threading.stack_size()
        try:
            threading.stack_size(_STACK_BYTES)
        except (ValueError, RuntimeError):
            pass
        try:
            for ctl in self._ranks:
                ctl.state = _READY
                self._push_ready(ctl)
            self._dispatch()
            self._main_baton.acquire()
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):
                pass
        for ctl in self._ranks:
            if ctl.thread is not None:
                ctl.thread.join(timeout=30.0)
        if self._failure is not None:
            raise self._failure
        if self._dead_ranks and not self._survivable:
            # every survivor finished before the heartbeat timeout fired;
            # the job still failed — a rank died (fail-stop semantics)
            raise self._dead_ranks[min(self._dead_ranks)]
        # survivable plans serve through the crash: survivors' results are
        # returned and a dead rank's slot holds None
        return [ctl.result for ctl in self._ranks]


# ======================================================================
# Thread backend (reference implementation)
# ======================================================================
class _RankCtl:
    """Per-rank control block (thread-backend internals)."""

    __slots__ = (
        "rid",
        "state",
        "clock",
        "cond",
        "thread",
        "result",
        "block_reason",
        "ready_stamp",
        "env",
        "pending_wake",
        "client",
    )

    def __init__(self, rid: int, lock: threading.RLock):
        self.rid = rid
        self.state = _NEW
        self.clock = 0.0
        self.cond = threading.Condition(lock)
        self.thread: Optional[threading.Thread] = None
        self.result = None
        self.block_reason = ""
        self.ready_stamp = 0
        self.env: dict = {}
        #: wake timestamps received while not blocked (sticky wakes);
        #: consumed by block() in timestamp order to prevent lost wakeups
        self.pending_wake: list = []
        #: client-layer runtime attached via Scheduler.set_client
        self.client = None


class ThreadScheduler(Scheduler):
    """The original thread-per-rank conservative scheduler.

    One OS thread per rank, a global re-entrant lock, and condition
    variable handoffs.  Slower than the coroutine backend (every baton
    pass costs two condition-variable handoffs and every primitive takes
    the global lock) but structurally independent — the determinism
    cross-check for the fast path.
    """

    backend = "threads"

    def __init__(self, n_ranks: int, trace: Optional[TraceBuffer] = None, max_time: float = 1e6, backend: Optional[str] = None):
        if n_ranks < 1:
            raise ValueError(f"need at least 1 rank, got {n_ranks}")
        self.n_ranks = n_ranks
        self._lock = threading.RLock()
        # causal-stamp state (see _make_stamp); all under self._lock
        self._firing_lane: Optional[tuple] = None
        self._fire_child = 0
        self._post_seq = [0] * n_ranks
        self._events = _StampedQueue(self)
        self._ranks: List[_RankCtl] = [_RankCtl(r, self._lock) for r in range(n_ranks)]
        self._ready: list = []  # heap of (clock, rid, stamp)
        self._main_cond = threading.Condition(self._lock)
        self._failure: Optional[BaseException] = None
        #: rank -> RankDeadError, filled by fault-injection crash events
        self._dead_ranks: dict = {}
        #: survivable-mode state (see Scheduler.on_rank_dead)
        self._survivable = False
        self._dead_listeners: list = []
        self._detected_dead: dict = {}
        self._conduits: list = []
        self._n_done = 0
        self._running = False
        self.trace = trace if trace is not None else TraceBuffer(enabled=False)
        self.max_time = max_time
        self.env: dict = {}  # upper layers stash per-job singletons here
        self.switches = 0

    # ------------------------------------------------------------------ intro
    def _me(self) -> _RankCtl:
        ctx = getattr(_tls, "ctx", None)
        if ctx is None or ctx[0] is not self:
            raise SimError("not inside a rank thread of this scheduler")
        return ctx[2]

    def _stamp_rank(self) -> Optional[_RankCtl]:
        ctx = getattr(_tls, "ctx", None)
        if ctx is None or ctx[0] is not self:
            return None
        return ctx[2]

    def _make_stamp(self) -> tuple:
        return _make_stamp(self)

    # ------------------------------------------------------------ rank context
    def now(self) -> float:
        """Current rank's simulated clock (seconds)."""
        return self._me().clock

    def charge(self, dt: float) -> None:
        """Advance my clock by ``dt`` seconds of simulated CPU time."""
        if dt < 0:
            raise ValueError(f"negative charge: {dt}")
        me = self._me()
        with self._lock:
            self._check_abort()
            me.clock += dt
            if me.clock > self.max_time:
                self._fail(SimError(f"simulated time exceeded max_time={self.max_time}"))
                raise SimAbort()
            self._checkpoint_locked(me)

    def checkpoint(self) -> None:
        """Deliver due events and yield if another entity is earlier."""
        me = self._me()
        with self._lock:
            self._check_abort()
            self._checkpoint_locked(me)

    def post(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        me = self._me()
        with self._lock:
            self._events.push(me.clock + delay, fn)

    def post_at(self, t: float, fn: Callable[[], None]) -> None:
        """Schedule a network-context callback at absolute time ``t``."""
        with self._lock:
            self._events.push(t, fn)

    def post_keyed(self, t: float, stamp: tuple, fn: Callable[[], None]) -> None:
        """Schedule a callback under an externally minted causal stamp
        (see CoroutineScheduler.post_keyed)."""
        with self._lock:
            self._events.push_keyed(t, stamp, fn)

    def block(self, reason: str = "") -> None:
        """Sleep until some event wakes me.  Spurious wake-ups possible."""
        me = self._me()
        with self._lock:
            self._check_abort()
            if me.pending_wake and _consume_pending_wakes(self, me):
                return
            me.state = _BLOCKED
            me.block_reason = reason
            self.trace.record(me.clock, me.rid, "block", reason)
            self._dispatch_locked()
            while me.state != _RUNNING:
                me.cond.wait()
            self._check_abort()
            self.trace.record(me.clock, me.rid, "resume", reason)

    # -------------------------------------------------------- network context
    def wake(self, rid: int, at_time: float) -> None:
        """Make rank ``rid`` runnable with clock >= ``at_time``."""
        with self._lock:
            ctl = self._ranks[rid]
            if ctl.state == _BLOCKED:
                if at_time > ctl.clock:
                    ctl.clock = at_time
                ctl.state = _READY
                self._push_ready(ctl)
            elif ctl.state in (_READY, _RUNNING):
                ctl.pending_wake.append(at_time)
            # DONE: nothing to do.

    # ------------------------------------------------------------- internals
    def _push_ready(self, ctl: _RankCtl) -> None:
        ctl.ready_stamp += 1
        heapq.heappush(self._ready, (ctl.clock, ctl.rid, ctl.ready_stamp))

    def _peek_ready(self):
        """Return (clock, ctl) of the earliest ready rank, or None."""
        while self._ready:
            clock, rid, stamp = self._ready[0]
            ctl = self._ranks[rid]
            if ctl.state != _READY or stamp != ctl.ready_stamp or clock != ctl.clock:
                heapq.heappop(self._ready)  # stale entry
                continue
            return clock, ctl
        return None

    def _pop_ready(self) -> _RankCtl:
        clock, ctl = self._peek_ready()  # type: ignore[misc]
        heapq.heappop(self._ready)
        return ctl

    def _checkpoint_locked(self, me: _RankCtl) -> None:
        # Same globally-minimal delivery rule as the coroutine backend's
        # _checkpoint_slow (see there for the invariant).
        while True:
            et = self._events.peek_time()
            if et is None or et > me.clock:
                break
            top = self._peek_ready()
            if top is not None and et > top[0]:
                break  # an earlier rank must run first
            _, key, fn = self._events.pop_entry()
            self._firing_lane = key
            self._fire_child = 0
            fn()
            self._firing_lane = None
        top = self._peek_ready()
        if top is not None and top[0] < me.clock:
            # Someone is earlier: yield.
            me.state = _READY
            self._push_ready(me)
            self._dispatch_locked()
            while me.state != _RUNNING:
                me.cond.wait()
            self._check_abort()

    def _dispatch_locked(self) -> None:
        """Hand the baton to the next entity.  Caller must not be RUNNING."""
        while True:
            if self._failure is not None:
                self._abort_all_locked()
                return
            top = self._peek_ready()
            et = self._events.peek_time()
            if top is not None and (et is None or top[0] < et):
                ctl = self._pop_ready()
                ctl.state = _RUNNING
                self.switches += 1
                ctl.cond.notify()
                return
            if et is not None:
                # Event is due first (ties go to events so deliveries at
                # time t are visible to a rank resuming at time t).
                _, key, fn = self._events.pop_entry()
                self._firing_lane = key
                self._fire_child = 0
                fn()
                self._firing_lane = None
                continue
            # No ready ranks, no events.
            if self._n_done == self.n_ranks:
                self._main_cond.notify()
                return
            blocked = [
                f"  rank {c.rid} (clock {c.clock:.9f}s): {c.block_reason or '<no reason>'}"
                for c in self._ranks
                if c.state == _BLOCKED
            ]
            self._fail(
                DeadlockError(
                    "simulation deadlock: no runnable ranks and no pending events.\n"
                    + "\n".join(blocked)
                )
            )
            return

    def _fail(self, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = exc
        self._abort_all_locked()

    def _abort_all_locked(self) -> None:
        for ctl in self._ranks:
            if ctl.state in (_BLOCKED, _READY):
                ctl.state = _RUNNING  # so its wait-loop exits and aborts
                ctl.cond.notify()
        self._main_cond.notify()

    def _check_abort(self) -> None:
        if self._failure is not None:
            raise SimAbort()

    # ------------------------------------------------------------------- run
    def _bootstrap(self, ctl: _RankCtl, fn: Callable[[int], object]) -> None:
        _tls.ctx = (self, ctl.rid, ctl)
        try:
            with self._lock:
                while ctl.state != _RUNNING:
                    ctl.cond.wait()
                if self._failure is not None:
                    raise SimAbort()
            ctl.result = fn(ctl.rid)
        except SimAbort:
            pass
        except RankCrashed:
            pass  # fault-injected death: the rank just stops (fail-stop)
        except BaseException as exc:  # noqa: BLE001 - report any rank failure
            with self._lock:
                if self._failure is None:
                    failure = RankFailure(ctl.rid, f"{type(exc).__name__}: {exc}")
                    failure.__cause__ = exc
                    self._failure = failure
                self._abort_all_locked()
        finally:
            _tls.ctx = None
            with self._lock:
                ctl.state = _DONE
                ctl.client = None
                self._n_done += 1
                if self._failure is None:
                    self._dispatch_locked()
                else:
                    self._main_cond.notify()

    def run(self, fn: Callable[[int], object]) -> List[object]:
        """Run ``fn(rank)`` on every rank to completion; return the results."""
        if self._running:
            raise SimError("Scheduler.run() is not reentrant")
        self._running = True
        old_stack = threading.stack_size()
        try:
            threading.stack_size(_STACK_BYTES)
        except (ValueError, RuntimeError):
            pass
        try:
            for ctl in self._ranks:
                ctl.thread = threading.Thread(
                    target=self._bootstrap,
                    args=(ctl, fn),
                    name=f"simrank-{ctl.rid}",
                    daemon=True,
                )
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):
                pass

        for ctl in self._ranks:
            assert ctl.thread is not None
            ctl.thread.start()

        with self._lock:
            for ctl in self._ranks:
                ctl.state = _READY
                self._push_ready(ctl)
            self._dispatch_locked()
            while self._n_done < self.n_ranks and self._failure is None:
                self._main_cond.wait()

        for ctl in self._ranks:
            assert ctl.thread is not None
            ctl.thread.join(timeout=30.0)

        if self._failure is not None:
            raise self._failure
        if self._dead_ranks and not self._survivable:
            # every survivor finished before the heartbeat timeout fired;
            # the job still failed — a rank died (fail-stop semantics)
            raise self._dead_ranks[min(self._dead_ranks)]
        return [ctl.result for ctl in self._ranks]

    def snapshot(self) -> str:
        with self._lock:
            return Scheduler.snapshot(self)


#: backend name -> implementation class
_BACKENDS = {
    "coroutines": CoroutineScheduler,
    "threads": ThreadScheduler,
}

#: backends registered on demand (importing the module adds to _BACKENDS);
#: keeps multiprocessing machinery out of single-process imports
_LAZY_BACKENDS = {
    "sharded": "repro.sim.shard",
}


def current_scheduler() -> Scheduler:
    """The scheduler of the calling rank context."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise SimError("no active simulation on this thread")
    return ctx[0]


def current_rank() -> int:
    """The rank id of the calling rank context."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise SimError("no active simulation on this thread")
    return ctx[1]


def current_client():
    """The client-layer object attached via :meth:`Scheduler.set_client`.

    O(1) slot read — the hot path for per-operation runtime lookups.
    Returns None if no client is attached; raises :class:`SimError`
    outside a simulation.
    """
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise SimError("no active simulation on this thread")
    return ctx[2].client


def run_spmd(
    fn: Callable[[int], object],
    n_ranks: int,
    trace: Optional[TraceBuffer] = None,
    max_time: float = 1e6,
    backend: Optional[str] = None,
) -> Sequence[object]:
    """Convenience wrapper: build a scheduler and run ``fn`` on every rank."""
    sched = Scheduler(n_ranks, trace=trace, max_time=max_time, backend=backend)
    return sched.run(fn)
