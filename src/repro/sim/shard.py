"""Sharded multi-core backend: conservative parallel DES over forked workers.

``Scheduler(backend="sharded")`` partitions the simulated *nodes* across N
``multiprocessing`` worker processes (``REPRO_SIM_SHARDS``, default: CPU
count, clamped to the node count) and runs a Chandy–Misra–Bryant-style
conservative window loop in each worker:

1. **Lookahead.**  Shards own whole nodes, so every cross-shard message is
   a cross-*node* message and cannot arrive earlier than
   ``NetworkModel.latency_oneway`` (0.65 us on Aries) after it was created.
   Intra-node traffic (the small ``latency_oneway_shm``) never crosses a
   shard and therefore never shrinks the lookahead.
2. **Windows (protocol v2: one barrier per window).**  Each shard
   advances its local event heap and ready ranks strictly below a window
   bound, then runs a *single* all-pairs exchange per window.  Every
   frame piggybacks, next to the batch of cross-shard *envelopes*
   (puts/gets/AMs/completions), the sender's done-rank count and two
   horizon words: ``h`` — its earliest remaining local work (computed
   after executing the window, i.e. post-insertion with respect to every
   envelope delivered at earlier barriers) — and ``e`` — the earliest
   fire time among the envelopes it is sending *elsewhere* in this same
   barrier.  The bound is then::

       wbound = min(floor + L, h_post + m*L)
       floor  = min(min over peers P of min(h_P, e_P), own outbox min)

   with ``L = latency_oneway``.  Correctness: any message that can still
   reach this shard is created by some shard executing at a simulated
   time no earlier than that shard's true horizon, and every true
   horizon is bounded below by ``floor`` — ``h_P`` covers P's local
   work, and every envelope in flight anywhere appears in some sender's
   ``e`` word (or in our own outbox minimum), covering the wakeups the
   advertised horizons cannot see yet.  A message created at time
   ``t >= floor`` arrives no earlier than ``t + L``, so nothing executed
   strictly below ``floor + L`` can be invalidated: no rollbacks, no
   speculation.  The ``h_post + m*L`` self-term (m >= 2) bounds echoes
   of our *own* future sends when every peer is idle; it is kept sound
   for any m by the **emission clamp**: the moment this shard emits an
   envelope firing at ``f`` mid-window, the bound is pulled down to
   ``f + L`` — the earliest instant any reaction to that envelope can
   reach us — before execution can pass it (``f + L >= now + 2L``).
   When a window closes with everything infinite (all advertised
   horizons +inf and no envelope in flight anywhere — a condition every
   shard observes symmetrically from the same barrier data), a one-shot
   *catch-up* frame is exchanged at the window edge carrying the
   post-insertion horizon and final done count, re-establishing the v1
   protocol's post-insertion verdict exactly where the pre/post
   distinction could matter: the done-or-deadlock decision.
   **Adaptive lookahead.**  The self-term multiplier ``m`` starts at 2
   (one round trip, the v1 bound) and adapts deterministically from
   simulated-time observables shared at the barrier: it doubles (up to
   32) after a globally-quiet window — no envelopes sent or received and
   every peer ``e`` infinite — and resets to 2 when traffic arrives
   within one ``L`` of the closed bound.  Bounds never influence
   execution *order* (events fire in ``(fire_time, stamp)`` order
   regardless of where windows fall), so adaptation cannot perturb
   results, traces, or span fingerprints; ``REPRO_SHARD_LOOKAHEAD=fixed``
   pins ``m = 2`` for A/B determinism checks.
3. **Determinism.**  Events are keyed ``(fire_time, stamp)`` where the
   *stamp* is a causal tuple — ``(create_time, rank, seq)`` for rank
   posts, ``parent_stamp + (child_seq,)`` for events posted from network
   context — identical no matter which shard executes what when.  Merged
   results, simulated times and canonical trace fingerprints are
   bit-identical to the coroutine/threads backends
   (tests/test_backend_determinism.py).  The one theoretical divergence:
   two events firing at the *exact same instant* where one was posted by
   a rank after another rank posted the chain parent of the other — the
   library never races same-instant effects on shared state, and the
   determinism suite pins the equivalence.

Known limitations (all raise a clear ``SimError``):

- direct cross-shard segment/inbox access (``conduit.segment(remote)``;
  used by the v0.1 async layer and the device/VIS paths) — use the
  coroutines backend for those;
- side effects of the SPMD body (closure mutation) stay in the worker
  process: results must flow through return values (as in real UPC++);
- without a configured machine (raw ``Scheduler`` use), there is no
  lookahead and the job degenerates to a single shard.

Failure/termination: done-rank counts ride on every envelope exchange;
when every shard announces an +inf horizon the job is either complete or
globally deadlocked (each worker reaches the same verdict from the same
data).  A failing shard replaces its envelope frame with a FAIL frame so
peers never block on it; the parent re-raises the original failure.
"""

from __future__ import annotations

import heapq
import io
import marshal
import os
import pickle
import struct
import sys
import threading
import time
import types
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.coop import (
    _BACKENDS,
    _BLOCKED,
    _READY,
    _RUNNING,
    _STACK_BYTES,
    CoroutineScheduler,
    Scheduler,
)

from repro.sim.errors import DeadlockError, RankDeadError, RankFailure, SimError
from repro.util.trace import TraceBuffer

#: environment override for the worker-process count
SHARDS_ENV = "REPRO_SIM_SHARDS"
#: lookahead policy: "adaptive" (default) or "fixed" (pin the v1 bound)
LOOKAHEAD_ENV = "REPRO_SHARD_LOOKAHEAD"

_INF = float("inf")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_DEBUG = bool(os.environ.get("REPRO_SHARD_DEBUG"))

#: bytes payloads at or above this size travel as raw length-prefixed
#: frames on the channel instead of through the pickle stream
_BLOB_MIN = 256


# ======================================================================
# Function / payload marshalling
# ======================================================================
#
# RPC payloads carry live callables (module functions, lambdas, closures).
# Module-level functions pickle by reference; everything else is rebuilt
# from its code object + closure values.  Globals are bound by *module
# name* — valid because workers are forked from the fully-imported parent,
# so ``sys.modules`` is identical on both sides.

_CELL_EMPTY = "__repro_empty_cell__"


def _rebuild_fn(code_bytes, module_name, name, defaults, kwdefaults, closure_vals):
    mod = sys.modules.get(module_name)
    globs = mod.__dict__ if mod is not None else {"__builtins__": __builtins__}
    code = marshal.loads(code_bytes)
    closure = None
    if closure_vals is not None:
        closure = tuple(
            types.CellType() if v == _CELL_EMPTY else types.CellType(v) for v in closure_vals
        )
    fn = types.FunctionType(code, globs, name, defaults, closure)
    fn.__kwdefaults__ = kwdefaults
    return fn


def _importable_by_ref(fn: types.FunctionType) -> bool:
    mod = sys.modules.get(fn.__module__)
    if mod is None:
        return False
    obj = mod
    try:
        for part in fn.__qualname__.split("."):
            obj = getattr(obj, part)
    except AttributeError:
        return False
    return obj is fn


def _cell_value(cell):
    try:
        return cell.cell_contents
    except ValueError:  # genuinely empty cell (recursive def not yet bound)
        return _CELL_EMPTY


class _ShardPickler(pickle.Pickler):
    """Standard pickle plus by-value function support (cloudpickle-lite)."""

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType) and not _importable_by_ref(obj):
            closure = obj.__closure__
            return (
                _rebuild_fn,
                (
                    marshal.dumps(obj.__code__),
                    obj.__module__ or "builtins",
                    obj.__name__,
                    obj.__defaults__,
                    obj.__kwdefaults__,
                    None if closure is None else tuple(_cell_value(c) for c in closure),
                ),
            )
        return NotImplemented


def _dumps(obj) -> bytes:
    buf = io.BytesIO()
    _ShardPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


_loads = pickle.loads


class _BlobRef:
    """Placeholder for a bytes payload extracted into a raw frame."""

    __slots__ = ("i",)

    def __init__(self, i: int):
        self.i = i

    def __reduce__(self):
        return (_BlobRef, (self.i,))


def _split_blobs(obj, blobs: list):
    """Replace large bytes in ``obj`` with :class:`_BlobRef` markers.

    The extracted blobs travel as length-prefixed raw frames — no pickle
    memo or opcode overhead on the dominant payload bytes.
    """
    t = type(obj)
    if t is bytes:
        if len(obj) >= _BLOB_MIN:
            blobs.append(obj)
            return _BlobRef(len(blobs) - 1)
        return obj
    if t is bytearray:
        if len(obj) >= _BLOB_MIN:
            blobs.append(bytes(obj))
            return _BlobRef(len(blobs) - 1)
        return obj
    if t is tuple:
        return tuple(_split_blobs(x, blobs) for x in obj)
    if t is list:
        return [_split_blobs(x, blobs) for x in obj]
    if t is dict:
        return {k: _split_blobs(v, blobs) for k, v in obj.items()}
    return obj


def _join_blobs(obj, blobs):
    t = type(obj)
    if t is _BlobRef:
        return blobs[obj.i]
    if t is tuple:
        return tuple(_join_blobs(x, blobs) for x in obj)
    if t is list:
        return [_join_blobs(x, blobs) for x in obj]
    if t is dict:
        return {k: _join_blobs(v, blobs) for k, v in obj.items()}
    return obj


# ======================================================================
# Inter-shard channel
# ======================================================================
_K_ENV = 0  # legacy generic frame kind (kept for codec tests/tools)
_K_HOR = 1  # legacy generic frame kind (kept for codec tests/tools)
_K_FAIL = 2  # replaces a window frame when the sender is failing
_K_ENV2 = 3  # protocol-v2 batched window frame (raw, no pickle framing)
_K_SENT = 4  # one-byte sentinel: empty outbox, header unchanged
_K_CATCH = 5  # one-shot catch-up frame: (post-insertion horizon, n_done)

#: the whole frame an idle peer pair pays per window
_SENTINEL_FRAME = bytes([_K_SENT])

_ENV2_HDR = struct.Struct("<BIddI")  # kind, n_done, h, e_other, n_envs
_REC_HDR = struct.Struct("<Bd")  # meta tag, fire_time
_REC_PACKED = 0  # meta encoded via repro.upcxx.serialization.pack
_REC_PICKLED = 1  # meta encoded via the cloudpickle-lite marshaller
_REC_RAWENV = 2  # whole envelope marshalled (stamp outside the fixed layout)
_I64_MAX = 2**63
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

#: cap on the adaptive idle-provision multiplier (docstring §2): doubling
#: from 2 after each globally-quiet barrier, a bound of 32 hops covers
#: phase-gap silences ~4 doublings deep while keeping the snap-back cheap
_LA_MULT_MAX = 32.0

# Envelope metas ride the tagged wire format of repro.upcxx.serialization
# when they can (flat tuples of scalars and bytes — the hot put/get/cpl
# shapes — hit its inline fast path, and payload bytes travel as raw
# length-prefixed frames), falling back to the marshaller only for metas
# carrying live callables (RPC lambdas).  Bound lazily: repro.sim must
# not import repro.upcxx at module load.
_ser_pack = None
_ser_unpack = None


def _bind_serialization() -> None:
    global _ser_pack, _ser_unpack
    from repro.upcxx.serialization import pack, unpack

    _ser_pack = pack
    _ser_unpack = unpack


class _PeerDied(SimError):
    """A peer worker vanished (EOF on its pipe)."""


def _encode_frame(kind: int, payload, blobs: List[bytes]) -> bytes:
    """Generic (pickled) frame: rare control traffic — FAIL, catch-up."""
    head = _dumps(payload)
    parts = [bytes([kind]), _U32.pack(len(head)), head, _U32.pack(len(blobs))]
    for b in blobs:
        parts.append(_U64.pack(len(b)))
        parts.append(b)
    return b"".join(parts)


def _decode_frame(raw: bytes):
    kind = raw[0]
    n = _U32.unpack_from(raw, 1)[0]
    payload = _loads(raw[5 : 5 + n])
    pos = 5 + n
    nblobs = _U32.unpack_from(raw, pos)[0]
    pos += 4
    blobs = []
    for _ in range(nblobs):
        ln = _U64.unpack_from(raw, pos)[0]
        pos += 8
        blobs.append(raw[pos : pos + ln])
        pos += ln
    return kind, payload, blobs


def _encode_env_frame(n_done: int, h: float, e_other: float, envs) -> bytes:
    """One length-prefixed raw frame per (peer, window): the v2 batch.

    Layout: ``<BIddI`` header (kind, n_done, h, e_other, n_envs), then one
    record per envelope::

        u8 tag | f64 fire_time | u8 len(stamp) | f64 stamp[0] |
        i64 * (len(stamp)-1) | u8 len(kind) | kind utf-8 |
        u32 len(meta) | meta bytes

    Stamps are causal tuples ``(create_time, rank, seq, child...)`` —
    one float followed by small ints — so they encode fixed-width with no
    marshalling at all.  ``tag`` records how the meta bytes were produced
    (:data:`_REC_PACKED` or :data:`_REC_PICKLED`).
    """
    if _ser_pack is None:
        _bind_serialization()
    parts = [_ENV2_HDR.pack(_K_ENV2, n_done, h, e_other, len(envs))]
    append = parts.append
    for env in envs:
        ft, stamp, kind, meta = env
        if (
            0 < len(stamp) <= 255
            and type(stamp[0]) is float
            and all(type(s) is int and -_I64_MAX <= s < _I64_MAX for s in stamp[1:])
            and len(kind) <= 255
        ):
            try:
                body = _ser_pack(meta)
                tag = _REC_PACKED
            except Exception:
                body = _dumps(meta)
                tag = _REC_PICKLED
            append(_REC_HDR.pack(tag, ft))
            append(bytes([len(stamp)]))
            append(_F64.pack(stamp[0]))
            for s in stamp[1:]:
                append(_I64.pack(s))
            kb = kind.encode("utf-8")
            append(bytes([len(kb)]))
            append(kb)
            append(_U32.pack(len(body)))
            append(body)
        else:
            body = _dumps(env)
            append(_REC_HDR.pack(_REC_RAWENV, ft))
            append(_U32.pack(len(body)))
            append(body)
    return b"".join(parts)


def _decode_env_frame(raw: bytes):
    """Inverse of :func:`_encode_env_frame`: (n_done, h, e_other, envs)."""
    if _ser_unpack is None:
        _bind_serialization()
    _, n_done, h, e_other, n_envs = _ENV2_HDR.unpack_from(raw, 0)
    pos = _ENV2_HDR.size
    envs = []
    for _ in range(n_envs):
        tag, ft = _REC_HDR.unpack_from(raw, pos)
        pos += _REC_HDR.size
        if tag == _REC_RAWENV:
            mlen = _U32.unpack_from(raw, pos)[0]
            pos += 4
            envs.append(_loads(raw[pos : pos + mlen]))
            pos += mlen
            continue
        slen = raw[pos]
        pos += 1
        stamp = [_F64.unpack_from(raw, pos)[0]]
        pos += 8
        for _i in range(slen - 1):
            stamp.append(_I64.unpack_from(raw, pos)[0])
            pos += 8
        klen = raw[pos]
        pos += 1
        kind = raw[pos : pos + klen].decode("utf-8")
        pos += klen
        mlen = _U32.unpack_from(raw, pos)[0]
        pos += 4
        body = raw[pos : pos + mlen]
        pos += mlen
        meta = _ser_unpack(body) if tag == _REC_PACKED else _loads(body)
        envs.append((ft, tuple(stamp), kind, meta))
    return n_done, h, e_other, envs


class _Channel:
    """Pairwise duplex pipes between shards with deadlock-free exchange.

    Each exchange walks peers in ascending id; within a pair the lower id
    sends first and the higher id receives first, so no send can block on
    a full pipe while the counterpart is also blocked sending.
    """

    def __init__(self, shard_id: int, conns: Dict[int, object]):
        self.shard_id = shard_id
        self.conns = conns
        self.peers = sorted(conns)
        # sentinel caches: last (n_done, h, e_other) header sent to / seen
        # from each peer — an unchanged header with an empty outbox
        # collapses to the one-byte sentinel frame
        self._tx_hdr: Dict[int, tuple] = {}
        self._rx_hdr: Dict[int, tuple] = {}
        # CMB observability (wall-clock side; never enters simulated state)
        self.n_env_sent = 0
        self.n_env_recv = 0
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.n_frames_sent = 0
        self.n_sentinels_sent = 0

    def _xchg(self, peer: int, frame: bytes) -> bytes:
        conn = self.conns[peer]
        try:
            if self.shard_id < peer:
                conn.send_bytes(frame)
                raw = conn.recv_bytes()
            else:
                raw = conn.recv_bytes()
                conn.send_bytes(frame)
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise _PeerDied(f"shard {peer} terminated mid-protocol: {exc}") from None
        self.bytes_sent += len(frame)
        self.bytes_recv += len(raw)
        return raw

    def exchange_window(self, per_peer_out: dict, n_done: int, h: float, failing: bool):
        """Protocol v2: the single per-window barrier.

        Ships every peer its envelope batch plus the piggybacked header
        ``(n_done, h, e_other)`` — or a one-byte sentinel when the outbox
        to that peer is empty and the header is unchanged — and returns
        ``(incoming, peers_done_total, fail_seen, peer_floor, traffic)``
        where ``peer_floor = min over peers of min(h_P, e_P)`` and
        ``traffic`` reports whether any envelope was visible anywhere at
        this barrier (sent, received, or advertised via a finite ``e``).
        """
        # per-destination outbox minima -> e_other per peer = the earliest
        # fire time among envelopes this barrier carries to *other* shards
        dest_min: Dict[int, float] = {}
        for dst, envs in per_peer_out.items():
            m = _INF
            for env in envs:
                if env[0] < m:
                    m = env[0]
            dest_min[dst] = m
        incoming: list = []
        peer_done = 0
        fail_seen = False
        peer_floor = _INF
        traffic = bool(per_peer_out)
        for peer in self.peers:
            if failing:
                frame = _encode_frame(_K_FAIL, None, [])
            else:
                e_other = _INF
                for dst, m in dest_min.items():
                    if dst != peer and m < e_other:
                        e_other = m
                hdr = (n_done, h, e_other)
                envs = per_peer_out.get(peer, ())
                if not envs and self._tx_hdr.get(peer) == hdr:
                    frame = _SENTINEL_FRAME
                    self.n_sentinels_sent += 1
                else:
                    self.n_env_sent += len(envs)
                    frame = _encode_env_frame(n_done, h, e_other, envs)
                    self._tx_hdr[peer] = hdr
                    self.n_frames_sent += 1
            raw = self._xchg(peer, frame)
            kind = raw[0]
            if kind == _K_SENT:
                hdr = self._rx_hdr.get(peer)
                if hdr is None:
                    raise SimError("shard protocol error: sentinel before any header")
                pdone, ph, pe = hdr
            elif kind == _K_ENV2:
                pdone, ph, pe, envs = _decode_env_frame(raw)
                self._rx_hdr[peer] = (pdone, ph, pe)
                if envs:
                    traffic = True
                    self.n_env_recv += len(envs)
                    incoming.extend(envs)
            elif kind == _K_FAIL:
                _decode_frame(raw)
                fail_seen = True
                continue
            else:
                raise SimError(f"shard protocol error: expected ENV2/SENT/FAIL, got {kind}")
            peer_done += pdone
            if ph < peer_floor:
                peer_floor = ph
            if pe < peer_floor:
                peer_floor = pe
            if pe != _INF:
                traffic = True
        return incoming, peer_done, fail_seen, peer_floor, traffic

    def exchange_catchup(self, h: float, n_done: int):
        """One-shot catch-up at the window edge: swap post-insertion
        horizons + final done counts before the done-or-deadlock verdict.
        Returns ``(min peer horizon, peers_done_total)``."""
        frame = _encode_frame(_K_CATCH, (h, n_done), [])
        m = _INF
        peer_done = 0
        for peer in self.peers:
            kind, payload, _ = _decode_frame(self._xchg(peer, frame))
            if kind != _K_CATCH:
                raise SimError(f"shard protocol error: expected CATCH, got {kind}")
            ph, pdone = payload
            peer_done += pdone
            if ph < m:
                m = ph
        return m, peer_done

    def close(self) -> None:
        for c in self.conns.values():
            try:
                c.close()
            except OSError:
                pass


class _ShardDeadlock(SimError):
    """Internal: global deadlock detected; carries this shard's blocked list."""

    def __init__(self, lines: List[Tuple[int, str]]):
        super().__init__("shard deadlock")
        self.lines = lines


class _RemoteAbort(SimError):
    """Internal: another shard reported a failure; unwind quietly."""


def _describe_failure(exc: BaseException):
    cause = exc.__cause__
    cause_desc = None
    if cause is not None:
        cls = type(cause)
        cause_desc = (cls.__module__, cls.__qualname__, str(cause))
    return (type(exc).__name__, str(exc), getattr(exc, "rank", None), cause_desc)


def _rebuild_cause(desc) -> Optional[BaseException]:
    """Reconstruct a failure's ``__cause__`` from its shipped descriptor.

    Exceptions don't pickle reliably (arbitrary attributes, live frames),
    so workers ship ``(module, qualname, str)`` instead.  The class is
    resolved from the already-imported module graph — workers are forked
    from the fully-imported parent — which keeps ``isinstance`` checks and
    the message intact for every builtin and library exception type.
    """
    if desc is None:
        return None
    mod, qual, msg = desc
    cls = None
    try:
        obj: object = sys.modules.get(mod)
        for part in qual.split("."):
            obj = getattr(obj, part)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            cls = obj
    except Exception:
        cls = None
    if cls is None:
        return SimError(f"{mod}.{qual}: {msg}")
    try:
        exc = cls.__new__(cls)
        exc.args = (msg,)
        return exc
    except Exception:
        return SimError(f"{mod}.{qual}: {msg}")


def _rebuild_failure(kind: str, message: str, rank, cause_desc=None) -> BaseException:
    cause = _rebuild_cause(cause_desc)
    if kind == "RankFailure" and rank is not None:
        exc = RankFailure(rank, "")
        exc.args = (message,)
        exc.__cause__ = cause
        return exc
    if kind == "RankDeadError" and rank is not None:
        return RankDeadError(rank, message)
    if kind == "DeadlockError":
        return DeadlockError(message)
    if kind == "SimError":
        exc = SimError(message)
        exc.__cause__ = cause
        return exc
    exc = SimError(f"{kind}: {message}")
    exc.__cause__ = cause
    return exc


# ======================================================================
# The sharded scheduler
# ======================================================================
class ShardedScheduler(CoroutineScheduler):
    """Conservative-parallel scheduler: coroutine workers under a window loop.

    The object doubles as the parent-side facade (``run()`` forks workers
    and merges results) and, after fork, as the per-shard scheduler (the
    inherited fiber/dispatch machinery gated by the window bound).
    """

    backend = "sharded"

    def __init__(
        self,
        n_ranks: int,
        trace: Optional[TraceBuffer] = None,
        max_time: float = 1e6,
        backend: Optional[str] = None,
    ):
        super().__init__(n_ranks, trace=trace, max_time=max_time)
        # sharding plan (parent side; None until configure_sharding)
        self._node_of: Optional[List[int]] = None
        self._lookahead: Optional[float] = None
        self._parts: List[Tuple[int, int]] = [(0, n_ranks)]
        self._shard_of_rank: List[int] = [0] * n_ranks
        self._n_shards_used = 0
        self._per_shard_stats: List[dict] = []
        self._conduits: list = []
        # worker-side window state
        self._shard_id: Optional[int] = None
        self._local_lo = 0
        self._local_hi = n_ranks
        self._wbound = _INF
        self._chan: Optional[_Channel] = None
        self._outbox: dict = {}  # dst shard -> [envelope]
        # adaptive lookahead (protocol v2): the idle-provision multiplier
        # m adapts within [2, _LA_MULT_MAX]; REPRO_SHARD_LOOKAHEAD=fixed
        # pins m=2 (the v1 bound) for A/B determinism checks
        mode = os.environ.get(LOOKAHEAD_ENV, "adaptive").strip() or "adaptive"
        if mode not in ("adaptive", "fixed"):
            raise SimError(
                f"{LOOKAHEAD_ENV} must be 'adaptive' or 'fixed', got {mode!r}"
            )
        self._la_mode = mode
        self._la_mult = 2.0
        self._la_mult_peak = 2.0
        # CMB window observability (wall-clock; reported via stats() only —
        # nondeterministic, so it must never feed results or fingerprints)
        self._n_windows = 0
        self._n_quiet_windows = 0
        self._stall_env_s = 0.0
        self._stall_hor_s = 0.0
        # built-in envelope kinds; conduits add theirs via bind_shard
        self._env_handlers: dict = {
            "wake": lambda meta, ft: CoroutineScheduler.wake(self, meta, ft),
        }

    # --------------------------------------------------------- configuration
    def configure_sharding(self, machine, network) -> None:
        """Install the node map and lookahead (called by upcxx.run_spmd)."""
        node_of = [machine.node_of(r) for r in range(self.n_ranks)]
        if any(node_of[i] > node_of[i + 1] for i in range(len(node_of) - 1)):
            raise SimError("sharded backend requires block (node-contiguous) rank placement")
        self._node_of = node_of
        self._lookahead = float(network.latency_oneway)
        if self._lookahead <= 0:
            raise SimError("sharded backend needs a positive cross-node latency (lookahead)")

    def register_conduit(self, conduit) -> None:
        """Conduits register so workers can bind them to their shard."""
        self._conduits.append(conduit)

    def set_envelope_handlers(self, handlers: dict) -> None:
        self._env_handlers.update(handlers)

    # ------------------------------------------------------- shard-facing API
    def shard_is_local(self, rank: int) -> bool:
        return self._local_lo <= rank < self._local_hi

    def _rank_hosted(self, rank: int) -> bool:
        # Survivable-crash notifications may only touch ranks this shard
        # hosts: a raw wake cannot cross shards (see wake() below).
        if self._shard_id is None:
            return True
        return self.shard_is_local(rank)

    def wake(self, rid: int, at_time: float) -> None:
        if self._shard_id is not None and not (self._local_lo <= rid < self._local_hi):
            raise SimError(
                f"cross-shard wake of rank {rid} from shard {self._shard_id}: a "
                "raw wake cannot cross shards (no lookahead guarantee); route "
                "it through conduit messaging or emit_envelope(..., 'wake', rid) "
                "with fire_time >= now + lookahead"
            )
        CoroutineScheduler.wake(self, rid, at_time)

    def emit_envelope(self, dst_rank: int, fire_time: float, kind: str, meta) -> None:
        """Queue a cross-shard event for the shard owning ``dst_rank``.

        The stamp is minted here, on the producing side, so the merged
        event order matches what a single-process run would compute.
        **Lookahead contract (caller's responsibility):** ``fire_time``
        must be at least the current simulated time plus the configured
        lookahead — the conduit satisfies this because every cross-node
        message rides at least one ``latency_oneway``.
        """
        if fire_time != fire_time or fire_time < 0 or fire_time == _INF:
            raise ValueError(f"invalid envelope time: {fire_time!r}")
        stamp = self._make_stamp()
        shard = self._shard_of_rank[dst_rank]
        self._outbox.setdefault(shard, []).append((fire_time, stamp, kind, meta))
        # Emission clamp (protocol v2, docstring §2): the receiver can echo
        # this envelope no earlier than fire_time + lookahead, so the window
        # must not execute past that point.  Because fire_time >= now +
        # lookahead (the contract above), the clamp always lands strictly
        # ahead of the current frontier — it shrinks the remaining window,
        # never rewinds it.  This is what makes the adaptive idle-provision
        # multiplier sound for any value.
        la = self._lookahead
        if la is not None:
            nb = fire_time + la
            if nb < self._wbound:
                self._wbound = nb
                if nb < self._horizon:
                    self._horizon = nb

    # --------------------------------------------------- windowed scheduling
    # (_retarget is inherited: the base recomputation already folds in
    # self._wbound, the window-bound hook owned by this subclass.)

    def _checkpoint_slow(self, me) -> None:
        # Same globally-minimal delivery rule as the base, with two window
        # additions: events at or past the bound stay in the heap, and a
        # rank whose clock reached the bound parks on the ready heap until
        # the next window raises the bound past it.
        clock = me.clock
        eheap = self._eheap
        n_fired = 0
        version = self._ready_version
        top = self._peek_ready()
        gate = top[0] if top is not None else None
        try:
            while eheap:
                entry = eheap[0]
                et = entry[0]
                # self._wbound is re-read every iteration: a fired event can
                # emit an envelope, and the emission clamp may have just
                # lowered the bound below this entry.
                if et > clock or et >= self._wbound:
                    break
                if gate is not None and et > gate:
                    break  # an earlier rank must run first
                entry = heapq.heappop(eheap)
                n_fired += 1
                self._firing_lane = entry[1]
                self._fire_child = 0
                entry[2]()
                self._firing_lane = None
                if self._ready_version != version:
                    version = self._ready_version
                    top = self._peek_ready()
                    gate = top[0] if top is not None else None
        finally:
            self._firing_lane = None
            if n_fired:
                self._events.account_fired(n_fired)
        top = self._peek_ready()
        wbound = self._wbound  # re-read: the drain may have clamped it
        if (top is not None and top[0] < clock) or clock >= wbound:
            # Someone is earlier, or I ran into the window edge: yield.
            if _DEBUG and clock >= wbound:
                print(
                    f"[shard {self._shard_id}] park r{me.rid} clock={clock*1e9:.3f} "
                    f"wbound={wbound*1e9:.3f}",
                    file=sys.stderr, flush=True,
                )
            me.state = _READY
            self._push_ready(me)
            self._switch_out(me)
            if _DEBUG:
                print(
                    f"[shard {self._shard_id}] unpark r{me.rid} clock={me.clock*1e9:.3f} "
                    f"wbound={self._wbound*1e9:.3f} eheap_top="
                    f"{(self._eheap[0][0]*1e9 if self._eheap else -1):.3f}",
                    file=sys.stderr, flush=True,
                )
        else:
            self._retarget()

    def _dispatch(self) -> None:
        """Window-gated dispatch: exhausting the window releases the main
        loop (which then runs the envelope/horizon exchange) instead of
        declaring completion or deadlock — those are global decisions."""
        eheap = self._eheap
        n_fired = 0
        while True:
            if self._failure is not None:
                if n_fired:
                    self._events.account_fired(n_fired)
                self._abort_all()
                return
            wbound = self._wbound
            top = self._peek_ready()
            rclock = top[0] if top is not None and top[0] < wbound else None
            et = eheap[0][0] if eheap and eheap[0][0] < wbound else None
            if rclock is not None and (et is None or rclock < et):
                heapq.heappop(self._ready)
                self._ready_version += 1
                ctl = top[1]
                ctl.state = _RUNNING
                self.switches += 1
                self._current = ctl
                self._retarget()
                if n_fired:
                    self._events.account_fired(n_fired)
                if ctl.thread is None:
                    self._start_fiber(ctl)
                else:
                    ctl.baton.release()
                return
            if et is not None:
                # Event is due first (ties go to events, as in the base).
                entry = heapq.heappop(eheap)
                n_fired += 1
                self._firing_lane = entry[1]
                self._fire_child = 0
                entry[2]()
                self._firing_lane = None
                continue
            # Window exhausted: back to the window loop.
            if n_fired:
                self._events.account_fired(n_fired)
            self._current = None
            self._release_main()
            return

    # ------------------------------------------------------------ worker side
    def _local_horizon(self) -> float:
        h = _INF
        if self._eheap:
            h = self._eheap[0][0]
        top = self._peek_ready()
        if top is not None and top[0] < h:
            h = top[0]
        return h

    def _insert_envelope(self, env) -> None:
        ft, stamp, kind, meta = env
        fn = self._env_handlers.get(kind)
        if fn is None:
            raise SimError(f"no handler for cross-shard envelope kind {kind!r}")
        self._events.push_keyed(ft, stamp, lambda: fn(meta, ft))

    def _worker_main(self) -> List[Tuple[int, str]]:
        """The conservative window loop (protocol v2; docstring §2);
        returns on success, raises on failure or deadlock."""
        lo, hi = self._local_lo, self._local_hi
        chan = self._chan
        lookahead = self._lookahead if self._lookahead is not None else 0.0
        n_total = self.n_ranks
        adaptive = self._la_mode == "adaptive"
        mult = 2.0  # the v1-equivalent idle-provision multiplier
        # Fault fences: with a crash plan armed, no window may span a
        # scheduled crash time or its heartbeat-detection time.  Landing a
        # window boundary exactly on each fence means every envelope
        # stamped at-or-before it was shipped by a *completed* exchange —
        # the detection-time failure only ever aborts a window that starts
        # at the detect fence, so its dropped FAIL-frame outbox cannot
        # contain pre-detect traffic.  Combined with the per-shard detect
        # events below, every backend executes exactly the events that
        # precede detection, which is what keeps crash-run flight-recorder
        # rings bit-identical.  Bounds only affect window count, never
        # execution order, so the clamp is otherwise invisible.
        fences = self._fault_fences() if chan.peers else ()
        self._arm_remote_crash_detection()
        # All peers start at horizon 0, so the first bound is the lookahead.
        self._wbound = lookahead if chan.peers else _INF
        for f in fences:
            if 0.0 < f < self._wbound:
                self._wbound = f
                break
        for rid in range(lo, hi):
            ctl = self._ranks[rid]
            ctl.state = _READY
            self._push_ready(ctl)
        while True:
            self._dispatch()
            self._main_baton.acquire()
            self._main_release_guard.release()  # re-arm for the next window
            failing = self._failure is not None
            outbox = self._outbox
            self._outbox = {}
            self._n_windows += 1
            closed_bound = self._wbound
            # Pre-insertion horizon rides the envelope frame: what the peer
            # cannot see from it (this barrier's in-flight envelopes) is
            # covered by the e-words and by each sender's own-outbox floor.
            h_pre = self._local_horizon()
            t0 = time.perf_counter()
            incoming, _peer_done, fail_seen, peer_floor, traffic = (
                chan.exchange_window(outbox, self._n_done, h_pre, failing)
            )
            self._stall_env_s += time.perf_counter() - t0
            if failing:
                raise self._failure
            if fail_seen:
                self._fail(_RemoteAbort("another shard reported a failure"))
                raise self._failure
            own_e = _INF
            for envs in outbox.values():
                for env in envs:
                    if env[0] < own_e:
                        own_e = env[0]
            near_bound = False
            for env in sorted(incoming, key=lambda e: (e[0], e[1])):
                if env[0] <= closed_bound + lookahead:
                    near_bound = True
                if _DEBUG:
                    late = " LATE" if env[0] < closed_bound else ""
                    print(
                        f"[shard {self._shard_id}] env ft={env[0]*1e9:.3f} "
                        f"kind={env[2]} closed_wbound={closed_bound*1e9:.3f}{late}",
                        file=sys.stderr, flush=True,
                    )
                self._insert_envelope(env)
            h_post = self._local_horizon()
            floor = peer_floor if peer_floor < own_e else own_e
            if h_post == _INF and floor == _INF:
                # Globally-silent barrier.  Entry is symmetric (docstring
                # §2: every shard observes the same all-idle evidence), so
                # all shards meet in the one-shot catch-up exchange that
                # settles done-vs-deadlock from post-insertion state.
                t0 = time.perf_counter()
                peer_min, peers_done = chan.exchange_catchup(h_post, self._n_done)
                self._stall_hor_s += time.perf_counter() - t0
                if peer_min == _INF:
                    if self._n_done + peers_done == n_total:
                        return []
                    raise _ShardDeadlock(
                        [
                            (c.rid, f"  rank {c.rid} (clock {c.clock:.9f}s): "
                                    f"{c.block_reason or '<no reason>'}")
                            for c in self._ranks[lo:hi]
                            if c.state == _BLOCKED
                        ]
                    )
                floor = peer_min  # defensive: a peer still has work
            # Adaptive lookahead (docstring §2): widen the idle-provision
            # term after a globally-quiet barrier, snap back when traffic
            # lands within one hop of the closed bound.  Driven purely by
            # simulated-time observables, so it is deterministic — and the
            # bound never changes execution order, only window count.
            if not traffic:
                self._n_quiet_windows += 1
                if adaptive:
                    mult *= 2.0
                    if mult > _LA_MULT_MAX:
                        mult = _LA_MULT_MAX
            elif adaptive and near_bound:
                mult = 2.0
            self._la_mult = mult
            if mult > self._la_mult_peak:
                self._la_mult_peak = mult
            # The bound (docstring §2): every unknown future event either
            # descends from an already-visible horizon/in-flight envelope
            # (>= floor, so its effect lands >= floor + one hop) or from
            # our own future sends (>= h_post + mult hops, kept sound for
            # any mult by the emission clamp in emit_envelope).
            wb = min(floor + lookahead, h_post + mult * lookahead)
            for f in fences:
                if closed_bound < f < wb:
                    wb = f  # land one window boundary exactly on the fence
                    break
            self._wbound = wb

    def _fault_plan(self):
        """The active fault plan, if any conduit carries one."""
        for c in self._conduits:
            plan = getattr(c, "_faults", None)
            if getattr(plan, "crashes", None):
                return plan
        return None

    def _fault_fences(self) -> tuple:
        """Sorted simulated times no CMB window may span: every scheduled
        rank-crash time and its heartbeat-detection time."""
        plan = self._fault_plan()
        if plan is None:
            return ()
        ts = set()
        for t in plan.crashes.values():
            ts.add(t)
            ts.add(t + plan.detect_timeout)
        return tuple(sorted(ts))

    def _arm_remote_crash_detection(self) -> None:
        """Schedule heartbeat-detection failures for non-local crashes.

        The dying rank posts its own die/detect events in rank context,
        but those live in *its* shard's queue.  Every other shard arms the
        same detection here so that all shards stop executing at exactly
        the detect time — the single-process backends abort there, and the
        sharded backend must not over-execute survivors past it (the
        flight-recorder freeze relies on the execution sets matching).
        The synthetic stamp (0.0, rank, 0) sorts with — and never collides
        with — real rank-context stamps, whose per-rank seqs start at 1.
        """
        plan = self._fault_plan()
        if plan is None:
            return
        lo, hi = self._local_lo, self._local_hi
        for r, t_die in sorted(plan.crashes.items()):
            if lo <= r < hi:
                continue  # the owner shard already has the rank's events
            t_detect = t_die + plan.detect_timeout

            if plan.survivable:
                # Scoped failure domain: every shard observes the death at
                # the same stamp and runs its local death listeners; the
                # run continues with the survivors.
                def _detect(r=r, t=t_detect, err=plan.dead_error(r)):
                    self._notify_dead(r, err, t)
            else:
                def _detect(err=plan.dead_error(r)):
                    if self._failure is None:
                        self._fail(err)

            self._events.push_keyed(t_detect, (0.0, r, 0), _detect)

    def _worker_stats(self) -> dict:
        ev = self._events.stats
        chan = self._chan
        n_retx = n_drop = n_dup = n_acks = 0
        agg_b = agg_u = 0
        agg_stall = 0.0
        for c in self._conduits:
            for ep in c.endpoints[self._local_lo : self._local_hi]:
                n_retx += ep.n_retx
                n_drop += ep.n_dropped
                n_dup += ep.n_dup
                n_acks += ep.n_acks
                agg_b += ep.agg_batches
                agg_u += ep.agg_updates
                agg_stall += ep.agg_credit_stall_s
        return {
            "shard": self._shard_id,
            "ranks": [self._local_lo, self._local_hi],
            "switches": self.switches,
            "events_posted": ev["posted"],
            "events_fired": ev["fired"],
            # CMB window loop (wall-clock observability)
            "windows": self._n_windows,
            "quiet_windows": self._n_quiet_windows,
            "window_stall_s": self._stall_env_s,
            "horizon_wait_s": self._stall_hor_s,
            "envelopes_sent": 0 if chan is None else chan.n_env_sent,
            "envelopes_received": 0 if chan is None else chan.n_env_recv,
            "pipe_bytes_sent": 0 if chan is None else chan.bytes_sent,
            "pipe_bytes_received": 0 if chan is None else chan.bytes_recv,
            # protocol-v2 batching efficiency
            "env_frames_sent": 0 if chan is None else chan.n_frames_sent,
            "sentinel_frames_sent": 0 if chan is None else chan.n_sentinels_sent,
            "lookahead_mode": self._la_mode,
            "lookahead_mult_final": self._la_mult,
            "lookahead_mult_peak": self._la_mult_peak,
            # reliability layer (fault injection), local endpoints only
            "frames_retransmitted": n_retx,
            "frames_dropped": n_drop,
            "frames_duplicated": n_dup,
            "acks": n_acks,
            # aggregation-layer accounting, local endpoints only
            "agg_batches": agg_b,
            "agg_updates": agg_u,
            "agg_credit_stall_s": agg_stall,
        }

    def _collect_metrics(self) -> dict:
        out: dict = {}
        for c in self._conduits:
            m = getattr(c, "metrics", None)
            if m is not None:
                for r in range(self._local_lo, self._local_hi):
                    rm = m._ranks.get(r)
                    if rm is not None:
                        out[r] = rm
        return out

    def _collect_spans(self) -> list:
        """This shard's span records (plain tuples, pickle-safe)."""
        for c in self._conduits:
            sp = getattr(c, "spans", None)
            if sp is not None:
                return list(sp._records)
        return []

    def _collect_telemetry(self) -> dict:
        """This shard's per-rank telemetry (pickle-safe RankTelemetry).

        Shipped on *every* payload arm — ok, deadlock, peer-abort and FAIL
        frames alike — so the parent can assemble a blackbox bundle even
        when a shard aborts.  Defensive: a shard failing before setup has
        no conduits/rank range yet, which must not mask the real failure.
        """
        out: dict = {}
        try:
            for c in self._conduits:
                tel = getattr(c, "telemetry", None)
                if tel is not None:
                    for r in range(self._local_lo, self._local_hi):
                        rt = tel._ranks.get(r)
                        if rt is not None:
                            out[r] = rt
                    break
        except Exception:
            return {}
        return out

    def _worker_entry(self, shard_id: int, parent_conn, own_conns, all_conns) -> None:
        payload = None
        try:
            # Drop every inherited pipe end that is not ours, so a dead
            # peer is observed as EOF instead of a silent hang.
            keep = set(id(c) for c in own_conns.values())
            keep.add(id(parent_conn))
            for c in all_conns:
                if id(c) not in keep:
                    try:
                        c.close()
                    except OSError:
                        pass
            self._shard_id = shard_id
            self._local_lo, self._local_hi = self._parts[shard_id]
            self._chan = _Channel(shard_id, own_conns)
            for c in self._conduits:
                c.bind_shard(self)
            old_stack = threading.stack_size()
            try:
                threading.stack_size(_STACK_BYTES)
            except (ValueError, RuntimeError):
                pass
            try:
                self._worker_main()
            finally:
                try:
                    threading.stack_size(old_stack)
                except (ValueError, RuntimeError):
                    pass
            for rid in range(self._local_lo, self._local_hi):
                ctl = self._ranks[rid]
                if ctl.thread is not None:
                    ctl.thread.join(timeout=30.0)
            payload = (
                "ok",
                {
                    "results": {
                        rid: self._ranks[rid].result
                        for rid in range(self._local_lo, self._local_hi)
                    },
                    "trace": list(self.trace._events) if self.trace.enabled else [],
                    "stats": self._worker_stats(),
                    "metrics": self._collect_metrics(),
                    "spans": self._collect_spans(),
                    "telemetry": self._collect_telemetry(),
                    # crashed local ranks whose heartbeat timeout never
                    # fired (everyone else finished first): rank -> message
                    "dead": {r: str(err) for r, err in self._dead_ranks.items()},
                },
            )
        except _ShardDeadlock as exc:
            payload = ("deadlock", exc.lines, self._collect_telemetry())
        except _RemoteAbort:
            payload = ("peer-abort", None, self._collect_telemetry())
        except BaseException as exc:  # noqa: BLE001 - ship any failure home
            payload = ("fail", _describe_failure(exc), self._collect_telemetry())
        try:
            try:
                parent_conn.send_bytes(_dumps(payload))
            except Exception as exc:  # unpicklable result objects etc.
                parent_conn.send_bytes(
                    _dumps(("fail", ("SimError", f"shard {shard_id} could not ship its "
                                                 f"results: {exc}", None)))
                )
        finally:
            parent_conn.close()
            if self._chan is not None:
                self._chan.close()

    # ------------------------------------------------------------ parent side
    def _plan_shards(self) -> int:
        env = os.environ.get(SHARDS_ENV, "").strip()
        if env:
            requested = int(env)
            if requested < 1:
                raise ValueError(f"{SHARDS_ENV} must be >= 1, got {requested}")
        else:
            requested = os.cpu_count() or 1
        node_of = self._node_of
        if node_of is None:
            # No machine topology: no lookahead, so everything is one shard.
            node_of = [0] * self.n_ranks
        n_nodes = node_of[-1] + 1 if node_of else 1
        n_shards = max(1, min(requested, n_nodes))
        # Even contiguous node chunks; block rank placement makes the
        # resulting per-shard rank ranges contiguous too.
        shard_of_node = [(n * n_shards) // n_nodes for n in range(n_nodes)]
        self._shard_of_rank = [shard_of_node[node_of[r]] for r in range(self.n_ranks)]
        parts: List[Tuple[int, int]] = []
        start = 0
        for s in range(n_shards):
            end = start
            while end < self.n_ranks and self._shard_of_rank[end] == s:
                end += 1
            parts.append((start, end))
            start = end
        if start != self.n_ranks:
            raise SimError("internal error: shard partition does not cover all ranks")
        self._parts = parts
        self._n_shards_used = n_shards
        return n_shards

    def run(self, fn: Callable[[int], object]) -> List[object]:
        if self._running:
            raise SimError("Scheduler.run() is not reentrant")
        self._running = True
        self._fn = fn
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:
            raise SimError("backend='sharded' requires fork-capable multiprocessing") from exc
        n_shards = self._plan_shards()
        pair_conns: List[Dict[int, object]] = [{} for _ in range(n_shards)]
        all_conns: list = []
        for i in range(n_shards):
            for j in range(i + 1, n_shards):
                a, b = ctx.Pipe(True)
                pair_conns[i][j] = a
                pair_conns[j][i] = b
                all_conns.extend((a, b))
        parent_conns = []
        procs = []
        payloads: List[tuple] = []
        try:
            child_ws = []
            for s in range(n_shards):
                pr, pw = ctx.Pipe(False)
                parent_conns.append(pr)
                child_ws.append(pw)
                all_conns.append(pw)
            for s in range(n_shards):
                p = ctx.Process(
                    target=self._worker_entry,
                    args=(s, child_ws[s], pair_conns[s], all_conns),
                    name=f"simshard-{s}",
                    daemon=True,
                )
                p.start()
                procs.append(p)
            for c in all_conns:
                c.close()
            for s, pr in enumerate(parent_conns):
                try:
                    payloads.append(_loads(pr.recv_bytes()))
                except (EOFError, OSError):
                    payloads.append(("fail", ("SimError", f"shard {s} terminated "
                                                          "without reporting", None)))
            for p in procs:
                p.join(timeout=30.0)
        finally:
            for pr in parent_conns:
                try:
                    pr.close()
                except OSError:
                    pass
            for p in procs:
                if p.is_alive():
                    p.terminate()
        return self._merge(payloads)

    def _merge(self, payloads: List[tuple]) -> List[object]:
        # Flight-recorder state must survive *any* outcome, so it is
        # harvested before the failure arms below get a chance to raise.
        self._harvest_telemetry(payloads)
        failures = [
            (s, pl[1]) for s, pl in enumerate(payloads) if pl[0] == "fail"
        ]
        if failures:
            kind, message, rank, *rest = failures[0][1]
            self._failure = _rebuild_failure(kind, message, rank, *rest)
            raise self._failure
        deadlock_lines = [ln for pl in payloads if pl[0] == "deadlock" for ln in pl[1]]
        if deadlock_lines:
            deadlock_lines.sort()
            self._failure = DeadlockError(
                "simulation deadlock: no runnable ranks and no pending events.\n"
                + "\n".join(line for _, line in deadlock_lines)
            )
            raise self._failure
        if any(pl[0] != "ok" for pl in payloads):
            self._failure = SimError(f"shard protocol error: {[p[0] for p in payloads]}")
            raise self._failure
        results: List[object] = [None] * self.n_ranks
        per_shard = []
        posted = fired = 0
        metrics_merged: dict = {}
        trace_lists = []
        span_lists = []
        dead_merged: dict = {}
        for pl in payloads:
            body = pl[1]
            dead_merged.update(body.get("dead", {}))
            for rid, res in body["results"].items():
                results[rid] = res
            st = body["stats"]
            per_shard.append(st)
            self.switches += st["switches"]
            posted += st["events_posted"]
            fired += st["events_fired"]
            metrics_merged.update(body["metrics"])
            trace_lists.append(body["trace"])
            span_lists.append(body.get("spans", []))
        # fold the merged counters into the (otherwise unused) parent queue
        self._events._count_posted += posted
        self._events._count_fired += fired
        self._per_shard_stats = per_shard
        if self.trace.enabled:
            self.trace.extend_canonical(trace_lists)
        if metrics_merged:
            for c in self._conduits:
                m = getattr(c, "metrics", None)
                if m is not None:
                    m._ranks.update(metrics_merged)
                    break
        if any(span_lists):
            for c in self._conduits:
                sp = getattr(c, "spans", None)
                if sp is not None:
                    sp.extend_canonical(span_lists)
                    break
        if dead_merged and not self._survivable:
            # same verdict the single-process backends reach at run() end
            rank = min(dead_merged)
            self._failure = RankDeadError(rank, dead_merged[rank])
            raise self._failure
        return results

    def _harvest_telemetry(self, payloads: List[tuple]) -> None:
        """Merge shipped per-rank telemetry into the job-level sink.

        Non-ok payloads carry telemetry as a trailing tuple element (the
        synthetic "terminated without reporting" payload has none).
        """
        merged: dict = {}
        for pl in payloads:
            if pl[0] == "ok":
                merged.update(pl[1].get("telemetry", {}))
            elif len(pl) > 2 and pl[2]:
                merged.update(pl[2])
        if not merged:
            return
        for c in self._conduits:
            tel = getattr(c, "telemetry", None)
            if tel is not None:
                tel.merge_ranks(merged)
                break

    def stats(self) -> dict:
        d = Scheduler.stats(self)
        d["n_shards"] = self._n_shards_used
        d["per_shard"] = self._per_shard_stats
        ps = self._per_shard_stats
        if ps:
            # window counts are symmetric (every shard walks the same loop);
            # report the max so partially-reported failures stay visible
            d["windows"] = max(st.get("windows", 0) for st in ps)
            d["window_stall_s"] = sum(st.get("window_stall_s", 0.0) for st in ps)
            d["horizon_wait_s"] = sum(st.get("horizon_wait_s", 0.0) for st in ps)
            d["envelopes_exchanged"] = sum(st.get("envelopes_sent", 0) for st in ps)
            d["pipe_bytes"] = sum(st.get("pipe_bytes_sent", 0) for st in ps)
            d["quiet_windows"] = max(st.get("quiet_windows", 0) for st in ps)
            d["env_frames"] = sum(st.get("env_frames_sent", 0) for st in ps)
            d["sentinel_frames"] = sum(st.get("sentinel_frames_sent", 0) for st in ps)
            d["lookahead_mode"] = ps[0].get("lookahead_mode", "adaptive")
            d["lookahead_mult_peak"] = max(
                st.get("lookahead_mult_peak", 2.0) for st in ps
            )
            d["frames_retransmitted"] = sum(st.get("frames_retransmitted", 0) for st in ps)
            d["frames_dropped"] = sum(st.get("frames_dropped", 0) for st in ps)
            d["frames_duplicated"] = sum(st.get("frames_duplicated", 0) for st in ps)
            d["acks"] = sum(st.get("acks", 0) for st in ps)
            d["agg_batches"] = sum(st.get("agg_batches", 0) for st in ps)
            d["agg_updates"] = sum(st.get("agg_updates", 0) for st in ps)
            d["agg_credit_stall_s"] = sum(st.get("agg_credit_stall_s", 0.0) for st in ps)
        return d


_BACKENDS["sharded"] = ShardedScheduler
