"""repro — a Python reproduction of "UPC++: A High-Performance
Communication Framework for Asynchronous Computation" (Bachan et al.,
IPDPS 2019) over a deterministic discrete-event machine simulator.

Subpackages
-----------
- ``repro.sim``       deterministic DES kernel + cooperative SPMD runtime
- ``repro.gasnet``    the GASNet-EX substitute (wire model, segments, AMs)
- ``repro.upcxx``     the paper's contribution: the UPC++ v1.0 library
- ``repro.upcxx_v01`` the 2014 predecessor API (events/asyncs)
- ``repro.mpisim``    the Cray-MPICH-like MPI baseline
- ``repro.apps``      the evaluated motifs (DHT, sparse solver, linalg)
- ``repro.bench``     per-figure benchmark drivers
- ``repro.util``      units, stats, records, tracing, profiling

Start with ``import repro.upcxx as upcxx`` and ``upcxx.run_spmd``; see
README.md and docs/guide.md.
"""

__version__ = "1.0.0"
