"""Two-sided point-to-point protocol: eager and rendezvous.

Below ``rndv_threshold`` bytes a message travels **eager**: the sender
copies it into MPI buffering, ships it, and the receiver copies it out on
match — one traversal, but two CPU copies and possible unexpected-queue
residency.  At/above the threshold the message goes **rendezvous**: an RTS
control message, a CTS once the receive is matched, then a zero-copy RDMA
transfer — no copies, but a full handshake whose progress requires *both*
sides to be attentive.  These are exactly the semantics whose coupling the
paper contrasts with one-sided RPC injection.
"""

from __future__ import annotations

from typing import Optional

from repro.gasnet.network import PATH_BTE, PATH_FMA
from repro.mpisim.request import Request
from repro.upcxx import serialization

#: wire envelope bytes for MPI headers
_ENVELOPE = 48


def _match(req: Request, src: int, tag: int) -> bool:
    return (req.src == -1 or req.src == src) and (req.tag == -1 or req.tag == tag)


def _path(rt, nbytes: int) -> str:
    return PATH_FMA if nbytes < rt.costs.bte_threshold else PATH_BTE


# ------------------------------------------------------------------- sending
def isend(rt, obj, dest_world: int, tag: int) -> Request:
    """Nonblocking send to a world rank."""
    rt.n_sends += 1
    raw = serialization.pack(obj)
    nbytes = len(raw)
    req = Request(rt, "isend", src=dest_world, tag=tag)
    req.nbytes = nbytes
    rt.charge_sw(rt.costs.send_inject)

    if nbytes < rt.costs.rndv_threshold:
        # eager: copy into MPI buffering, one-way transfer
        rt.charge_copy(nbytes)
        rt.conduit.am_send(
            rt.rank,
            dest_world,
            "mpi.eager",
            {"raw": raw, "tag": tag},
            nbytes=nbytes + _ENVELOPE,
            path=_path(rt, nbytes),
        )
        req.complete()  # buffer is reusable immediately
        return req

    # rendezvous: RTS now; data moves when the CTS returns
    token = rt.next_token()
    rt.charge_sw(rt.costs.rndv_sw)
    rt.rndv_pending[token] = {"raw": raw, "dest": dest_world, "tag": tag, "req": req}
    rt.conduit.am_send(
        rt.rank,
        dest_world,
        "mpi.rts",
        {"tag": tag, "token": token, "nbytes": nbytes},
        nbytes=_ENVELOPE,
    )
    return req


def issend(rt, obj, dest_world: int, tag: int) -> Request:
    """Nonblocking *synchronous* send (``MPI_Issend``): the request
    completes only once the receiver has **matched** the message.

    Production solvers (notably MUMPS) use Issend for contribution-block
    traffic to bound unexpected-buffer growth; the cost is that every send
    couples the sender's completion to the receiver's matching progress —
    the behavior the paper's Fig. 8 "MPI P2P" variant exhibits at scale.
    """
    raw = serialization.pack(obj)
    nbytes = len(raw)
    if nbytes >= rt.costs.rndv_threshold:
        # rendezvous is already synchronous (completion at CTS)
        return isend(rt, obj, dest_world, tag)
    rt.n_sends += 1
    req = Request(rt, "issend", src=dest_world, tag=tag)
    req.nbytes = nbytes
    rt.charge_sw(rt.costs.send_inject)
    rt.charge_copy(nbytes)
    token = rt.next_token()
    rt.rndv_pending[token] = {"req": req}  # awaiting the match ack
    rt.conduit.am_send(
        rt.rank,
        dest_world,
        "mpi.eager",
        {"raw": raw, "tag": tag, "sync_token": token},
        nbytes=nbytes + _ENVELOPE,
        path=_path(rt, nbytes),
    )
    return req


def irecv(rt, src_world: int, tag: int) -> Request:
    """Nonblocking receive (wildcards: src=-1, tag=-1).

    Matching cost model follows real MPI implementations: fully-specified
    (source, tag) receives resolve through hashed buckets (O(1) charge),
    while wildcard receives must scan the unexpected queue linearly — the
    well-known pathology of wildcard-heavy point-to-point codes at scale.
    """
    rt.n_recvs += 1
    req = Request(rt, "irecv", src=src_world, tag=tag)
    rt.charge_sw(rt.costs.recv_match)
    wildcard = src_world == -1 or tag == -1
    # first try the unexpected queue (in arrival order)
    scanned = 0
    for i, msg in enumerate(rt.unexpected):
        scanned += 1
        if _match(req, msg["src"], msg["tag"]):
            rt.charge_sw(rt.costs.unexpected_scan * (scanned if wildcard else 1))
            rt.unexpected.pop(i)
            _deliver(rt, req, msg)
            return req
    if scanned:
        rt.charge_sw(rt.costs.unexpected_scan * (scanned if wildcard else 1))
    rt.posted_recvs.append(req)
    return req


def iprobe(rt, src_world: int, tag: int):
    """Nonblocking probe (``MPI_Iprobe``): report whether a matching message
    has arrived without receiving it.  Returns (flag, src, tag, nbytes)."""
    rt.charge_sw(rt.costs.recv_match)
    probe = Request(rt, "probe", src=src_world, tag=tag)
    wildcard = src_world == -1 or tag == -1
    scanned = 0
    for msg in rt.unexpected:
        scanned += 1
        if _match(probe, msg["src"], msg["tag"]):
            rt.charge_sw(rt.costs.unexpected_scan * (scanned if wildcard else 1))
            nbytes = len(msg["raw"]) if msg["kind"] == "eager" else msg["nbytes"]
            return True, msg["src"], msg["tag"], nbytes
    if scanned:
        rt.charge_sw(rt.costs.unexpected_scan * (scanned if wildcard else 1))
    return False, None, None, 0


# ------------------------------------------------------------------ matching
def _deliver(rt, req: Request, msg: dict) -> None:
    """Complete a matched receive (or kick off the rendezvous data phase)."""
    if msg["kind"] == "eager":
        raw = msg["raw"]
        rt.charge_copy(len(raw))  # copy out of MPI buffering
        req.nbytes = len(raw)
        req.complete(serialization.unpack(raw))
        sync_token = msg.get("sync_token")
        if sync_token is not None:
            # MPI_Issend: tell the sender its message has been matched
            rt.conduit.am_send(rt.rank, msg["src"], "mpi.sync_ack", {"token": sync_token}, nbytes=_ENVELOPE)
        return
    # rendezvous RTS: grant a CTS; data will arrive as mpi.rdata
    rt.charge_sw(rt.costs.rndv_sw)
    msg_token = msg["token"]
    req.nbytes = msg["nbytes"]
    rt.rndv_pending[("recv", msg["src"], msg_token)] = req
    rt.conduit.am_send(
        rt.rank,
        msg["src"],
        "mpi.cts",
        {"token": msg_token},
        nbytes=_ENVELOPE,
    )


def handle_arrival(rt, am) -> None:
    """Protocol dispatch for one arrived wire message (rank context)."""
    if am.tag == "mpi.eager":
        _on_eager(rt, am)
    elif am.tag == "mpi.rts":
        _on_rts(rt, am)
    elif am.tag == "mpi.cts":
        _on_cts(rt, am)
    elif am.tag == "mpi.rdata":
        _on_rdata(rt, am)
    elif am.tag == "mpi.sync_ack":
        _on_sync_ack(rt, am)
    else:
        raise RuntimeError(f"unknown MPI wire tag {am.tag!r}")


def _find_posted(rt, src: int, tag: int) -> Optional[Request]:
    """Match an arrival against posted receives.

    Exact-match entries live in hashed buckets (O(1) charge); every
    wildcard entry inspected costs a linear-scan step.
    """
    wildcards_scanned = 0
    for i, req in enumerate(rt.posted_recvs):
        if req.src == -1 or req.tag == -1:
            wildcards_scanned += 1
        if _match(req, src, tag):
            rt.charge_sw(rt.costs.unexpected_scan * max(1, wildcards_scanned))
            return rt.posted_recvs.pop(i)
    rt.charge_sw(rt.costs.unexpected_scan * max(1, wildcards_scanned))
    return None


def _on_eager(rt, am) -> None:
    req = _find_posted(rt, am.src, am.payload["tag"])
    msg = {
        "kind": "eager",
        "src": am.src,
        "tag": am.payload["tag"],
        "raw": am.payload["raw"],
        "sync_token": am.payload.get("sync_token"),
    }
    if req is None:
        rt.n_unexpected += 1
        rt.unexpected.append(msg)
        return
    _deliver(rt, req, msg)


def _on_rts(rt, am) -> None:
    p = am.payload
    req = _find_posted(rt, am.src, p["tag"])
    msg = {
        "kind": "rts",
        "src": am.src,
        "tag": p["tag"],
        "token": p["token"],
        "nbytes": p["nbytes"],
    }
    if req is None:
        rt.n_unexpected += 1
        rt.unexpected.append(msg)
        return
    _deliver(rt, req, msg)


def _on_cts(rt, am) -> None:
    state = rt.rndv_pending.pop(am.payload["token"], None)
    if state is None:
        raise RuntimeError("CTS for unknown rendezvous token")
    raw = state["raw"]
    rt.charge_sw(rt.costs.rndv_sw)
    rt.conduit.am_send(
        rt.rank,
        state["dest"],
        "mpi.rdata",
        {"raw": raw, "token": am.payload["token"]},
        nbytes=len(raw) + _ENVELOPE,
        path=PATH_BTE,
    )
    state["req"].complete()  # user buffer is free once the DMA is queued


def _on_sync_ack(rt, am) -> None:
    state = rt.rndv_pending.pop(am.payload["token"], None)
    if state is None:
        raise RuntimeError("sync ack for unknown Issend token")
    state["req"].complete()


def _on_rdata(rt, am) -> None:
    key = ("recv", am.src, am.payload["token"])
    req = rt.rndv_pending.pop(key, None)
    if req is None:
        raise RuntimeError("rendezvous data for unknown receive")
    rt.charge_sw(rt.costs.rndv_sw)
    # zero-copy: RDMA landed directly in the user buffer (no copy charge)
    req.complete(serialization.unpack(am.payload["raw"]))
