"""Cray-MPICH-like software cost profile.

Calibrated so the *relative* UPC++/MPI behavior of the paper's Fig. 3
emerges from the model (see DESIGN.md §4 and the fig-3 benchmarks):

- small blocking put: MPI ≈ 10% slower (heavier per-op software path:
  descriptor + window bookkeeping + flush);
- 256 B – 2 KiB blocking put: an extra protocol-switch penalty puts MPI
  ≈ 25–30% behind (the paper's ">25% improvement from 256 to 1024 bytes");
- flood bandwidth: a mid-size pipeline-efficiency dip, deepest at 8 KiB
  (the paper's "over 33% more bandwidth at 8 KiB"), vanishing toward both
  ends ("comparable for small and large sizes").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import US


@dataclass(frozen=True)
class MpiCosts:
    """Haswell-calibrated per-op software costs for the MPI baseline."""

    # -------------------------------------------------------------- pt2pt
    #: Isend software path (request allocation, descriptor, matching info;
    #: Cray MPICH two-sided is markedly heavier than one-sided AM injection)
    send_inject: float = 0.70 * US
    #: posting/matching a receive
    recv_match: float = 0.55 * US
    #: completing one request (test/wait bookkeeping)
    req_complete: float = 0.20 * US
    #: one linear matching step (wildcard receives scan queues linearly;
    #: fully-specified receives resolve via hashed buckets and pay one step)
    unexpected_scan: float = 0.08 * US
    #: eager -> rendezvous protocol threshold (Cray MPICH default class)
    rndv_threshold: int = 8192
    #: fixed handshake software cost at each side of a rendezvous
    rndv_sw: float = 0.30 * US

    # ---------------------------------------------------------------- RMA
    #: MPI_Put/Get software path (origin-side)
    put_sw: float = 0.45 * US
    #: MPI_Win_flush software path
    flush_sw: float = 0.30 * US
    #: protocol-switch penalty window for blocking-latency puts
    win_sync_window_lo: int = 256
    win_sync_window_hi: int = 2048
    win_sync_extra: float = 0.55 * US
    #: mid-size pipeline-efficiency dip (Fig. 3b):
    #: eff(n) = 1 - A * exp(-(log2 n - center)^2 / sigma2)
    rma_dip_amplitude: float = 0.26
    rma_dip_center_log2: float = 13.0  # 8 KiB
    rma_dip_sigma2: float = 10.0

    # ---------------------------------------------------------- collectives
    #: per-call setup of a collective
    coll_sw: float = 0.30 * US
    #: per-peer setup inside Alltoallv (count/displacement processing)
    alltoallv_per_peer: float = 0.08 * US
    #: progress-poll cost
    progress_poll: float = 0.06 * US

    #: FMA->BTE path threshold (same hardware decision space as GASNet)
    bte_threshold: int = 4096

    def rma_pipeline_eff(self, nbytes: int) -> float:
        """Wire-pipeline efficiency of the MPI RMA path at ``nbytes``."""
        if nbytes <= 0:
            return 1.0
        x = math.log2(nbytes) - self.rma_dip_center_log2
        return 1.0 - self.rma_dip_amplitude * math.exp(-(x * x) / self.rma_dip_sigma2)

    def rma_occ_scale(self, nbytes: int) -> float:
        """Occupancy multiplier handed to the conduit for RMA transfers."""
        return 1.0 / self.rma_pipeline_eff(nbytes)

    def latency_window_extra(self, nbytes: int) -> float:
        """Extra blocking-put software cost in the protocol-switch window."""
        if self.win_sync_window_lo <= nbytes < self.win_sync_window_hi:
            return self.win_sync_extra
        return 0.0


DEFAULT_MPI_COSTS = MpiCosts()
