"""MPI world, per-rank runtime, and communicators.

The :class:`MpiRuntime` is MPI's analogue of the UPC++ progress engine: it
polls the conduit inbox, matches two-sided traffic against posted receives,
and drives the rendezvous protocol.  Unlike the UPC++ runtime there is no
user-visible asynchrony machinery (no futures): requests are the only
completion objects, and collective algorithms are built from point-to-point
internally.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.gasnet.conduit import Conduit
from repro.gasnet.cpumodel import CpuModel, platform_cpu
from repro.gasnet.machine import Machine
from repro.gasnet.network import AriesNetwork, NetworkModel
from repro.sim.coop import Scheduler, current_scheduler
from repro.mpisim.profile import DEFAULT_MPI_COSTS, MpiCosts
from repro.mpisim.request import Request

#: wildcard source / tag
ANY_SOURCE = -1
ANY_TAG = -1


class MpiWorld:
    """Per-job MPI state shared by all ranks."""

    def __init__(
        self,
        sched: Scheduler,
        machine: Machine,
        network: NetworkModel,
        cpu: CpuModel,
        costs: MpiCosts = DEFAULT_MPI_COSTS,
        segment_size: int = 32 * 1024 * 1024,
    ):
        self.sched = sched
        self.machine = machine
        self.network = network
        self.cpu = cpu
        self.costs = costs
        self.conduit = Conduit(sched, machine, network, segment_size)
        self.n_ranks = sched.n_ranks
        self.runtimes: List[Optional["MpiRuntime"]] = [None] * self.n_ranks


class MpiRuntime:
    """One rank's MPI library state (matching queues, rendezvous table)."""

    def __init__(self, world: MpiWorld, rank: int):
        self.world = world
        self.rank = rank
        self.sched = world.sched
        self.cpu = world.cpu
        self.costs = world.costs
        self.conduit = world.conduit
        #: receives posted but not yet matched: list of Request
        self.posted_recvs: List[Request] = []
        #: arrived messages with no matching posted receive
        self.unexpected: List[dict] = []
        #: sender-side rendezvous state: token -> dict
        self.rndv_pending: dict = {}
        self._token_seq = 0
        # counters
        self.n_sends = 0
        self.n_recvs = 0
        self.n_unexpected = 0
        world.runtimes[rank] = self

    # --------------------------------------------------------------- charges
    def charge_sw(self, base_seconds: float) -> None:
        self.sched.charge(self.cpu.t(base_seconds))

    def charge_copy(self, nbytes: int) -> None:
        if nbytes > 0:
            self.sched.charge(self.cpu.copy_time(nbytes))

    def next_token(self) -> int:
        self._token_seq += 1
        return self._token_seq

    # -------------------------------------------------------------- progress
    def progress(self) -> None:
        """Poll the network and run protocol handlers for due arrivals."""
        from repro.mpisim import p2p

        self.charge_sw(self.costs.progress_poll)
        self.sched.checkpoint()
        inbox = self.conduit.inbox(self.rank)
        now = self.sched.now()
        while inbox.has_due(now):
            msg = inbox.poll(now)
            p2p.handle_arrival(self, msg)
            now = self.sched.now()

    def wait_all(self, requests: Sequence[Request]) -> None:
        """Progress until every request is complete."""
        while True:
            if all(r.done for r in requests):
                return
            self.progress()
            if all(r.done for r in requests):
                return
            self.sched.block("MPI_Waitall")

    def wait_until(self, pred: Callable[[], bool], reason: str = "MPI wait") -> None:
        """Progress until an arbitrary predicate holds (used by flush)."""
        while not pred():
            self.progress()
            if pred():
                return
            self.sched.block(reason)


class Communicator:
    """An ordered group of world ranks (mpi4py-flavored interface)."""

    def __init__(self, rt: MpiRuntime, members: List[int]):
        self.rt = rt
        self.members = list(members)
        self._index = {w: i for i, w in enumerate(self.members)}

    # ---------------------------------------------------------------- shape
    def Get_rank(self) -> int:
        return self._index[self.rt.rank]

    def Get_size(self) -> int:
        return len(self.members)

    @property
    def rank(self) -> int:
        return self.Get_rank()

    @property
    def size(self) -> int:
        return self.Get_size()

    def world_rank(self, comm_rank: int) -> int:
        return self.members[comm_rank]

    def sub(self, comm_ranks: Sequence[int]) -> "Communicator":
        """Communicator over a subset (all members call identically)."""
        return Communicator(self.rt, [self.members[i] for i in comm_ranks])

    # ------------------------------------------------------------------ p2p
    def isend(self, obj, dest: int, tag: int = 0) -> Request:
        from repro.mpisim import p2p

        return p2p.isend(self.rt, obj, self.members[dest], tag)

    def issend(self, obj, dest: int, tag: int = 0) -> Request:
        """Synchronous-mode nonblocking send (``MPI_Issend``)."""
        from repro.mpisim import p2p

        return p2p.issend(self.rt, obj, self.members[dest], tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        from repro.mpisim import p2p

        src_world = self.members[source] if source != ANY_SOURCE else ANY_SOURCE
        return p2p.irecv(self.rt, src_world, tag)

    def send(self, obj, dest: int, tag: int = 0) -> None:
        self.isend(obj, dest, tag).wait()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking probe; returns (flag, comm_source, tag, nbytes).

        Makes progress before probing (like real MPI implementations,
        which poll the network inside Iprobe).
        """
        from repro.mpisim import p2p

        self.rt.progress()
        src_world = self.members[source] if source != ANY_SOURCE else ANY_SOURCE
        flag, src, t, nbytes = p2p.iprobe(self.rt, src_world, tag)
        if not flag:
            return False, None, None, 0
        return True, self.members.index(src), t, nbytes

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return self.irecv(source, tag).wait()

    # ----------------------------------------------------------- collectives
    def barrier(self) -> None:
        from repro.mpisim import collectives

        collectives.barrier(self)

    def bcast(self, obj, root: int = 0):
        from repro.mpisim import collectives

        return collectives.bcast(self, obj, root)

    def allreduce(self, value, op: str = "+"):
        from repro.mpisim import collectives

        return collectives.allreduce(self, value, op)

    def allgather(self, value) -> list:
        from repro.mpisim import collectives

        return collectives.allgather(self, value)

    def alltoallv(self, send_objs: Sequence) -> list:
        from repro.mpisim import collectives

        return collectives.alltoallv(self, send_objs)


def comm_world() -> Communicator:
    """This rank's COMM_WORLD (inside run_mpi)."""
    sched = current_scheduler()
    comm = sched.rank_env().get("mpi_comm_world")
    if comm is None:
        raise RuntimeError("MPI is not initialized on this rank (use run_mpi)")
    return comm


def run_mpi(
    fn: Callable[[], object],
    ranks: int,
    platform: str = "haswell",
    ppn: Optional[int] = None,
    network: Optional[NetworkModel] = None,
    cpu: Optional[CpuModel] = None,
    costs: MpiCosts = DEFAULT_MPI_COSTS,
    segment_size: int = 32 * 1024 * 1024,
    max_time: float = 1e6,
    backend: Optional[str] = None,
) -> List[object]:
    """Run ``fn`` as an MPI program on ``ranks`` simulated processes.

    ``backend`` selects the scheduler implementation exactly as in
    :func:`repro.upcxx.api.run_spmd` (default: ``$REPRO_SIM_BACKEND``).
    """
    from repro.upcxx.api import default_ppn

    ppn = ppn if ppn is not None else default_ppn(platform)
    machine = Machine.for_ranks(ranks, ppn, name=platform)
    network = network if network is not None else AriesNetwork()
    cpu = cpu if cpu is not None else platform_cpu(platform)
    sched = Scheduler(ranks, max_time=max_time, backend=backend)
    cfg = getattr(sched, "configure_sharding", None)
    if cfg is not None:
        cfg(machine, network)
    world = MpiWorld(sched, machine, network, cpu, costs, segment_size)

    def bootstrap(rank: int):
        rt = MpiRuntime(world, rank)
        sched.rank_env()["mpi_rt"] = rt
        sched.rank_env()["mpi_comm_world"] = Communicator(rt, list(range(ranks)))
        try:
            return fn()
        finally:
            sched.rank_env().pop("mpi_rt", None)
            sched.rank_env().pop("mpi_comm_world", None)

    return sched.run(bootstrap)
