"""repro.mpisim — a Cray-MPICH-like MPI baseline over the same conduit.

The paper compares UPC++ against MPI three ways: MPI-3 one-sided RMA
(Fig. 3), ``MPI_Alltoallv``, and ``Isend/Irecv`` point-to-point (Fig. 8).
This package provides those APIs over the **identical** simulated network
and CPU models, differing from :mod:`repro.upcxx` only in the software
structure MPI imposes:

- two-sided matching (eager copies below the rendezvous threshold,
  RTS/CTS handshakes above it — requiring both sides to progress);
- passive-target RMA windows whose puts carry extra software overhead, a
  protocol-switch penalty window at small-mid sizes, and a mid-size
  pipeline inefficiency (the documented source of the paper's Fig. 3b
  bandwidth gap);
- collectives that couple all ranks of the communicator (pairwise-exchange
  ``Alltoallv`` costs Θ(P) rounds even when almost all pairs are empty).

API style follows mpi4py: lowercase methods move Python objects.
"""

from repro.mpisim.profile import MpiCosts, DEFAULT_MPI_COSTS
from repro.mpisim.request import Request
from repro.mpisim.comm import Communicator, run_mpi, comm_world
from repro.mpisim.rma import Win

__all__ = [
    "MpiCosts",
    "DEFAULT_MPI_COSTS",
    "Request",
    "Communicator",
    "run_mpi",
    "comm_world",
    "Win",
]
