"""MPI request objects (nonblocking operation handles)."""

from __future__ import annotations

from typing import Any, List, Optional


class Request:
    """Handle for a nonblocking MPI operation (mpi4py-style).

    ``wait()`` spins the owning runtime's progress engine; for receive
    requests the received object is the return value of ``wait()``.
    """

    __slots__ = ("rt", "kind", "done", "value", "src", "tag", "nbytes")

    def __init__(self, rt, kind: str, src: Optional[int] = None, tag: Optional[int] = None):
        self.rt = rt
        self.kind = kind
        self.done = False
        self.value: Any = None
        self.src = src
        self.tag = tag
        self.nbytes = 0

    def complete(self, value=None) -> None:
        """Mark done (rank context, during progress).

        Charges the MPI request-completion bookkeeping cost."""
        self.rt.charge_sw(self.rt.costs.req_complete)
        self.done = True
        self.value = value

    def test(self) -> bool:
        """Nonblocking completion check (makes progress)."""
        if not self.done:
            self.rt.progress()
        return self.done

    def wait(self):
        """Block until complete; returns the received object (recv reqs)."""
        self.rt.wait_all([self])
        return self.value

    @staticmethod
    def waitall(requests: List["Request"]):
        """Wait on many requests; returns their values in order."""
        if requests:
            requests[0].rt.wait_all(requests)
        return [r.value for r in requests]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} {state}>"
