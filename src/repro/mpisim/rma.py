"""MPI-3 one-sided RMA: windows, Put/Get, passive-target synchronization.

Matches the semantics the paper benchmarks against (IMB-RMA ``Unidir_put``):
a passive-target access epoch (``lock``/``lock_all``) with completion via
``flush``.  Puts and gets are one-sided over the conduit — no target CPU —
but carry the Cray-MPICH-like software profile from
:mod:`repro.mpisim.profile`: heavier per-op path than UPC++, an extra
penalty in the 256 B–2 KiB protocol-switch window, and the mid-size
pipeline-efficiency dip that produces the paper's Fig. 3b bandwidth gap.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.gasnet.network import PATH_BTE, PATH_FMA
from repro.mpisim.comm import Communicator


class Win:
    """An RMA window: one allocation per rank, exposed for Put/Get."""

    def __init__(self, comm: Communicator, nbytes: int, offsets: List[int]):
        self.comm = comm
        self.rt = comm.rt
        self.nbytes = nbytes
        #: segment offset of the window on every comm rank
        self.offsets = offsets
        #: outstanding one-sided ops per target comm rank
        self._outstanding = [0] * comm.size
        self._locked: set = set()

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def allocate(cls, comm: Communicator, nbytes: int) -> "Win":
        """Collective window allocation (every comm member must call)."""
        if nbytes <= 0:
            raise ValueError(f"window size must be positive, got {nbytes}")
        rt = comm.rt
        off = rt.conduit.segment(rt.rank).allocate(nbytes)
        offsets = comm.allgather(off)
        return cls(comm, nbytes, offsets)

    def local_view(self, dtype=np.uint8, count: Optional[int] = None) -> np.ndarray:
        """Numpy view of the local window memory."""
        dt = np.dtype(dtype)
        n = count if count is not None else self.nbytes // dt.itemsize
        seg = self.rt.conduit.segment(self.rt.rank)
        return seg.view(self.offsets[self.comm.rank], dt, n)

    # ------------------------------------------------------- synchronization
    def lock(self, target: int) -> None:
        """Begin a passive-target epoch (cheap on RDMA hardware)."""
        self.rt.charge_sw(self.rt.costs.progress_poll)
        self._locked.add(target)

    def unlock(self, target: int) -> None:
        """End the epoch: completes all operations to ``target``."""
        self.flush(target)
        self._locked.discard(target)

    def lock_all(self) -> None:
        self.rt.charge_sw(self.rt.costs.progress_poll)
        self._locked.update(range(self.comm.size))

    def unlock_all(self) -> None:
        self.flush_all()
        self._locked.clear()

    def flush(self, target: int) -> None:
        """Block until all ops this rank issued to ``target`` completed
        (``MPI_Win_flush``).

        The software cost lands *after* completion is detected (queue
        teardown/bookkeeping), i.e. on the caller's critical path — this is
        part of why the paper measures MPI blocking puts slower than UPC++.
        """
        self.rt.wait_until(lambda: self._outstanding[target] == 0, "MPI_Win_flush")
        self.rt.charge_sw(self.rt.costs.flush_sw)

    def flush_all(self) -> None:
        self.rt.wait_until(
            lambda: all(o == 0 for o in self._outstanding), "MPI_Win_flush_all"
        )
        self.rt.charge_sw(self.rt.costs.flush_sw)

    # ------------------------------------------------------------ data motion
    def _check(self, target: int, offset: int, nbytes: int) -> None:
        if not 0 <= target < self.comm.size:
            raise ValueError(f"target {target} out of range")
        if offset < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"window access [{offset}, {offset + nbytes}) outside window of {self.nbytes}B"
            )

    def _path_and_scale(self, nbytes: int):
        costs = self.rt.costs
        path = PATH_FMA if nbytes < costs.bte_threshold else PATH_BTE
        return path, costs.rma_occ_scale(nbytes)

    def put(self, data, target: int, offset: int = 0) -> None:
        """Nonblocking ``MPI_Put``; complete it with ``flush``."""
        rt = self.rt
        if isinstance(data, np.ndarray):
            data = np.ascontiguousarray(data).tobytes()
        else:
            data = bytes(data)
        nbytes = len(data)
        self._check(target, offset, nbytes)
        # The protocol-switch penalty stalls only an idle pipeline (it is a
        # latency-path phenomenon): back-to-back flood puts keep the target
        # queue busy and bypass it, matching IMB aggregate-mode behavior.
        extra = rt.costs.latency_window_extra(nbytes) if self._outstanding[target] == 0 else 0.0
        rt.charge_sw(rt.costs.put_sw + extra)
        path, scale = self._path_and_scale(nbytes)
        self._outstanding[target] += 1
        target_world = self.comm.members[target]
        handle = rt.conduit.put_nb(
            rt.rank,
            target_world,
            self.offsets[target] + offset,
            data,
            path,
            occ_scale=scale,
        )

        def on_done(h):  # network context
            self._outstanding[target] -= 1
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)

    def accumulate(self, data, target: int, offset: int = 0, op: str = "+", dtype=np.float64) -> None:
        """Nonblocking ``MPI_Accumulate``; complete with ``flush``.

        Element-wise ``op`` ('+', 'min', 'max', 'replace') applied at the
        target without target CPU (NIC/async-agent path).  Ordering between
        accumulates to the same window location is the arrival order.
        """
        rt = self.rt
        dt = np.dtype(dtype)
        arr = np.ascontiguousarray(np.asarray(data, dtype=dt))
        self._check(target, offset, arr.nbytes)
        rt.charge_sw(rt.costs.put_sw)
        rt.charge_copy(arr.nbytes)  # accumulate path stages through MPI buffers
        path, scale = self._path_and_scale(arr.nbytes)
        self._outstanding[target] += 1
        target_world = self.comm.members[target]
        handle = rt.conduit.accumulate_nb(
            rt.rank, target_world, self.offsets[target] + offset, arr, dt, op, path, scale
        )

        def on_done(h):  # network context
            self._outstanding[target] -= 1
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)

    def fetch_and_op(self, value, target: int, offset: int = 0, op: str = "fetch_add", dtype=np.int64) -> "_GetResult":
        """``MPI_Fetch_and_op`` on one element; result valid after flush."""
        rt = self.rt
        dt = np.dtype(dtype)
        self._check(target, offset, dt.itemsize)
        rt.charge_sw(rt.costs.put_sw)
        self._outstanding[target] += 1
        result = _GetResult()
        target_world = self.comm.members[target]
        handle = rt.conduit.amo(
            rt.rank, target_world, self.offsets[target] + offset, op, dt, (value,)
        )

        def on_done(h):  # network context
            result.data = np.asarray([h.data], dtype=dt).tobytes()
            self._outstanding[target] -= 1
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)
        return result

    def get(self, target: int, offset: int, nbytes: int) -> "_GetResult":
        """Nonblocking ``MPI_Get``; the result is valid after ``flush``."""
        rt = self.rt
        self._check(target, offset, nbytes)
        rt.charge_sw(rt.costs.put_sw)
        path, scale = self._path_and_scale(nbytes)
        self._outstanding[target] += 1
        result = _GetResult()
        target_world = self.comm.members[target]
        handle = rt.conduit.get_nb(
            rt.rank, target_world, self.offsets[target] + offset, nbytes, path, occ_scale=scale
        )

        def on_done(h):  # network context
            result.data = h.data
            self._outstanding[target] -= 1
            rt.sched.wake(rt.rank, h.time_done)

        handle.on_complete(on_done)
        return result


class _GetResult:
    """Holder for MPI_Get output; populated by the time flush returns."""

    __slots__ = ("data",)

    def __init__(self):
        self.data: Optional[bytes] = None

    def as_array(self, dtype=np.uint8) -> np.ndarray:
        if self.data is None:
            raise RuntimeError("MPI_Get result read before flush")
        return np.frombuffer(self.data, dtype=dtype)
