"""MPI collectives built from point-to-point (the MPICH-style algorithms).

- ``barrier``   — dissemination, ⌈log₂ P⌉ rounds;
- ``bcast``     — binomial tree;
- ``allreduce`` — binomial reduce to root 0 + binomial bcast;
- ``allgather`` — ring, P-1 steps;
- ``alltoallv`` — pairwise exchange, P-1 steps of sendrecv.  Every pair
  exchanges a message **even when empty** — the collective cost that the
  paper's extend-add benchmark exposes at scale (Fig. 8, MPI Alltoallv).

Collective traffic uses a reserved tag space keyed by a per-communicator
epoch so concurrent user messages can never match it.
"""

from __future__ import annotations

from typing import Sequence

#: base of the reserved collective tag space
_COLL_TAG = 1 << 20

_OPS = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


def _epoch(comm) -> int:
    e = getattr(comm, "_coll_epoch", 0)
    comm._coll_epoch = e + 1
    return e


def _tag(epoch: int, step: int = 0) -> int:
    if not 0 <= step < (1 << 16):
        raise ValueError(f"collective step {step} out of tag space")
    return _COLL_TAG + (epoch << 16) + step


def barrier(comm) -> None:
    """Dissemination barrier."""
    rt = comm.rt
    rt.charge_sw(rt.costs.coll_sw)
    n = comm.size
    if n == 1:
        return
    me = comm.rank
    e = _epoch(comm)
    rounds = (n - 1).bit_length()
    for k in range(rounds):
        dst = (me + (1 << k)) % n
        src = (me - (1 << k)) % n
        sreq = comm.isend(None, dst, tag=_tag(e, k))
        rreq = comm.irecv(src, tag=_tag(e, k))
        rt.wait_all([sreq, rreq])


def _bcast_children(vrank: int, n: int) -> list:
    mask = 1
    while mask < n and not (vrank & mask):
        mask <<= 1
    mask >>= 1
    out = []
    while mask > 0:
        if vrank + mask < n:
            out.append(vrank + mask)
        mask >>= 1
    return out


def _bcast_parent(vrank: int) -> int:
    return vrank & (vrank - 1)


def bcast(comm, obj, root: int = 0):
    """Binomial-tree broadcast; returns the object on every rank."""
    rt = comm.rt
    rt.charge_sw(rt.costs.coll_sw)
    n = comm.size
    if n == 1:
        return obj
    me = comm.rank
    e = _epoch(comm)
    v = (me - root) % n
    if v != 0:
        parent = (_bcast_parent(v) + root) % n
        obj = comm.recv(parent, tag=_tag(e))
    reqs = []
    for child_v in _bcast_children(v, n):
        child = (child_v + root) % n
        reqs.append(comm.isend(obj, child, tag=_tag(e)))
    rt.wait_all(reqs)
    return obj


def _reduce_to_root(comm, value, opf, root: int, e: int):
    rt = comm.rt
    n = comm.size
    me = comm.rank
    v = (me - root) % n
    children = _bcast_children(v, n)
    acc = value
    # children report in ascending virtual rank for deterministic combines
    for child_v in sorted(children):
        child = (child_v + root) % n
        contrib = comm.recv(child, tag=_tag(e, 1))
        acc = opf(acc, contrib)
    if v != 0:
        parent = (_bcast_parent(v) + root) % n
        comm.send(acc, parent, tag=_tag(e, 1))
        return None
    return acc


def allreduce(comm, value, op: str = "+"):
    """Reduce to rank 0, then broadcast the result."""
    rt = comm.rt
    rt.charge_sw(rt.costs.coll_sw)
    opf = _OPS[op] if not callable(op) else op
    if comm.size == 1:
        return value
    e = _epoch(comm)
    acc = _reduce_to_root(comm, value, opf, 0, e)
    return bcast(comm, acc, root=0)


def allgather(comm, value) -> list:
    """Ring allgather: P-1 steps, each forwarding the growing window."""
    rt = comm.rt
    rt.charge_sw(rt.costs.coll_sw)
    n = comm.size
    me = comm.rank
    out = [None] * n
    out[me] = value
    if n == 1:
        return out
    e = _epoch(comm)
    right = (me + 1) % n
    left = (me - 1) % n
    carry = (me, value)
    for step in range(n - 1):
        sreq = comm.isend(carry, right, tag=_tag(e, step))
        rreq = comm.irecv(left, tag=_tag(e, step))
        rt.wait_all([sreq, rreq])
        carry = rreq.value
        out[carry[0]] = carry[1]
    return out


def alltoallv(comm, send_objs: Sequence) -> list:
    """Alltoallv, MPICH-style for sparse/moderate sizes: nonblocking
    isend/irecv to every peer, then one waitall.

    Counts and displacements are part of the interface, so receives match
    by exact (source, tag) — no wildcard scans — but **every pair**
    exchanges a message even when the payload is empty, and each call pays
    Θ(P) setup: the collective couples the whole communicator, which is
    what loses to sparse one-sided RPC at scale (paper Fig. 8).
    """
    rt = comm.rt
    n = comm.size
    me = comm.rank
    if len(send_objs) != n:
        raise ValueError(f"alltoallv needs {n} send objects, got {len(send_objs)}")
    rt.charge_sw(rt.costs.coll_sw + rt.costs.alltoallv_per_peer * n)
    out = [None] * n
    out[me] = send_objs[me]  # self-exchange is a local copy
    e = _epoch(comm)
    reqs = []
    recvs = []
    for step in range(1, n):
        dst = (me + step) % n
        src = (me - step) % n
        reqs.append(comm.isend(send_objs[dst], dst, tag=_tag(e, step)))
        rreq = comm.irecv(src, tag=_tag(e, step))
        reqs.append(rreq)
        recvs.append((src, rreq))
    rt.wait_all(reqs)
    for src, rreq in recvs:
        out[src] = rreq.value
    return out
