"""Fig. 8 (left) — extend-add strong scaling on simulated Cori Haswell.

Paper claims asserted (§IV-D-3):
- all three variants are comparable at 1 process (same computation, same
  data volume; no network);
- all variants strong-scale (time decreases with process count) over the
  initial range;
- at scale, UPC++ RPC is the fastest; the MPI variants trail it by
  factors in the paper's reported range (1.63x for Alltoallv, 3.11x for
  P2P at 2048 procs — our sweep stops at 128, where the collective's
  whole-team coupling already shows while the P2P wildcard-matching
  quadratic is still growing; see EXPERIMENTS.md).
"""

from repro.bench.eadd_bench import FIG8_PROCS, run_fig8, speedup_at_scale
from repro.bench.harness import save_table


def test_fig8_eadd_strong_scaling_haswell(run_once):
    table = run_once(lambda: run_fig8(platform="haswell"))
    top = FIG8_PROCS[-1]
    sp = speedup_at_scale(table, top)
    extra = (
        f"UPC++ speedup at {top} procs: {sp['vs_alltoallv']:.2f}x vs Alltoallv, "
        f"{sp['vs_p2p']:.2f}x vs P2P"
    )
    text = save_table(table, "fig8_eadd_haswell", y_fmt=lambda y: f"{y * 1e3:.3f}ms", extra=extra)
    print("\n" + text)

    a2a = table.get("MPI Alltoallv")
    p2p = table.get("MPI P2P")
    upcxx = table.get("UPC++ RPC")

    # 1 process: comparable (within 10%)
    base = [s.y_at(1) for s in (a2a, p2p, upcxx)]
    assert max(base) / min(base) < 1.10

    # strong scaling: each variant speeds up substantially from 1 -> 16
    for s in (a2a, p2p, upcxx):
        assert s.y_at(16) < s.y_at(1) / 6

    # at scale, UPC++ is fastest and the gaps are material
    assert upcxx.y_at(top) < p2p.y_at(top)
    assert upcxx.y_at(top) < a2a.y_at(top)
    assert sp["vs_alltoallv"] > 1.5, f"Alltoallv gap too small: {sp}"
    assert sp["vs_p2p"] > 1.15, f"P2P gap too small: {sp}"

    # the Alltoallv whole-team coupling worsens with scale
    assert a2a.y_at(top) / upcxx.y_at(top) > a2a.y_at(16) / upcxx.y_at(16)
