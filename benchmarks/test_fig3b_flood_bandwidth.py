"""Fig. 3b — flood put bandwidth: UPC++ rput (promise cx) vs MPI RMA.

Paper claims asserted (§IV-B):
- bandwidths comparable for small and large sizes;
- UPC++ ahead between 1 KiB and 256 KiB;
- the difference is most pronounced at 8 KiB, where UPC++ delivers over
  33% more bandwidth.
"""

from repro.bench.harness import save_table, size_fmt
from repro.bench.microbench import FIG3_SIZES, run_fig3b
from repro.util.units import KiB, MiB


def test_fig3b_flood_bandwidth(run_once):
    table = run_once(lambda: run_fig3b())
    text = save_table(table, "fig3b_flood_bandwidth", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.3f}")
    print("\n" + text)

    upcxx = table.get("UPC++ rput")
    mpi = table.get("MPI RMA Put")

    def ratio(s):
        return upcxx.y_at(s) / mpi.y_at(s)

    # comparable at the extremes (within ~15%)
    for s in (8, 32, 128):
        assert ratio(s) < 1.15, f"small sizes should be comparable, got {ratio(s):.2f} at {s}B"
    for s in (1 * MiB, 4 * MiB):
        assert ratio(s) < 1.05, f"large sizes should be comparable, got {ratio(s):.2f}"

    # UPC++ ahead in the mid range
    for s in (4 * KiB, 8 * KiB, 16 * KiB, 64 * KiB):
        assert ratio(s) > 1.10, f"mid-size advantage missing at {s}B"

    # most pronounced at 8 KiB, over 33%
    r8k = ratio(8 * KiB)
    assert r8k > 1.33, f"8KiB gap should exceed 33%, got {(r8k - 1) * 100:.1f}%"
    for s in FIG3_SIZES:
        if s != 8 * KiB:
            assert ratio(s) <= r8k + 1e-9, f"gap at {s}B exceeds the 8KiB peak"

    # bandwidth is monotone nondecreasing in size for both stacks
    for series in (upcxx, mpi):
        for a, b in zip(series.ys, series.ys[1:]):
            assert b >= a * 0.98
