"""Fig. 8 (right) — extend-add strong scaling on simulated Cori KNL.

Same sweep with the KNL model (64 ranks/node, slower serial core).  The
paper's right panel shows the same ordering with higher absolute times —
both asserted here.
"""

from repro.bench.eadd_bench import FIG8_PROCS, eadd_times, run_fig8, speedup_at_scale
from repro.bench.harness import save_table


def test_fig8_eadd_strong_scaling_knl(run_once):
    table = run_once(lambda: run_fig8(platform="knl"))
    top = FIG8_PROCS[-1]
    sp = speedup_at_scale(table, top)
    extra = (
        f"UPC++ speedup at {top} procs: {sp['vs_alltoallv']:.2f}x vs Alltoallv, "
        f"{sp['vs_p2p']:.2f}x vs P2P"
    )
    text = save_table(table, "fig8_eadd_knl", y_fmt=lambda y: f"{y * 1e3:.3f}ms", extra=extra)
    print("\n" + text)

    upcxx = table.get("UPC++ RPC")
    assert upcxx.y_at(top) < table.get("MPI P2P").y_at(top)
    assert upcxx.y_at(top) < table.get("MPI Alltoallv").y_at(top)
    assert sp["vs_alltoallv"] > 1.4


def test_knl_slower_than_haswell_absolute(run_once):
    knl, haswell = run_once(
        lambda: (eadd_times(16, platform="knl"), eadd_times(16, platform="haswell"))
    )
    for variant in knl:
        assert knl[variant] > haswell[variant]
