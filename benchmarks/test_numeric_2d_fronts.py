"""Benchmark — team-parallel (2-D block-cyclic) front factorization.

symPACK/STRUMPACK-class solvers parallelize *within* fronts, not only
across the tree.  On a single large dense front (the regime where flops
~n³ dominate panel traffic ~n²) the 2-D kernel must beat the lead-only
factorization and keep improving with team size; answers stay verified
against scipy throughout.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro.upcxx as upcxx
from repro.apps.sparse.numeric import build_cholesky_plan, factor_and_solve
from repro.apps.sparse.numeric2d import build_cholesky_2d_plan, factor_and_solve_2d
from repro.bench.harness import save_table
from repro.util.records import BenchTable

GRID = (8, 8, 8)  # one dense 512-column front (leaf_size > n)
LEAF = 10_000
PROCS = [1, 2, 4, 8]


def _run(runner, plan, b, n_procs):
    out = {}

    def body():
        upcxx.barrier()
        t0 = upcxx.sim_now()
        x = runner(plan, b)
        upcxx.barrier()
        out["t"] = upcxx.sim_now() - t0
        out["x"] = x

    upcxx.run_spmd(body, n_procs, max_time=1e7)
    return out["t"], out["x"]


def test_2d_front_factorization_scaling(run_once):
    def sweep():
        table = BenchTable(
            title="Dense 512-col front: lead-only vs 2-D team-parallel factorization",
            x_name="processes",
            y_name="time (ms)",
        )
        s_lead = table.new_series("lead-only")
        s_2d = table.new_series("2-D block-cyclic")
        rng = np.random.default_rng(23)
        checks = []
        for p in PROCS:
            b = rng.standard_normal(512)
            plan1 = build_cholesky_plan(*GRID, n_procs=p, leaf_size=LEAF)
            t1, x1 = _run(factor_and_solve, plan1, b, p)
            plan2 = build_cholesky_2d_plan(*GRID, n_procs=p, leaf_size=LEAF, block=64)
            t2, x2 = _run(factor_and_solve_2d, plan2, b, p)
            s_lead.add(p, t1 * 1e3)
            s_2d.add(p, t2 * 1e3)
            checks.append((plan1.a, b, x1, x2))
        table.meta = checks  # type: ignore[attr-defined]
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "numeric_2d_fronts", y_fmt=lambda y: f"{y:.3f}"))

    for a, b, x1, x2 in table.meta:  # type: ignore[attr-defined]
        ref = spla.spsolve(sp.csc_matrix(a), b)
        assert np.allclose(x1, ref, atol=1e-7)
        assert np.allclose(x2, ref, atol=1e-7)

    lead = table.get("lead-only")
    two_d = table.get("2-D block-cyclic")
    # lead-only cannot use extra ranks on a single front
    assert lead.y_at(8) > lead.y_at(1) * 0.9
    # the 2-D kernel scales the dense factorization
    assert two_d.y_at(8) < two_d.y_at(1) / 2.5
    assert two_d.y_at(8) < lead.y_at(8) / 2.5
