"""Ablation — attentiveness: progress frequency in the flood loop.

The paper's flood listing calls ``upcxx::progress()`` every 10 injections
"to amortize the cost of progress while keeping completion processing off
the critical path".  This ablation sweeps the interval: too frequent wastes
CPU per injection; the cost is small either way because compQ work is
cheap — but a target rank that never progresses stalls *incoming* RPCs
indefinitely (the attentiveness hazard of §III), which is also asserted.
"""

import numpy as np

import repro.upcxx as upcxx
from repro.bench.harness import save_table
from repro.util.records import BenchTable


def _flood_bw(progress_every: int, size: int = 1024, iters: int = 200) -> float:
    out = {}

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, size)
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            payload = bytes(size)
            p = upcxx.Promise()
            t0 = upcxx.sim_now()
            for i in range(iters):
                upcxx.rput(payload, dest, cx=upcxx.operation_cx.as_promise(p))
                if progress_every and not (i % progress_every):
                    upcxx.progress()
            p.finalize().wait()
            out["bw"] = size * iters / (upcxx.sim_now() - t0)
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1, segment_size=8 * 1024 * 1024)
    return out["bw"]


def test_progress_interval_sweep(run_once):
    def sweep():
        table = BenchTable(
            title="Ablation: flood bandwidth vs progress interval (1KiB puts)",
            x_name="progress every N injections",
            y_name="GiB/s",
        )
        s = table.new_series("UPC++ flood")
        for k in [1, 2, 10, 50, 0]:  # 0 = only at the final wait
            s.add(k if k else "end-only", _flood_bw(k) / float(1 << 30))
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "ablation_progress", y_fmt=lambda y: f"{y:.3f}"))
    s = table.get("UPC++ flood")
    # progressing every injection costs measurable bandwidth vs every 10
    assert s.y_at(10) > s.y_at(1)
    # deferring all completion processing to the end is fine for puts
    # (NIC offload completes them without initiator attentiveness)
    assert s.y_at("end-only") >= s.y_at(10) * 0.95


def test_inattentive_target_stalls_rpc(run_once):
    """The §III hazard: incoming RPCs wait for the target's user progress."""
    stall = {}

    def body():
        me = upcxx.rank_me()
        upcxx.barrier()
        if me == 0:
            t0 = upcxx.sim_now()
            upcxx.rpc(1, lambda: None).wait()
            stall["rtt"] = upcxx.sim_now() - t0
        else:
            upcxx.compute(500e-6)  # long computation, no progress
            upcxx.progress()
        upcxx.barrier()

    run_once(lambda: upcxx.run_spmd(body, 2, ppn=1))
    assert stall["rtt"] > 400e-6  # dominated by the target's inattentiveness
