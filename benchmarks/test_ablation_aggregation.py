"""Ablation — update aggregation (the HipMer trick behind the paper's DHT
motivation [13]).

The paper's DHT benchmark deliberately blocks per insert to expose
latency; production latency-bound codes batch updates per destination.
Sweeping the batch size shows the throughput curve: per-message software
costs amortize until payload serialization becomes the bottleneck.
"""

import repro.upcxx as upcxx
from repro.apps.dht import AggregatingCounter
from repro.bench.harness import save_table
from repro.util.records import BenchTable

N_PROCS = 8
UPDATES_PER_RANK = 384
BATCHES = [1, 4, 16, 64, 256]


def _throughput(batch: int) -> float:
    out = {}

    def body():
        counter = AggregatingCounter(batch_size=batch)
        upcxx.barrier()
        rng = upcxx.runtime_here().rng.spawn("agg-bench")
        t0 = upcxx.sim_now()
        for _ in range(UPDATES_PER_RANK):
            counter.add(rng.key64() % 4096)
        counter.sync()
        upcxx.barrier()
        out["t"] = upcxx.sim_now() - t0

    upcxx.run_spmd(body, N_PROCS)
    return N_PROCS * UPDATES_PER_RANK / out["t"]


def test_aggregation_sweep(run_once):
    def sweep():
        table = BenchTable(
            title=f"Ablation: DHT update aggregation ({N_PROCS} procs, {UPDATES_PER_RANK} updates/rank)",
            x_name="batch size",
            y_name="updates/s (millions)",
        )
        s = table.new_series("aggregated updates")
        for b in BATCHES:
            s.add(b, _throughput(b) / 1e6)
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "ablation_aggregation", y_fmt=lambda y: f"{y:.3f}"))

    s = table.get("aggregated updates")
    # each early doubling of the batch pays off
    assert s.y_at(4) > s.y_at(1) * 1.5
    assert s.y_at(16) > s.y_at(4) * 1.2
    # diminishing returns at large batches (serialization-bound plateau)
    assert s.y_at(256) < s.y_at(64) * 1.5
    # monotone nondecreasing across the sweep
    for a, b in zip(s.ys, s.ys[1:]):
        assert b >= a * 0.95
