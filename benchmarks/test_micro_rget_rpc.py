"""Companion microbenchmarks — rget and RPC latency next to rput.

Not a figure in the paper, but the natural completion of its §IV-B
methodology (the paper's DHT analysis §IV-C depends on the RPC round trip
being a couple of times the rput round trip — asserted here).
"""

from repro.bench.harness import save_table, size_fmt
from repro.bench.microbench import run_micro_companions


def test_micro_rget_rpc_latency(run_once):
    table = run_once(lambda: run_micro_companions())
    print("\n" + save_table(table, "micro_rget_rpc", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.3f}us"))

    put = table.get("rput")
    get = table.get("rget")
    rpc = table.get("rpc (view payload)")

    for s in put.xs:
        # a get pays the request leg before data can flow: never faster
        # than the put at the same size
        assert get.y_at(s) >= put.y_at(s) * 0.98
        # an RPC adds injection + dispatch + reply software on top of the
        # wire round trip: strictly slower than both RMA primitives
        assert rpc.y_at(s) > put.y_at(s)
        assert rpc.y_at(s) > get.y_at(s) * 0.98

    # small-message RPC round trip lands in the few-microsecond range the
    # paper's DHT latency analysis presumes
    assert 2.0 < rpc.y_at(8) < 10.0
