"""Ablation (§V-A) — the DHT insert under v0.1 vs v1.0 asynchrony.

The paper argues the predecessor's insert "incurs both a blocking remote
allocation and a blocking RMA, which negatively impact latency and overlap
potential", while v1.0's future-chained insert is "simpler, streamlined,
and fully asynchronous".  This ablation measures both effects:

- single-insert latency: v0.1 pays two-and-a-half blocking round trips
  (alloc RTT, put RTT, registration ack) vs v1.0's chained RPC + rput;
- overlap: a batch of N pipelined v1.0 inserts (conjoined futures) vs N
  serialized v0.1 inserts.
"""

import numpy as np

import repro.upcxx as upcxx
from repro.apps.dht import DhtRmaLz
from repro.bench.harness import save_table
from repro.upcxx_v01 import Event, allocate_remote, async_task
from repro.util.records import BenchTable


def _v01_register(dmap: upcxx.DistObject, key: int, gptr, length: int) -> None:
    rt = upcxx.current_runtime()
    rt.charge_sw(rt.cpu.map_insert)
    dmap.value[key] = (gptr, length)


def _v01_insert_blocking(dmap: upcxx.DistObject, target: int, key: int, val: bytes) -> None:
    """The §V-A workflow: blocking remote alloc, blocking RMA, async+event."""
    dest = allocate_remote(target, len(val))  # blocking round trip
    upcxx.rput(val, dest).wait()  # blocking RMA
    ev = Event()
    async_task(target, _v01_register, dmap, key, dest, len(val), ack=ev)
    ev.wait()


def _measure(n_inserts: int, vsize: int, pipelined_v1: bool) -> dict:
    out = {}

    def body():
        me = upcxx.rank_me()
        dht = DhtRmaLz()
        v01_map = upcxx.DistObject({})
        upcxx.barrier()
        val = bytes(vsize)
        if me == 0:
            # keys owned by rank 1 (force the remote path)
            keys = [k for k in range(10_000) if dht.target_of(k) == 1][:n_inserts]

            t0 = upcxx.sim_now()
            if pipelined_v1:
                upcxx.when_all(*[dht.insert(k, val) for k in keys]).wait()
            else:
                for k in keys:
                    dht.insert(k, val).wait()
            out["v1"] = upcxx.sim_now() - t0

            t0 = upcxx.sim_now()
            for k in keys:
                _v01_insert_blocking(v01_map, 1, k + 100_000, val)
            out["v01"] = upcxx.sim_now() - t0
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1)
    return out


def test_v01_insert_latency_worse(run_once):
    res = run_once(lambda: _measure(n_inserts=20, vsize=1024, pipelined_v1=False))
    table = BenchTable(title="Ablation: DHT insert, v0.1 vs v1.0", x_name="variant", y_name="us/insert")
    s = table.new_series("blocking inserts")
    s.add("v1.0 chained", res["v1"] / 20 * 1e6)
    s.add("v0.1 blocking", res["v01"] / 20 * 1e6)
    print("\n" + save_table(table, "ablation_v01_dht_latency", y_fmt=lambda y: f"{y:.2f}"))
    # v0.1 must be noticeably slower even one-at-a-time (extra blocking alloc RTT)
    assert res["v01"] > res["v1"] * 1.2


def test_v01_insert_no_overlap(run_once):
    res = run_once(lambda: _measure(n_inserts=32, vsize=1024, pipelined_v1=True))
    # pipelined v1.0 inserts overlap their round trips; v0.1 cannot
    assert res["v01"] > res["v1"] * 2.5
