"""Benchmark — the *numeric* distributed multifrontal Cholesky.

Beyond the paper's timed skeleton (Fig. 9), this factors a real SPD system
and solves it, verifying the answer against scipy while measuring strong
scaling of the tree-parallel factorization.  Tree parallelism alone cannot
scale past the (serialized) top separators — Amdahl along the root path —
so the expected shape is: good speedup at small P, saturating beyond;
the assertion encodes exactly that.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

import repro.upcxx as upcxx
from repro.apps.sparse.numeric import build_cholesky_plan, factor_and_solve
from repro.bench.harness import save_table
from repro.util.records import BenchTable

GRID = (8, 8, 6)
PROCS = [1, 2, 4, 8]


def _factor_time(n_procs: int, plan, b) -> float:
    times = {}

    def body():
        upcxx.barrier()
        t0 = upcxx.sim_now()
        x = factor_and_solve(plan, b)
        upcxx.barrier()
        if upcxx.rank_me() == 0:
            times["t"] = upcxx.sim_now() - t0
            times["x"] = x

    upcxx.run_spmd(body, n_procs, max_time=1e7)
    return times["t"], times["x"]


def test_numeric_cholesky_scaling(run_once):
    def sweep():
        table = BenchTable(
            title="Numeric multifrontal Cholesky: factor+solve strong scaling",
            x_name="processes",
            y_name="time (ms)",
        )
        s = table.new_series("factor+solve")
        rng = np.random.default_rng(11)
        ref = {}
        for p in PROCS:
            plan = build_cholesky_plan(*GRID, n_procs=p, leaf_size=16)
            b = rng.standard_normal(plan.n)
            t, x = _factor_time(p, plan, b)
            s.add(p, t * 1e3)
            ref[p] = (plan, b, x)
        table.meta = ref  # type: ignore[attr-defined]
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "numeric_cholesky", y_fmt=lambda y: f"{y:.3f}"))

    # numerical correctness at every scale
    for p, (plan, b, x) in table.meta.items():  # type: ignore[attr-defined]
        expect = spla.spsolve(sp.csc_matrix(plan.a), b)
        assert np.allclose(x, expect, atol=1e-7), f"wrong answer at P={p}"

    s = table.get("factor+solve")
    # tree parallelism helps at small scale...
    assert s.y_at(2) < s.y_at(1)
    assert s.y_at(4) < s.y_at(2)
    # ...but saturates along the serialized root path (Amdahl)
    assert s.y_at(8) > s.y_at(1) / 8
