"""Ablation — memory kinds: the paper's §VI future work, measured.

``upcxx::copy`` between host and device memories across ranks.  The
device path stages through a PCIe-class link, so device-touching copies
pay extra latency and are capped by the staging bandwidth; host-host
copies ride the NIC alone.  This is the experiment the paper promises
("express transfers to and from other memories such as that of GPUs").
"""

import numpy as np

import repro.upcxx as upcxx
from repro.bench.harness import save_table, size_fmt
from repro.util.records import BenchTable
from repro.util.units import KiB, MiB

SIZES = [1 * KiB, 16 * KiB, 256 * KiB, 2 * MiB]


def _copy_time(src_kind: str, dst_kind: str, nbytes: int, iters: int = 8) -> float:
    out = {}
    n = nbytes // 8

    def body():
        me = upcxx.rank_me()
        dev = upcxx.Device(segment_size=max(64 * MiB, 4 * nbytes))
        host = upcxx.new_array(np.float64, n)
        devp = dev.allocate(np.float64, n)
        hosts = [upcxx.broadcast(host, root=r).wait() for r in range(2)]
        devs = [upcxx.broadcast(devp, root=r).wait() for r in range(2)]
        upcxx.barrier()
        if me == 0:
            src = hosts[0] if src_kind == "host" else devs[0]
            dst = hosts[1] if dst_kind == "host" else devs[1]
            upcxx.copy(src, dst).wait()  # warm-up
            t0 = upcxx.sim_now()
            for _ in range(iters):
                upcxx.copy(src, dst).wait()
            out["t"] = (upcxx.sim_now() - t0) / iters
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1, segment_size=max(64 * MiB, 4 * nbytes))
    return out["t"]


def test_memory_kinds_bandwidth(run_once):
    def sweep():
        table = BenchTable(
            title="Ablation: upcxx::copy bandwidth by memory kinds (rank 0 -> rank 1)",
            x_name="size",
            y_name="GiB/s",
        )
        for src_kind, dst_kind in [("host", "host"), ("host", "device"), ("device", "device")]:
            s = table.new_series(f"{src_kind}->{dst_kind}")
            for nbytes in SIZES:
                t = _copy_time(src_kind, dst_kind, nbytes)
                s.add(nbytes, nbytes / t / float(1 << 30))
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "ablation_memory_kinds", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.3f}"))

    hh = table.get("host->host")
    hd = table.get("host->device")
    dd = table.get("device->device")
    for s in SIZES:
        # any device endpoint costs bandwidth vs pure host
        assert hd.y_at(s) < hh.y_at(s)
        # two PCIe crossings cost more than one
        assert dd.y_at(s) <= hd.y_at(s) * 1.02
    # large copies approach the PCIe bandwidth cap when a device is involved
    top = SIZES[-1]
    assert hd.y_at(top) < 12.5  # pcie_bw = 12 GiB/s
    assert hh.y_at(top) > hd.y_at(top) * 0.8  # host path is NIC-bound (~10 GiB/s)
