"""Ablation — the FMA->BTE protocol-switch threshold (DESIGN.md §4).

GASNet-EX's tuned, low switch point is one source of the paper's Fig. 3b
mid-size bandwidth advantage.  Sweeping the UPC++ runtime's threshold
shows the design space: switching too late leaves mid-size transfers on
the CPU-driven FMA path (lower bandwidth); switching too early puts tiny
transfers on the DMA engine (startup-dominated).
"""

import numpy as np

import repro.upcxx as upcxx
from repro.bench.harness import save_table, size_fmt
from repro.upcxx.costs import UpcxxCosts
from repro.util.records import BenchTable
from repro.util.units import KiB, MiB


def _flood_bw(threshold: int, size: int, iters: int = 60) -> float:
    out = {}
    costs = UpcxxCosts(bte_threshold=threshold)

    def body():
        me = upcxx.rank_me()
        landing = upcxx.new_array(np.uint8, size)
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            payload = bytes(size)
            p = upcxx.Promise()
            t0 = upcxx.sim_now()
            for i in range(iters):
                upcxx.rput(payload, dest, cx=upcxx.operation_cx.as_promise(p))
                if not (i % 10):
                    upcxx.progress()
            p.finalize().wait()
            out["bw"] = size * iters / (upcxx.sim_now() - t0)
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1, costs=costs, segment_size=64 * MiB)
    return out["bw"]


def test_bte_threshold_sweep(run_once):
    def sweep():
        table = BenchTable(
            title="Ablation: flood bandwidth vs FMA->BTE switch threshold",
            x_name="transfer size",
            y_name="GiB/s",
        )
        for threshold, label in [(1 * KiB, "switch@1KiB"), (4 * KiB, "switch@4KiB (default)"), (64 * KiB, "switch@64KiB")]:
            s = table.new_series(label)
            for size in [2 * KiB, 8 * KiB, 32 * KiB, 256 * KiB]:
                s.add(size, _flood_bw(threshold, size) / float(1 << 30))
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "ablation_bte_threshold", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.3f}"))

    # a late switch (64KiB) strands 8-32KiB transfers on the FMA path
    late = table.get("switch@64KiB")
    default = table.get("switch@4KiB (default)")
    assert default.y_at(8 * KiB) > late.y_at(8 * KiB) * 1.15
    assert default.y_at(32 * KiB) > late.y_at(32 * KiB) * 1.15
    # all choices converge for large transfers
    assert abs(default.y_at(256 * KiB) - late.y_at(256 * KiB)) / default.y_at(256 * KiB) < 0.05
