"""Ablation — NIC-offloaded remote atomics vs RPC-emulated atomics (§II).

The paper: "on network hardware with appropriate capabilities (such as
available in Cray Aries) remote atomic updates can also be offloaded,
improving latency and scalability".  The offloaded atomic applies at the
target NIC with no target CPU; the RPC emulation needs the target to be
attentive and pays the RPC software path.  A hot shared counter shows
both effects.
"""

import numpy as np

import repro.upcxx as upcxx
from repro.bench.harness import save_table
from repro.util.records import BenchTable

N_INCS = 40


def _counter_value_fn(dobj):
    dobj.value["n"] += 1
    return dobj.value["n"]


def _time_offloaded() -> float:
    out = {}

    def body():
        me = upcxx.rank_me()
        ad = upcxx.AtomicDomain(["fetch_add"], np.int64)
        g = upcxx.new_array(np.int64, 1)
        g.local()[0] = 0
        counter = upcxx.broadcast(g, root=1).wait()
        upcxx.barrier()
        if me == 0:
            t0 = upcxx.sim_now()
            for _ in range(N_INCS):
                ad.fetch_add(counter, 1).wait()
            out["t"] = upcxx.sim_now() - t0
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1)
    return out["t"]


def _time_rpc_emulated() -> float:
    out = {}

    def body():
        me = upcxx.rank_me()
        dobj = upcxx.DistObject({"n": 0})
        upcxx.barrier()
        if me == 0:
            t0 = upcxx.sim_now()
            for _ in range(N_INCS):
                upcxx.rpc(1, _counter_value_fn, dobj).wait()
            out["t"] = upcxx.sim_now() - t0
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1)
    return out["t"]


def test_offloaded_atomics_beat_rpc_counter(run_once):
    def sweep():
        table = BenchTable(
            title="Ablation: remote counter increment, NIC atomic vs RPC",
            x_name="mechanism",
            y_name="us/op",
        )
        s = table.new_series("fetch_add")
        s.add("NIC-offloaded", _time_offloaded() / N_INCS * 1e6)
        s.add("RPC-emulated", _time_rpc_emulated() / N_INCS * 1e6)
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "ablation_atomics", y_fmt=lambda y: f"{y:.2f}"))
    s = table.get("fetch_add")
    # the offloaded atomic must be clearly faster per op
    assert s.y_at("NIC-offloaded") < s.y_at("RPC-emulated") * 0.8


def test_offloaded_atomics_progress_free(run_once):
    """Atomics land while the target computes without progress (scalability:
    a hot counter does not require its owner's CPU)."""
    out = {}

    def body():
        me = upcxx.rank_me()
        ad = upcxx.AtomicDomain(["fetch_add", "load"], np.int64)
        g = upcxx.new_array(np.int64, 1)
        g.local()[0] = 0
        counter = upcxx.broadcast(g, root=1).wait()
        upcxx.barrier()
        if me == 0:
            t0 = upcxx.sim_now()
            for _ in range(10):
                ad.fetch_add(counter, 1).wait()
            out["t"] = upcxx.sim_now() - t0
        else:
            upcxx.compute(300e-6)  # inattentive owner
        upcxx.barrier()

    run_once(lambda: upcxx.run_spmd(body, 2, ppn=1))
    # completes at wire speed despite the owner's inattentiveness
    assert out["t"] < 100e-6
