"""Fig. 9 — symPACK strong scaling: UPC++ v0.1 vs v1.0.

Paper claims asserted (§IV-D-4):
- the two implementations perform nearly identically (the paper reports a
  0.7% average difference and up to 7.2% advantage for v1.0; our proxy
  lands in the same band);
- the v1.0 port incurs no measurable added overhead (v1.0 never slower);
- both strong-scale robustly over the sweep.
"""

from repro.bench.harness import save_table
from repro.bench.sympack_bench import FIG9_PROCS, average_difference, run_fig9


def test_fig9_sympack_v01_vs_v10(run_once):
    table = run_once(lambda: run_fig9(platform="haswell"))
    avg = average_difference(table)
    extra = f"average |v1.0 - v0.1| / v0.1 across job sizes: {avg * 100:.2f}%"
    text = save_table(table, "fig9_sympack", y_fmt=lambda y: f"{y * 1e3:.3f}ms", extra=extra)
    print("\n" + text)

    v01 = table.get("UPC++ v0.1")
    v1 = table.get("UPC++ v1.0")

    # nearly identical across all job sizes
    assert avg < 0.10, f"versions diverged: {avg * 100:.1f}% average difference"
    for p in FIG9_PROCS:
        assert abs(v1.y_at(p) - v01.y_at(p)) / v01.y_at(p) < 0.15

    # the new framework adds no measurable overhead (never slower)
    for p in FIG9_PROCS:
        assert v1.y_at(p) <= v01.y_at(p) * 1.01

    # robust strong scaling for both versions
    first, last = FIG9_PROCS[0], FIG9_PROCS[-1]
    ideal = last / first
    for s in (v01, v1):
        speedup = s.y_at(first) / s.y_at(last)
        assert speedup > 0.6 * ideal, f"poor strong scaling: {speedup:.1f}x of {ideal}x"
