"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures inside the
deterministic simulator.  pytest-benchmark measures the *wall-clock* cost
of running the simulation (useful for tracking harness performance); the
scientific output — the simulated-time series matching the paper's figure
— is printed, written under ``results/``, and attached to
``benchmark.extra_info``.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a table-producing callable exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
