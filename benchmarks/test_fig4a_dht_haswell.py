"""Fig. 4a — DHT insert weak scaling on simulated Cori Haswell.

Paper claims asserted (§IV-C):
- an initial decline from one to two processes (serial -> parallel);
- efficient (near-linear) weak scaling beyond two processes.

Scale note: the paper runs to 16 384 processes; the simulated sweep stops
at 128 (DESIGN.md §2) but spans the same serial -> multi-node transitions,
including the slope change at the one-node boundary (32 ranks/node).
"""

from repro.bench.dht_bench import FIG4_PROCS, FIG4_VALUE_SIZES, efficiency, run_fig4
from repro.bench.harness import save_table


def test_fig4a_dht_weak_scaling_haswell(run_once):
    table = run_once(lambda: run_fig4(platform="haswell"))
    text = save_table(table, "fig4a_dht_haswell", y_fmt=lambda y: f"{y:.1f}")
    print("\n" + text)

    for vs in FIG4_VALUE_SIZES:
        s = table.get(f"{vs}B values")
        # initial decline from 1 -> 2 processes
        assert s.y_at(2) < s.y_at(1), f"{vs}B: expected serial->parallel drop"
        # beyond 2 processes, aggregate throughput grows with every doubling
        pts = [p for p in FIG4_PROCS if p >= 2]
        for a, b in zip(pts, pts[1:]):
            assert s.y_at(b) > s.y_at(a) * 1.4, f"{vs}B: poor scaling {a}->{b}"
        # weak-scaling efficiency vs the 2-proc point stays healthy.  (The
        # 2-proc baseline is flattered by same-rank/same-node traffic; the
        # inter-node fraction keeps rising until several nodes are full,
        # so efficiency settles rather than collapses.)
        eff = efficiency(table, f"{vs}B values", base_procs=2)
        assert min(eff.values()) > 0.4, f"{vs}B: efficiency collapsed: {eff}"
        # and the last doubling still scales well
        last, prev = FIG4_PROCS[-1], FIG4_PROCS[-2]
        assert s.y_at(last) / s.y_at(prev) > 1.6

    # larger values achieve higher aggregate byte throughput
    top = FIG4_PROCS[-1]
    rates = [table.get(f"{vs}B values").y_at(top) for vs in FIG4_VALUE_SIZES]
    assert rates == sorted(rates)
