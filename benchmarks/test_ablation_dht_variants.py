"""Ablation — RPC-only DHT vs the RMA landing-zone DHT (§IV-C).

The paper introduces the landing-zone design to "improve the performance
for larger value sizes by taking advantage of the zero-copy RMA".  This
ablation sweeps the value size: for small values the single-round-trip
RPC-only insert wins; past a crossover the two-step RPC+rput insert wins
because the value bytes skip both serialization copies.
"""

import repro.upcxx as upcxx
from repro.apps.dht import DhtRmaLz, DhtRpcOnly
from repro.bench.harness import save_table, size_fmt
from repro.util.records import BenchTable
from repro.util.units import KiB

SIZES = [64, 512, 4 * KiB, 32 * KiB, 256 * KiB]
N_INSERTS = 12


def _insert_time(cls, vsize: int) -> float:
    out = {}

    def body():
        dht = cls()
        upcxx.barrier()
        if upcxx.rank_me() == 0:
            keys = [k for k in range(10_000) if dht.target_of(k) == 1][: N_INSERTS + 1]
            val = bytes(vsize)
            dht.insert(keys[0], val).wait()  # warm-up
            t0 = upcxx.sim_now()
            for k in keys[1:]:
                dht.insert(k, val).wait()
            out["t"] = (upcxx.sim_now() - t0) / N_INSERTS
        upcxx.barrier()

    upcxx.run_spmd(body, 2, ppn=1, segment_size=64 * 1024 * 1024)
    return out["t"]


def run_ablation() -> BenchTable:
    table = BenchTable(
        title="Ablation: DHT insert latency, RPC-only vs RPC+RMA landing zone",
        x_name="value size",
        y_name="us/insert",
    )
    s_rpc = table.new_series("RPC-only")
    s_rma = table.new_series("RPC+RMA")
    for vs in SIZES:
        s_rpc.add(vs, _insert_time(DhtRpcOnly, vs) * 1e6)
        s_rma.add(vs, _insert_time(DhtRmaLz, vs) * 1e6)
    return table


def test_rma_landing_zone_wins_for_large_values(run_once):
    table = run_once(run_ablation)
    print("\n" + save_table(table, "ablation_dht_variants", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.2f}"))

    rpc = table.get("RPC-only")
    rma = table.get("RPC+RMA")
    # small values: one round trip beats two
    assert rpc.y_at(64) < rma.y_at(64)
    # large values: zero-copy RMA wins (the paper's motivation)
    assert rma.y_at(256 * KiB) < rpc.y_at(256 * KiB)
    # there is exactly one crossover in the sweep
    signs = [rma.y_at(s) - rpc.y_at(s) for s in SIZES]
    flips = sum(1 for a, b in zip(signs, signs[1:]) if (a > 0) != (b > 0))
    assert flips == 1
