"""Fig. 3a — round-trip put latency: UPC++ rput vs MPI-3 RMA put+flush.

Paper claims asserted (§IV-B):
- below 256 B, UPC++ latency is better than MPI RMA by more than 5% on
  average;
- from 256 to 1024 bytes the improvement averages more than 25%;
- the latency advantage is present through at least 4 MiB.
"""

from repro.bench.harness import improvement, save_table, size_fmt
from repro.bench.microbench import FIG3_SIZES, run_fig3a
from repro.util.units import KiB, MiB


def test_fig3a_put_latency(run_once):
    table = run_once(lambda: run_fig3a())
    text = save_table(table, "fig3a_put_latency", x_fmt=size_fmt, y_fmt=lambda y: f"{y:.3f}us")
    print("\n" + text)

    upcxx = table.get("UPC++ rput")
    mpi = table.get("MPI RMA Put")

    small = [s for s in FIG3_SIZES if s < 256]
    imp_small = [improvement(mpi.y_at(s), upcxx.y_at(s)) for s in small]
    assert sum(imp_small) / len(imp_small) > 0.05, "below 256B: >5% average improvement"

    window = [s for s in FIG3_SIZES if 256 <= s <= 1024]
    imp_window = [improvement(mpi.y_at(s), upcxx.y_at(s)) for s in window]
    assert sum(imp_window) / len(imp_window) > 0.25, "256..1024B: >25% average improvement"

    # advantage present at every measured size through 4 MiB
    for s in FIG3_SIZES:
        assert upcxx.y_at(s) <= mpi.y_at(s), f"UPC++ slower at {s}B"
    assert 4 * MiB in FIG3_SIZES

    # sanity: small-message round trip is microsecond-scale, not ms
    assert 1.0 < upcxx.y_at(8) < 5.0
