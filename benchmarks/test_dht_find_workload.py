"""DHT lookup workload (the paper's footnote 8: "find can be similarly
implemented using RPC").

Weak-scales a find-heavy phase over a pre-populated table: inserts
(untimed), then blocking lookups of randomly chosen keys.  Lookups cost
one RPC plus one rget (landing-zone indirection), so their latency sits
between an insert and a bare RPC — asserted against the insert numbers.
"""

import repro.upcxx as upcxx
from repro.apps.dht import DhtRmaLz
from repro.bench.harness import save_table
from repro.util.records import BenchTable

PROCS = [2, 8, 32]
N_KEYS = 48
VSIZE = 1024


def _find_rate(n_procs: int) -> float:
    out = {}

    def body():
        me = upcxx.rank_me()
        dht = DhtRmaLz()
        rng = upcxx.runtime_here().rng.spawn("findbench")
        keys = [rng.key64() for _ in range(N_KEYS)]
        upcxx.barrier()
        for k in keys:  # population phase (untimed)
            dht.insert(k, bytes(VSIZE)).wait()
        upcxx.barrier()
        t0 = upcxx.sim_now()
        for k in keys:
            got = dht.find(k).wait()
            assert got is not None and len(got) == VSIZE
        upcxx.barrier()
        out["t"] = upcxx.sim_now() - t0

    upcxx.run_spmd(body, n_procs, segment_size=16 * 1024 * 1024)
    return n_procs * N_KEYS / out["t"]


def test_dht_find_weak_scaling(run_once):
    def sweep():
        table = BenchTable(
            title=f"DHT find workload ({VSIZE}B values, {N_KEYS} lookups/rank)",
            x_name="processes",
            y_name="lookups/s (millions)",
        )
        s = table.new_series("blocking find")
        for p in PROCS:
            s.add(p, _find_rate(p) / 1e6)
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "dht_find_workload", y_fmt=lambda y: f"{y:.4f}"))

    s = table.get("blocking find")
    # aggregate lookup rate scales with the process count
    assert s.y_at(8) > s.y_at(2) * 2.5
    assert s.y_at(32) > s.y_at(8) * 2.5
