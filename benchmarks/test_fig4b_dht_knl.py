"""Fig. 4b — DHT insert weak scaling on simulated Cori KNL.

Same methodology as Fig. 4a with the KNL node geometry (68 ranks/node)
and CPU model.  Additional cross-platform claim: per-process throughput on
KNL is below Haswell's (the slower serial core shows up in the local map
work and runtime software paths), as the paper's two panels show.
"""

from repro.bench.dht_bench import FIG4_PROCS, FIG4_VALUE_SIZES, dht_insert_rate, run_fig4
from repro.bench.harness import save_table


def test_fig4b_dht_weak_scaling_knl(run_once):
    table = run_once(lambda: run_fig4(platform="knl"))
    text = save_table(table, "fig4b_dht_knl", y_fmt=lambda y: f"{y:.1f}")
    print("\n" + text)

    for vs in FIG4_VALUE_SIZES:
        s = table.get(f"{vs}B values")
        assert s.y_at(2) < s.y_at(1)
        pts = [p for p in FIG4_PROCS if p >= 2]
        for a, b in zip(pts, pts[1:]):
            assert s.y_at(b) > s.y_at(a) * 1.4, f"{vs}B: poor scaling {a}->{b}"


def test_knl_slower_than_haswell_per_process(run_once):
    vs = 2048
    knl, haswell = run_once(
        lambda: (dht_insert_rate(16, vs, platform="knl"), dht_insert_rate(16, vs, platform="haswell"))
    )
    assert knl < haswell
