"""Extend-add message-structure statistics (§IV-D's "each variant
communicates the same amount of data" made measurable).

Counts wire messages and payload bytes per variant at one scale from the
conduit's own counters: the UPC++ variant should move (almost exactly) the
same payload volume as MPI P2P with a similar message count, while
Alltoallv sends strictly more messages (every pair, including empty ones).
"""

import repro.upcxx as upcxx
from repro.apps.sparse.extend_add import build_eadd_plan, mpi_eadd_run, upcxx_eadd_run
from repro.bench.harness import save_table
from repro.mpisim import run_mpi
from repro.util.records import BenchTable

N_PROCS = 16
GRID = (10, 10, 8)


def _upcxx_stats(plan):
    holder = {}

    def body():
        upcxx_eadd_run(plan)
        holder["stats"] = upcxx.current_runtime().conduit.stats()

    upcxx.run_spmd(body, N_PROCS)
    return holder["stats"]


def _mpi_stats(plan, variant):
    holder = {}

    def body():
        from repro.mpisim import comm_world

        mpi_eadd_run(plan, variant)
        holder["stats"] = comm_world().rt.conduit.stats()

    run_mpi(body, N_PROCS)
    return holder["stats"]


def test_eadd_message_structure(run_once):
    def sweep():
        plan = build_eadd_plan(*GRID, n_procs=N_PROCS, leaf_size=32)
        table = BenchTable(
            title=f"extend-add wire structure at {N_PROCS} procs",
            x_name="metric",
            y_name="count",
        )
        stats = {
            "UPC++ RPC": _upcxx_stats(plan),
            "MPI Alltoallv": _mpi_stats(plan, "alltoallv"),
            "MPI P2P": _mpi_stats(plan, "p2p"),
        }
        for label, st in stats.items():
            s = table.new_series(label)
            s.add("messages", st["ams"] + st["puts"] + st["gets"])
            s.add("bytes", st["bytes_out"])
        return table

    table = run_once(sweep)
    print("\n" + save_table(table, "eadd_message_stats"))

    u = table.get("UPC++ RPC")
    a = table.get("MPI Alltoallv")
    p = table.get("MPI P2P")

    # Alltoallv couples every pair: strictly more messages than both
    assert a.y_at("messages") > u.y_at("messages")
    assert a.y_at("messages") > p.y_at("messages")

    # payload volumes are of the same order across all variants (the
    # contribution data dominates; protocol overheads differ)
    base = min(s.y_at("bytes") for s in (u, a, p))
    for s in (u, a, p):
        assert s.y_at("bytes") < base * 1.8
