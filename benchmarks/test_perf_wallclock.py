"""Wall-clock perf smoke: the simulator itself must stay fast.

Runs the :mod:`repro.bench.perf_harness` workloads at tiny scale on all
three scheduler backends, writes ``BENCH_perf.json``, and gates against
the committed baseline (``benchmarks/perf_baseline.json``).

The regression gate compares the **coroutines-vs-threads speedup ratio**
(events/sec), not absolute wall time: the ratio is dimensionless and
mostly machine-independent, so the same baseline works on laptops and CI
runners.  A >2× regression of the ratio fails the job — that catches
"someone pessimized the coroutine hot path" without flaking on slow
runners.

The sharded backend is included for **result identity and schema
coverage only** — its wall-clock ratio depends on physical core count
and is deliberately NOT gated here (a 1-core CI runner would flake
every run).  Its honest number still lands in ``BENCH_perf.json`` under
the ``sharded_vs_coroutines`` gate entry, marked advisory when the
runner can't meet the ≥4-core/≥4-shard requirement.
"""

import json
import os

import pytest

from repro.bench.perf_harness import GATES, WORKLOADS, run_harness

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
OUT_PATH = os.environ.get("REPRO_PERF_OUT", "BENCH_perf.json")

#: a measured ratio below baseline/REGRESSION_FACTOR fails the gate
REGRESSION_FACTOR = 2.0

#: tiny-scale smoke uses 2 shards: exercises the cross-shard window
#: protocol even on a single-core runner without oversubscribing it
SMOKE_SHARDS = 2


@pytest.fixture(scope="module")
def report():
    return run_harness(scale="tiny", repeat=2, out_path=OUT_PATH, shards=SMOKE_SHARDS)


def test_harness_covers_all_workloads(report):
    assert set(report["workloads"]) == set(WORKLOADS)
    assert set(report["backends"]) == {"coroutines", "threads", "sharded"}


def test_backends_produce_identical_results(report):
    for name, entry in report["workloads"].items():
        assert entry["results_identical"], f"{name}: backend results diverged"


def test_counters_populated(report):
    for name, entry in report["workloads"].items():
        for backend in ("coroutines", "threads", "sharded"):
            rec = entry[backend]
            assert rec["wall_s"] > 0
            assert rec["events_fired"] > 0, f"{name}/{backend}: no events recorded"
            assert rec["switches"] > 0, f"{name}/{backend}: no switches recorded"
            assert rec["peak_rss_kb"] > 0


def test_sharded_counters_match_reference(report):
    """Events posted/fired are backend-invariant; the sharded run must
    agree with coroutines exactly (switches legitimately differ: the
    sharded backend dispatches per-worker)."""
    for name, entry in report["workloads"].items():
        assert entry["sharded"]["events_fired"] == entry["coroutines"]["events_fired"], name
        # requested shards are clamped to the workload's node count
        assert 1 <= entry["sharded"]["n_shards"] <= SMOKE_SHARDS, name


def test_no_ratio_regression_vs_baseline(report):
    """Coroutines/threads speedup ratio must not regress >2× vs baseline."""
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)
    for name, entry in report["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        measured = entry["speedup_events_per_s"]
        floor = base["speedup_events_per_s"] / REGRESSION_FACTOR
        assert measured >= floor, (
            f"{name}: coroutines/threads events-per-sec ratio {measured:.3f} "
            f"regressed below {floor:.3f} (baseline "
            f"{base['speedup_events_per_s']:.3f} / {REGRESSION_FACTOR})"
        )


def test_gate_entries_recorded(report):
    """Every gate template produces a filled entry; the sharded gate's
    ratio is recorded honestly but never asserted on (core-count bound)."""
    by_name = {g["name"]: g for g in report["gates"]}
    assert set(by_name) == {g["name"] for g in GATES}
    cvt = by_name["coroutines_vs_threads"]
    assert cvt["measured_speedup"] is not None
    assert isinstance(cvt["passed"], bool)
    svc = by_name["sharded_vs_coroutines"]
    assert svc["measured_speedup"] is not None
    assert "requirements_met" in svc
    # legacy single-gate key is preserved for older tooling
    assert report["gate"] == report["gates"][0]


def test_bench_perf_json_written(report):
    with open(OUT_PATH) as f:
        on_disk = json.load(f)
    assert on_disk["schema"] == "repro-perf/2"
    assert "gate" in on_disk and "gates" in on_disk
    assert on_disk["shards"] == SMOKE_SHARDS
    assert on_disk["cpus"] == os.cpu_count()
