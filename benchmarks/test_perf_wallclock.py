"""Wall-clock perf smoke: the simulator itself must stay fast.

Runs the :mod:`repro.bench.perf_harness` workloads at tiny scale on all
three scheduler backends, writes ``BENCH_perf.json``, and gates against
the committed baseline (``benchmarks/perf_baseline.json``).

The regression gate compares the **coroutines-vs-threads speedup ratio**
(events/sec), not absolute wall time: the ratio is dimensionless and
mostly machine-independent, so the same baseline works on laptops and CI
runners.  A >2× regression of the ratio fails the job — that catches
"someone pessimized the coroutine hot path" without flaking on slow
runners.

The sharded backend is included for **result identity and schema
coverage only** — its wall-clock ratio depends on physical core count
and is deliberately NOT gated here (a 1-core CI runner would flake
every run).  Its honest number still lands in ``BENCH_perf.json`` under
the ``sharded_vs_coroutines`` gate entry, marked advisory when the
runner can't meet the ≥4-core/≥4-shard requirement.
"""

import json
import os

import pytest

from repro.bench.perf_harness import GATES, WORKLOADS, run_harness

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
OUT_PATH = os.environ.get("REPRO_PERF_OUT", "BENCH_perf.json")

#: a measured ratio below baseline/REGRESSION_FACTOR fails the gate
REGRESSION_FACTOR = 2.0

#: tiny-scale smoke uses 2 shards: exercises the cross-shard window
#: protocol even on a single-core runner without oversubscribing it
SMOKE_SHARDS = 2


@pytest.fixture(scope="module")
def report():
    return run_harness(scale="tiny", repeat=2, out_path=OUT_PATH, shards=SMOKE_SHARDS)


def test_harness_covers_all_workloads(report):
    assert set(report["workloads"]) == set(WORKLOADS)
    assert set(report["backends"]) == {"coroutines", "threads", "sharded"}


def test_backends_produce_identical_results(report):
    for name, entry in report["workloads"].items():
        assert entry["results_identical"], f"{name}: backend results diverged"


def test_counters_populated(report):
    for name, entry in report["workloads"].items():
        for backend in ("coroutines", "threads", "sharded"):
            rec = entry[backend]
            assert rec["wall_s"] > 0
            assert rec["events_fired"] > 0, f"{name}/{backend}: no events recorded"
            assert rec["switches"] > 0, f"{name}/{backend}: no switches recorded"
            assert rec["peak_rss_kb"] > 0


def test_sharded_counters_match_reference(report):
    """Events posted/fired are backend-invariant; the sharded run must
    agree with coroutines exactly (switches legitimately differ: the
    sharded backend dispatches per-worker)."""
    for name, entry in report["workloads"].items():
        assert entry["sharded"]["events_fired"] == entry["coroutines"]["events_fired"], name
        # requested shards are clamped to the workload's node count
        assert 1 <= entry["sharded"]["n_shards"] <= SMOKE_SHARDS, name


def test_no_ratio_regression_vs_baseline(report):
    """Coroutines/threads speedup ratio must not regress >2× vs baseline."""
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)
    for name, entry in report["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        measured = entry["speedup_events_per_s"]
        floor = base["speedup_events_per_s"] / REGRESSION_FACTOR
        assert measured >= floor, (
            f"{name}: coroutines/threads events-per-sec ratio {measured:.3f} "
            f"regressed below {floor:.3f} (baseline "
            f"{base['speedup_events_per_s']:.3f} / {REGRESSION_FACTOR})"
        )


def test_gate_entries_recorded(report):
    """Every gate template produces a filled entry; the sharded gate's
    ratio is recorded honestly but never asserted on (core-count bound)."""
    by_name = {g["name"]: g for g in report["gates"]}
    assert set(by_name) == {g["name"] for g in GATES}
    cvt = by_name["coroutines_vs_threads"]
    assert cvt["measured_speedup"] is not None
    assert isinstance(cvt["passed"], bool)
    svc = by_name["sharded_vs_coroutines"]
    assert svc["measured_speedup"] is not None
    assert "requirements_met" in svc
    # legacy single-gate key is preserved for older tooling
    assert report["gate"] == report["gates"][0]


def test_bench_perf_json_written(report):
    with open(OUT_PATH) as f:
        on_disk = json.load(f)
    assert on_disk["schema"] == "repro-perf/2"
    assert "gate" in on_disk and "gates" in on_disk
    assert on_disk["shards"] == SMOKE_SHARDS
    assert on_disk["cpus"] == os.cpu_count()


def test_span_attribution_in_report(report):
    """Satellite: BENCH_perf.json carries the causal-span attribution
    summary per backend, with bit-identical fingerprints."""
    attr = report["span_attribution"]
    assert set(attr) == {"coroutines", "threads", "sharded"}
    fps = {entry["fingerprint"] for entry in attr.values()}
    assert len(fps) == 1, "span fingerprints diverged across backends"
    for entry in attr.values():
        assert entry["n_spans"] > 0
        assert entry["attribution_s"]["total"] > 0.0


def test_peak_rss_recorded_per_backend(report):
    """Satellite: peak RSS (self + children for sharded workers) lands in
    every backend record."""
    for entry in report["workloads"].values():
        for backend in ("coroutines", "threads", "sharded"):
            rec = entry[backend]
            assert rec["peak_rss_kb"] > 0
            assert rec["peak_rss_children_kb"] >= 0


def test_span_tracing_overhead_under_5pct():
    """Acceptance gate: span tracing enabled on the perf-smoke DHT-style
    workload costs <5% wall clock vs disabled (plus a small absolute
    cushion so sub-100ms runs don't flake on scheduler jitter)."""
    import time

    import repro.upcxx as upcxx
    from repro.util.spans import SpanBuffer

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        upcxx.barrier()
        acc = 0
        for i in range(8):
            acc += upcxx.rpc((me + i + 1) % n, lambda a, b: a + b, me, i).wait()
        upcxx.barrier()
        return (acc, upcxx.sim_now())

    def once(spans):
        t0 = time.perf_counter()
        res = upcxx.run_spmd(body, 32, ppn=8, seed=3, spans=spans)
        return time.perf_counter() - t0, res

    # interleave base/traced pairs and take best-of-5 of each so machine
    # noise (GC pauses, CI neighbors) hits both arms symmetrically
    import gc

    spans = SpanBuffer()
    base_s = with_s = float("inf")
    base_res = with_res = None
    gc.disable()
    try:
        once(None)  # warm-up (imports, code objects)
        for _ in range(5):
            t, base_res = once(None)
            base_s = min(base_s, t)
            t, with_res = once(spans)
            with_s = min(with_s, t)
    finally:
        gc.enable()
    # tracing is passive: simulated results are untouched
    assert with_res == base_res
    assert len(spans) > 0
    assert with_s <= max(base_s * 1.05, base_s + 0.05), (
        f"span tracing overhead too high: {base_s:.3f}s -> {with_s:.3f}s"
    )


def test_reliable_delivery_bookkeeping_under_2pct(report):
    """Satellite gate: reliable-delivery bookkeeping costs <2% wall clock
    on the Fig. 3a / Fig. 4a harness-style paths (rput chains + RPC
    round-trips) when no faults are injected.

    Measured conservatively: the *whole* reliability machinery armed with
    an all-zero-rate plan (sequence numbers, retransmit-ladder evaluation,
    ack scheduling, channel state) vs faults disabled entirely (where the
    per-op cost is one ``faults is None`` branch).  Interleaved best-of-5
    per arm so machine noise hits both symmetrically, with the same
    absolute cushion the span-tracing gate uses so sub-100ms runs don't
    flake.  Simulated results must be bit-identical between the arms, and
    the measured ratio is recorded into ``BENCH_perf.json``.
    """
    import gc
    import time

    import numpy as np

    import repro.upcxx as upcxx
    from repro.sim.faults import FaultPlan

    def body():
        # Fig. 3a-style blocking rput chain + Fig. 4a-style RPC round-trips
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        landing = upcxx.new_array(np.uint8, 512)
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            payload = bytes(512)
            for _ in range(20):
                upcxx.rput(payload, dest).wait()
        acc = 0
        for i in range(8):
            acc += upcxx.rpc((me + i + 1) % n, lambda a, b: a + b, me, i).wait()
        upcxx.barrier()
        return (acc, upcxx.sim_now())

    def once(faults):
        t0 = time.perf_counter()
        res = upcxx.run_spmd(body, 16, ppn=8, seed=3, faults=faults)
        return time.perf_counter() - t0, res

    plan = FaultPlan(seed=1)  # armed, all rates zero
    base_s = with_s = float("inf")
    base_res = with_res = None
    gc.disable()
    try:
        once(None)  # warm-up (imports, code objects)
        for _ in range(5):
            t, base_res = once(None)
            base_s = min(base_s, t)
            t, with_res = once(plan)
            with_s = min(with_s, t)
    finally:
        gc.enable()
    # a zero-fault plan must be simulation-invisible
    assert with_res == base_res
    ratio = with_s / base_s if base_s > 0 else 1.0
    assert with_s <= max(base_s * 1.02, base_s + 0.05), (
        f"reliable-delivery bookkeeping overhead too high: "
        f"{base_s:.3f}s -> {with_s:.3f}s"
    )

    # record the measurement in the perf artifact for CI consumers
    try:
        with open(OUT_PATH) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        doc = {}
    doc["reliability_bookkeeping"] = {
        "gate": "zero_fault_overhead_under_2pct",
        "base_s": base_s,
        "with_s": with_s,
        "ratio": ratio,
        "passed": True,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, sort_keys=True, indent=2)
