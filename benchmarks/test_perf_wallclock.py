"""Wall-clock perf smoke: the simulator itself must stay fast.

Runs the :mod:`repro.bench.perf_harness` workloads at tiny scale on both
scheduler backends, writes ``BENCH_perf.json``, and gates against the
committed baseline (``benchmarks/perf_baseline.json``).

The gate compares the **backend speedup ratio** (coroutines vs threads,
events/sec), not absolute wall time: the ratio is dimensionless and
mostly machine-independent, so the same baseline works on laptops and CI
runners.  A >2× regression of the ratio fails the job — that catches
"someone pessimized the coroutine hot path" without flaking on slow
runners.
"""

import json
import os

import pytest

from repro.bench.perf_harness import WORKLOADS, run_harness

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
OUT_PATH = os.environ.get("REPRO_PERF_OUT", "BENCH_perf.json")

#: a measured ratio below baseline/REGRESSION_FACTOR fails the gate
REGRESSION_FACTOR = 2.0


@pytest.fixture(scope="module")
def report():
    return run_harness(scale="tiny", repeat=2, out_path=OUT_PATH)


def test_harness_covers_all_workloads(report):
    assert set(report["workloads"]) == set(WORKLOADS)


def test_backends_produce_identical_results(report):
    for name, entry in report["workloads"].items():
        assert entry["results_identical"], f"{name}: backend results diverged"


def test_counters_populated(report):
    for name, entry in report["workloads"].items():
        for backend in ("coroutines", "threads"):
            rec = entry[backend]
            assert rec["wall_s"] > 0
            assert rec["events_fired"] > 0, f"{name}/{backend}: no events recorded"
            assert rec["switches"] > 0, f"{name}/{backend}: no switches recorded"
            assert rec["peak_rss_kb"] > 0


def test_no_ratio_regression_vs_baseline(report):
    """Backend speedup ratio must not regress >2× vs the committed baseline."""
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)
    for name, entry in report["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        measured = entry["speedup_events_per_s"]
        floor = base["speedup_events_per_s"] / REGRESSION_FACTOR
        assert measured >= floor, (
            f"{name}: coroutines/threads events-per-sec ratio {measured:.3f} "
            f"regressed below {floor:.3f} (baseline "
            f"{base['speedup_events_per_s']:.3f} / {REGRESSION_FACTOR})"
        )


def test_bench_perf_json_written(report):
    with open(OUT_PATH) as f:
        on_disk = json.load(f)
    assert on_disk["schema"] == "repro-perf/1"
    assert "gate" in on_disk
