"""Wall-clock perf smoke: the simulator itself must stay fast.

Runs the :mod:`repro.bench.perf_harness` workloads at tiny scale on all
three scheduler backends, writes ``BENCH_perf.json``, and gates against
the committed baseline (``benchmarks/perf_baseline.json``).

The regression gate compares the **coroutines-vs-threads speedup ratio**
(events/sec), not absolute wall time: the ratio is dimensionless and
mostly machine-independent, so the same baseline works on laptops and CI
runners.  A >2× regression of the ratio fails the job — that catches
"someone pessimized the coroutine hot path" without flaking on slow
runners.

The sharded backend is included for **result identity and schema
coverage only** — its wall-clock ratio depends on physical core count
and is deliberately NOT gated here (a 1-core CI runner would flake
every run).  Its honest number still lands in ``BENCH_perf.json`` under
the ``sharded_vs_coroutines`` gate entry, marked advisory when the
runner can't meet the ≥4-core/≥4-shard requirement.
"""

import json
import os

import pytest

from repro.bench.perf_harness import GATES, KV_GATE, WORKLOADS, run_harness

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
OUT_PATH = os.environ.get("REPRO_PERF_OUT", "BENCH_perf.json")

#: a measured ratio below baseline/REGRESSION_FACTOR fails the gate
REGRESSION_FACTOR = 2.0

#: tiny-scale smoke uses 2 shards: exercises the cross-shard window
#: protocol even on a single-core runner without oversubscribing it
SMOKE_SHARDS = 2


@pytest.fixture(scope="module")
def report():
    # profile=True: the per-phase hot-path breakdown always rides in the
    # CI artifact, so a future gate regression is attributable from
    # BENCH_perf.json alone
    return run_harness(
        scale="tiny", repeat=2, out_path=OUT_PATH, shards=SMOKE_SHARDS, profile=True
    )


def test_harness_covers_all_workloads(report):
    assert set(report["workloads"]) == set(WORKLOADS)
    assert set(report["backends"]) == {"coroutines", "threads", "sharded"}


def test_backends_produce_identical_results(report):
    for name, entry in report["workloads"].items():
        assert entry["results_identical"], f"{name}: backend results diverged"


def test_counters_populated(report):
    for name, entry in report["workloads"].items():
        for backend in ("coroutines", "threads", "sharded"):
            rec = entry[backend]
            assert rec["wall_s"] > 0
            assert rec["events_fired"] > 0, f"{name}/{backend}: no events recorded"
            assert rec["switches"] > 0, f"{name}/{backend}: no switches recorded"
            assert rec["peak_rss_kb"] > 0


def test_sharded_counters_match_reference(report):
    """Events posted/fired are backend-invariant; the sharded run must
    agree with coroutines exactly (switches legitimately differ: the
    sharded backend dispatches per-worker)."""
    for name, entry in report["workloads"].items():
        assert entry["sharded"]["events_fired"] == entry["coroutines"]["events_fired"], name
        # requested shards are clamped to the workload's node count
        assert 1 <= entry["sharded"]["n_shards"] <= SMOKE_SHARDS, name


def test_no_ratio_regression_vs_baseline(report):
    """Coroutines/threads speedup ratio must not regress >2× vs baseline."""
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)
    for name, entry in report["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        measured = entry["speedup_events_per_s"]
        floor = base["speedup_events_per_s"] / REGRESSION_FACTOR
        assert measured >= floor, (
            f"{name}: coroutines/threads events-per-sec ratio {measured:.3f} "
            f"regressed below {floor:.3f} (baseline "
            f"{base['speedup_events_per_s']:.3f} / {REGRESSION_FACTOR})"
        )


def test_gate_entries_recorded(report):
    """Every gate template produces a filled entry; the sharded gate's
    ratio is recorded honestly but never asserted on (core-count bound)."""
    by_name = {g["name"]: g for g in report["gates"]}
    assert set(by_name) == {g["name"] for g in GATES} | {KV_GATE["name"]}
    cvt = by_name["coroutines_vs_threads"]
    assert cvt["measured_speedup"] is not None
    assert isinstance(cvt["passed"], bool)
    svc = by_name["sharded_vs_coroutines"]
    assert svc["measured_speedup"] is not None
    assert "requirements_met" in svc
    # the aggregation gate is simulated-time: always filled, never advisory
    kv = by_name[KV_GATE["name"]]
    assert kv["measured_speedup"] is not None
    assert isinstance(kv["passed"], bool)
    assert not kv.get("advisory")
    assert kv["ablation"]["per_op_rpc"]["batch_size"] == 1
    # legacy single-gate key is preserved for older tooling
    assert report["gate"] == report["gates"][0]


def test_no_non_advisory_gate_failure(report):
    """Hard gate: a non-advisory ``passed: false`` entry fails the job.

    CI previously accepted (and committed) a BENCH_perf.json whose gate
    read ``passed: false`` because no test asserted on the verdict — only
    on its type.  Advisory entries (runner below the gate's documented
    cpu/shard requirements) are exempt: their measured number is recorded
    honestly but reflects the runner, not the code under test.
    """
    failures = [
        f"{g['name']}: measured {g['measured_speedup']} < target {g['target_speedup']}"
        for g in report["gates"]
        if not g.get("skipped") and not g.get("advisory") and g["passed"] is False
    ]
    assert not failures, "non-advisory perf gate(s) failed: " + "; ".join(failures)


def test_profile_phase_breakdown_in_report(report):
    """Satellite: the per-phase hot-path breakdown lands in the artifact
    with sane fractions, and the instrumentation phase is ~free when no
    spans/metrics/trace are installed (the zero-cost-when-off claim,
    checked from CI's own artifact)."""
    bd = report["profile_phases"]
    assert bd["workload"] == "fig4a_dht"
    assert bd["n_fibers_profiled"] > 0
    fr = bd["fractions"]
    assert set(fr) >= {"scheduler", "conduit", "upcxx_api", "instrumentation"}
    assert all(0.0 <= v <= 1.0 for v in fr.values())
    assert abs(sum(fr.values()) - 1.0) < 0.01
    # the harness runs with no observers installed: instrumentation code
    # must not appear on the hot path at all
    assert fr["instrumentation"] < 0.01


def test_bench_perf_json_written(report):
    with open(OUT_PATH) as f:
        on_disk = json.load(f)
    assert on_disk["schema"] == "repro-perf/3"
    assert "gate" in on_disk and "gates" in on_disk
    assert on_disk["shards"] == SMOKE_SHARDS
    assert on_disk["cpus"] == os.cpu_count()


def test_span_attribution_in_report(report):
    """Satellite: BENCH_perf.json carries the causal-span attribution
    summary per backend, with bit-identical fingerprints."""
    attr = report["span_attribution"]
    assert set(attr) == {"coroutines", "threads", "sharded"}
    fps = {entry["fingerprint"] for entry in attr.values()}
    assert len(fps) == 1, "span fingerprints diverged across backends"
    for entry in attr.values():
        assert entry["n_spans"] > 0
        assert entry["attribution_s"]["total"] > 0.0


def test_peak_rss_recorded_per_backend(report):
    """Satellite: peak RSS (self + children for sharded workers) lands in
    every backend record."""
    for entry in report["workloads"].values():
        for backend in ("coroutines", "threads", "sharded"):
            rec = entry[backend]
            assert rec["peak_rss_kb"] > 0
            assert rec["peak_rss_children_kb"] >= 0


def _calmest_pair(once, on_arg, n_pairs=7):
    """Interleaved A/B overhead measurement, robust to CPU throttling.

    Shared/capped runners exhibit *multiplicative, slowly-varying* noise
    (frequency scaling, cgroup throttling): identical runs vary up to
    10x wall clock, and process-CPU time scales with them — so there is
    no noise-free clock to fall back on.  Best-of-N per arm (the old
    estimator) breaks when the two arms' minima land in different
    throttle windows.  Instead, run base/instrumented *pairs* and judge
    the overhead inside the calmest window: the pair with the smallest
    combined wall time.  Within one calm pair both arms ran at the same
    clock, so their ratio is an honest overhead estimate; even under
    sustained throttling the ratio stays honest because both arms are
    slowed equally — only a throttle transition mid-pair corrupts a
    pair, and that pair then loses the min by construction.

    Returns ``(base_s, with_s, base_res, with_res)`` from the winning
    pair (simulated results are deterministic, so any repeat's results
    are representative).
    """
    import gc

    pairs = []
    gc.disable()
    try:
        once(None)  # warm-up (imports, code objects)
        for _ in range(n_pairs):
            tb, base_res = once(None)
            tw, with_res = once(on_arg)
            pairs.append((tb + tw, tb, tw, base_res, with_res))
    finally:
        gc.enable()
    _, base_s, with_s, base_res, with_res = min(pairs, key=lambda p: p[0])
    return base_s, with_s, base_res, with_res


def test_span_tracing_overhead_under_5pct():
    """Acceptance gate: span tracing enabled on the perf-smoke DHT-style
    workload costs <5% wall clock vs disabled (plus a small absolute
    cushion so sub-100ms runs don't flake on scheduler jitter)."""
    import time

    import repro.upcxx as upcxx
    from repro.util.spans import SpanBuffer

    def body():
        # long enough (~1.5s calm) that sub-second CPU-clock throttle
        # swings average out *within* each run — see _calmest_pair
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        upcxx.barrier()
        acc = 0
        for i in range(24):
            acc += upcxx.rpc((me + i + 1) % n, lambda a, b: a + b, me, i).wait()
        upcxx.barrier()
        return (acc, upcxx.sim_now())

    spans = SpanBuffer()

    def once(arg):
        t0 = time.perf_counter()
        res = upcxx.run_spmd(body, 32, ppn=8, seed=3, spans=arg)
        return time.perf_counter() - t0, res

    base_s, with_s, base_res, with_res = _calmest_pair(once, spans)
    # tracing is passive: simulated results are untouched
    assert with_res == base_res
    assert len(spans) > 0
    assert with_s <= max(base_s * 1.05, base_s + 0.05), (
        f"span tracing overhead too high: {base_s:.3f}s -> {with_s:.3f}s"
    )


def test_reliable_delivery_bookkeeping_under_2pct(report):
    """Satellite gate: reliable-delivery bookkeeping costs <2% wall clock
    on the Fig. 3a / Fig. 4a harness-style paths (rput chains + RPC
    round-trips) when no faults are injected.

    Measured conservatively: the *whole* reliability machinery armed with
    an all-zero-rate plan (sequence numbers, retransmit-ladder evaluation,
    ack scheduling, channel state) vs faults disabled entirely (where the
    per-op cost is one ``faults is None`` branch).  Interleaved
    calmest-pair estimation (see :func:`_calmest_pair`) so throttling
    noise hits both arms symmetrically, with the same absolute cushion
    the span-tracing gate uses so sub-100ms runs don't flake.  Simulated
    results must be bit-identical between the arms, and the measured
    ratio is recorded into ``BENCH_perf.json``.
    """
    import time

    import numpy as np

    import repro.upcxx as upcxx
    from repro.sim.faults import FaultPlan

    def body():
        # Fig. 3a-style blocking rput chain + Fig. 4a-style RPC
        # round-trips, long enough that throttle swings average out
        # within each run (see _calmest_pair)
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        landing = upcxx.new_array(np.uint8, 512)
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            payload = bytes(512)
            for _ in range(60):
                upcxx.rput(payload, dest).wait()
        acc = 0
        for i in range(24):
            acc += upcxx.rpc((me + i + 1) % n, lambda a, b: a + b, me, i).wait()
        upcxx.barrier()
        return (acc, upcxx.sim_now())

    def once(faults):
        t0 = time.perf_counter()
        res = upcxx.run_spmd(body, 16, ppn=8, seed=3, faults=faults)
        return time.perf_counter() - t0, res

    plan = FaultPlan(seed=1)  # armed, all rates zero
    base_s, with_s, base_res, with_res = _calmest_pair(once, plan)
    # a zero-fault plan must be simulation-invisible
    assert with_res == base_res
    ratio = with_s / base_s if base_s > 0 else 1.0
    assert with_s <= max(base_s * 1.02, base_s + 0.05), (
        f"reliable-delivery bookkeeping overhead too high: "
        f"{base_s:.3f}s -> {with_s:.3f}s"
    )

    # record the measurement in the perf artifact for CI consumers
    try:
        with open(OUT_PATH) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        doc = {}
    doc["reliability_bookkeeping"] = {
        "gate": "zero_fault_overhead_under_2pct",
        "base_s": base_s,
        "with_s": with_s,
        "ratio": ratio,
        "passed": True,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, sort_keys=True, indent=2)


def test_telemetry_overhead_under_2pct(report):
    """Acceptance gate: telemetry enabled (windowed rollups + flight
    recorder) costs <2% wall clock vs disabled on the same mixed
    rput/RPC workload the reliability gate uses.

    Telemetry is passive — results must be bit-identical with it on —
    and the measured ratio lands in ``BENCH_perf.json`` under
    ``telemetry_overhead`` for ``repro.tools.health`` to gate on.
    """
    import time

    import numpy as np

    import repro.upcxx as upcxx
    from repro.util import Telemetry

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        landing = upcxx.new_array(np.uint8, 512)
        dest = upcxx.broadcast(landing, root=1).wait()
        upcxx.barrier()
        if me == 0:
            payload = bytes(512)
            for _ in range(60):
                upcxx.rput(payload, dest).wait()
        acc = 0
        for i in range(24):
            acc += upcxx.rpc((me + i + 1) % n, lambda a, b: a + b, me, i).wait()
        upcxx.barrier()
        return (acc, upcxx.sim_now())

    last = {}

    def once(on):
        # fresh sink per run: rollup state must not accumulate across pairs
        tel = Telemetry() if on else None
        if on:
            last["tel"] = tel
        t0 = time.perf_counter()
        res = upcxx.run_spmd(body, 16, ppn=8, seed=3, telemetry=tel)
        return time.perf_counter() - t0, res

    base_s, with_s, base_res, with_res = _calmest_pair(once, True)
    # telemetry is passive: simulated results are untouched
    assert with_res == base_res
    # rollups actually filled (the run is several windows long)
    tel = last["tel"]
    assert all(len(rt.windows) > 0 for rt in tel.ranks.values())
    ratio = with_s / base_s if base_s > 0 else 1.0
    assert with_s <= max(base_s * 1.02, base_s + 0.05), (
        f"telemetry overhead too high: {base_s:.3f}s -> {with_s:.3f}s"
    )

    try:
        with open(OUT_PATH) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        doc = {}
    doc["telemetry_overhead"] = {
        "gate": "telemetry_on_overhead_under_2pct",
        "base_s": base_s,
        "with_s": with_s,
        "ratio": ratio,
        "passed": True,
    }
    with open(OUT_PATH, "w") as f:
        json.dump(doc, f, sort_keys=True, indent=2)
