"""Unit tests for the discrete-event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import EventQueue


def test_empty_queue():
    q = EventQueue()
    assert q.peek_time() is None
    assert len(q) == 0
    assert not q


def test_fifo_within_same_time():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(1.0, lambda i=i: order.append(i))
    while q:
        _, fn = q.pop()
        fn()
    assert order == list(range(10))


def test_time_ordering():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    times = []
    while q:
        t, fn = q.pop()
        times.append(t)
        fn()
    assert fired == [1, 2, 3]
    assert times == [1.0, 2.0, 3.0]


def test_peek_matches_pop():
    q = EventQueue()
    q.push(5.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.peek_time() == 2.0
    t, _ = q.pop()
    assert t == 2.0
    assert q.peek_time() == 5.0


def test_rejects_negative_and_nan_times():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1.0, lambda: None)
    with pytest.raises(ValueError):
        q.push(float("nan"), lambda: None)


def test_rejects_infinite_time():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(float("inf"), lambda: None)
    assert len(q) == 0


def test_rejects_non_callable_fn():
    q = EventQueue()
    with pytest.raises(TypeError):
        q.push(1.0, None)
    with pytest.raises(TypeError):
        q.push(1.0, "not-a-function")
    assert len(q) == 0
    # rejected pushes must not count as posted
    assert q.stats["posted"] == 0


def test_account_fired_matches_pop_accounting():
    q = EventQueue()
    for i in range(4):
        q.push(float(i), lambda: None)
    q.pop()
    q.account_fired(2)  # batched drain bookkeeping (see coop._checkpoint_slow)
    assert q.stats["fired"] == 3


def test_stats_counters():
    q = EventQueue()
    for i in range(5):
        q.push(float(i), lambda: None)
    q.pop()
    q.pop()
    assert q.stats == {"posted": 5, "fired": 2, "pending": 3}


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_pop_order_is_nondecreasing(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        t, _ = q.pop()
        popped.append(t)
    assert popped == sorted(popped)


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1000)), min_size=1, max_size=300))
def test_stable_for_equal_times(pairs):
    """Events at equal times fire in insertion order (stability)."""
    q = EventQueue()
    log = []
    for t, tag in pairs:
        q.push(float(t), lambda t=t, tag=tag: log.append((t, tag)))
    while q:
        _, fn = q.pop()
        fn()
    # stable sort of the input by time must equal the firing log
    expected = sorted(((float(t), tag) for t, tag in pairs), key=lambda p: p[0])
    assert [(t, tag) for t, tag in log] == [(t, tag) for t, tag in expected]
