"""Perfetto counter-track export of telemetry rollups.

Pins the observability satellite contract for
:func:`repro.util.trace_export.chrome_trace_telemetry_events`: five
counter tracks per rank with per-window *deltas* of the cumulative
rollup counters, shard-aware pid mapping, metadata dedup when merged
into a full chrome trace, and byte-stable deterministic output.
"""

import json

import repro.upcxx as upcxx
from repro.util.telemetry import Telemetry
from repro.util.trace import TraceBuffer
from repro.util.trace_export import (
    chrome_trace,
    chrome_trace_telemetry_events,
    dumps_chrome_trace,
)

N_RANKS = 4

#: the five counter tracks every instrumented rank must expose
TRACKS = ("tel.ops", "tel.queues", "tel.nic", "tel.agg", "tel.attentiveness")


def _body():
    me, n = upcxx.rank_me(), upcxx.rank_n()
    acc = 0
    for i in range(40):
        acc += upcxx.rpc((me + 1) % n, lambda x: x + 1, i).wait()
    upcxx.barrier()
    return acc


def _run_telemetry():
    tel = Telemetry()
    upcxx.run_spmd(_body, N_RANKS, ppn=2, seed=9, telemetry=tel)
    return tel


def test_counter_tracks_per_rank():
    tel = _run_telemetry()
    events = chrome_trace_telemetry_events(tel)
    counters = [e for e in events if e["ph"] == "C"]
    assert counters, "no counter samples exported"
    for e in counters:
        assert e["cat"] == "telemetry"
    by_rank_track = {}
    for e in counters:
        track = e["name"].split(" ", 2)[2]  # "rank N tel.xxx" -> "tel.xxx"
        by_rank_track.setdefault((e["tid"], track), []).append(e)
    for rank in range(N_RANKS):
        for track in TRACKS:
            assert (rank, track) in by_rank_track, f"rank {rank} missing {track}"
    # one sample per closed window per track
    for rank, rt in tel.ranks.items():
        for track in TRACKS:
            assert len(by_rank_track[(rank, track)]) == len(rt.windows)


def test_counter_args_are_window_deltas():
    tel = _run_telemetry()
    events = chrome_trace_telemetry_events(tel)
    for rank, rt in tel.ranks.items():
        ops = [e for e in events
               if e["ph"] == "C" and e["name"] == f"rank {rank} tel.ops"]
        ops.sort(key=lambda e: e["ts"])
        # deltas re-sum to the cumulative counters of the final window
        last = rt.windows[-1]
        assert sum(e["args"]["executed"] for e in ops) == last["executed"]
        assert sum(e["args"]["am_polls"] for e in ops) == last["ams"]
        assert sum(e["args"]["injected"] for e in ops) == sum(last["ops"].values())
        # every delta is non-negative (cumulative counters are monotone)
        for e in ops:
            assert e["args"]["executed"] >= 0
            assert e["args"]["injected"] >= 0
        # timestamps are the window-close times in microseconds
        assert [e["ts"] for e in ops] == [w["t"] * 1e6 for w in rt.windows]


def test_shard_pid_mapping_and_metadata():
    tel = _run_telemetry()
    shard_of = [0, 0, 1, 1]
    events = chrome_trace_telemetry_events(tel, shard_of=shard_of)
    for e in events:
        if e["ph"] == "C":
            assert e["pid"] == shard_of[e["tid"]]
    meta = [e for e in events if e["ph"] == "M"]
    proc_names = {e["pid"]: e["args"]["name"] for e in meta
                  if e["name"] == "process_name"}
    assert proc_names == {0: "shard 0", 1: "shard 1"}
    thread_names = {(e["pid"], e["tid"]): e["args"]["name"] for e in meta
                    if e["name"] == "thread_name"}
    for r in range(N_RANKS):
        assert thread_names[(shard_of[r], r)] == f"rank {r}"


def test_merged_trace_dedups_metadata_and_sorts():
    trace = TraceBuffer(enabled=True)
    tel = Telemetry()
    upcxx.run_spmd(_body, N_RANKS, ppn=2, seed=9, trace=trace, telemetry=tel)
    doc = chrome_trace(trace, telemetry=tel)
    events = doc["traceEvents"]
    # metadata appears exactly once per (name, pid, tid) despite both the
    # trace and the telemetry export emitting their own copies
    meta_keys = [(e["name"], e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M"]
    assert len(meta_keys) == len(set(meta_keys))
    # counter samples made it into the merged stream
    assert any(e["ph"] == "C" and e["cat"] == "telemetry" for e in events)
    # canonical order: (ts, pid, tid, ph, name) nondecreasing
    keys = [(e.get("ts", -1.0), e["pid"], e["tid"], e["ph"], e["name"])
            for e in events]
    assert keys == sorted(keys)


def test_export_is_deterministic_and_json_clean():
    texts = []
    for _ in range(2):
        trace = TraceBuffer(enabled=True)
        tel = Telemetry()
        upcxx.run_spmd(_body, N_RANKS, ppn=2, seed=9, trace=trace, telemetry=tel)
        texts.append(dumps_chrome_trace(trace, telemetry=tel))
    assert texts[0] == texts[1]
    json.loads(texts[0])  # valid JSON document
