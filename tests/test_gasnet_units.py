"""Unit tests for the small gasnet pieces: handles, AM inboxes, and the
network device-path helpers."""

import pytest

from repro.gasnet.am import AMInbox, AMMessage
from repro.gasnet.handle import Handle
from repro.gasnet.network import AriesNetwork


class TestHandle:
    def test_callbacks_fire_on_complete(self):
        h = Handle("op")
        log = []
        h.on_complete(lambda hh: log.append(hh.time_done))
        assert not h.done
        h.complete(2.5, data=b"x")
        assert h.done and h.time_done == 2.5 and h.data == b"x"
        assert log == [2.5]

    def test_late_callback_fires_immediately(self):
        h = Handle()
        h.complete(1.0)
        log = []
        h.on_complete(lambda hh: log.append("now"))
        assert log == ["now"]

    def test_double_complete_rejected(self):
        h = Handle()
        h.complete(1.0)
        with pytest.raises(RuntimeError):
            h.complete(2.0)

    def test_multiple_callbacks_in_order(self):
        h = Handle()
        log = []
        for i in range(3):
            h.on_complete(lambda _h, i=i: log.append(i))
        h.complete(0.5)
        assert log == [0, 1, 2]


class TestAMInbox:
    def _msg(self, arrival, tag="t"):
        return AMMessage(src=0, dst=1, tag=tag, payload=None, nbytes=8, arrival=arrival)

    def test_fifo_poll_respects_due_time(self):
        box = AMInbox(1)
        box.deliver(self._msg(1.0, "a"))
        box.deliver(self._msg(2.0, "b"))
        assert not box.has_due(0.5)
        assert box.poll(0.5) is None
        assert box.has_due(1.5)
        assert box.poll(1.5).tag == "a"
        assert box.poll(1.5) is None  # 'b' not due yet
        assert box.poll(2.0).tag == "b"
        assert len(box) == 0

    def test_counters(self):
        box = AMInbox(0)
        for t in (1.0, 2.0):
            box.deliver(self._msg(t))
        box.poll(5.0)
        assert box.n_received == 2 and box.n_polled == 1


class TestDevicePathModel:
    def test_pcie_time_components(self):
        net = AriesNetwork()
        assert net.pcie_time(0) == net.pcie_latency
        big = net.pcie_time(1 << 20)
        assert big > net.pcie_latency
        assert big - net.pcie_latency == pytest.approx((1 << 20) / net.pcie_bw)

    def test_pcie_negative_rejected(self):
        with pytest.raises(ValueError):
            AriesNetwork().pcie_time(-1)

    def test_device_slower_than_nic_bandwidth(self):
        net = AriesNetwork()
        assert net.pcie_bw > net.bw_bte  # PCIe4-class link vs single NIC
        assert net.device_local_bw > net.pcie_bw


class TestBenchHelpers:
    def test_improvement_convention(self):
        from repro.bench.harness import improvement

        assert improvement(2.0, 1.5) == pytest.approx(0.25)
        assert improvement(1.0, 1.0) == 0.0

    def test_platform_presets(self):
        from repro.bench.platforms import PLATFORMS

        assert PLATFORMS["haswell"].ppn_dht == 32
        assert PLATFORMS["knl"].ppn_dht == 68
        assert PLATFORMS["knl"].ppn_eadd == 64
        assert PLATFORMS["knl"].cpu.serial_factor > 1

    def test_dht_efficiency_helper(self):
        from repro.bench.dht_bench import efficiency
        from repro.util.records import BenchTable

        t = BenchTable("x", "p", "MB/s")
        s = t.new_series("v")
        for p, y in [(1, 100.0), (2, 50.0), (4, 100.0), (8, 150.0)]:
            s.add(p, y)
        eff = efficiency(t, "v", base_procs=2)
        assert eff[2] == pytest.approx(1.0)
        assert eff[4] == pytest.approx(1.0)
        assert eff[8] == pytest.approx(0.75)

    def test_save_table_writes_file(self, tmp_path, monkeypatch):
        import repro.bench.harness as hz
        from repro.util.records import BenchTable

        monkeypatch.setattr(hz, "RESULTS_DIR", str(tmp_path))
        t = BenchTable("T", "x", "y")
        t.new_series("s").add(1, 2.0)
        text = hz.save_table(t, "unit_test_table", extra="trailer")
        assert (tmp_path / "unit_test_table.txt").read_text().strip().endswith("trailer")
        assert "T" in text
