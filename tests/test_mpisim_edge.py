"""Edge-case tests for the MPI baseline: Issend semantics, request
management, sub-communicators, and mixed-protocol traffic."""

import numpy as np
import pytest

from repro.mpisim import Request, Win, comm_world, run_mpi
from repro.mpisim.profile import DEFAULT_MPI_COSTS


class TestIssend:
    def test_issend_completes_only_after_match(self):
        """The synchronous send's request stays pending until the receiver
        posts a matching receive."""
        observed = {}

        def body():
            comm = comm_world()
            if comm.rank == 0:
                req = comm.issend("payload", dest=1, tag=9)
                # receiver sleeps 50us before posting: our completion must
                # reflect that delay
                t0 = comm.rt.sched.now()
                req.wait()
                observed["dt"] = comm.rt.sched.now() - t0
            else:
                comm.rt.sched.sleep(50e-6)
                got = comm.recv(source=0, tag=9)
                assert got == "payload"
            comm.barrier()

        run_mpi(body, 2, ppn=1)
        assert observed["dt"] > 40e-6

    def test_isend_completes_immediately_eager(self):
        """Contrast: plain eager isend completes at injection."""

        def body():
            comm = comm_world()
            if comm.rank == 0:
                req = comm.isend("payload", dest=1, tag=9)
                assert req.done  # buffered: immediately reusable
            else:
                comm.rt.sched.sleep(50e-6)
                comm.recv(source=0, tag=9)
            comm.barrier()

        run_mpi(body, 2, ppn=1)

    def test_issend_large_falls_back_to_rendezvous(self):
        big = np.zeros(DEFAULT_MPI_COSTS.rndv_threshold * 2, dtype=np.uint8)

        def body():
            comm = comm_world()
            if comm.rank == 0:
                req = comm.issend(big, dest=1, tag=1)
                assert not req.done  # rendezvous: waits for CTS
                req.wait()
            else:
                got = comm.recv(source=0, tag=1)
                assert len(got) == len(big)
            comm.barrier()

        run_mpi(body, 2)


class TestRequests:
    def test_waitall_static_helper(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                reqs = [comm.irecv(source=1, tag=i) for i in range(4)]
                vals = Request.waitall(reqs)
                assert vals == [0, 10, 20, 30]
            else:
                for i in range(4):
                    comm.send(i * 10, dest=0, tag=i)
            comm.barrier()

        run_mpi(body, 2)

    def test_test_polls_progress(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=0)
                while not req.test():
                    pass  # test() makes progress internally
                assert req.value == "done"
            else:
                comm.rt.sched.sleep(10e-6)
                comm.send("done", dest=0, tag=0)
            comm.barrier()

        run_mpi(body, 2)


class TestSubCommunicators:
    def test_sub_comm_collectives(self):
        def body():
            comm = comm_world()
            me = comm.rank
            evens = comm.sub([0, 2])
            odds = comm.sub([1, 3])
            mine = evens if me % 2 == 0 else odds
            if me in (0, 2) or me in (1, 3):
                total = mine.allreduce(me, "+")
            comm.barrier()
            return total

        res = run_mpi(body, 4)
        assert res[0] == res[2] == 2
        assert res[1] == res[3] == 4

    def test_sub_comm_p2p_rank_translation(self):
        def body():
            comm = comm_world()
            sub = comm.sub([2, 0])  # reordered!
            if comm.rank == 2:
                assert sub.rank == 0
                sub.send("x", dest=1)  # sub rank 1 == world rank 0
            elif comm.rank == 0:
                assert sub.rank == 1
                assert sub.recv(source=0) == "x"
            comm.barrier()

        run_mpi(body, 3)


class TestMixedTraffic:
    def test_rma_and_p2p_interleave(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 64)
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                win.put(b"RMA!", target=1, offset=0)
                comm.send("P2P!", dest=1, tag=5)
                win.flush(1)
                win.unlock(1)
            else:
                msg = comm.recv(source=0, tag=5)
                assert msg == "P2P!"
            comm.barrier()
            return bytes(win.local_view()[:4]) if comm.rank == 1 else None

        res = run_mpi(body, 2)
        assert res[1] == b"RMA!"

    def test_many_windows_coexist(self):
        def body():
            comm = comm_world()
            wins = [Win.allocate(comm, 32) for _ in range(3)]
            comm.barrier()
            if comm.rank == 0:
                for i, w in enumerate(wins):
                    w.lock(1)
                    w.put(bytes([i + 1] * 4), target=1)
                    w.unlock(1)
            comm.barrier()
            if comm.rank == 1:
                for i, w in enumerate(wins):
                    assert w.local_view()[0] == i + 1
            comm.barrier()

        run_mpi(body, 2)

    def test_eager_vs_rendezvous_ordering_preserved(self):
        """A small eager message and a big rendezvous message from the same
        (src, tag) arrive in posted order."""
        big = np.arange(DEFAULT_MPI_COSTS.rndv_threshold, dtype=np.uint8)

        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.isend("first-small", dest=1, tag=7)
                comm.isend(big, dest=1, tag=7).wait()
                comm.barrier()
                return None
            first = comm.recv(source=0, tag=7)
            second = comm.recv(source=0, tag=7)
            comm.barrier()
            return (first, len(second))

        res = run_mpi(body, 2)
        assert res[1][0] == "first-small"
        assert res[1][1] == len(big)


class TestWinValidation:
    def test_zero_size_window_rejected(self):
        def body():
            comm = comm_world()
            with pytest.raises(ValueError):
                Win.allocate(comm, 0)
            comm.barrier()

        # Win.allocate is collective: call the failing path on all ranks
        run_mpi(body, 2)

    def test_target_out_of_range(self):
        def body():
            comm = comm_world()
            win = Win.allocate(comm, 16)
            comm.barrier()
            with pytest.raises(ValueError):
                win.put(b"x", target=5)
            comm.barrier()

        run_mpi(body, 2)


class TestIprobe:
    def test_iprobe_sees_unexpected_message(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=3)
                comm.barrier()
                return None
            comm.rt.sched.sleep(20e-6)  # let it arrive unexpectedly
            flag, src, tag, nbytes = comm.iprobe()
            assert flag and src == 0 and tag == 3 and nbytes > 0
            # probing does not consume: the recv still matches
            assert comm.recv(source=0, tag=3) == "payload"
            comm.barrier()

        run_mpi(body, 2)

    def test_iprobe_false_when_nothing_pending(self):
        def body():
            comm = comm_world()
            flag, *_ = comm.iprobe()
            assert not flag
            comm.barrier()

        run_mpi(body, 2)

    def test_iprobe_selective_tag(self):
        def body():
            comm = comm_world()
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.barrier()
                return None
            comm.rt.sched.sleep(20e-6)
            flag, *_ = comm.iprobe(tag=2)
            assert not flag  # wrong tag must not match
            flag2, src, tag, _ = comm.iprobe(tag=1)
            assert flag2 and tag == 1
            comm.recv(source=0, tag=1)
            comm.barrier()

        run_mpi(body, 2)
