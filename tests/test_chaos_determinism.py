"""Chaos determinism: fault injection must be exactly reproducible.

The fault plan draws every decision (drop, duplicate, jitter, stall,
crash) from its own seeded stream — decoupled from application RNG — and
the reliable-delivery layer resolves each operation's full retransmit
ladder analytically at send time.  Consequently the *same seed + same
plan* must yield bit-identical results, trace fingerprints, and span
fingerprints on all three scheduler backends, and a zero-rate plan must
be indistinguishable from running with faults disabled.

Also pinned here:

- drop/dup/jitter-injected DHT runs converge to byte-identical final
  memory vs the fault-free run (reliable delivery is exactly-once at the
  UPC++ level, so data-plane chaos may shift timing but never results);
- rank crashes surface as :class:`RankDeadError` with identical rank
  attribution and message on every backend — single-process and sharded
  (FAIL-frame path) — and the run always terminates (no-hang guarantee);
- fault frames are charged to the cost model identically on every
  backend: the reliability frame counters agree across backends.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.sim.errors import DeadlockError, RankDeadError, RankFailure
from repro.sim.faults import FaultPlan
from repro.util.spans import SpanBuffer
from repro.util.trace import TraceBuffer

ALL_BACKENDS = ("coroutines", "threads", "sharded")

SEEDS = (3, 11, 42)

PLANS = (
    "drop=0.2,dup=0.1",
    "jitter=1e-6,dup=0.15,drop=0.05",
    "drop=0.3,jitter=5e-7,stall=20000:2e-6",
)


@contextmanager
def _shards(n: int):
    from repro.sim.shard import SHARDS_ENV

    old = os.environ.get(SHARDS_ENV)
    os.environ[SHARDS_ENV] = str(n)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(SHARDS_ENV, None)
        else:
            os.environ[SHARDS_ENV] = old


def _mixed_body():
    """RMA + RPC + collective mix touching every reliable-delivery path."""
    me = upcxx.rank_me()
    n = upcxx.rank_n()
    g = upcxx.new_array(np.float64, 8)
    g.local()[:] = 0.0
    ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(n)]
    ad = upcxx.AtomicDomain(["add", "fetch_add"], np.int64)
    counter = upcxx.new_array(np.int64, 1)
    counter.local()[:] = 0
    cptrs = [upcxx.broadcast(counter, root=r).wait() for r in range(n)]
    upcxx.barrier()

    upcxx.rput(np.full(8, float(me + 1)), ptrs[(me + 1) % n]).wait()
    upcxx.barrier()
    got = upcxx.rget(ptrs[(me + 2) % n]).wait()
    v = upcxx.rpc((me + 1) % n, lambda a, b: a * 10 + b, me, 3).wait()
    ad.add(cptrs[0][0], me + 1).wait()
    upcxx.barrier()
    total = int(counter.local()[0]) if me == 0 else -1
    red = upcxx.reduce_all(me, "+").wait()
    return (float(got.sum()), v, total, red, upcxx.sim_now())


def _run(backend, faults, seed=5):
    tr = TraceBuffer()
    sp = SpanBuffer()
    res = upcxx.run_spmd(
        _mixed_body, 4, seed=seed, trace=tr, spans=sp, backend=backend, faults=faults
    )
    return res, tr.canonical_fingerprint(), sp.fingerprint()


def _all_backends(fn):
    out = {b: fn(b) for b in ("coroutines", "threads")}
    with _shards(2):
        out["sharded"] = fn("sharded")
    return out


# ---------------------------------------------------------------- identity
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("plan", PLANS)
def test_chaos_runs_bit_identical_across_backends(seed, plan):
    """Same seed + same fault plan => identical results, trace and span
    fingerprints on coroutines, threads, and 2-shard sharded."""
    spec = f"seed={seed}," + plan
    got = _all_backends(lambda b: _run(b, spec, seed=seed))
    ref = got["coroutines"]
    assert got["threads"] == ref
    assert got["sharded"] == ref
    # and the whole triple is fault-seed sensitive: a different fault
    # seed must actually perturb the simulated timeline
    other = _run("coroutines", f"seed={seed + 1}," + plan, seed=seed)
    assert other[1] != ref[1] or other[2] != ref[2]


@contextmanager
def _lookahead_mode(mode: str):
    from repro.sim.shard import LOOKAHEAD_ENV

    old = os.environ.get(LOOKAHEAD_ENV)
    os.environ[LOOKAHEAD_ENV] = mode
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(LOOKAHEAD_ENV, None)
        else:
            os.environ[LOOKAHEAD_ENV] = old


def test_chaos_identical_across_lookahead_modes():
    """Protocol v2's adaptive window bound must not perturb the fault
    timeline: under an armed FaultPlan, fixed- and adaptive-lookahead
    runs produce identical results, trace fingerprints, and span
    fingerprints on every backend."""
    spec = "seed=13,drop=0.2,dup=0.1,jitter=1e-6"
    out = {}
    for mode in ("fixed", "adaptive"):
        with _lookahead_mode(mode):
            out[mode] = _all_backends(lambda b: _run(b, spec, seed=13))
    for mode, got in out.items():
        assert got["threads"] == got["coroutines"], mode
        assert got["sharded"] == got["coroutines"], mode
    assert out["fixed"] == out["adaptive"]


def test_zero_rate_plan_identical_to_disabled():
    """An armed plan with all rates zero is simulation-invisible."""
    for backend in ("coroutines", "threads"):
        assert _run(backend, None) == _run(backend, FaultPlan(seed=9))
    with _shards(2):
        assert _run("sharded", None) == _run("sharded", "seed=9")


def test_frame_counters_identical_across_backends():
    """Retransmit/drop/dup/ack counters are part of the deterministic
    surface and must agree between single-process and sharded runs."""
    spec = "seed=4,drop=0.25,dup=0.2,jitter=1e-6"

    def run(backend):
        stats: dict = {}
        res = upcxx.run_spmd(
            _mixed_body, 4, seed=4, backend=backend, faults=spec, sched_stats=stats
        )
        keys = ("frames_retransmitted", "frames_dropped", "frames_duplicated", "acks")
        return res, {k: stats.get(k) for k in keys}

    got = _all_backends(run)
    assert got["threads"] == got["coroutines"]
    assert got["sharded"] == got["coroutines"]
    assert got["coroutines"][1]["frames_dropped"] > 0  # the plan actually bit


# ------------------------------------------------------------- convergence
def test_drop_injected_dht_converges_byte_identical():
    """A lossy network may reorder and retransmit, but the DHT's final
    contents must equal the fault-free run byte for byte."""

    def body():
        me = upcxx.rank_me()
        n = upcxx.rank_n()
        store = upcxx.DistObject(np.zeros(64, dtype=np.int64))

        def insert(dobj, key, value):
            dobj.value[key] += value

        futs = []
        for i in range(8):
            key = (me * 13 + i * 7) % 64
            futs.append(upcxx.rpc((me + i + 1) % n, insert, store, key, me * 100 + i))
        upcxx.when_all(*futs).wait()
        upcxx.barrier()
        return store.value.tobytes()

    clean = upcxx.run_spmd(body, 4, seed=2)
    for spec in ("seed=21,drop=0.3", "seed=22,drop=0.15,dup=0.2,jitter=1e-6"):
        chaotic = upcxx.run_spmd(body, 4, seed=2, faults=spec)
        assert chaotic == clean


# ------------------------------------------------------------ rank crashes
def _crash_body():
    me = upcxx.rank_me()
    n = upcxx.rank_n()
    for i in range(100):
        upcxx.rpc((me + 1) % n, lambda x: x, i).wait()
        upcxx.barrier()
    return me


@pytest.mark.parametrize("spec,dead_rank", [
    ("seed=1,crash=2@1e-4", 2),
    ("seed=1,crash=0@5e-5", 0),
    ("seed=1,crash=1@1e-4+3@2e-4", 1),
])
def test_rank_crash_verdict_identical_across_backends(spec, dead_rank):
    """Crashes surface as RankDeadError with the same rank and message on
    every backend; survivors abort cleanly instead of hanging.  (Span
    streams legitimately end early on the failing path, so parity here is
    on the typed verdict, not fingerprints.)"""

    def run(backend):
        with pytest.raises(RankDeadError) as ei:
            upcxx.run_spmd(_crash_body, 4, seed=5, backend=backend, faults=spec)
        return (ei.value.rank, str(ei.value))

    got = _all_backends(run)
    ref = got["coroutines"]
    assert ref[0] == dead_rank
    assert got["threads"] == ref
    assert got["sharded"] == ref


def test_crash_before_any_communication():
    with pytest.raises(RankDeadError) as ei:
        upcxx.run_spmd(_crash_body, 4, seed=5, faults="crash=3@0.0")
    assert ei.value.rank == 3


# ----------------------------------------------------- aggregation layer
def _agg_body():
    """Aggregated updates + cached reads: batching, dwell flushes, credit
    acks, and invalidations all under fire."""
    from repro.upcxx.aggregator import AggStore

    me = upcxx.rank_me()
    store = AggStore("+", batch_size=4, credits=2, max_dwell=5e-6,
                     cache_capacity=8)
    upcxx.barrier()
    rng = upcxx.runtime_here().rng.spawn("chaos-agg")
    for i in range(24):
        store.update(rng.key64() % 32, (me + 1) * (i + 1) % 7 + 1)
        if i % 5 == 0:
            store.poll()
    store.quiesce()
    vals = tuple(store.read(k, default=0).wait() for k in range(0, 32, 3))
    store.quiesce()
    upcxx.barrier()
    s = store.stats()
    return (vals, s["batches_sent"], s["applied_updates"], s["cache_hits"],
            s["cache_invalidations"], upcxx.sim_now())


def _run_agg(backend, faults, seed=5):
    tr = TraceBuffer()
    sp = SpanBuffer()
    res = upcxx.run_spmd(
        _agg_body, 4, seed=seed, trace=tr, spans=sp, backend=backend, faults=faults
    )
    return res, tr.canonical_fingerprint(), sp.fingerprint()


@pytest.mark.parametrize("plan", PLANS)
def test_aggregated_chaos_bit_identical_across_backends(plan):
    """The aggregation subsystem (batched frames, acks, invalidations)
    joins the chaos surface: same seed + same fault plan => identical
    results, trace, and span fingerprints on all three backends."""
    spec = "seed=17," + plan
    got = _all_backends(lambda b: _run_agg(b, spec, seed=17))
    ref = got["coroutines"]
    assert got["threads"] == ref
    assert got["sharded"] == ref
    # and the store's contents survive the chaos: identical to fault-free
    clean = _run_agg("coroutines", None, seed=17)
    assert ref[0][0][0] == clean[0][0][0]  # rank 0's read-back values


def test_aggregated_crash_typed_verdict_across_backends():
    """A rank crash mid-aggregation (updates buffered, credits out,
    watchers registered) must end in RankDeadError with identical rank
    attribution on every backend — never a hang in quiesce."""
    spec = "seed=2,crash=2@1e-4"

    def run(backend):
        with pytest.raises(RankDeadError) as ei:
            upcxx.run_spmd(_agg_body, 4, seed=5, backend=backend, faults=spec)
        return (ei.value.rank, str(ei.value))

    got = _all_backends(run)
    assert got["threads"] == got["coroutines"]
    assert got["sharded"] == got["coroutines"]


def test_kvservice_chaos_bit_identical_across_backends():
    """The full served-KV workload (open-loop pacing + aggregation +
    cache) stays three-way bit-identical under an armed fault plan."""
    from repro.apps.kvservice import default_config, kv_rank_body

    cfg = default_config("tiny")
    cfg.update({"ranks": 4, "ppn": 2, "n_requests": 48, "n_keys": 64})
    spec = "seed=19,drop=0.15,dup=0.1,jitter=1e-6"

    def run(backend):
        sp = SpanBuffer()
        res = upcxx.run_spmd(
            lambda: kv_rank_body(cfg), cfg["ranks"], ppn=cfg["ppn"],
            seed=9, backend=backend, faults=spec, spans=sp,
        )
        return list(res), sp.fingerprint()

    got = _all_backends(run)
    assert got["threads"] == got["coroutines"]
    assert got["sharded"] == got["coroutines"]
    total = sum(r["reads"] + r["writes"] for r in got["coroutines"][0])
    assert total == cfg["ranks"] * cfg["n_requests"]  # chaos lost nothing


# ----------------------------------------- replicated survivable crashes
def _kv_replicated_run(backend, spec, replication=2):
    from repro.apps.kvservice import default_config, kv_rank_body

    cfg = default_config("tiny")
    cfg.update({"ranks": 4, "ppn": 2, "n_requests": 64, "n_keys": 128,
                "replication": replication})
    sp = SpanBuffer()
    res = upcxx.run_spmd(
        lambda: kv_rank_body(cfg), cfg["ranks"], ppn=cfg["ppn"],
        seed=9, backend=backend, faults=spec, spans=sp,
    )
    return list(res), sp.fingerprint()


@pytest.mark.parametrize("spec,dead_rank", [
    ("seed=7,crash=3@2e-4,survive=1", 3),
    ("seed=8,crash=1@1e-4,survive=1,detect=4e-5", 1),
])
def test_replicated_crash_bit_identical_across_backends(spec, dead_rank):
    """With replication factor 2 a survivable crash plan completes the
    run (no RankDeadError): failover reads retarget to surviving
    replicas, re-replication restores the factor, and the whole
    timeline — per-rank records AND span fingerprints, recovery spans
    included — is bit-identical on coroutines, threads, and 2-shard
    sharded.  The dead rank's result slot is None everywhere."""
    got = _all_backends(lambda b: _kv_replicated_run(b, spec))
    ref = got["coroutines"]
    assert got["threads"] == ref
    assert got["sharded"] == ref

    records, _fp = ref
    assert records[dead_rank] is None
    survivors = [r for r in records if r is not None]
    assert len(survivors) == 3
    issued = sum(r["requests_issued"] for r in survivors)
    served = sum(r["requests_served"] for r in survivors)
    assert issued > 0 and served / issued >= 0.99
    assert sum(r["writes_lost"] for r in survivors) == 0
    assert all(r["deaths_seen"] == 1 for r in survivors)
    assert all(r["factor_restored"] for r in survivors)
    # the service actually exercised the recovery path, not a quiet pass
    assert sum(r["rereplicated_keys"] for r in survivors) > 0


def test_replicated_crash_survives_only_with_replication():
    """Sanity for the gate's premise: the same survivable crash plan that
    completes under rf=2 also completes under rf=1 (the run survives),
    but only rf=2 re-replicates — rf=1 has no surviving copy to ship."""
    spec = "seed=7,crash=3@2e-4,survive=1"
    rf2 = _kv_replicated_run("coroutines", spec, replication=2)
    rf1 = _kv_replicated_run("coroutines", spec, replication=1)
    s2 = [r for r in rf2[0] if r is not None]
    s1 = [r for r in rf1[0] if r is not None]
    assert sum(r["rereplicated_keys"] for r in s2) > 0
    assert sum(r["rereplicated_keys"] for r in s1) == 0


def test_fault_env_var_spec(monkeypatch):
    """REPRO_FAULTS configures run_spmd without code changes."""
    from repro.sim.faults import FAULTS_ENV

    monkeypatch.setenv(FAULTS_ENV, "seed=6,drop=0.2")
    with_env = upcxx.run_spmd(_mixed_body, 4, seed=6)
    monkeypatch.delenv(FAULTS_ENV)
    explicit = upcxx.run_spmd(_mixed_body, 4, seed=6, faults="seed=6,drop=0.2")
    assert with_env == explicit


# ----------------------------------------------------------- no-hang sweep
def test_fault_matrix_always_terminates():
    """Acceptance sweep: every (workload-seed, plan) cell completes with
    either the fault-free answer or a typed error — never a hang (the
    per-run wall clock is bounded by the suite timeout) and never silent
    corruption.  Data-plane chaos legitimately shifts simulated *timing*,
    so the comparison strips the trailing ``sim_now()`` element."""

    def data(results):
        return [r[:-1] for r in results]

    clean = {s: data(upcxx.run_spmd(_mixed_body, 4, seed=s)) for s in (1, 2)}
    specs = [
        "seed=31,drop=0.4,dup=0.3",
        "seed=32,jitter=2e-6,stall=50000:1e-6",
        "seed=33,drop=0.2,crash=2@1e-4",
        "seed=34,crash=0@0.0",
    ]
    for s in (1, 2):
        for spec in specs:
            try:
                got = upcxx.run_spmd(_mixed_body, 4, seed=s, faults=spec)
            except (RankDeadError, RankFailure, DeadlockError):
                assert "crash" in spec
                continue
            assert data(got) == clean[s], f"seed={s} spec={spec}: corrupted results"
