"""Smoke tests for the shipped examples + whole-stack determinism checks."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.upcxx as upcxx

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script,expect",
    [
        ("quickstart.py", "quickstart finished."),
        ("dht_demo.py", "dht_demo finished."),
        ("extend_add_demo.py", "correctness vs dense serial reference: OK"),
        ("stencil_halo.py", "stencil_halo finished."),
        ("kmer_count.py", "kmer_count finished."),
        ("observability_demo.py", "observability_demo finished."),
    ],
)
def test_example_runs(script, expect):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expect in proc.stdout


class TestDeterminism:
    """The whole stack must be a pure function of (program, seed)."""

    @staticmethod
    def _dht_run(seed):
        from repro.apps.dht import DhtRmaLz

        def body():
            dht = DhtRmaLz()
            rng = upcxx.runtime_here().rng
            upcxx.barrier()
            for _ in range(10):
                dht.insert(rng.key64(), b"x" * 64).wait()
            upcxx.barrier()
            return upcxx.sim_now()

        return upcxx.run_spmd(body, 4, seed=seed)

    def test_same_seed_identical_times(self):
        assert self._dht_run(1) == self._dht_run(1)

    def test_different_seed_different_times(self):
        # different keys -> different targets -> different timings
        assert self._dht_run(1) != self._dht_run(2)

    def test_mixed_traffic_deterministic(self):
        def run():
            def body():
                me = upcxx.rank_me()
                n = upcxx.rank_n()
                g = upcxx.new_array(np.float64, 8)
                ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(n)]
                upcxx.barrier()
                for i in range(5):
                    upcxx.rput(np.full(8, float(i)), ptrs[(me + i) % n]).wait()
                    upcxx.rpc((me + i) % n, lambda: None).wait()
                total = upcxx.reduce_all(me, "+").wait()
                upcxx.barrier()
                return (upcxx.sim_now(), total)

            return upcxx.run_spmd(body, 6)

        assert run() == run()

    def test_metrics_and_trace_export_byte_identical(self):
        """Two same-seed aggregating-DHT runs must serialize to the exact
        same metrics JSON and Perfetto trace JSON."""
        from repro.bench.dht_bench import dht_aggregating_rate
        from repro.util.metrics import Metrics
        from repro.util.trace import TraceBuffer
        from repro.util.trace_export import dumps_chrome_trace, dumps_metrics

        def run():
            metrics = Metrics()
            trace = TraceBuffer()
            rate = dht_aggregating_rate(
                n_procs=4, updates_per_rank=48, seed=3, metrics=metrics, trace=trace
            )
            return rate, dumps_metrics(metrics), dumps_chrome_trace(trace, metrics)

        r1, m1, t1 = run()
        r2, m2, t2 = run()
        assert r1 == r2
        assert m1 == m2
        assert t1 == t2

    def test_trace_fingerprint_stable(self):
        from repro.sim.coop import Scheduler, current_scheduler
        from repro.util.trace import TraceBuffer

        def run():
            trace = TraceBuffer()

            def body(r):
                s = current_scheduler()
                for _ in range(4):
                    s.sleep((r % 3 + 1) * 1e-6)
                return s.now()

            sched = Scheduler(8, trace=trace)
            sched.run(body)
            return trace.fingerprint()

        assert run() == run()
