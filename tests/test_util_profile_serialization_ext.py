"""Tests for the profiling module and the custom-serialization registry."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.upcxx import serialization as ser
from repro.upcxx.serialization import register_serialization, serializable_fields
from repro.util.profile import RankProfile, RunProfile, profile_spmd


class TestProfile:
    def test_profile_spmd_counts_operations(self):
        def body():
            me = upcxx.rank_me()
            g = upcxx.new_array(np.float64, 4)
            ptrs = [upcxx.broadcast(g, root=r).wait() for r in range(upcxx.rank_n())]
            upcxx.barrier()
            upcxx.rput(np.ones(4), ptrs[(me + 1) % upcxx.rank_n()]).wait()
            upcxx.rpc((me + 1) % upcxx.rank_n(), lambda: None).wait()
            upcxx.barrier()

        prof = profile_spmd(body, 4)
        t = prof.totals()
        assert t["rputs"] == 4
        assert t["rpcs_sent"] >= 4  # explicit rpcs plus collective traffic
        assert t["rpcs_executed"] == t["rpcs_sent"]
        assert prof.imbalance() >= 1.0
        report = prof.report()
        assert "rputs: 4" in report
        assert "bytes on the wire" in report

    def test_rank_profile_delta(self):
        a = RankProfile(rank=0, rputs=2, rpcs_sent=5, sim_time=1.0)
        b = RankProfile(rank=0, rputs=7, rpcs_sent=6, sim_time=3.0)
        d = b.delta(a)
        assert d.rputs == 5 and d.rpcs_sent == 1 and d.sim_time == 2.0

    def test_delta_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RankProfile(rank=0).delta(RankProfile(rank=1))

    def test_empty_profile_report(self):
        prof = RunProfile()
        assert prof.imbalance() == 1.0
        assert "ranks: 0" in prof.report()


@serializable_fields("key", "weight")
class _Edge:
    def __init__(self, key, weight):
        self.key = key
        self.weight = weight

    def __eq__(self, other):
        return (self.key, self.weight) == (other.key, other.weight)


class _Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y


register_serialization(
    _Point,
    to_wire=lambda p: {"x": p.x, "y": p.y},
    from_wire=lambda d: _Point(d["x"], d["y"]),
)


class TestCustomSerialization:
    def test_fields_decorator_roundtrip(self):
        e = _Edge("ab", 2.5)
        out = ser.unpack(ser.pack(e))
        assert isinstance(out, _Edge)
        assert out == e

    def test_explicit_registration_roundtrip(self):
        p = _Point(3, 4)
        out = ser.unpack(ser.pack(p))
        assert isinstance(out, _Point)
        assert (out.x, out.y) == (3, 4)

    def test_nested_in_containers(self):
        obj = {"edges": [_Edge("a", 1.0), _Edge("b", 2.0)]}
        out = ser.unpack(ser.pack(obj))
        assert out["edges"][0] == _Edge("a", 1.0)

    def test_custom_classes_ship_through_rpc(self):
        def body():
            if upcxx.rank_me() == 0:
                got = upcxx.rpc(1, lambda e: e.weight * 2, _Edge("k", 21.0)).wait()
                assert got == 42.0
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_measure_covers_custom(self):
        e = _Edge("abc", 1.5)
        assert ser.measure(e) == len(ser.pack(e))
