"""Hot-path "zero-cost-when-off" regression pins.

The perf-gate post-mortem (docs/simulator.md §6) traced the coroutine
speedup loss to observability/reliability bookkeeping leaking into the
common path: span sids minted whenever a SpanBuffer merely *existed*,
per-op metrics probes, and per-op allocations.  These tests pin the
repaired contract so the next bookkeeping PR cannot silently regress the
gate again:

- with spans/metrics/faults all disabled, a DHT workload mints **zero**
  span sids and records **zero** spans;
- a constructed-but-``enabled=False`` SpanBuffer is indistinguishable
  from no buffer at all (the runtime nulls it once at startup — the
  single cached enabled-check the op layers rely on);
- the run stays inside a fixed event and CompQItem-allocation budget
  (the free-list pool must keep absorbing per-op churn);
- :meth:`DwellHistogram.percentile` boundary behavior (empty, single
  sample, p0/p100) stays exact, since the metrics layer is what the
  zero-cost discipline keeps off the hot path.
"""

import pytest

import repro.upcxx as upcxx
from repro.upcxx.runtime import CompQItem, Runtime
from repro.util.metrics import DwellHistogram
from repro.util.spans import SpanBuffer
from repro.util.telemetry import RankTelemetry, Telemetry

#: DHT smoke geometry: small enough for CI, big enough to cross every
#: op-lifecycle stage (rpc + reply + rput chains, barriers, progress)
N_RANKS = 8
N_INSERTS = 4

#: budgets for the instrumentation-off run, with headroom over the
#: measured values (288 events fired, 8 fresh CompQItems in a cold
#: process) so legitimate scheduler changes don't flake the pin but a
#: per-op leak (one extra event or pool-missing allocation per insert:
#: 8 ranks x 4 inserts = 32+ per leak) trips it immediately
EVENT_BUDGET = 450
COMPQ_ALLOC_BUDGET = 64


def _dht_body():
    from repro.apps.dht import DhtRmaLz

    dht = DhtRmaLz()
    rng = upcxx.runtime_here().rng.spawn("zero-cost-test")
    payload = bytes(512)
    upcxx.barrier()
    for _ in range(N_INSERTS):
        dht.insert(rng.key64(), payload).wait()
    upcxx.barrier()
    return upcxx.sim_now()


def _run_counted(monkeypatch, **spmd_kwargs):
    """Run the DHT body counting span-sid mints, span records, and fresh
    CompQItem constructions; returns (sids, records, allocs, stats)."""
    counts = {"sids": 0, "records": 0, "allocs": 0}

    orig_sid = Runtime.next_span_sid

    def counting_sid(self):
        counts["sids"] += 1
        return orig_sid(self)

    orig_record = SpanBuffer.record

    def counting_record(self, *a, **k):
        counts["records"] += 1
        return orig_record(self, *a, **k)

    orig_item_init = CompQItem.__init__

    def counting_init(self, *a, **k):
        counts["allocs"] += 1
        return orig_item_init(self, *a, **k)

    monkeypatch.setattr(Runtime, "next_span_sid", counting_sid)
    monkeypatch.setattr(SpanBuffer, "record", counting_record)
    monkeypatch.setattr(CompQItem, "__init__", counting_init)
    stats: dict = {}
    upcxx.run_spmd(_dht_body, N_RANKS, ppn=8, seed=7, sched_stats=stats, **spmd_kwargs)
    return counts["sids"], counts["records"], counts["allocs"], stats


def test_no_span_work_when_observers_off(monkeypatch):
    """spans/metrics/faults all off: zero sids, zero records, bounded
    event and allocation budgets."""
    sids, records, allocs, stats = _run_counted(monkeypatch)
    assert sids == 0, f"{sids} span sids minted with spans disabled"
    assert records == 0, f"{records} span records with spans disabled"
    assert stats["events_fired"] <= EVENT_BUDGET, stats
    assert allocs <= COMPQ_ALLOC_BUDGET, (
        f"{allocs} fresh CompQItem constructions (budget {COMPQ_ALLOC_BUDGET}): "
        "the free-list pool stopped absorbing per-op churn"
    )


def test_disabled_span_buffer_is_free(monkeypatch):
    """A constructed SpanBuffer with enabled=False must cost exactly what
    no buffer costs: the runtime nulls it once at startup, so no op-layer
    code ever sees it (the single cached enabled-check)."""
    spans = SpanBuffer(enabled=False)
    sids, records, _allocs, _stats = _run_counted(monkeypatch, spans=spans)
    assert sids == 0, f"{sids} sids minted for a disabled SpanBuffer"
    assert records == 0
    assert len(spans) == 0


def test_enabled_spans_still_record(monkeypatch):
    """Control arm: the counters above do observe real span traffic, so
    the zero assertions are meaningful."""
    spans = SpanBuffer()
    sids, records, _allocs, _stats = _run_counted(monkeypatch, spans=spans)
    assert sids > 0
    assert records > 0
    assert len(spans) > 0


def test_workload_results_identical_with_and_without_observers():
    """Observability must stay passive: same simulated answer either way."""
    stats_a: dict = {}
    stats_b: dict = {}
    res_off = upcxx.run_spmd(_dht_body, N_RANKS, ppn=8, seed=7, sched_stats=stats_a)
    res_on = upcxx.run_spmd(
        _dht_body, N_RANKS, ppn=8, seed=7, spans=SpanBuffer(), sched_stats=stats_b
    )
    assert res_off == res_on
    assert stats_a["events_fired"] == stats_b["events_fired"]


# ------------------------------------------------------- telemetry zero-cost
def _run_telemetry_counted(monkeypatch, **spmd_kwargs):
    """Run the DHT body counting telemetry samples and ring appends."""
    counts = {"ticks": 0, "notes": 0}

    orig_tick = RankTelemetry.tick

    def counting_tick(self, *a, **k):
        counts["ticks"] += 1
        return orig_tick(self, *a, **k)

    orig_note = RankTelemetry.note

    def counting_note(self, *a, **k):
        counts["notes"] += 1
        return orig_note(self, *a, **k)

    monkeypatch.setattr(RankTelemetry, "tick", counting_tick)
    monkeypatch.setattr(RankTelemetry, "note", counting_note)
    upcxx.run_spmd(_dht_body, N_RANKS, ppn=8, seed=7, **spmd_kwargs)
    return counts["ticks"], counts["notes"]


def test_no_telemetry_work_when_off(monkeypatch):
    """No sink installed: zero window samples, zero flight-recorder
    appends — the telemetry surface must be a single is-None check."""
    ticks, notes = _run_telemetry_counted(monkeypatch)
    assert ticks == 0, f"{ticks} telemetry ticks with telemetry disabled"
    assert notes == 0, f"{notes} ring appends with telemetry disabled"


def test_disabled_telemetry_sink_is_free(monkeypatch):
    """A constructed Telemetry with enabled=False is indistinguishable
    from no sink (the runtime nulls it once at startup)."""
    tel = Telemetry(enabled=False)
    ticks, notes = _run_telemetry_counted(monkeypatch, telemetry=tel)
    assert ticks == 0
    assert notes == 0
    assert tel.ranks == {}


def test_enabled_telemetry_still_records(monkeypatch):
    """Control arm: the counters do observe real telemetry traffic."""
    tel = Telemetry()
    ticks, notes = _run_telemetry_counted(monkeypatch, telemetry=tel)
    assert ticks > 0
    assert notes > 0
    assert all(rt.windows for rt in tel.ranks.values())


def test_budgets_hold_with_telemetry_off(monkeypatch):
    """The original event/alloc budgets are unchanged by the telemetry
    subsystem existing: off means off."""
    sids, records, allocs, stats = _run_counted(monkeypatch)
    assert sids == 0 and records == 0
    assert stats["events_fired"] <= EVENT_BUDGET, stats
    assert allocs <= COMPQ_ALLOC_BUDGET


def test_telemetry_is_passive():
    """Same simulated answer and event count with the sink armed."""
    stats_a: dict = {}
    stats_b: dict = {}
    res_off = upcxx.run_spmd(_dht_body, N_RANKS, ppn=8, seed=7, sched_stats=stats_a)
    res_on = upcxx.run_spmd(
        _dht_body, N_RANKS, ppn=8, seed=7, telemetry=Telemetry(), sched_stats=stats_b
    )
    assert res_off == res_on
    assert stats_a["events_fired"] == stats_b["events_fired"]


# ------------------------------------------------- DwellHistogram boundaries
def test_percentile_empty_histogram():
    h = DwellHistogram()
    assert h.percentile(50) == 0.0
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 0.0


def test_percentile_single_sample():
    h = DwellHistogram()
    h.add(5e-9)
    for q in (0, 50, 100):
        assert h.percentile(q) == pytest.approx(5e-9)


def test_percentile_p0_p100_clamp_to_observed_range():
    h = DwellHistogram()
    samples = (1e-9, 3e-9, 1e-8, 2.5e-7, 1e-6)
    for s in samples:
        h.add(s)
    assert h.percentile(0) == pytest.approx(min(samples))
    assert h.percentile(100) == pytest.approx(max(samples))
    p50 = h.percentile(50)
    assert min(samples) <= p50 <= max(samples)


def test_percentile_rejects_out_of_range():
    h = DwellHistogram()
    h.add(1e-9)
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_percentile_zero_duration_samples():
    h = DwellHistogram()
    for _ in range(4):
        h.add(0.0)
    assert h.percentile(0) == 0.0
    assert h.percentile(50) == 0.0
    assert h.percentile(100) == 0.0
