"""Causal span tracer + critical-path report unit and integration tests.

Covers the span buffer's canonical merge/fingerprint contract, the exact
tiling property of the critical-path walk (the ISSUE's "components sum to
within 1% of the round trip" acceptance bound — met with equality here),
the ``repro.tools.report`` CLI, and the per-shard Perfetto export lanes.
"""

import json

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.tools.report import (
    CATEGORIES,
    analyze_workload,
    attribution,
    build_report,
    critical_path,
    main as report_main,
)
from repro.util.spans import PHASES, SpanBuffer
from repro.util.trace import TraceBuffer
from repro.util.trace_export import chrome_trace_events, chrome_trace_span_events


# ----------------------------------------------------------- SpanBuffer unit
class TestSpanBuffer:
    def test_record_and_canonical_order(self):
        sp = SpanBuffer()
        sp.record(2.0, 3.0, 1, (1, 1), "wire", "put", 8)
        sp.record(0.0, 1.0, 0, (0, 1), "inject_sw", "put", 8)
        recs = sp.canonical_records()
        assert [r[0] for r in recs] == [0.0, 2.0]
        assert len(sp) == 2

    def test_merge_equals_single_stream(self):
        """Parent-side shard merge == one buffer fed the same records."""
        single = SpanBuffer()
        a, b = SpanBuffer(), SpanBuffer()
        for i in range(10):
            rec = (float(i), float(i) + 0.5, i % 4, (i % 4, i), "wire", "put", 64, None)
            single.record(*rec)
            (a if i % 4 < 2 else b).record(*rec)
        merged = SpanBuffer()
        merged.extend_canonical([list(b._records), list(a._records)])
        assert merged.canonical_records() == single.canonical_records()
        assert merged.fingerprint() == single.fingerprint()

    def test_fingerprint_sensitivity(self):
        a, b = SpanBuffer(), SpanBuffer()
        a.record(0.0, 1.0, 0, (0, 1), "wire", "put", 8)
        b.record(0.0, 1.0, 0, (0, 1), "wire", "put", 9)  # nbytes differs
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == len(a.fingerprint()) * "0" or True  # hex str
        assert isinstance(a.fingerprint(), str)

    def test_as_dicts_json_ready(self):
        sp = SpanBuffer()
        sp.record(0.0, 1.0, 0, (0, 1), "inject_sw", "rpc", 8, parent=(1, 2))
        d = sp.as_dicts()[0]
        json.dumps(d)  # must not raise
        assert d["sid"] == [0, 1] and d["parent"] == [1, 2]

    def test_every_emitted_phase_is_categorized(self):
        assert set(PHASES.values()) <= set(CATEGORIES)


# ----------------------------------------------------- critical-path walk
class TestCriticalPath:
    def test_tiles_window_exactly_with_gaps(self):
        # two spans with a gap between them and slack at both ends
        recs = [
            (1.0, 2.0, 0, (0, 1), "wire", "put", 8, None),
            (3.0, 4.0, 0, (0, 2), "inject_sw", "put", 8, None),
        ]
        segs = critical_path(recs, 0.0, 5.0)
        assert segs[0][0] == 0.0 and segs[-1][1] == 5.0
        for prev, nxt in zip(segs, segs[1:]):
            assert prev[1] == nxt[0]  # exact tiling, no overlap, no holes
        attr = attribution(segs)
        assert attr["app"] == 3.0  # [0,1] + [2,3] + [4,5]
        assert attr["wire"] == 1.0 and attr["software"] == 1.0
        assert sum(attr[c] for c in CATEGORIES) == attr["total"] == 5.0

    def test_zero_length_spans_cannot_stall(self):
        recs = [
            (1.0, 1.0, 0, (0, 1), "nic_wait", "put", 8, None),  # zero length
            (0.0, 1.0, 0, (0, 2), "nic_occ", "put", 8, None),
        ]
        segs = critical_path(recs, 0.0, 1.0)
        assert segs[-1][1] == 1.0 and segs[0][0] == 0.0

    def test_prefers_latest_ending_span(self):
        recs = [
            (0.0, 2.0, 0, (0, 1), "wire", "put", 8, None),
            (0.0, 4.0, 0, (0, 2), "compq", "put", 8, None),
        ]
        segs = critical_path(recs, 0.0, 4.0)
        # the whole window is covered by the compq span (ends latest)
        assert [s[3] for s in segs] == ["compq"]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            critical_path([], 1.0, 0.0)


# ------------------------------------------------- fig3a report integration
@pytest.fixture(scope="module")
def fig3a_report():
    return analyze_workload("fig3a", "coroutines")


class TestFig3aReport:
    def test_components_sum_to_round_trip(self, fig3a_report):
        """Acceptance criterion: attribution sums within 1% of the total
        simulated round-trip window (exact by construction here)."""
        attr = fig3a_report["attribution_s"]
        t0, t1 = fig3a_report["window_s"]
        total = t1 - t0
        covered = sum(attr[c] for c in CATEGORIES)
        assert attr["total"] == pytest.approx(total, rel=1e-12)
        assert covered == pytest.approx(total, rel=0.01)  # the 1% bound...
        assert covered == pytest.approx(total, rel=1e-9)  # ...met exactly

    def test_wire_dominates_small_put_latency(self, fig3a_report):
        """For 512 B blocking puts the paper's story is wire-bound: two
        latency hops per round trip dwarf software overhead."""
        attr = fig3a_report["attribution_s"]
        assert attr["wire"] > attr["software"] > 0.0
        assert fig3a_report["n_spans"] > 0

    def test_segments_tile_the_window(self, fig3a_report):
        segs = fig3a_report["critical_path"]
        t0, t1 = fig3a_report["window_s"]
        assert segs[0]["t0"] == t0 and segs[-1]["t1"] == t1
        for prev, nxt in zip(segs, segs[1:]):
            assert prev["t1"] == nxt["t0"]


class TestReportCli:
    def test_json_output_and_exit_code(self, tmp_path):
        out = tmp_path / "SPAN_report.json"
        rc = report_main(
            ["--workload", "fig3a", "--backends", "coroutines", "threads",
             "--format", "json", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-span-report/1"
        assert doc["fingerprints_identical"] is True
        assert set(doc["fingerprints"]) == {"coroutines", "threads"}
        rep = doc["reports"][0]
        assert rep["n_spans"] > 0
        assert "_spans" not in rep  # internal handles stripped from JSON

    def test_perfetto_output(self, tmp_path, capsys):
        out = tmp_path / "spans.trace.json"
        rc = report_main(
            ["--workload", "fig3a", "--backends", "coroutines",
             "--format", "perfetto", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "put:wire" in names and "rput:inject_sw" in names

    def test_build_report_flags_divergence(self, monkeypatch):
        import repro.tools.report as report_mod

        real = report_mod.analyze_workload
        calls = []

        def tampered(name, backend, shards=None, faults=None):
            rep = real(name, backend, shards, faults)
            calls.append(backend)
            if backend == "threads":
                rep["fingerprint"] = "deadbeef"  # simulate a divergence
            return rep

        monkeypatch.setattr(report_mod, "analyze_workload", tampered)
        doc, identical, _ = report_mod.build_report(
            "fig3a", ["coroutines", "threads"], None
        )
        assert calls == ["coroutines", "threads"]
        assert identical is False
        assert doc["fingerprints_identical"] is False


# ------------------------------------------------------- Perfetto export
class TestShardedExportLanes:
    def test_distinct_pid_per_shard_with_metadata(self):
        trace = TraceBuffer()
        results = upcxx.run_spmd(
            lambda: upcxx.barrier() or upcxx.rank_me(),
            4, platform="haswell", ppn=2, trace=trace,
        )
        assert results == [0, 1, 2, 3]
        shard_of = [0, 0, 1, 1]
        events = chrome_trace_events(trace, shard_of=shard_of)
        pids = {e["pid"] for e in events}
        assert pids == {0, 1}
        proc_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert proc_names == {0: "shard 0", 1: "shard 1"}
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names[(1, 3)] == "rank 3"
        # rank events landed on their shard's pid
        for e in events:
            if e["ph"] != "M":
                assert e["pid"] == shard_of[e["tid"]]

    def test_unsharded_default_is_single_process(self):
        trace = TraceBuffer()
        upcxx.run_spmd(lambda: upcxx.barrier(), 2, platform="haswell", ppn=1, trace=trace)
        events = chrome_trace_events(trace)
        assert {e["pid"] for e in events} == {0}
        assert any(
            e["ph"] == "M" and e["name"] == "process_name" and e["args"]["name"] == "simulation"
            for e in events
        )

    def test_span_events_carry_sid_and_parent(self):
        sp = SpanBuffer()
        sp.record(1e-6, 2e-6, 1, (0, 1), "wire", "rpc", 64)
        sp.record(3e-6, 4e-6, 0, (1, 1), "wire", "rpc_reply", 16, parent=(0, 1))
        events = [e for e in chrome_trace_span_events(sp, [0, 1]) if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["rpc:wire", "rpc_reply:wire"]
        assert events[0]["pid"] == 1 and events[0]["tid"] == 1
        assert events[0]["args"]["sid"] == "r0#1"
        assert events[1]["args"]["parent"] == "r0#1"
        assert events[0]["dur"] == pytest.approx(1.0)  # us
