"""Tests for the distributed hash table implementations and the graph."""

import numpy as np
import pytest

import repro.upcxx as upcxx
from repro.apps.dht import DhtRmaLz, DhtRpcOnly, DistGraph, SerialMap
from repro.apps.dht.rpc_only import hash_target


class TestHashTarget:
    def test_deterministic(self):
        assert hash_target(12345, 16) == hash_target(12345, 16)

    def test_in_range(self):
        for key in range(1000):
            assert 0 <= hash_target(key, 7) < 7

    def test_spreads_keys(self):
        n = 8
        counts = [0] * n
        for key in range(4000):
            counts[hash_target(key, n)] += 1
        assert min(counts) > 4000 / n * 0.7  # roughly uniform


def _run_dht(cls, n_ranks=4, inserts=8, vsize=64):
    """Insert distinct keys from every rank, then read them all back."""

    def body():
        me = upcxx.rank_me()
        dht = cls()
        upcxx.barrier()
        rng = upcxx.runtime_here().rng
        keys = [rng.key64() for _ in range(inserts)]
        vals = {k: bytes([(k + i) % 256] * vsize) for i, k in enumerate(keys)}
        for k in keys:
            dht.insert(k, vals[k]).wait()
        upcxx.barrier()
        ok = all(dht.find(k).wait() == vals[k] for k in keys)
        upcxx.barrier()
        total = upcxx.reduce_all(dht.local_size(), "+").wait()
        upcxx.barrier()
        return ok, total

    res = upcxx.run_spmd(body, n_ranks)
    assert all(ok for ok, _ in res)
    assert all(total == n_ranks * inserts for _, total in res)


class TestDhtRpcOnly:
    def test_insert_find_roundtrip(self):
        _run_dht(DhtRpcOnly)

    def test_find_missing_returns_none(self):
        def body():
            dht = DhtRpcOnly()
            upcxx.barrier()
            assert dht.find(424242).wait() is None
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_overwrite(self):
        def body():
            dht = DhtRpcOnly()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                dht.insert(7, b"one").wait()
                dht.insert(7, b"two").wait()
                assert dht.find(7).wait() == b"two"
            upcxx.barrier()

        upcxx.run_spmd(body, 2)


class TestDhtRmaLz:
    def test_insert_find_roundtrip(self):
        _run_dht(DhtRmaLz)

    def test_value_lands_in_shared_segment(self):
        def body():
            dht = DhtRmaLz()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                key = 99
                dht.insert(key, b"SEGMENT!").wait()
                owner = dht.target_of(key)
                got = dht.find(key).wait()
                assert got == b"SEGMENT!"
                # landing zone recorded at the owner
                owner_size = upcxx.rpc(owner, lambda d: len(d.value), dht._dobj).wait()
                assert owner_size == 1
            upcxx.barrier()

        upcxx.run_spmd(body, 4)

    def test_pipelined_inserts_with_when_all(self):
        def body():
            dht = DhtRmaLz()
            upcxx.barrier()
            futs = [dht.insert(k, bytes([k] * 32)) for k in range(20)]
            upcxx.when_all(*futs).wait()
            upcxx.barrier()
            assert all(dht.find(k).wait() == bytes([k] * 32) for k in range(20))
            upcxx.barrier()

        upcxx.run_spmd(body, 2)

    def test_rma_variant_faster_for_large_values(self):
        """Zero-copy RMA beats serialize-both-ends RPC for big values."""

        def timed(cls, vsize):
            times = {}

            def body():
                dht = cls()
                upcxx.barrier()
                if upcxx.rank_me() == 0:
                    val = bytes(vsize)
                    # pick a key owned by the other rank to force remote path
                    key = next(k for k in range(1000) if dht.target_of(k) == 1)
                    dht.insert(key, val).wait()  # warm-up
                    t0 = upcxx.sim_now()
                    for i in range(10):
                        dht.insert(key + 1000 * (i + 1), val).wait()
                    times["t"] = upcxx.sim_now() - t0
                upcxx.barrier()

            upcxx.run_spmd(body, 2, ppn=1)
            return times["t"]

        big = 64 * 1024
        assert timed(DhtRmaLz, big) < timed(DhtRpcOnly, big)


class TestSerialMap:
    def test_roundtrip_and_charges(self):
        def body():
            m = SerialMap()
            t0 = upcxx.sim_now()
            for k in range(50):
                m.insert(k, bytes([k]) * 100)
            dt = upcxx.sim_now() - t0
            assert dt > 0  # CPU charged like the distributed local path
            assert m.find(10) == bytes([10]) * 100
            assert m.find(999) is None
            return m.local_size()

        assert upcxx.run_spmd(body, 1) == [50]


class TestDistGraph:
    def test_vertex_insert_and_edges(self):
        def body():
            g = DistGraph()
            upcxx.barrier()
            me = upcxx.rank_me()
            g.insert_vertex(me, name=f"v{me}").wait()
            upcxx.barrier()
            other = (me + 1) % upcxx.rank_n()
            g.add_edge(me, other).wait()
            upcxx.barrier()
            v = g.get_vertex(me).wait()
            upcxx.barrier()
            return (v.properties["name"], sorted(v.nbs))

        res = upcxx.run_spmd(body, 3)
        assert res[0] == ("v0", [1])
        assert res[2] == ("v2", [0])

    def test_add_edge_missing_vertex_returns_false(self):
        def body():
            g = DistGraph()
            upcxx.barrier()
            ok = g.add_edge(12345, 1).wait()
            upcxx.barrier()
            return ok

        assert upcxx.run_spmd(body, 2) == [False, False]

    def test_undirected_edge(self):
        def body():
            g = DistGraph()
            upcxx.barrier()
            if upcxx.rank_me() == 0:
                upcxx.when_all(g.insert_vertex(1), g.insert_vertex(2)).wait()
                g.add_undirected_edge(1, 2).wait()
                v1 = g.get_vertex(1).wait()
                v2 = g.get_vertex(2).wait()
                assert v1.nbs == [2] and v2.nbs == [1]
            upcxx.barrier()

        upcxx.run_spmd(body, 4)
